//! The transportation right-of-way graph iGDB routes fiber paths along.
//!
//! Paper §3.1: "We use information on existing road networks to generate an
//! approximation of the physical path the fiber optic cable connecting the
//! two nodes follows. This is accomplished by determining the shortest
//! route connecting city pairs along the right-of-way network." The road
//! dataset arrives as [`RoadSegment`] records (a public GIS layer);
//! endpoints are metro ids.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use igdb_geo::GeoPoint;
use igdb_synth::sources::RoadSegment;

/// One loaded road edge.
#[derive(Clone, Debug)]
pub struct RoadEdge {
    pub a: usize,
    pub b: usize,
    pub length_km: f64,
    pub path: Vec<GeoPoint>,
}

/// The right-of-way graph over the standard metros.
pub struct RoadGraph {
    edges: Vec<RoadEdge>,
    adj: Vec<Vec<(usize, usize)>>,
}

impl RoadGraph {
    /// Loads the road dataset. `n_metros` sizes the adjacency table;
    /// segments referencing out-of-range metros are rejected.
    pub fn build(n_metros: usize, segments: &[RoadSegment]) -> Self {
        let mut edges = Vec::with_capacity(segments.len());
        let mut adj = vec![Vec::new(); n_metros];
        for s in segments {
            assert!(
                s.a < n_metros && s.b < n_metros,
                "road segment references unknown metro ({}, {})",
                s.a,
                s.b
            );
            let idx = edges.len();
            edges.push(RoadEdge {
                a: s.a,
                b: s.b,
                length_km: s.length_km,
                path: s.path.clone(),
            });
            adj[s.a].push((s.b, idx));
            adj[s.b].push((s.a, idx));
        }
        Self { edges, adj }
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn metro_count(&self) -> usize {
        self.adj.len()
    }

    /// Shortest road route between two metros: `(metro sequence, km)`.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<(Vec<usize>, f64)> {
        if from >= self.adj.len() || to >= self.adj.len() {
            return None;
        }
        if from == to {
            return Some((vec![from], 0.0));
        }
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push((Reverse(0), from));
        while let Some((Reverse(dbits), u)) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u] {
                continue;
            }
            if u == to {
                break;
            }
            for &(v, e) in &self.adj[u] {
                let nd = d + self.edges[e].length_km;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push((Reverse(nd.to_bits()), v));
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some((path, dist[to]))
    }

    /// The concatenated road geometry along a metro sequence. Returns
    /// `None` if consecutive metros are not road-adjacent.
    pub fn path_geometry(&self, metro_path: &[usize]) -> Option<Vec<GeoPoint>> {
        let mut out: Vec<GeoPoint> = Vec::new();
        for w in metro_path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let &(_, e) = self.adj.get(u)?.iter().find(|(nb, _)| *nb == v)?;
            let edge = &self.edges[e];
            let mut seg = edge.path.clone();
            if edge.a != u {
                seg.reverse();
            }
            if !out.is_empty() {
                seg.remove(0);
            }
            out.extend(seg);
        }
        Some(out)
    }

    /// Shortest road route with its full geometry.
    pub fn route_with_geometry(
        &self,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64, Vec<GeoPoint>)> {
        let (path, km) = self.shortest_path(from, to)?;
        let geom = self.path_geometry(&path)?;
        Some((path, km, geom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(a: usize, b: usize, km: f64) -> RoadSegment {
        RoadSegment {
            a,
            b,
            length_km: km,
            path: vec![
                GeoPoint::new(a as f64, 0.0),
                GeoPoint::new(b as f64, 0.0),
            ],
        }
    }

    /// 0—1—2—3 chain plus a long 0—3 shortcut that is NOT shorter.
    fn graph() -> RoadGraph {
        RoadGraph::build(
            5,
            &[seg(0, 1, 10.0), seg(1, 2, 10.0), seg(2, 3, 10.0), seg(0, 3, 50.0)],
        )
    }

    #[test]
    fn shortest_prefers_chain_over_long_edge() {
        let g = graph();
        let (path, km) = g.shortest_path(0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!((km - 30.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_metro_unreachable() {
        let g = graph();
        assert!(g.shortest_path(0, 4).is_none());
        assert!(g.shortest_path(4, 4).is_some());
    }

    #[test]
    fn geometry_concatenation_dedupes_junctions() {
        let g = graph();
        let (path, _, geom) = g.route_with_geometry(0, 2).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        // Two 2-point segments sharing one junction → 3 points.
        assert_eq!(geom.len(), 3);
    }

    #[test]
    fn geometry_respects_edge_direction() {
        let g = graph();
        let geom = g.path_geometry(&[2, 1, 0]).unwrap();
        assert_eq!(geom[0], GeoPoint::new(2.0, 0.0));
        assert_eq!(geom[2], GeoPoint::new(0.0, 0.0));
    }

    #[test]
    fn geometry_of_nonadjacent_pair_is_none() {
        let g = graph();
        assert!(g.path_geometry(&[0, 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown metro")]
    fn out_of_range_segment_panics() {
        RoadGraph::build(2, &[seg(0, 5, 1.0)]);
    }
}
