//! The transportation right-of-way graph iGDB routes fiber paths along.
//!
//! Paper §3.1: "We use information on existing road networks to generate an
//! approximation of the physical path the fiber optic cable connecting the
//! two nodes follows. This is accomplished by determining the shortest
//! route connecting city pairs along the right-of-way network." The road
//! dataset arrives as [`RoadSegment`] records (a public GIS layer);
//! endpoints are metro ids.
//!
//! Routing delegates to the shared [`ShortestPathEngine`]; geometry lookup
//! uses a `(u, v) → edge` map instead of scanning adjacency lists, and
//! segment polylines are stored behind `Arc` so loading never copies them.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use igdb_geo::GeoPoint;
use igdb_synth::sources::RoadSegment;

use crate::corridor::PairCache;
use crate::spath::{ShortestPathEngine, SpWorkspace};

/// One memoized road corridor, oriented from the smaller metro id.
/// Only the metro path and length are kept; geometry is re-concatenated
/// on demand (see [`RoadGraph::route_cached`]).
#[derive(Clone, Debug)]
struct RoadRoute {
    path: Vec<usize>,
    km: f64,
}

/// One loaded road edge.
#[derive(Clone, Debug)]
pub struct RoadEdge {
    pub a: usize,
    pub b: usize,
    pub length_km: f64,
    pub path: Arc<[GeoPoint]>,
}

/// The right-of-way graph over the standard metros.
pub struct RoadGraph {
    edges: Vec<RoadEdge>,
    engine: ShortestPathEngine,
    /// `(u, v) → edge index`, both orientations; on parallel edges the
    /// first-loaded edge wins (matching the old adjacency-scan behavior).
    edge_of: HashMap<(usize, usize), usize>,
    /// Workspace backing the plain [`shortest_path`](Self::shortest_path)
    /// convenience API; parallel callers bring their own workspace via the
    /// `_with` variants.
    workspace: Mutex<SpWorkspace>,
    /// Memoized corridors by normalized metro pair: snapshot refreshes and
    /// repeated atlas links re-route the same pairs, and the geometry
    /// concatenation is not free either.
    corridors: PairCache<Option<RoadRoute>>,
}

impl RoadGraph {
    /// Loads the road dataset. `n_metros` sizes the adjacency table;
    /// segments referencing out-of-range metros are rejected.
    pub fn build(n_metros: usize, segments: &[RoadSegment]) -> Self {
        let mut edges = Vec::with_capacity(segments.len());
        let mut edge_of = HashMap::with_capacity(segments.len() * 2);
        for s in segments {
            assert!(
                s.a < n_metros && s.b < n_metros,
                "road segment references unknown metro ({}, {})",
                s.a,
                s.b
            );
            let idx = edges.len();
            edges.push(RoadEdge {
                a: s.a,
                b: s.b,
                length_km: s.length_km,
                path: s.path.clone().into(),
            });
            edge_of.entry((s.a, s.b)).or_insert(idx);
            edge_of.entry((s.b, s.a)).or_insert(idx);
        }
        let engine = ShortestPathEngine::from_undirected(
            n_metros,
            edges.iter().map(|e| (e.a, e.b, e.length_km)),
        );
        Self {
            edges,
            engine,
            edge_of,
            workspace: Mutex::new(SpWorkspace::new()),
            corridors: PairCache::new("roads"),
        }
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn metro_count(&self) -> usize {
        self.engine.node_count()
    }

    /// The shared routing engine (for callers that batch queries with
    /// their own [`SpWorkspace`]).
    pub fn engine(&self) -> &ShortestPathEngine {
        &self.engine
    }

    /// Shortest road route between two metros: `(metro sequence, km)`.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<(Vec<usize>, f64)> {
        let mut ws = self.workspace.lock().unwrap_or_else(|e| e.into_inner());
        self.engine.shortest_path_with(&mut ws, from, to)
    }

    /// [`shortest_path`](Self::shortest_path) with a caller-owned
    /// workspace: queries grouped by `from` amortize to one search per
    /// source, and parallel workers don't contend on the shared lock.
    pub fn shortest_path_with(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        self.engine.shortest_path_with(ws, from, to)
    }

    /// The concatenated road geometry along a metro sequence. Returns
    /// `None` if consecutive metros are not road-adjacent.
    pub fn path_geometry(&self, metro_path: &[usize]) -> Option<Vec<GeoPoint>> {
        // Pre-size: segment point counts minus the shared junction points.
        let mut total = 0usize;
        for w in metro_path.windows(2) {
            let &e = self.edge_of.get(&(w[0], w[1]))?;
            total += self.edges[e].path.len();
        }
        let mut out: Vec<GeoPoint> = Vec::with_capacity(total);
        for w in metro_path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let &e = self.edge_of.get(&(u, v))?;
            let edge = &self.edges[e];
            let skip = usize::from(!out.is_empty());
            if edge.a == u {
                out.extend(edge.path.iter().skip(skip).copied());
            } else {
                out.extend(edge.path.iter().rev().skip(skip).copied());
            }
        }
        Some(out)
    }

    /// Shortest road route with its full geometry.
    pub fn route_with_geometry(
        &self,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64, Vec<GeoPoint>)> {
        let (path, km) = self.shortest_path(from, to)?;
        let geom = self.path_geometry(&path)?;
        Some((path, km, geom))
    }

    /// [`route_with_geometry`](Self::route_with_geometry) with a
    /// caller-owned workspace.
    pub fn route_with_geometry_with(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64, Vec<GeoPoint>)> {
        let (path, km) = self.engine.shortest_path_with(ws, from, to)?;
        let geom = self.path_geometry(&path)?;
        Some((path, km, geom))
    }

    /// Normalized pairs whose route (hit or miss) is already memoized.
    /// Delta applies reusing a warm graph count these to replay the
    /// `spath.queries` ticks a cold rebuild would have emitted.
    pub fn cached_route_keys(&self) -> std::collections::BTreeSet<(usize, usize)> {
        self.corridors
            .settled_entries()
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// [`route_with_geometry_with`](Self::route_with_geometry_with), memoized
    /// by normalized metro pair: each unordered pair is routed at most once
    /// per graph, no matter how many callers (or parallel workers) ask.
    pub fn route_cached(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64, Vec<GeoPoint>)> {
        let key = (from.min(to), from.max(to));
        let cached = self.corridors.get_or_compute(key, || {
            let (path, km) = self.engine.shortest_path_with(ws, key.0, key.1)?;
            // Only routes whose geometry concatenates cleanly are cached,
            // mirroring `route_with_geometry`'s contract.
            self.path_geometry(&path)?;
            Some(RoadRoute { path, km })
        })?;
        // Geometry is re-concatenated per call instead of memoized: the
        // cached polylines dominated the road graph's resident footprint,
        // and the concat is a linear walk over already-resident edges.
        let mut geometry = self.path_geometry(&cached.path).expect("validated at insert");
        let mut path = cached.path;
        if from > to {
            path.reverse();
            geometry.reverse();
        }
        Some((path, cached.km, geometry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(a: usize, b: usize, km: f64) -> RoadSegment {
        RoadSegment {
            a,
            b,
            length_km: km,
            path: vec![
                GeoPoint::new(a as f64, 0.0),
                GeoPoint::new(b as f64, 0.0),
            ],
        }
    }

    /// 0—1—2—3 chain plus a long 0—3 shortcut that is NOT shorter.
    fn graph() -> RoadGraph {
        RoadGraph::build(
            5,
            &[seg(0, 1, 10.0), seg(1, 2, 10.0), seg(2, 3, 10.0), seg(0, 3, 50.0)],
        )
    }

    #[test]
    fn shortest_prefers_chain_over_long_edge() {
        let g = graph();
        let (path, km) = g.shortest_path(0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!((km - 30.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_metro_unreachable() {
        let g = graph();
        assert!(g.shortest_path(0, 4).is_none());
        assert!(g.shortest_path(4, 4).is_some());
    }

    #[test]
    fn geometry_concatenation_dedupes_junctions() {
        let g = graph();
        let (path, _, geom) = g.route_with_geometry(0, 2).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        // Two 2-point segments sharing one junction → 3 points.
        assert_eq!(geom.len(), 3);
    }

    #[test]
    fn geometry_respects_edge_direction() {
        let g = graph();
        let geom = g.path_geometry(&[2, 1, 0]).unwrap();
        assert_eq!(geom[0], GeoPoint::new(2.0, 0.0));
        assert_eq!(geom[2], GeoPoint::new(0.0, 0.0));
    }

    #[test]
    fn geometry_of_nonadjacent_pair_is_none() {
        let g = graph();
        assert!(g.path_geometry(&[0, 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown metro")]
    fn out_of_range_segment_panics() {
        RoadGraph::build(2, &[seg(0, 5, 1.0)]);
    }

    #[test]
    fn caller_workspace_matches_shared_lock_path() {
        let g = graph();
        let mut ws = SpWorkspace::new();
        for from in 0..5 {
            for to in 0..5 {
                assert_eq!(
                    g.shortest_path_with(&mut ws, from, to),
                    g.shortest_path(from, to),
                    "({from}, {to})"
                );
            }
        }
    }

    #[test]
    fn cached_routes_match_uncached_in_both_directions() {
        let g = graph();
        let mut ws = SpWorkspace::new();
        let direct = g.route_with_geometry(0, 2).unwrap();
        assert_eq!(g.route_cached(&mut ws, 0, 2).unwrap(), direct);
        // Reverse orientation comes from the same cache entry, reversed.
        let (p, km, geom) = g.route_cached(&mut ws, 2, 0).unwrap();
        assert_eq!(p, vec![2, 1, 0]);
        assert_eq!(km, direct.1);
        assert_eq!(geom.first(), direct.2.last());
        assert_eq!(geom.last(), direct.2.first());
        // Unreachable pairs cache as misses too.
        assert!(g.route_cached(&mut ws, 0, 4).is_none());
        assert!(g.route_cached(&mut ws, 4, 0).is_none());
    }

    #[test]
    fn parallel_edges_use_first_loaded_geometry() {
        // Two edges between the same metros; the old adjacency scan found
        // the first-loaded one, and the edge map must too.
        let mut s1 = seg(0, 1, 10.0);
        s1.path = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)];
        let s2 = seg(0, 1, 7.0);
        let g = RoadGraph::build(2, &[s1, s2]);
        let geom = g.path_geometry(&[0, 1]).unwrap();
        assert_eq!(geom[1], GeoPoint::new(1.0, 1.0));
    }
}
