//! Snapshot validation: the pre-pass between raw source snapshots and the
//! build pipeline.
//!
//! Real snapshots of the paper's nine sources are routinely broken —
//! truncated rows, NaN coordinates, dangling foreign keys, duplicate ids,
//! whole feeds missing. [`validate`] screens a [`SnapshotSet`] against a
//! [`BuildPolicy`] *before* any table is loaded, so the build proper
//! ([`crate::build`]) only ever sees records that satisfy its invariants
//! (road endpoints in range, parallel arrays aligned, coordinates finite).
//!
//! Design constraints, in priority order:
//!
//! 1. **Clean input is untouched.** Every screened source comes back as
//!    `Cow::Borrowed` when nothing was quarantined, so a clean build reads
//!    the exact same memory it always did and the output stays
//!    byte-identical to a pre-validation build.
//! 2. **Deterministic.** Screening is a serial pass in a fixed source
//!    order; quarantine order is input order and never depends on
//!    `IGDB_THREADS`.
//! 3. **Conservative.** A record is quarantined only for defects that
//!    cannot occur in well-formed data (verified against the synthetic
//!    emitters and the real sources' schemas) — never for conditions the
//!    build already tolerates, like a city label that fails to resolve.
//!
//! Quarantining a Natural Earth place is special: metro ids are indexes
//! into that list, so every survivor shifts down and the road-segment
//! endpoints and geocode entries that reference them are rewritten through
//! an old→new remap (references to a quarantined place are themselves
//! quarantined as dangling).

use std::borrow::Cow;
use std::collections::HashSet;

use igdb_fault::{
    BuildError, BuildPolicy, BuildReport, Quarantine, RecordError, SourceFailure, SourceHealth,
    SourceId,
};
use igdb_geo::GeoPoint;
use igdb_net::{Asn, Prefix};
use igdb_synth::naming::HoihoRule;
use igdb_synth::sources::{
    AsRankEntry, AtlasLink, AtlasNode, BgpPrefixRecord, EuroIxEntry, HeExchange,
    NaturalEarthPlace, PchIxp, PdbFacility, PdbIx, PdbNetFac, PdbNetIx, PdbNetwork, RdnsRecord,
    RipeAnchorRecord, RipeTraceroute, RoadSegment, SnapshotSet, TelegeoCableRecord,
};

/// A [`SnapshotSet`] after screening: each source is either the original
/// slice (clean) or an owned filtered copy (faults removed). The build
/// pipeline consumes this and may assume every record is well-formed.
#[derive(Debug)]
pub struct CleanSnapshots<'a> {
    pub as_of_date: &'a str,
    pub atlas_nodes: Cow<'a, [AtlasNode]>,
    pub atlas_links: Cow<'a, [AtlasLink]>,
    pub pdb_facilities: Cow<'a, [PdbFacility]>,
    pub pdb_networks: Cow<'a, [PdbNetwork]>,
    pub pdb_netfac: Cow<'a, [PdbNetFac]>,
    pub pdb_ix: Cow<'a, [PdbIx]>,
    pub pdb_netix: Cow<'a, [PdbNetIx]>,
    pub pch_ixps: Cow<'a, [PchIxp]>,
    pub he_exchanges: Cow<'a, [HeExchange]>,
    pub euroix: Cow<'a, [EuroIxEntry]>,
    pub rdns: Cow<'a, [RdnsRecord]>,
    pub asrank_entries: Cow<'a, [AsRankEntry]>,
    pub asrank_links: Cow<'a, [(Asn, Asn)]>,
    pub ripe_anchors: Cow<'a, [RipeAnchorRecord]>,
    pub ripe_traceroutes: Cow<'a, [RipeTraceroute]>,
    pub natural_earth: Cow<'a, [NaturalEarthPlace]>,
    pub roads: Cow<'a, [RoadSegment]>,
    pub telegeo: Cow<'a, [TelegeoCableRecord]>,
    pub bgp_prefixes: Cow<'a, [BgpPrefixRecord]>,
    pub anycast_prefixes: Cow<'a, [Prefix]>,
    pub hoiho_rules: Cow<'a, [HoihoRule]>,
    pub geo_codes: Cow<'a, [(String, usize)]>,
}

impl CleanSnapshots<'_> {
    /// True if screening changed any source (quarantined records, FK
    /// cascades). When false, every field still borrows the original set —
    /// the build consumed exactly its input, and an owned caller can reuse
    /// the input set instead of materializing a copy.
    pub fn is_modified(&self) -> bool {
        fn owned<T: Clone>(c: &Cow<'_, [T]>) -> bool {
            matches!(c, Cow::Owned(_))
        }
        owned(&self.atlas_nodes)
            || owned(&self.atlas_links)
            || owned(&self.pdb_facilities)
            || owned(&self.pdb_networks)
            || owned(&self.pdb_netfac)
            || owned(&self.pdb_ix)
            || owned(&self.pdb_netix)
            || owned(&self.pch_ixps)
            || owned(&self.he_exchanges)
            || owned(&self.euroix)
            || owned(&self.rdns)
            || owned(&self.asrank_entries)
            || owned(&self.asrank_links)
            || owned(&self.ripe_anchors)
            || owned(&self.ripe_traceroutes)
            || owned(&self.natural_earth)
            || owned(&self.roads)
            || owned(&self.telegeo)
            || owned(&self.bgp_prefixes)
            || owned(&self.anycast_prefixes)
            || owned(&self.hoiho_rules)
            || owned(&self.geo_codes)
    }

    /// Materializes the screened view as an owned [`SnapshotSet`] — the
    /// exact record set the build consumed, with every quarantined record
    /// already removed. [`crate::delta::diff_snapshots`] diffs against
    /// this, so FK cascades (links whose endpoints were screened out,
    /// memberships of dropped sources) are resolved by the validator
    /// before any delta math runs.
    pub fn to_snapshot_set(&self) -> SnapshotSet {
        SnapshotSet {
            as_of_date: self.as_of_date.to_string(),
            atlas_nodes: self.atlas_nodes.to_vec(),
            atlas_links: self.atlas_links.to_vec(),
            pdb_facilities: self.pdb_facilities.to_vec(),
            pdb_networks: self.pdb_networks.to_vec(),
            pdb_netfac: self.pdb_netfac.to_vec(),
            pdb_ix: self.pdb_ix.to_vec(),
            pdb_netix: self.pdb_netix.to_vec(),
            pch_ixps: self.pch_ixps.to_vec(),
            he_exchanges: self.he_exchanges.to_vec(),
            euroix: self.euroix.to_vec(),
            rdns: self.rdns.to_vec(),
            asrank_entries: self.asrank_entries.to_vec(),
            asrank_links: self.asrank_links.to_vec(),
            ripe_anchors: self.ripe_anchors.to_vec(),
            ripe_traceroutes: self.ripe_traceroutes.to_vec(),
            natural_earth: self.natural_earth.to_vec(),
            roads: self.roads.to_vec(),
            telegeo: self.telegeo.to_vec(),
            bgp_prefixes: self.bgp_prefixes.to_vec(),
            anycast_prefixes: self.anycast_prefixes.to_vec(),
            hoiho_rules: self.hoiho_rules.to_vec(),
            geo_codes: self.geo_codes.to_vec(),
        }
    }
}

/// Rejects non-finite and out-of-WGS-84 coordinates. Clean emitters go
/// through `GeoPoint::new`, which normalizes into exactly these ranges, so
/// this never fires on well-formed data.
fn screen_point(
    p: &GeoPoint,
    lat_field: &'static str,
    lon_field: &'static str,
) -> Result<(), RecordError> {
    if !p.lat.is_finite() {
        return Err(RecordError::NonFiniteCoordinate { field: lat_field });
    }
    if !p.lon.is_finite() {
        return Err(RecordError::NonFiniteCoordinate { field: lon_field });
    }
    if !(-90.0..=90.0).contains(&p.lat) {
        return Err(RecordError::OutOfRangeCoordinate {
            field: lat_field,
            value: p.lat,
        });
    }
    if !(-180.0..=180.0).contains(&p.lon) {
        return Err(RecordError::OutOfRangeCoordinate {
            field: lon_field,
            value: p.lon,
        });
    }
    Ok(())
}

/// Accumulates per-source health and the quarantine while applying policy.
struct Screener<'p> {
    policy: &'p BuildPolicy,
    quarantine: Quarantine,
    healths: Vec<SourceHealth>,
}

impl<'p> Screener<'p> {
    fn new(policy: &'p BuildPolicy) -> Self {
        Self {
            policy,
            quarantine: Quarantine::new(),
            healths: Vec::with_capacity(SourceId::ALL.len()),
        }
    }

    /// Screens one source: runs `check` over every record in input order,
    /// quarantines failures, applies the policy (fail fast / drop source /
    /// required-source errors), records health, and returns the surviving
    /// records — borrowed when nothing was removed.
    fn screen<'a, T: Clone>(
        &mut self,
        source: SourceId,
        rows: &'a [T],
        key_of: impl Fn(&T) -> Option<String>,
        mut check: impl FnMut(&T) -> Result<(), RecordError>,
    ) -> Result<Cow<'a, [T]>, BuildError> {
        let mut bad: Vec<(usize, RecordError)> = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            if let Err(error) = check(r) {
                if self.policy.fail_fast {
                    return Err(BuildError::FaultUnderStrictPolicy {
                        source,
                        index: i,
                        error,
                    });
                }
                bad.push((i, error));
            }
        }
        if source.required() && rows.is_empty() {
            return Err(BuildError::RequiredSourceUnusable {
                source,
                failure: SourceFailure::Empty,
            });
        }
        let threshold = self.policy.threshold_for(source);
        let over = !rows.is_empty() && bad.len() as f64 / rows.len() as f64 > threshold;
        if over && source.required() {
            return Err(BuildError::RequiredSourceUnusable {
                source,
                failure: SourceFailure::ExcessiveBadRows {
                    bad: bad.len(),
                    rows: rows.len(),
                    threshold,
                },
            });
        }
        let bad_set: HashSet<usize> = bad.iter().map(|&(i, _)| i).collect();
        let n_bad = bad.len();
        for (i, error) in bad {
            self.quarantine.push(source, i, key_of(&rows[i]), error);
        }
        // Per-source conservation counters: rows_in = accepted + quarantined
        // for every non-dropped source, asserted end-to-end by
        // tests/observability.rs and `BuildReport::crosscheck`.
        igdb_obs::counter("ingest.rows_in", source.name(), rows.len() as u64);
        igdb_obs::counter("ingest.rows_quarantined", source.name(), n_bad as u64);
        if over {
            igdb_obs::counter("ingest.rows_accepted", source.name(), 0);
            igdb_obs::counter("ingest.sources_dropped", "", 1);
            self.healths.push(SourceHealth {
                source,
                rows_in: rows.len(),
                rows_accepted: 0,
                rows_quarantined: n_bad,
                dropped: true,
            });
            return Ok(Cow::Owned(Vec::new()));
        }
        igdb_obs::counter(
            "ingest.rows_accepted",
            source.name(),
            (rows.len() - n_bad) as u64,
        );
        self.healths.push(SourceHealth {
            source,
            rows_in: rows.len(),
            rows_accepted: rows.len() - n_bad,
            rows_quarantined: n_bad,
            dropped: false,
        });
        Ok(if n_bad == 0 {
            Cow::Borrowed(rows)
        } else {
            Cow::Owned(
                rows.iter()
                    .enumerate()
                    .filter(|(i, _)| !bad_set.contains(i))
                    .map(|(_, r)| r.clone())
                    .collect(),
            )
        })
    }
}

/// Screens every source of `snaps` in the fixed [`SourceId::ALL`] order.
/// Returns the surviving records plus the per-source accounting, or a
/// typed error when a required source is unusable (or, under a fail-fast
/// policy, on the first fault anywhere).
pub fn validate<'a>(
    snaps: &'a SnapshotSet,
    policy: &BuildPolicy,
) -> Result<(CleanSnapshots<'a>, BuildReport), BuildError> {
    let _span = igdb_obs::span("validate");
    let mut s = Screener::new(policy);

    // Natural Earth first: everything else stands on metro ids, which are
    // indexes into this list.
    let natural_earth = s.screen(
        SourceId::NaturalEarth,
        &snaps.natural_earth,
        |p| Some(p.name.clone()),
        |p| screen_point(&p.loc, "lat", "lon"),
    )?;
    // Old→new metro-id remap across the quarantined places. Clean input
    // yields the identity, and the rewrite below is skipped entirely.
    let identity = natural_earth.len() == snaps.natural_earth.len();
    let remap: Vec<Option<usize>> = {
        let mut next = 0usize;
        (0..snaps.natural_earth.len())
            .map(|i| {
                if s.quarantine.contains(SourceId::NaturalEarth, i) {
                    None
                } else {
                    next += 1;
                    Some(next - 1)
                }
            })
            .collect()
    };
    let lookup = |idx: usize| remap.get(idx).copied().flatten();

    let roads = s.screen(
        SourceId::Roads,
        &snaps.roads,
        |seg| Some(format!("{}-{}", seg.a, seg.b)),
        |seg| {
            if lookup(seg.a).is_none() {
                return Err(RecordError::DanglingRef {
                    field: "a",
                    key: seg.a.to_string(),
                });
            }
            if lookup(seg.b).is_none() {
                return Err(RecordError::DanglingRef {
                    field: "b",
                    key: seg.b.to_string(),
                });
            }
            if !seg.length_km.is_finite() || seg.length_km <= 0.0 {
                return Err(RecordError::MalformedValue {
                    field: "length_km",
                    detail: seg.length_km.to_string(),
                });
            }
            for p in &seg.path {
                screen_point(p, "path.lat", "path.lon")?;
            }
            Ok(())
        },
    )?;
    let roads = if identity {
        roads
    } else {
        Cow::Owned(
            roads
                .iter()
                .map(|seg| {
                    let mut seg = seg.clone();
                    seg.a = lookup(seg.a).expect("screened endpoint");
                    seg.b = lookup(seg.b).expect("screened endpoint");
                    seg
                })
                .collect(),
        )
    };

    let geo_codes = s.screen(
        SourceId::GeoCodes,
        &snaps.geo_codes,
        |(code, _)| Some(code.clone()),
        |&(_, cid)| {
            if lookup(cid).is_none() {
                return Err(RecordError::DanglingRef {
                    field: "city",
                    key: cid.to_string(),
                });
            }
            Ok(())
        },
    )?;
    let geo_codes = if identity {
        geo_codes
    } else {
        Cow::Owned(
            geo_codes
                .iter()
                .map(|(code, cid)| (code.clone(), lookup(*cid).expect("screened geocode")))
                .collect(),
        )
    };

    let atlas_nodes = s.screen(
        SourceId::AtlasNodes,
        &snaps.atlas_nodes,
        |n| Some(n.node_name.to_string()),
        |n| screen_point(&n.loc, "lat", "lon"),
    )?;
    let node_names: HashSet<&str> = atlas_nodes.iter().map(|n| n.node_name.as_str()).collect();
    let atlas_links = s.screen(
        SourceId::AtlasLinks,
        &snaps.atlas_links,
        |l| Some(format!("{}→{}", l.from_node, l.to_node)),
        |l| {
            for name in [&l.from_node, &l.to_node] {
                if !node_names.contains(name.as_str()) {
                    return Err(RecordError::DanglingRef {
                        field: "node",
                        key: name.to_string(),
                    });
                }
            }
            Ok(())
        },
    )?;
    drop(node_names);

    let mut seen_fac: HashSet<u32> = HashSet::new();
    let pdb_facilities = s.screen(
        SourceId::PdbFacilities,
        &snaps.pdb_facilities,
        |f| Some(f.fac_id.to_string()),
        |f| {
            screen_point(&f.loc, "lat", "lon")?;
            if !seen_fac.insert(f.fac_id) {
                return Err(RecordError::DuplicateId {
                    field: "fac_id",
                    key: f.fac_id.to_string(),
                });
            }
            Ok(())
        },
    )?;
    let fac_ids: HashSet<u32> = pdb_facilities.iter().map(|f| f.fac_id).collect();

    let mut seen_net: HashSet<u32> = HashSet::new();
    let pdb_networks = s.screen(
        SourceId::PdbNetworks,
        &snaps.pdb_networks,
        |n| Some(n.net_id.to_string()),
        |n| {
            if !seen_net.insert(n.net_id) {
                return Err(RecordError::DuplicateId {
                    field: "net_id",
                    key: n.net_id.to_string(),
                });
            }
            Ok(())
        },
    )?;
    let net_ids: HashSet<u32> = pdb_networks.iter().map(|n| n.net_id).collect();

    let pdb_netfac = s.screen(
        SourceId::PdbNetfac,
        &snaps.pdb_netfac,
        |nf| Some(format!("net {} @ fac {}", nf.net_id, nf.fac_id)),
        |nf| {
            if !net_ids.contains(&nf.net_id) {
                return Err(RecordError::DanglingRef {
                    field: "net_id",
                    key: nf.net_id.to_string(),
                });
            }
            if !fac_ids.contains(&nf.fac_id) {
                return Err(RecordError::DanglingRef {
                    field: "fac_id",
                    key: nf.fac_id.to_string(),
                });
            }
            Ok(())
        },
    )?;

    let mut seen_ix: HashSet<u32> = HashSet::new();
    let pdb_ix = s.screen(
        SourceId::PdbIx,
        &snaps.pdb_ix,
        |ix| Some(ix.ix_id.to_string()),
        |ix| {
            if !seen_ix.insert(ix.ix_id) {
                return Err(RecordError::DuplicateId {
                    field: "ix_id",
                    key: ix.ix_id.to_string(),
                });
            }
            Ok(())
        },
    )?;
    let ix_ids: HashSet<u32> = pdb_ix.iter().map(|ix| ix.ix_id).collect();

    let pdb_netix = s.screen(
        SourceId::PdbNetix,
        &snaps.pdb_netix,
        |nix| Some(format!("net {} @ ix {}", nix.net_id, nix.ix_id)),
        |nix| {
            if !net_ids.contains(&nix.net_id) {
                return Err(RecordError::DanglingRef {
                    field: "net_id",
                    key: nix.net_id.to_string(),
                });
            }
            if !ix_ids.contains(&nix.ix_id) {
                return Err(RecordError::DanglingRef {
                    field: "ix_id",
                    key: nix.ix_id.to_string(),
                });
            }
            Ok(())
        },
    )?;

    let pch_ixps = s.screen(
        SourceId::PchIxps,
        &snaps.pch_ixps,
        |x| Some(x.name.clone()),
        |x| {
            if x.member_asns.len() != x.member_orgs.len() {
                return Err(RecordError::Truncated {
                    detail: format!(
                        "{} member ASNs vs {} member orgs",
                        x.member_asns.len(),
                        x.member_orgs.len()
                    ),
                });
            }
            Ok(())
        },
    )?;

    // Sources with self-contained typed records: nothing to screen beyond
    // presence (an empty optional source degrades, never errors).
    let he_exchanges = s.screen(SourceId::HeExchanges, &snaps.he_exchanges, |x| {
        Some(x.name.clone())
    }, |_| Ok(()))?;
    let euroix = s.screen(SourceId::EuroIx, &snaps.euroix, |x| Some(x.ix_name.clone()), |_| {
        Ok(())
    })?;
    let rdns = s.screen(SourceId::Rdns, &snaps.rdns, |r| Some(r.ip.to_string()), |_| Ok(()))?;
    let asrank_entries = s.screen(
        SourceId::AsRankEntries,
        &snaps.asrank_entries,
        |e| Some(e.asn.to_string()),
        |_| Ok(()),
    )?;
    let asrank_links = s.screen(
        SourceId::AsRankLinks,
        &snaps.asrank_links,
        |&(a, b)| Some(format!("{a}→{b}")),
        |_| Ok(()),
    )?;

    let mut seen_anchor: HashSet<u32> = HashSet::new();
    let ripe_anchors = s.screen(
        SourceId::RipeAnchors,
        &snaps.ripe_anchors,
        |a| Some(a.id.to_string()),
        |a| {
            screen_point(&a.loc, "lat", "lon")?;
            if !seen_anchor.insert(a.id) {
                return Err(RecordError::DuplicateId {
                    field: "id",
                    key: a.id.to_string(),
                });
            }
            Ok(())
        },
    )?;
    let anchor_ids: HashSet<u32> = ripe_anchors.iter().map(|a| a.id).collect();

    let ripe_traceroutes = s.screen(
        SourceId::RipeTraceroutes,
        &snaps.ripe_traceroutes,
        |t| Some(format!("{}→{}", t.src_anchor, t.dst_anchor)),
        |t| {
            if t.hops.is_empty() {
                return Err(RecordError::Truncated {
                    detail: "no hops".to_string(),
                });
            }
            for anchor in [t.src_anchor, t.dst_anchor] {
                if !anchor_ids.contains(&anchor) {
                    return Err(RecordError::DanglingRef {
                        field: "anchor",
                        key: anchor.to_string(),
                    });
                }
            }
            for h in &t.hops {
                if !h.rtt_ms.is_finite() || h.rtt_ms < 0.0 {
                    return Err(RecordError::MalformedValue {
                        field: "rtt_ms",
                        detail: h.rtt_ms.to_string(),
                    });
                }
            }
            Ok(())
        },
    )?;

    let mut seen_cable: HashSet<usize> = HashSet::new();
    let telegeo = s.screen(
        SourceId::Telegeo,
        &snaps.telegeo,
        |c| Some(c.cable_id.to_string()),
        |c| {
            if !seen_cable.insert(c.cable_id) {
                return Err(RecordError::DuplicateId {
                    field: "cable_id",
                    key: c.cable_id.to_string(),
                });
            }
            for (_, _, loc) in &c.landings {
                screen_point(loc, "landing.lat", "landing.lon")?;
            }
            for seg in &c.segments {
                for p in seg {
                    screen_point(p, "segment.lat", "segment.lon")?;
                }
            }
            Ok(())
        },
    )?;

    let bgp_prefixes = s.screen(
        SourceId::BgpPrefixes,
        &snaps.bgp_prefixes,
        |r| Some(r.prefix.to_string()),
        |_| Ok(()),
    )?;
    let anycast_prefixes = s.screen(
        SourceId::AnycastPrefixes,
        &snaps.anycast_prefixes,
        |p| Some(p.to_string()),
        |_| Ok(()),
    )?;
    let hoiho_rules = s.screen(
        SourceId::HoihoRules,
        &snaps.hoiho_rules,
        |r| Some(r.pattern.clone()),
        |_| Ok(()),
    )?;

    let report = BuildReport::new(s.healths, s.quarantine);
    let clean = CleanSnapshots {
        as_of_date: &snaps.as_of_date,
        atlas_nodes,
        atlas_links,
        pdb_facilities,
        pdb_networks,
        pdb_netfac,
        pdb_ix,
        pdb_netix,
        pch_ixps,
        he_exchanges,
        euroix,
        rdns,
        asrank_entries,
        asrank_links,
        ripe_anchors,
        ripe_traceroutes,
        natural_earth,
        roads,
        telegeo,
        bgp_prefixes,
        anycast_prefixes,
        hoiho_rules,
        geo_codes,
    };
    Ok((clean, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn snaps() -> SnapshotSet {
        let world = World::generate(WorldConfig::tiny());
        emit_snapshots(&world, "2022-05-03", 50)
    }

    #[test]
    fn clean_input_is_borrowed_and_clean() {
        let raw = snaps();
        let (clean, report) = validate(&raw, &BuildPolicy::lenient()).unwrap();
        assert!(report.is_clean(), "clean snapshots quarantined:\n{report}");
        assert!(matches!(clean.natural_earth, Cow::Borrowed(_)));
        assert!(matches!(clean.roads, Cow::Borrowed(_)));
        assert!(matches!(clean.atlas_nodes, Cow::Borrowed(_)));
        assert!(matches!(clean.ripe_traceroutes, Cow::Borrowed(_)));
        for h in report.sources() {
            assert_eq!(h.rows_accepted + h.rows_quarantined, h.rows_in);
        }
        // Strict policy accepts the same clean input.
        validate(&raw, &BuildPolicy::strict()).unwrap();
    }

    #[test]
    fn nan_coordinate_is_quarantined_with_provenance() {
        let mut raw = snaps();
        raw.atlas_nodes[3].loc.lat = f64::NAN;
        let (clean, report) = validate(&raw, &BuildPolicy::lenient()).unwrap();
        assert_eq!(clean.atlas_nodes.len(), raw.atlas_nodes.len() - 1);
        assert!(report.quarantine().contains(SourceId::AtlasNodes, 3));
        assert_eq!(report.health(SourceId::AtlasNodes).rows_quarantined, 1);
        // Strict policy turns the same fault into a typed error.
        let err = validate(&raw, &BuildPolicy::strict()).unwrap_err();
        assert!(matches!(
            err,
            BuildError::FaultUnderStrictPolicy {
                source: SourceId::AtlasNodes,
                index: 3,
                ..
            }
        ));
    }

    #[test]
    fn quarantined_metro_remaps_roads_and_geocodes() {
        let mut raw = snaps();
        raw.natural_earth[0].loc.lon = f64::INFINITY;
        let (clean, report) = validate(&raw, &BuildPolicy::lenient()).unwrap();
        assert_eq!(clean.natural_earth.len(), raw.natural_earth.len() - 1);
        assert!(report.quarantine().contains(SourceId::NaturalEarth, 0));
        // Every surviving road endpoint and geocode is in range after the
        // remap, and references the same place it did before.
        for seg in clean.roads.iter() {
            assert!(seg.a < clean.natural_earth.len());
            assert!(seg.b < clean.natural_earth.len());
        }
        for &(_, cid) in clean.geo_codes.iter() {
            assert!(cid < clean.natural_earth.len());
        }
        let raw_cid: std::collections::HashMap<&str, usize> = raw
            .geo_codes
            .iter()
            .map(|(c, i)| (c.as_str(), *i))
            .collect();
        for (code, new_cid) in clean.geo_codes.iter() {
            let old_cid = raw_cid[code.as_str()];
            assert_eq!(
                raw.natural_earth[old_cid].name,
                clean.natural_earth[*new_cid].name
            );
        }
    }

    #[test]
    fn empty_required_source_is_a_typed_error() {
        let mut raw = snaps();
        raw.natural_earth.clear();
        let err = validate(&raw, &BuildPolicy::lenient()).unwrap_err();
        assert_eq!(
            err,
            BuildError::RequiredSourceUnusable {
                source: SourceId::NaturalEarth,
                failure: SourceFailure::Empty,
            }
        );
    }

    #[test]
    fn excessively_bad_optional_source_is_dropped() {
        let mut raw = snaps();
        for nf in raw.pdb_netfac.iter_mut() {
            nf.fac_id = 9_000_000; // dangle almost every row
        }
        let (clean, report) = validate(&raw, &BuildPolicy::lenient()).unwrap();
        assert!(clean.pdb_netfac.is_empty());
        let h = report.health(SourceId::PdbNetfac);
        assert!(h.dropped);
        assert_eq!(h.rows_accepted, 0);
        assert!(report.dropped_sources().contains(&SourceId::PdbNetfac));
    }

    #[test]
    fn mismatched_pch_member_arrays_are_truncated_records() {
        let mut raw = snaps();
        raw.pch_ixps[0].member_orgs.pop();
        let (_, report) = validate(&raw, &BuildPolicy::lenient()).unwrap();
        assert!(report.quarantine().contains(SourceId::PchIxps, 0));
        assert!(matches!(
            report.quarantine().records()[0].error,
            RecordError::Truncated { .. }
        ));
    }
}
