//! Constraint-based latency geolocation (the "RIPE geolocation services"
//! role of §4.5).
//!
//! The paper geolocates 7 of the Madrid→Berlin hops with Hoiho "and the
//! other 4 IP addresses with RIPE geolocation services" — latency-based
//! multilateration. We implement the classic CBG idea over the anchor
//! mesh: every observation of an address at RTT *r* from a probe with a
//! known location constrains the address to a disk of radius
//! `r/2 × fiber-speed` around that probe; the address's metro is the
//! candidate satisfying every constraint with the least total slack.

use std::collections::HashMap;

use igdb_measure::FIBER_KM_PER_MS;
use igdb_net::Ip4;

use crate::build::Igdb;

/// One latency constraint: observed RTT from a probe at a known metro.
#[derive(Clone, Copy, Debug)]
struct Constraint {
    probe_metro: usize,
    rtt_ms: f64,
}

/// A CBG estimate for one address.
#[derive(Clone, Debug)]
pub struct CbgEstimate {
    pub ip: Ip4,
    pub metro: usize,
    /// Number of probes constraining the estimate.
    pub constraints: usize,
    /// Radius of the tightest constraint disk, km (the estimate cannot be
    /// more precise than this).
    pub tightest_km: f64,
}

/// Runs CBG over every observed address that lacks a metro. Returns
/// estimates sorted by address. Only addresses with at least
/// `min_constraints` observing probes are estimated.
pub fn geolocate_unlocated(igdb: &Igdb, min_constraints: usize) -> Vec<CbgEstimate> {
    let _span = igdb_obs::span("analysis.cbg");
    // Gather constraints: for each (src probe, hop) pair the hop's RTT
    // bounds its distance from the probe.
    let mut constraints: HashMap<Ip4, Vec<Constraint>> = HashMap::new();
    for tr in igdb.traces() {
        let Some(src) = igdb.probes.get(&tr.src_anchor) else {
            continue;
        };
        for h in &tr.hops {
            let Some(ip) = h.ip else { continue };
            if h.rtt_ms <= 0.0 {
                continue;
            }
            // Keep the *minimum* observed RTT per (probe metro, ip): real
            // CBG uses min-RTT to shed queueing noise.
            let list = constraints.entry(ip).or_default();
            match list.iter_mut().find(|c| c.probe_metro == src.metro) {
                Some(c) => c.rtt_ms = c.rtt_ms.min(h.rtt_ms),
                None => list.push(Constraint {
                    probe_metro: src.metro,
                    rtt_ms: h.rtt_ms,
                }),
            }
        }
    }

    let mut out = Vec::new();
    for (&ip, cons) in &constraints {
        // Skip already-located addresses (Hoiho / IXP prefix wins) and
        // anycast addresses (no single location exists, §5).
        if igdb
            .ip_info
            .get(&ip)
            .map(|i| i.metro.is_some() || i.anycast)
            .unwrap_or(false)
        {
            continue;
        }
        if cons.len() < min_constraints {
            continue;
        }
        // Candidate metros: those inside the tightest disk.
        let tightest = cons
            .iter()
            .min_by(|a, b| a.rtt_ms.partial_cmp(&b.rtt_ms).unwrap())
            .expect("non-empty constraints");
        let tight_km = tightest.rtt_ms / 2.0 * FIBER_KM_PER_MS;
        let centre = igdb.metros.metro(tightest.probe_metro).loc;
        let candidates = igdb.metros.metros_within(&centre, tight_km);
        if candidates.is_empty() {
            continue;
        }
        // Score each candidate: total violation across all constraint
        // disks (0 = inside every disk), then total slack as tiebreak.
        let mut best: Option<(usize, f64, f64)> = None; // (metro, violation, slack)
        for &(metro, _) in &candidates {
            let mloc = igdb.metros.metro(metro).loc;
            let mut violation = 0.0;
            let mut slack = 0.0;
            for c in cons {
                let limit = c.rtt_ms / 2.0 * FIBER_KM_PER_MS;
                let d = igdb_geo::haversine_km(&mloc, &igdb.metros.metro(c.probe_metro).loc);
                if d > limit {
                    violation += d - limit;
                } else {
                    slack += limit - d;
                }
            }
            let better = match best {
                None => true,
                Some((_, bv, bs)) => {
                    violation < bv - 1e-9 || (violation <= bv + 1e-9 && slack < bs)
                }
            };
            if better {
                best = Some((metro, violation, slack));
            }
        }
        if let Some((metro, _, _)) = best {
            out.push(CbgEstimate {
                ip,
                metro,
                constraints: cons.len(),
                tightest_km: tight_km,
            });
        }
    }
    out.sort_by_key(|e| e.ip);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 1200);
        (world, Igdb::build(&snaps))
    }

    #[test]
    fn cbg_estimates_exist_for_multiply_observed_addresses() {
        let (_, igdb) = built();
        let estimates = geolocate_unlocated(&igdb, 2);
        assert!(
            estimates.len() > 20,
            "only {} CBG estimates",
            estimates.len()
        );
        for e in &estimates {
            assert!(e.constraints >= 2);
            assert!(e.tightest_km > 0.0);
        }
    }

    #[test]
    fn cbg_accuracy_scales_with_constraint_tightness() {
        // CBG's error is bounded by its tightest constraint disk — check
        // that the estimate respects that bound against ground truth.
        let (world, igdb) = built();
        let estimates = geolocate_unlocated(&igdb, 2);
        let mut checked = 0;
        let mut within_bound = 0;
        for e in &estimates {
            let Some(truth) = world.truth_city_of_ip(e.ip) else {
                continue;
            };
            checked += 1;
            let err = igdb_geo::haversine_km(
                &world.cities[truth].loc,
                &igdb.metros.metro(e.metro).loc,
            );
            // The true location is inside the tightest disk (RTT includes
            // the full return path plus processing, so the bound is
            // generous); the estimate should be too, putting the error
            // within two disk radii.
            if err <= 2.0 * e.tightest_km + 50.0 {
                within_bound += 1;
            }
        }
        assert!(checked > 20);
        assert!(
            within_bound * 100 >= checked * 90,
            "{within_bound}/{checked} within the CBG bound"
        );
    }

    #[test]
    fn cbg_never_overrides_existing_locations() {
        let (_, igdb) = built();
        let estimates = geolocate_unlocated(&igdb, 2);
        for e in &estimates {
            let info = igdb.ip_info.get(&e.ip).expect("observed address");
            assert!(info.metro.is_none(), "CBG re-located a seeded address");
        }
    }

    #[test]
    fn min_constraints_filter_applies() {
        let (_, igdb) = built();
        let loose = geolocate_unlocated(&igdb, 1);
        let strict = geolocate_unlocated(&igdb, 4);
        assert!(strict.len() <= loose.len());
        for e in &strict {
            assert!(e.constraints >= 4);
        }
    }
}
