//! Figure 8 — improving the Rocketfuel representation with right-of-way
//! constraints.
//!
//! Rocketfuel drew logical connectivity as straight lines, overstating
//! physical path diversity. iGDB maps each logical metro pair onto inferred
//! physical paths and measures the *corridor collapse*: how many distinct
//! physical corridors actually carry the many logical edges ("the implied
//! diversity of paths from central California to the east actually proceed
//! along a single physical path").

use std::collections::BTreeSet;

use igdb_synth::intertubes::RocketfuelMap;

use crate::build::Igdb;

/// One logical edge mapped onto physical infrastructure.
#[derive(Clone, Debug)]
pub struct MappedEdge {
    pub from_metro: usize,
    pub to_metro: usize,
    /// The physical corridor (metro sequence), if the endpoints are
    /// physically connected in iGDB.
    pub corridor: Option<Vec<usize>>,
    /// Straight-line length vs corridor length (≥ 1 when mapped).
    pub stretch: Option<f64>,
}

/// The Figure 8 report.
#[derive(Clone, Debug)]
pub struct RocketfuelReport {
    pub asn: igdb_net::Asn,
    pub metros: usize,
    pub logical_edges: usize,
    pub mapped_edges: usize,
    /// Distinct physical corridor segments (metro pairs) used by all
    /// mapped edges.
    pub distinct_corridor_segments: usize,
    /// logical edges per distinct corridor segment — > 1 means the
    /// straight-line map overstated diversity.
    pub collapse_factor: f64,
    pub edges: Vec<MappedEdge>,
}

/// Maps a Rocketfuel-style logical map onto iGDB physical corridors.
pub fn remap(igdb: &Igdb, map: &RocketfuelMap) -> RocketfuelReport {
    let _span = igdb_obs::span("analysis.rocketfuel");
    igdb_obs::counter("analysis.queries", "rocketfuel", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "rocketfuel");
    // Shared graph + corridor cache: logical edges repeat metro pairs, and
    // other analyses (physpath, risk) route over the same corridors.
    let graph = igdb.phys_graph();
    let mut ws = crate::spath::SpWorkspace::for_engine(graph.engine());
    let mut edges = Vec::with_capacity(map.edges.len());
    let mut segments: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut mapped = 0usize;
    for e in &map.edges {
        let corridor = graph.shortest_path_cached(&mut ws, e.from_city, e.to_city);
        let mapped_edge = match corridor {
            Some((path, km)) => {
                mapped += 1;
                for w in path.windows(2) {
                    segments.insert((w[0].min(w[1]), w[0].max(w[1])));
                }
                let straight = igdb_geo::haversine_km(
                    &igdb.metros.metro(e.from_city).loc,
                    &igdb.metros.metro(e.to_city).loc,
                );
                MappedEdge {
                    from_metro: e.from_city,
                    to_metro: e.to_city,
                    stretch: if straight > 0.0 { Some(km / straight) } else { None },
                    corridor: Some(path),
                }
            }
            None => MappedEdge {
                from_metro: e.from_city,
                to_metro: e.to_city,
                corridor: None,
                stretch: None,
            },
        };
        edges.push(mapped_edge);
    }
    let collapse_factor = if segments.is_empty() {
        0.0
    } else {
        mapped as f64 / segments.len() as f64
    };
    RocketfuelReport {
        asn: map.asn,
        metros: map.metros.len(),
        logical_edges: map.edges.len(),
        mapped_edges: mapped,
        distinct_corridor_segments: segments.len(),
        collapse_factor,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::intertubes::rocketfuel_recreation;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn setup() -> (Igdb, RocketfuelReport) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 100);
        let igdb = Igdb::build(&snaps);
        let map = rocketfuel_recreation(&world);
        let report = remap(&igdb, &map);
        (igdb, report)
    }

    #[test]
    fn most_logical_edges_map_onto_corridors() {
        let (_, report) = setup();
        assert!(report.logical_edges > 10);
        assert!(
            report.mapped_edges * 10 >= report.logical_edges * 7,
            "{}/{} mapped",
            report.mapped_edges,
            report.logical_edges
        );
    }

    #[test]
    fn corridors_collapse_diversity() {
        let (_, report) = setup();
        // The whole point of Figure 8: more logical edges than physical
        // corridors.
        assert!(
            report.collapse_factor > 1.0,
            "collapse factor {} (segments {}, mapped {})",
            report.collapse_factor,
            report.distinct_corridor_segments,
            report.mapped_edges
        );
    }

    #[test]
    fn stretch_at_least_one() {
        let (_, report) = setup();
        for e in &report.edges {
            if let Some(s) = e.stretch {
                assert!(s >= 0.99, "physical corridor shorter than geodesic: {s}");
            }
        }
    }

    #[test]
    fn corridors_connect_the_right_endpoints() {
        let (_, report) = setup();
        for e in &report.edges {
            if let Some(c) = &e.corridor {
                assert_eq!(c.first(), Some(&e.from_metro));
                assert_eq!(c.last(), Some(&e.to_metro));
            }
        }
    }
}
