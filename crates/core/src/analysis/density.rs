//! Figure 10 / appendix — geospatial distribution of physical nodes.
//!
//! "Of the 7,342 city cells in the Voronoi diagram, 3,130 cells have at
//! least one physical node, with most city cells having fewer than 10
//! nodes." This module counts `phys_nodes` per Thiessen cell and derives
//! the CDF series the appendix plots.

use igdb_db::{Aggregate, Query};

use crate::build::Igdb;

/// The density report.
#[derive(Clone, Debug)]
pub struct DensityReport {
    /// Total Thiessen cells (= metros).
    pub total_cells: usize,
    /// Cells with at least one physical node.
    pub occupied_cells: usize,
    /// (metro_id, node count), descending by count.
    pub per_cell: Vec<(usize, usize)>,
    /// CDF over occupied cells: (node_count, fraction of occupied cells
    /// with ≤ node_count nodes), ascending in node_count.
    pub cdf: Vec<(usize, f64)>,
    /// Fraction of occupied cells with fewer than 10 nodes.
    pub under_ten_frac: f64,
}

/// Computes the Figure 10 density distribution.
pub fn node_density(igdb: &Igdb) -> DensityReport {
    let _span = igdb_obs::span("analysis.density");
    let groups = igdb
        .db
        .with_table("phys_nodes", |t| {
            Query::new(t).group_by(vec!["metro_id"], vec![Aggregate::Count])
        })
        .expect("phys_nodes exists")
        .expect("group-by");
    let mut per_cell: Vec<(usize, usize)> = groups
        .into_iter()
        .filter_map(|r| Some((r[0].as_int()? as usize, r[1].as_int()? as usize)))
        .collect();
    per_cell.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let occupied_cells = per_cell.len();
    // CDF.
    let mut counts: Vec<usize> = per_cell.iter().map(|&(_, n)| n).collect();
    counts.sort_unstable();
    let mut cdf = Vec::new();
    let mut i = 0;
    while i < counts.len() {
        let v = counts[i];
        while i < counts.len() && counts[i] == v {
            i += 1;
        }
        cdf.push((v, i as f64 / counts.len() as f64));
    }
    let under_ten = counts.iter().filter(|&&n| n < 10).count();
    DensityReport {
        total_cells: igdb.metros.len(),
        occupied_cells,
        per_cell,
        under_ten_frac: if occupied_cells == 0 {
            0.0
        } else {
            under_ten as f64 / occupied_cells as f64
        },
        cdf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn report() -> DensityReport {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 0);
        node_density(&Igdb::build(&snaps))
    }

    #[test]
    fn occupied_subset_of_total() {
        let r = report();
        assert!(r.occupied_cells > 0);
        assert!(r.occupied_cells <= r.total_cells);
        // The paper's shape: far from all cells hold nodes (3,130/7,342).
        assert!(
            r.occupied_cells * 10 < r.total_cells * 9,
            "{}/{} cells occupied",
            r.occupied_cells,
            r.total_cells
        );
    }

    #[test]
    fn cdf_monotone_and_terminates_at_one() {
        let r = report();
        assert!(!r.cdf.is_empty());
        for w in r.cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((r.cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_cells_hold_few_nodes() {
        let r = report();
        // Paper: "most city cells having fewer than 10 nodes".
        assert!(
            r.under_ten_frac > 0.5,
            "only {} of occupied cells under 10 nodes",
            r.under_ten_frac
        );
    }

    #[test]
    fn per_cell_descending_and_consistent_with_cdf() {
        let r = report();
        for w in r.per_cell.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let total_from_cells: usize = r.per_cell.iter().map(|&(_, n)| n).sum();
        assert!(total_from_cells > 0);
    }
}
