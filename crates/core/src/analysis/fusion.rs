//! §4.5 / Figures 1 & 9 — fusing a real traceroute with physical context.
//!
//! The paper closes the loop on its motivating Madrid→Berlin example: take
//! an anchor-to-anchor traceroute, identify the ASes it crosses, geolocate
//! its hops, and contrast the realized path (3 ASes, 5 cities, 3 countries
//! in the paper's measurement) with each AS's wider peering footprint.

use std::collections::BTreeSet;

use igdb_net::{Asn, Ip4};

use crate::analysis::cbg;
use crate::build::Igdb;

/// The Figure 9 fusion report.
#[derive(Clone, Debug)]
pub struct FusionReport {
    /// Hop addresses observed (responding hops only).
    pub hops_total: usize,
    /// How many geolocated.
    pub hops_geolocated: usize,
    /// Distinct ASes on the path, in first-appearance order.
    pub ases: Vec<Asn>,
    /// Distinct metros along the path, in first-appearance order.
    pub metros: Vec<usize>,
    /// Distinct countries along the path.
    pub countries: Vec<String>,
    /// Per-AS peering footprint size (metros) and country count — the
    /// "spatial extent" polygons' underlying data.
    pub as_extents: Vec<(Asn, usize, usize)>,
    /// Per-AS spatial-extent polygon (convex hull of its peering metros)
    /// as WKT — the translucent polygons of Figures 6 and 9. ASes with
    /// fewer than three non-collinear metros have no polygon.
    pub as_extent_hulls: Vec<(Asn, Option<String>)>,
    /// How many hops were geolocated by the CBG latency fallback (the
    /// paper's "RIPE geolocation services" for the 4 Hoiho-less hops).
    pub hops_geolocated_by_cbg: usize,
}

/// Fuses one traceroute (responding hop addresses, in order) with iGDB,
/// backfilling Hoiho-less hops with CBG latency geolocation exactly as the
/// paper backfills with "RIPE geolocation services" (§4.5).
pub fn fuse(igdb: &Igdb, hop_ips: &[Ip4]) -> FusionReport {
    let _span = igdb_obs::span("analysis.fusion");
    // CBG estimates for every unlocated observed address (computed once;
    // only the hops on this path are consumed).
    let cbg_map: std::collections::HashMap<Ip4, usize> = cbg::geolocate_unlocated(igdb, 2)
        .into_iter()
        .map(|e| (e.ip, e.metro))
        .collect();
    let mut ases: Vec<Asn> = Vec::new();
    let mut metros: Vec<usize> = Vec::new();
    let mut countries: Vec<String> = Vec::new();
    let mut hops_geolocated = 0usize;
    let mut hops_geolocated_by_cbg = 0usize;
    for &ip in hop_ips {
        let Some(info) = igdb.ip_info.get(&ip) else {
            continue;
        };
        if let Some(a) = info.asn {
            if !ases.contains(&a) {
                ases.push(a);
            }
        }
        let located = info.metro.or_else(|| {
            let m = cbg_map.get(&ip).copied();
            if m.is_some() {
                hops_geolocated_by_cbg += 1;
            }
            m
        });
        if let Some(m) = located {
            hops_geolocated += 1;
            if !metros.contains(&m) {
                metros.push(m);
                let c = igdb.metros.metro(m).country.clone();
                if !countries.contains(&c) {
                    countries.push(c);
                }
            }
        }
    }
    let as_extents = ases
        .iter()
        .map(|&a| {
            let ms = igdb.metros_of_asn(a);
            let cs: BTreeSet<&str> = ms
                .iter()
                .map(|&m| igdb.metros.metro(m).country.as_str())
                .collect();
            (a, ms.len(), cs.len())
        })
        .collect();
    let as_extent_hulls = ases
        .iter()
        .map(|&a| {
            let pts: Vec<igdb_geo::GeoPoint> = igdb
                .metros_of_asn(a)
                .into_iter()
                .map(|m| igdb.metros.metro(m).loc)
                .collect();
            let wkt = igdb_geo::convex_hull(&pts)
                .map(|h| igdb_geo::to_wkt(&igdb_geo::Geometry::Polygon(h)));
            (a, wkt)
        })
        .collect();
    FusionReport {
        hops_total: hop_ips.len(),
        hops_geolocated,
        ases,
        metros,
        countries,
        as_extents,
        as_extent_hulls,
        hops_geolocated_by_cbg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn setup() -> (World, Igdb, FusionReport) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 300);
        let igdb = Igdb::build(&snaps);
        let ips = world
            .traceroute_between(world.scenarios.anchor_madrid, world.scenarios.anchor_berlin)
            .expect("Madrid→Berlin traceroute")
            .responding_ips();
        let report = fuse(&igdb, &ips);
        (world, igdb, report)
    }

    #[test]
    fn fig9_as_count_small() {
        let (world, _, report) = setup();
        // The paper saw 3 ASes; our scenario path crosses the two transits
        // plus possibly the destination stub: 2–4.
        assert!(
            (2..=4).contains(&report.ases.len()),
            "{:?}",
            report.ases
        );
        assert!(report.ases.contains(&world.scenarios.paneu));
        assert!(report.ases.contains(&world.scenarios.germanet));
    }

    #[test]
    fn fig9_cities_and_countries() {
        let (_, igdb, report) = setup();
        let names: Vec<&str> = report
            .metros
            .iter()
            .map(|&m| igdb.metros.metro(m).name.as_str())
            .collect();
        // The realized path: Madrid→Paris→Frankfurt→Düsseldorf→Berlin
        // (some hops may not geolocate; at least 3 cities must).
        assert!(names.len() >= 3, "{names:?}");
        assert!(names.contains(&"Frankfurt") || names.contains(&"Paris"), "{names:?}");
        // Three countries, like the paper's measurement.
        assert!(
            (2..=4).contains(&report.countries.len()),
            "{:?}",
            report.countries
        );
    }

    #[test]
    fn fig9_extent_broader_than_path() {
        let (_, _, report) = setup();
        // Each transit AS's peering footprint is wider than its slice of
        // this one path ("the AS spatial extent is far more broad").
        let max_extent = report.as_extents.iter().map(|&(_, m, _)| m).max().unwrap();
        assert!(
            max_extent > report.metros.len(),
            "extent {max_extent} vs path metros {}",
            report.metros.len()
        );
    }

    #[test]
    fn extent_hulls_present_for_transit_ases() {
        let (world, igdb, report) = setup();
        let hull = report
            .as_extent_hulls
            .iter()
            .find(|(a, _)| *a == world.scenarios.paneu)
            .and_then(|(_, h)| h.clone())
            .expect("pan-EU transit must have an extent polygon");
        // The hull parses and contains the AS's own peering metros
        // (nudged toward the centroid — vertices sit on the boundary).
        let geom = igdb_geo::parse_wkt(&hull).unwrap();
        let igdb_geo::Geometry::Polygon(poly) = geom else {
            panic!("hull is not a polygon");
        };
        let c = poly.centroid();
        for m in igdb.metros_of_asn(world.scenarios.paneu) {
            let p = igdb.metros.metro(m).loc;
            let nudged = igdb_geo::GeoPoint::new(
                p.lon + (c.lon - p.lon) * 0.01,
                p.lat + (c.lat - p.lat) * 0.01,
            );
            assert!(poly.contains(&nudged), "metro {m} outside its AS hull");
        }
    }

    #[test]
    fn fusion_of_empty_trace_is_empty() {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 10);
        let igdb = Igdb::build(&snaps);
        let r = fuse(&igdb, &[]);
        assert_eq!(r.hops_total, 0);
        assert!(r.ases.is_empty());
        assert!(r.countries.is_empty());
    }
}
