//! §4.2 — Generating physical paths from logical measurements (Figure 7).
//!
//! Given a traceroute's addresses, iGDB (1) geolocates the hops, (2) maps
//! consecutive metro pairs onto inferred physical paths, (3) hunts for
//! *hidden intermediate nodes* (MPLS) by buffering each physical route and
//! spatially joining AS peering locations into the corridor, and (4)
//! compares the inferred route against the *shortest practical physical
//! path* — the geographically shortest route along inferred physical
//! infrastructure — yielding the **distance cost** (paper example: 2,518 km
//! ÷ 1,282 km = 1.96).

use std::collections::BTreeSet;
use std::sync::Mutex;

use igdb_geo::GeoPoint;
use igdb_net::{Asn, Ip4};

use crate::build::Igdb;
use crate::corridor::CorridorCache;
use crate::spath::{ShortestPathEngine, SpMode, SpWorkspace};

/// The metro-level graph of inferred physical paths (`phys_conn`),
/// backed by the shared [`ShortestPathEngine`].
pub struct PhysGraph {
    engine: ShortestPathEngine,
    /// Workspace backing the plain [`shortest_path`](Self::shortest_path)
    /// convenience API; batch callers bring their own via
    /// [`shortest_path_with`](Self::shortest_path_with).
    workspace: Mutex<SpWorkspace>,
    /// Memoized corridors by normalized metro pair: traceroute legs repeat
    /// across a mesh and Rocketfuel logical edges share corridors, so the
    /// same pair is asked for over and over.
    corridors: CorridorCache,
    /// Metros whose incident corridors changed in the delta this graph was
    /// repaired for (empty on a fresh build). While the contraction
    /// hierarchy is not yet re-contracted, queries touching these metros
    /// take the Dijkstra overlay instead of forcing a full CH build.
    dirty_metros: BTreeSet<usize>,
}

impl PhysGraph {
    /// Builds the graph from the database's distinct physical path pairs.
    pub fn from_igdb(igdb: &Igdb) -> Self {
        Self::from_pairs(igdb.metros.len(), &igdb.phys_pairs)
    }

    /// Builds the graph from explicit `(from, to, km)` pairs (used by the
    /// risk analysis to model infrastructure failures).
    pub fn from_pairs(n_metros: usize, pairs: &[(usize, usize, f64)]) -> Self {
        Self {
            engine: ShortestPathEngine::from_undirected(n_metros, pairs.iter().copied()),
            workspace: Mutex::new(SpWorkspace::new()),
            corridors: CorridorCache::new("phys"),
            dirty_metros: BTreeSet::new(),
        }
    }

    /// Rebuilds the graph for a delta apply, carrying forward what the
    /// delta provably did not invalidate: when the pair delta is
    /// removal-only (edge removals can never shorten a surviving route),
    /// memoized corridors that avoid every touched metro migrate from
    /// `old`; and if `old` had built its contraction hierarchy, the new
    /// engine re-contracts in the recorded order with the touched metros
    /// pushed last instead of re-running the priority heap from scratch.
    /// Both reuses are latency-only — answer bytes are pinned identical to
    /// a cold [`from_pairs`](Self::from_pairs) graph.
    pub fn rebuilt_for_delta(
        old: &PhysGraph,
        n_metros: usize,
        new_pairs: &[(usize, usize, f64)],
        touched: &BTreeSet<usize>,
        removal_only: bool,
    ) -> Self {
        let mut g = Self::from_pairs(n_metros, new_pairs);
        if removal_only {
            g.corridors.seed_surviving_from(&old.corridors, touched);
        }
        if !g.engine.seed_hierarchy_from(&old.engine, touched) {
            // No hierarchy to repair (old graph never built one, or the
            // metro space changed shape): remember the dirty region so
            // cached queries touching it overlay Dijkstra rather than
            // paying a full contraction on the query path.
            g.dirty_metros = touched.clone();
        }
        g
    }

    pub fn edge_count(&self) -> usize {
        self.engine.edge_count()
    }

    /// Number of physical links touching `metro`.
    pub fn degree(&self, metro: usize) -> usize {
        self.engine.degree(metro)
    }

    /// The routing engine (for callers that batch queries with their own
    /// [`SpWorkspace`]).
    pub fn engine(&self) -> &ShortestPathEngine {
        &self.engine
    }

    /// Shortest path along inferred physical infrastructure:
    /// `(metro sequence, km)`.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<(Vec<usize>, f64)> {
        let mut ws = self.workspace.lock().unwrap_or_else(|e| e.into_inner());
        self.engine.shortest_path_with(&mut ws, from, to)
    }

    /// [`shortest_path`](Self::shortest_path) with a caller-owned
    /// workspace: queries grouped by source amortize to one search per
    /// source, and parallel workers don't contend on the shared lock.
    pub fn shortest_path_with(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        self.engine.shortest_path_with(ws, from, to)
    }

    /// [`shortest_path_with`](Self::shortest_path_with), memoized by
    /// normalized metro pair: each unordered pair is routed at most once
    /// per graph across all callers and workers.
    ///
    /// On a delta-repaired graph whose contraction hierarchy has not been
    /// re-contracted yet, queries with an endpoint in the dirtied region
    /// overlay Dijkstra — same bytes, no full CH build on the query path.
    pub fn shortest_path_cached(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        let overlay = !self.dirty_metros.is_empty()
            && !self.engine.hierarchy_ready()
            && (self.dirty_metros.contains(&from) || self.dirty_metros.contains(&to));
        self.corridors.shortest_path(from, to, |lo, hi| {
            if overlay {
                crate::spath::with_mode(SpMode::Dijkstra, || {
                    self.engine.shortest_path_with(ws, lo, hi)
                })
            } else {
                self.engine.shortest_path_with(ws, lo, hi)
            }
        })
    }
}

/// One leg of the inferred physical route (between two observed metros).
#[derive(Clone, Debug)]
pub struct InferredLeg {
    pub from_metro: usize,
    pub to_metro: usize,
    /// Metro sequence along inferred physical paths (may pass through
    /// intermediate metros).
    pub via: Vec<usize>,
    pub km: f64,
    /// Candidate hidden intermediate metros: inside the corridor, hosting
    /// a peering location of one of the leg's ASes, with physical links.
    pub hidden_candidates: Vec<usize>,
}

/// The full §4.2 analysis result.
#[derive(Clone, Debug)]
pub struct PhysicalPathReport {
    /// Metro sequence as observed at the IP layer (consecutive dupes
    /// collapsed).
    pub observed_metros: Vec<usize>,
    pub legs: Vec<InferredLeg>,
    /// Total length of the inferred physical route, km.
    pub inferred_km: f64,
    /// The shortest practical physical path between the endpoints.
    pub practical_path: Vec<usize>,
    pub practical_km: f64,
    /// `inferred_km / practical_km` (1.0 = geographically optimal).
    pub distance_cost: f64,
}

/// Corridor half-width for hidden-node search, km (a metro-scale buffer).
pub const HIDDEN_NODE_BUFFER_KM: f64 = 60.0;

/// Runs the Figure 7 analysis over a traceroute's responding addresses.
/// Returns `None` when fewer than two hops geolocate or the endpoints are
/// not connected by inferred physical paths.
pub fn physical_path_report(igdb: &Igdb, hop_ips: &[Ip4]) -> Option<PhysicalPathReport> {
    physical_path_report_with(igdb, igdb.phys_graph(), hop_ips)
}

/// Same as [`physical_path_report`] but reusing a prebuilt [`PhysGraph`]
/// (benches run thousands of reports).
pub fn physical_path_report_with(
    igdb: &Igdb,
    graph: &PhysGraph,
    hop_ips: &[Ip4],
) -> Option<PhysicalPathReport> {
    igdb_obs::counter("analysis.queries", "physpath", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "physpath");
    // 1. Geolocate hops, collapsing consecutive same-metro runs; remember
    //    the ASes active around each leg.
    let mut observed: Vec<usize> = Vec::new();
    let mut leg_asns: Vec<Vec<Asn>> = Vec::new();
    let mut current_asns: Vec<Asn> = Vec::new();
    for &ip in hop_ips {
        let info = igdb.ip_info.get(&ip);
        if let Some(asn) = info.and_then(|i| i.asn) {
            if !current_asns.contains(&asn) {
                current_asns.push(asn);
            }
        }
        if let Some(m) = info.and_then(|i| i.metro) {
            if observed.last() != Some(&m) {
                if !observed.is_empty() {
                    leg_asns.push(std::mem::take(&mut current_asns));
                }
                observed.push(m);
            }
        }
    }
    if observed.len() < 2 {
        return None;
    }
    while leg_asns.len() < observed.len() - 1 {
        leg_asns.push(current_asns.clone());
    }

    // Membership tests below run once per (leg, candidate); bitsets over
    // the metro space replace the old O(n) `Vec::contains` scans. The
    // observed set is fixed for the whole report.
    let n_metros = igdb.metros.len();
    let mut observed_mask = vec![false; n_metros];
    for &m in &observed {
        observed_mask[m] = true;
    }
    // `metros_of_asn` walks the asn_loc index and allocates; legs share
    // ASes (a trace stays within a few networks), so resolve each ASN once
    // per report instead of once per leg.
    let mut asn_metros: std::collections::HashMap<Asn, Vec<usize>> =
        std::collections::HashMap::new();
    // Per-leg scratch, cleared between legs by walking what was set.
    let mut tested_mask = vec![false; n_metros];
    let mut tested: Vec<usize> = Vec::new();

    // Legs re-query from the same source only when a trace revisits a
    // metro, but the practical path (step 4) shares the first leg's
    // source, so one workspace serves the whole report.
    let mut ws = SpWorkspace::new();

    // 2. Map each leg onto inferred physical paths.
    let mut legs = Vec::new();
    let mut inferred_km = 0.0;
    for (w, asns) in observed.windows(2).zip(&leg_asns) {
        let (a, b) = (w[0], w[1]);
        let (via, km) = graph.shortest_path_cached(&mut ws, a, b)?;
        // 3. Hidden-node inference: corridor buffer + spatial join against
        //    the leg ASes' peering locations, restricted to metros with
        //    physical links (paper: "a physical peering location inside
        //    the buffer that also has a physical link in iGDB").
        let corridor = leg_corridor_geometry(igdb, &via);
        let mut hidden: Vec<usize> = Vec::new();
        for &asn in asns {
            let metros = asn_metros
                .entry(asn)
                .or_insert_with(|| igdb.metros_of_asn(asn));
            for &m in metros.iter() {
                // Skip metros already visible at the IP layer and metros
                // this leg already tested (under another of its ASes);
                // what's left inside the corridor is a candidate hidden
                // node.
                if m == a || m == b || observed_mask[m] || tested_mask[m] {
                    continue;
                }
                tested_mask[m] = true;
                tested.push(m);
                if graph.degree(m) == 0 {
                    continue;
                }
                let loc = igdb.metros.metro(m).loc;
                if igdb_geo::point_polyline_distance_km(&loc, &corridor)
                    <= HIDDEN_NODE_BUFFER_KM
                {
                    hidden.push(m);
                }
            }
        }
        for m in tested.drain(..) {
            tested_mask[m] = false;
        }
        hidden.sort_unstable();
        inferred_km += km;
        legs.push(InferredLeg {
            from_metro: a,
            to_metro: b,
            via,
            km,
            hidden_candidates: hidden,
        });
    }

    // 4. Shortest practical physical path between endpoints.
    let (practical_path, practical_km) = graph.shortest_path_cached(
        &mut ws,
        *observed.first().unwrap(),
        *observed.last().unwrap(),
    )?;
    let distance_cost = if practical_km > 0.0 {
        inferred_km / practical_km
    } else {
        1.0
    };
    Some(PhysicalPathReport {
        observed_metros: observed,
        legs,
        inferred_km,
        practical_path,
        practical_km,
        distance_cost,
    })
}

/// Runs [`physical_path_report_with`] over a whole traceroute mesh in
/// parallel, one report per input trace, in input order. Reports are
/// independent (the graph and database are read-only), so worker count
/// never affects the results.
pub fn physical_path_reports_with(
    igdb: &Igdb,
    graph: &PhysGraph,
    traces: &[Vec<Ip4>],
) -> Vec<Option<PhysicalPathReport>> {
    // Span opened here in serial code only; the per-trace work below runs
    // inside par workers, which never open spans (determinism rule 2).
    let _span = igdb_obs::span("analysis.physpath.batch");
    igdb_obs::counter("physpath.traces", "", traces.len() as u64);
    igdb_par::par_map(traces, |hops| physical_path_report_with(igdb, graph, hops))
}

/// The leg's route geometry: the concatenated metro-centre polyline (the
/// corridor axis for the buffer test).
fn leg_corridor_geometry(igdb: &Igdb, via: &[usize]) -> Vec<GeoPoint> {
    via.iter().map(|&m| igdb.metros.metro(m).loc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 400);
        (world, Igdb::build(&snaps))
    }

    fn fig7_trace(world: &World) -> Vec<Ip4> {
        world
            .traceroute_between(world.scenarios.anchor_kansas_city, world.scenarios.anchor_atlanta)
            .expect("scenario traceroute")
            .responding_ips()
    }

    #[test]
    fn phys_graph_connects_scenario_corridors() {
        let (_, igdb) = built();
        let g = PhysGraph::from_igdb(&igdb);
        assert!(g.edge_count() > 40);
        let kc = igdb.metros.by_name("Kansas City").unwrap();
        let atl = igdb.metros.by_name("Atlanta").unwrap();
        let (path, km) = g.shortest_path(kc, atl).expect("KC–Atlanta physically connected");
        assert!(path.len() >= 3);
        assert!(km > 900.0 && km < 2500.0, "practical km {km}");
    }

    #[test]
    fn fig7_report_shape() {
        let (world, igdb) = built();
        let report = physical_path_report(&igdb, &fig7_trace(&world)).expect("report");
        // Observed at the IP layer: KC … Dallas, Houston … Atlanta, never
        // Tulsa/OKC (MPLS-hidden).
        let names: Vec<&str> = report
            .observed_metros
            .iter()
            .map(|&m| igdb.metros.metro(m).name.as_str())
            .collect();
        assert!(names.contains(&"Dallas"), "{names:?}");
        assert!(names.contains(&"Houston"), "{names:?}");
        assert!(!names.contains(&"Tulsa") && !names.contains(&"Oklahoma City"), "{names:?}");
        assert_eq!(names.first(), Some(&"Kansas City"));
        assert_eq!(names.last(), Some(&"Atlanta"));
    }

    #[test]
    fn fig7_hidden_node_recovered() {
        let (world, igdb) = built();
        let report = physical_path_report(&igdb, &fig7_trace(&world)).expect("report");
        // The KC→Dallas leg's physical route passes Tulsa or OKC; the
        // hidden-candidate join must surface at least one of them.
        let mut all_hidden: Vec<&str> = report
            .legs
            .iter()
            .flat_map(|l| l.hidden_candidates.iter())
            .map(|&m| igdb.metros.metro(m).name.as_str())
            .collect();
        all_hidden.sort_unstable();
        assert!(
            all_hidden.contains(&"Tulsa") || all_hidden.contains(&"Oklahoma City"),
            "hidden candidates: {all_hidden:?}"
        );
    }

    #[test]
    fn fig7_distance_cost_in_paper_band() {
        let (world, igdb) = built();
        let report = physical_path_report(&igdb, &fig7_trace(&world)).expect("report");
        // The paper's example: 2518/1282 = 1.96. Our synthetic corridors
        // reproduce the shape: a clear detour, cost well above 1.
        assert!(
            report.distance_cost > 1.2 && report.distance_cost < 3.0,
            "distance cost {}",
            report.distance_cost
        );
        assert!(report.inferred_km > report.practical_km);
        // The practical path should use the inland corridor (St Louis or
        // Nashville).
        let names: Vec<&str> = report
            .practical_path
            .iter()
            .map(|&m| igdb.metros.metro(m).name.as_str())
            .collect();
        assert!(
            names.contains(&"St Louis") || names.contains(&"Nashville"),
            "practical path {names:?}"
        );
    }

    #[test]
    fn degenerate_traces_return_none() {
        let (_, igdb) = built();
        assert!(physical_path_report(&igdb, &[]).is_none());
        // A single resolvable hop can't form a leg.
        let one = igdb.ip_info.keys().next().copied().unwrap();
        assert!(physical_path_report(&igdb, &[one]).is_none());
    }

    #[test]
    fn same_metro_endpoints_cost_one() {
        let (_, igdb) = built();
        let g = PhysGraph::from_igdb(&igdb);
        let kc = igdb.metros.by_name("Kansas City").unwrap();
        let (p, km) = g.shortest_path(kc, kc).unwrap();
        assert_eq!(p, vec![kc]);
        assert_eq!(km, 0.0);
    }

    /// 0—1—2—3—4 chain plus a long 0—4 edge that is never shorter.
    fn chain_pairs() -> Vec<(usize, usize, f64)> {
        vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (0, 4, 10.0)]
    }

    #[test]
    fn delta_repair_overlays_dijkstra_until_hierarchy_exists() {
        use crate::spath::{with_mode, SpMode};
        let pairs = chain_pairs();
        let old = PhysGraph::from_pairs(5, &pairs);
        let touched: BTreeSet<usize> = [4].into_iter().collect();
        let g = PhysGraph::rebuilt_for_delta(&old, 5, &pairs, &touched, true);
        // The old graph never contracted, so there was nothing to seed and
        // the dirty region was recorded instead.
        assert!(!g.engine().hierarchy_ready());
        let mut ws = SpWorkspace::new();
        let expect = with_mode(SpMode::Dijkstra, || old.shortest_path(0, 4)).unwrap();
        // Even forced into CH mode, a dirty-endpoint query overlays
        // Dijkstra: identical answer, and no hierarchy gets built on the
        // query path.
        let got = with_mode(SpMode::Ch, || g.shortest_path_cached(&mut ws, 0, 4)).unwrap();
        assert_eq!(got, expect);
        assert!(
            !g.engine().hierarchy_ready(),
            "dirty-region query must not trigger a full contraction"
        );
        // A clean-region query in CH mode contracts as usual...
        let _ = with_mode(SpMode::Ch, || g.shortest_path_cached(&mut ws, 0, 2));
        assert!(g.engine().hierarchy_ready());
        // ...and once the hierarchy exists, dirty-region answers come from
        // CH and still match Dijkstra bit for bit.
        let again = g.shortest_path_cached(&mut ws, 1, 4).unwrap();
        assert_eq!(
            again,
            with_mode(SpMode::Dijkstra, || old.shortest_path(1, 4)).unwrap()
        );
    }

    #[test]
    fn delta_repair_seeds_hierarchy_from_old_order() {
        use crate::spath::{with_mode, SpMode};
        let old = PhysGraph::from_pairs(5, &chain_pairs());
        let _ = with_mode(SpMode::Ch, || old.shortest_path(0, 3));
        assert!(old.engine().hierarchy_ready());
        // Drop the long 0—4 edge; metros 0 and 4 are touched.
        let new_pairs = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)];
        let touched: BTreeSet<usize> = [0, 4].into_iter().collect();
        let g = PhysGraph::rebuilt_for_delta(&old, 5, &new_pairs, &touched, true);
        // The scoped re-contraction ran at repair time: no overlay needed.
        assert!(g.engine().hierarchy_ready());
        let fresh = PhysGraph::from_pairs(5, &new_pairs);
        let mut ws = SpWorkspace::new();
        for from in 0..5 {
            for to in 0..5 {
                assert_eq!(
                    with_mode(SpMode::Ch, || g.shortest_path_cached(&mut ws, from, to)),
                    with_mode(SpMode::Dijkstra, || fresh.shortest_path(from, to)),
                    "({from}, {to})"
                );
            }
        }
    }
}
