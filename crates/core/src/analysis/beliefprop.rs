//! §4.4 — Inferring geographic information from logical measurements.
//!
//! "We use a simple approach inspired from belief propagation … If the
//! observed differential latency between IP_A and IP_B is less than 2 ms
//! and both IP_A and IP_B are within 30 ms of the host that initiated the
//! traceroute, we infer that IP_A is in the same location as IP_B. … we
//! repeat these inferences in a series of iterations."
//!
//! Seeds are the Hoiho- and IXP-prefix-geolocated addresses from the base
//! build. Each round scans every adjacent responding hop pair, collects
//! same-location votes for unlocated addresses, and commits majority
//! locations. The module also reproduces the paper's two §4.4 evaluations:
//! the count of new `(city, AS)` tuples pushed into `asn_loc`, and the
//! consistency check against Hoiho/IXP locations.

use std::collections::{BTreeSet, HashMap};

use igdb_net::{Asn, Ip4};

use crate::build::{Igdb, LocationSource};

/// Tunables (paper values as defaults).
#[derive(Clone, Copy, Debug)]
pub struct BeliefPropParams {
    /// Same-metro differential-RTT bound, ms ("2 ms as the boundary
    /// between metropolitan locations").
    pub metro_threshold_ms: f64,
    /// Both hops must be within this RTT of the probe, ms.
    pub probe_rtt_max_ms: f64,
    /// Maximum propagation rounds.
    pub max_iterations: usize,
}

impl Default for BeliefPropParams {
    fn default() -> Self {
        Self {
            metro_threshold_ms: 2.0,
            probe_rtt_max_ms: 30.0,
            max_iterations: 4,
        }
    }
}

/// Result of the propagation.
#[derive(Clone, Debug)]
pub struct BeliefPropReport {
    /// Newly located addresses with their inferred metro, per round.
    pub located_per_round: Vec<usize>,
    /// All new address → metro assignments.
    pub assignments: HashMap<Ip4, usize>,
    /// New `(asn, metro)` tuples not present in the declared `asn_loc`.
    pub new_tuples: Vec<(Asn, usize)>,
    /// Distinct metros among the new tuples.
    pub new_metros: usize,
    /// Distinct ASes among the new tuples.
    pub new_ases: usize,
    /// ASes that previously had *no* location at all.
    pub ases_gaining_first_location: usize,
}

/// Runs the belief propagation. Does not mutate `igdb`; call
/// [`apply_inferences`] to push the tuples into `asn_loc`.
pub fn propagate(igdb: &Igdb, params: &BeliefPropParams) -> BeliefPropReport {
    let _span = igdb_obs::span("analysis.beliefprop");
    // Seed locations.
    let mut located: HashMap<Ip4, usize> = igdb
        .ip_info
        .iter()
        .filter_map(|(&ip, info)| Some((ip, info.metro?)))
        .collect();
    let mut assignments: HashMap<Ip4, usize> = HashMap::new();
    let mut located_per_round = Vec::new();

    for _ in 0..params.max_iterations {
        // Votes: unlocated address → metro → count.
        let mut votes: HashMap<Ip4, HashMap<usize, usize>> = HashMap::new();
        for tr in &igdb.traces {
            // Only TTL-adjacent responding pairs qualify: a gap (star or
            // hidden hop) means the two addresses need not be colocated.
            let hops: Vec<(Ip4, f64, u8)> = tr
                .hops
                .iter()
                .filter_map(|h| h.ip.map(|ip| (ip, h.rtt_ms, h.ttl)))
                .collect();
            for w in hops.windows(2) {
                let ((ip_a, rtt_a, ttl_a), (ip_b, rtt_b, ttl_b)) = (w[0], w[1]);
                // Adjacent, or separated by a single silent hop — the
                // differential-latency bound still pins them to one metro,
                // but the gapped form needs a tighter bound (the hidden
                // router adds its own processing delay).
                let gap = ttl_b.saturating_sub(ttl_a);
                if gap > 2 || (gap == 2 && (rtt_a - rtt_b).abs() >= params.metro_threshold_ms / 2.0)
                {
                    continue;
                }
                if (rtt_a - rtt_b).abs() >= params.metro_threshold_ms {
                    continue;
                }
                if rtt_a >= params.probe_rtt_max_ms || rtt_b >= params.probe_rtt_max_ms {
                    continue;
                }
                // Anycast addresses have no single location to infer (§5).
                let is_anycast =
                    |ip: &Ip4| igdb.ip_info.get(ip).map(|i| i.anycast).unwrap_or(false);
                match (located.get(&ip_a).copied(), located.get(&ip_b).copied()) {
                    (None, Some(m)) if !is_anycast(&ip_a) => {
                        *votes.entry(ip_a).or_default().entry(m).or_default() += 1;
                    }
                    (Some(m), None) if !is_anycast(&ip_b) => {
                        *votes.entry(ip_b).or_default().entry(m).or_default() += 1;
                    }
                    _ => {}
                }
            }
        }
        // Commit locations with a strict two-thirds majority — single
        // noisy observations must not seed further propagation.
        let mut committed = 0usize;
        for (ip, ms) in votes {
            let total: usize = ms.values().sum();
            if let Some((&metro, &n)) = ms.iter().max_by_key(|&(m, n)| (*n, std::cmp::Reverse(*m)))
            {
                if 3 * n >= 2 * total {
                    located.insert(ip, metro);
                    assignments.insert(ip, metro);
                    committed += 1;
                }
            }
        }
        located_per_round.push(committed);
        if committed == 0 {
            break;
        }
    }

    // New (asn, metro) tuples.
    let mut new_tuples: BTreeSet<(Asn, usize)> = BTreeSet::new();
    for (&ip, &metro) in &assignments {
        let Some(asn) = igdb.ip_info.get(&ip).and_then(|i| i.asn) else {
            continue;
        };
        if !igdb.metros_of_asn(asn).contains(&metro) {
            new_tuples.insert((asn, metro));
        }
    }
    let new_metros = new_tuples
        .iter()
        .map(|&(_, m)| m)
        .collect::<BTreeSet<_>>()
        .len();
    let involved: BTreeSet<Asn> = new_tuples.iter().map(|&(a, _)| a).collect();
    let new_ases = involved.len();
    let ases_gaining_first_location = involved
        .iter()
        .filter(|&&a| igdb.metros_of_asn(a).is_empty())
        .count();
    BeliefPropReport {
        located_per_round,
        assignments,
        new_tuples: new_tuples.into_iter().collect(),
        new_metros,
        new_ases,
        ases_gaining_first_location,
    }
}

/// Pushes the report's tuples into `asn_loc`, tagged `inferred = true`.
pub fn apply_inferences(igdb: &mut Igdb, report: &BeliefPropReport) -> usize {
    for &(asn, metro) in &report.new_tuples {
        igdb.add_inferred_location(asn, metro);
    }
    report.new_tuples.len()
}

/// The §4.4 consistency check: for every *seeded* address, what would its
/// neighbours have concluded? Compares the neighbour-majority metro with
/// the seed's own (Hoiho or IXP) metro. Paper: "86% of the output from
/// belief propagation results in recovering the same metro area."
#[derive(Clone, Copy, Debug)]
pub struct ConsistencyReport {
    pub comparable: usize,
    pub agreeing: usize,
}

impl ConsistencyReport {
    pub fn agreement(&self) -> f64 {
        if self.comparable == 0 {
            0.0
        } else {
            self.agreeing as f64 / self.comparable as f64
        }
    }
}

/// Runs the hold-one-out consistency evaluation over seeded addresses.
pub fn consistency_check(igdb: &Igdb, params: &BeliefPropParams) -> ConsistencyReport {
    let _span = igdb_obs::span("analysis.beliefprop.consistency");
    // Final located set (seeds only — one round of neighbour votes tells
    // us what propagation *would* say about each seed).
    let located: HashMap<Ip4, usize> = igdb
        .ip_info
        .iter()
        .filter_map(|(&ip, info)| Some((ip, info.metro?)))
        .collect();
    // Neighbour votes for every address, excluding its own seed.
    let mut votes: HashMap<Ip4, HashMap<usize, usize>> = HashMap::new();
    for tr in &igdb.traces {
        let hops: Vec<(Ip4, f64, u8)> = tr
            .hops
            .iter()
            .filter_map(|h| h.ip.map(|ip| (ip, h.rtt_ms, h.ttl)))
            .collect();
        for w in hops.windows(2) {
            let ((ip_a, rtt_a, ttl_a), (ip_b, rtt_b, ttl_b)) = (w[0], w[1]);
            if ttl_b != ttl_a + 1
                || (rtt_a - rtt_b).abs() >= params.metro_threshold_ms
                || rtt_a >= params.probe_rtt_max_ms
                || rtt_b >= params.probe_rtt_max_ms
            {
                continue;
            }
            if let Some(&m) = located.get(&ip_b) {
                *votes.entry(ip_a).or_default().entry(m).or_default() += 1;
            }
            if let Some(&m) = located.get(&ip_a) {
                *votes.entry(ip_b).or_default().entry(m).or_default() += 1;
            }
        }
    }
    let mut comparable = 0usize;
    let mut agreeing = 0usize;
    for (ip, info) in &igdb.ip_info {
        let (Some(seed_metro), Some(source)) = (info.metro, info.geo_source) else {
            continue;
        };
        if !matches!(source, LocationSource::Hoiho | LocationSource::IxpPrefix) {
            continue;
        }
        let Some(ms) = votes.get(ip) else { continue };
        let total: usize = ms.values().sum();
        let Some((&bp_metro, &n)) = ms.iter().max_by_key(|&(m, n)| (*n, std::cmp::Reverse(*m)))
        else {
            continue;
        };
        if 2 * n <= total {
            continue;
        }
        comparable += 1;
        if bp_metro == seed_metro {
            agreeing += 1;
        }
    }
    ConsistencyReport {
        comparable,
        agreeing,
    }
}

/// Table 3 — metros an AS provably operates in (via rDNS geohints) that are
/// missing from its declared `asn_loc` footprint. Returns
/// `(metro, example hostname)` pairs.
pub fn missing_locations(igdb: &Igdb, asn: Asn) -> Vec<(usize, String)> {
    let declared: BTreeSet<usize> = igdb.metros_of_asn(asn).into_iter().collect();
    let mut found: HashMap<usize, String> = HashMap::new();
    for (ip, info) in &igdb.ip_info {
        if info.asn != Some(asn) || info.geo_source != Some(LocationSource::Hoiho) {
            continue;
        }
        let (Some(metro), Some(fqdn)) = (info.metro, info.fqdn.as_ref()) else {
            continue;
        };
        if !declared.contains(&metro) {
            found.entry(metro).or_insert_with(|| fqdn.clone());
        }
        let _ = ip;
    }
    let mut v: Vec<(usize, String)> = found.into_iter().collect();
    v.sort_by_key(|&(m, _)| m);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 1200);
        (world, Igdb::build(&snaps))
    }

    #[test]
    fn propagation_locates_new_addresses() {
        let (_, igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        let total: usize = report.located_per_round.iter().sum();
        assert!(total > 10, "only {total} addresses newly located");
        assert_eq!(total, report.assignments.len());
    }

    #[test]
    fn propagation_accuracy_against_ground_truth() {
        // The 2 ms differential bound resolves location to ~200 km (the
        // distance light covers in fiber in 1 ms each way), so the method
        // is scored at metro-area granularity: an inference is correct
        // when it lands within 150 km of the true city — and most should
        // be exactly right.
        let (world, igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        let mut checked = 0;
        let mut exact = 0;
        let mut near = 0;
        for (&ip, &metro) in &report.assignments {
            let Some(truth) = world.truth_city_of_ip(ip) else {
                continue;
            };
            checked += 1;
            if truth == metro {
                exact += 1;
                near += 1;
            } else {
                let d = igdb_geo::haversine_km(
                    &world.cities[truth].loc,
                    &world.cities[metro].loc,
                );
                if d <= 150.0 {
                    near += 1;
                }
            }
        }
        assert!(checked > 10);
        assert!(
            near * 100 >= checked * 85,
            "belief prop within-150km accuracy {near}/{checked}"
        );
        assert!(
            exact * 2 >= checked,
            "belief prop exact accuracy {exact}/{checked}"
        );
    }

    #[test]
    fn new_tuples_found_and_applied() {
        let (_, mut igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        assert!(
            !report.new_tuples.is_empty(),
            "no undeclared (asn, metro) tuples discovered"
        );
        assert!(report.new_metros > 0);
        assert!(report.new_ases > 0);
        let before = igdb.db.row_count("asn_loc").unwrap();
        let applied = apply_inferences(&mut igdb, &report);
        assert_eq!(igdb.db.row_count("asn_loc").unwrap(), before + applied);
        // Applied rows carry the inferred flag.
        igdb.db
            .with_table("asn_loc", |t| {
                let inferred = t
                    .rows()
                    .iter()
                    .filter(|r| r[5] == igdb_db::Value::Bool(true))
                    .count();
                assert_eq!(inferred, applied);
            })
            .unwrap();
    }

    #[test]
    fn consistency_above_paper_floor() {
        let (_, igdb) = built();
        let report = consistency_check(&igdb, &BeliefPropParams::default());
        assert!(report.comparable > 10, "only {} comparable", report.comparable);
        assert!(
            report.agreement() >= 0.7,
            "agreement {} below the paper's ~0.86 band",
            report.agreement()
        );
    }

    #[test]
    fn table3_missing_locations_for_underdeclared_as() {
        let (world, igdb) = built();
        let missing = missing_locations(&igdb, world.scenarios.globetrans);
        // GlobeTrans declares 20 of 60 metros; GeoCode rDNS reveals many of
        // the rest wherever its routers were traversed.
        assert!(
            !missing.is_empty(),
            "no missing metros recovered for the Table 3 scenario AS"
        );
        for (metro, host) in &missing {
            assert!(!igdb.metros_of_asn(world.scenarios.globetrans).contains(metro));
            assert!(host.contains("globetrans"), "{host}");
        }
    }

    #[test]
    fn propagation_rounds_monotone_decreasing_eventually_stop() {
        let (_, igdb) = built();
        let report = propagate(
            &igdb,
            &BeliefPropParams {
                max_iterations: 10,
                ..Default::default()
            },
        );
        // Rounds end with a zero (fixpoint) or hit the cap.
        if report.located_per_round.len() < 10 {
            assert_eq!(*report.located_per_round.last().unwrap(), 0);
        }
    }

    #[test]
    fn stricter_threshold_locates_fewer() {
        let (_, igdb) = built();
        let loose = propagate(&igdb, &BeliefPropParams::default());
        let strict = propagate(
            &igdb,
            &BeliefPropParams {
                metro_threshold_ms: 0.2,
                ..Default::default()
            },
        );
        assert!(strict.assignments.len() <= loose.assignments.len());
    }
}
