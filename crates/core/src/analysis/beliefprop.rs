//! §4.4 — Inferring geographic information from logical measurements.
//!
//! "We use a simple approach inspired from belief propagation … If the
//! observed differential latency between IP_A and IP_B is less than 2 ms
//! and both IP_A and IP_B are within 30 ms of the host that initiated the
//! traceroute, we infer that IP_A is in the same location as IP_B. … we
//! repeat these inferences in a series of iterations."
//!
//! Seeds are the Hoiho- and IXP-prefix-geolocated addresses from the base
//! build. Each round scans every adjacent responding hop pair, collects
//! same-location votes for unlocated addresses, and commits majority
//! locations. The module also reproduces the paper's two §4.4 evaluations:
//! the count of new `(city, AS)` tuples pushed into `asn_loc`, and the
//! consistency check against Hoiho/IXP locations.

use std::collections::{BTreeSet, HashMap};

use igdb_net::{Asn, Ip4};

use crate::build::{Igdb, LocationSource};

/// Tunables (paper values as defaults).
#[derive(Clone, Copy, Debug)]
pub struct BeliefPropParams {
    /// Same-metro differential-RTT bound, ms ("2 ms as the boundary
    /// between metropolitan locations").
    pub metro_threshold_ms: f64,
    /// Both hops must be within this RTT of the probe, ms.
    pub probe_rtt_max_ms: f64,
    /// Maximum propagation rounds.
    pub max_iterations: usize,
}

impl Default for BeliefPropParams {
    fn default() -> Self {
        Self {
            metro_threshold_ms: 2.0,
            probe_rtt_max_ms: 30.0,
            max_iterations: 4,
        }
    }
}

/// Result of the propagation.
#[derive(Clone, Debug)]
pub struct BeliefPropReport {
    /// Newly located addresses with their inferred metro, per round.
    pub located_per_round: Vec<usize>,
    /// All new address → metro assignments.
    pub assignments: HashMap<Ip4, usize>,
    /// New `(asn, metro)` tuples not present in the declared `asn_loc`.
    pub new_tuples: Vec<(Asn, usize)>,
    /// Distinct metros among the new tuples.
    pub new_metros: usize,
    /// Distinct ASes among the new tuples.
    pub new_ases: usize,
    /// ASes that previously had *no* location at all.
    pub ases_gaining_first_location: usize,
}

/// Address marker for "not located".
const UNLOCATED: u32 = u32::MAX;

/// The round-invariant structure of the propagation, built once per call:
/// every qualifying adjacent-responding-hop pair occurrence (as indices
/// into an interned address table) plus a CSR incidence index from each
/// address to the pairs it participates in.
///
/// All pair-qualification filters (TTL gap, differential latency, probe
/// RTT, anycast) depend only on the traces and `ip_info`, never on the
/// evolving located set — so the round loop reduces to scanning an *active*
/// subset of this list against the current location array.
struct PairIndex {
    /// Interned addresses, in deterministic first-seen (trace) order.
    addrs: Vec<Ip4>,
    /// Qualifying pair occurrences as `(addr_idx, addr_idx)`; duplicates
    /// preserved (each occurrence is one vote).
    pairs: Vec<(u32, u32)>,
    /// CSR incidence: pair ids incident to address `i` live in
    /// `inc_pairs[inc_off[i]..inc_off[i + 1]]`.
    inc_off: Vec<u32>,
    inc_pairs: Vec<u32>,
    /// Per-address: may this address ever receive a vote? (`!anycast`; a
    /// seed-located address is additionally excluded via the location
    /// array.)
    can_receive: Vec<bool>,
    /// Per-address seed metro (or [`UNLOCATED`]).
    seed_loc: Vec<u32>,
}

impl PairIndex {
    fn build(igdb: &Igdb, params: &BeliefPropParams) -> PairIndex {
        // Raw qualifying pairs per trace, extracted in parallel with an
        // in-order merge (chunk order == trace order), so the pair list is
        // identical at any worker count.
        let raw: Vec<Vec<(Ip4, Ip4)>> = igdb_par::par_chunks(igdb.traces(), |_, chunk| {
            let mut out: Vec<(Ip4, Ip4)> = Vec::new();
            for tr in chunk {
                // Only TTL-adjacent responding pairs qualify: a gap (star
                // or hidden hop) means the two addresses need not be
                // colocated.
                let mut prev: Option<(Ip4, f64, u8)> = None;
                for h in &tr.hops {
                    let Some(ip) = h.ip else { continue };
                    let cur = (ip, h.rtt_ms, h.ttl);
                    if let Some((ip_a, rtt_a, ttl_a)) = prev {
                        let (ip_b, rtt_b, ttl_b) = cur;
                        // Adjacent, or separated by a single silent hop —
                        // the differential-latency bound still pins them to
                        // one metro, but the gapped form needs a tighter
                        // bound (the hidden router adds its own processing
                        // delay).
                        let gap = ttl_b.saturating_sub(ttl_a);
                        let diff = (rtt_a - rtt_b).abs();
                        if !(gap > 2 || (gap == 2 && diff >= params.metro_threshold_ms / 2.0))
                            && diff < params.metro_threshold_ms
                            && rtt_a < params.probe_rtt_max_ms
                            && rtt_b < params.probe_rtt_max_ms
                        {
                            out.push((ip_a, ip_b));
                        }
                    }
                    prev = Some(cur);
                }
            }
            out
        });

        // Serial interning pass in trace order.
        let mut index_of: HashMap<Ip4, u32> = HashMap::new();
        let mut addrs: Vec<Ip4> = Vec::new();
        let mut can_receive: Vec<bool> = Vec::new();
        let mut seed_loc: Vec<u32> = Vec::new();
        let intern = |ip: Ip4,
                          index_of: &mut HashMap<Ip4, u32>,
                          addrs: &mut Vec<Ip4>,
                          can_receive: &mut Vec<bool>,
                          seed_loc: &mut Vec<u32>| {
            *index_of.entry(ip).or_insert_with(|| {
                let info = igdb.ip_info.get(&ip);
                addrs.push(ip);
                // Anycast addresses have no single location to infer (§5).
                can_receive.push(!info.map(|i| i.anycast).unwrap_or(false));
                seed_loc.push(
                    info.and_then(|i| i.metro)
                        .map(|m| m as u32)
                        .unwrap_or(UNLOCATED),
                );
                (addrs.len() - 1) as u32
            })
        };
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (ip_a, ip_b) in raw.into_iter().flatten() {
            let ia = intern(ip_a, &mut index_of, &mut addrs, &mut can_receive, &mut seed_loc);
            let ib = intern(ip_b, &mut index_of, &mut addrs, &mut can_receive, &mut seed_loc);
            // A pair neither of whose endpoints can ever be voted for
            // (both anycast or both seeded) never contributes; drop it so
            // the round scans stay tight.
            let a_recv = can_receive[ia as usize] && seed_loc[ia as usize] == UNLOCATED;
            let b_recv = can_receive[ib as usize] && seed_loc[ib as usize] == UNLOCATED;
            if a_recv || b_recv {
                pairs.push((ia, ib));
            }
        }

        // CSR incidence (counting sort over endpoint addresses).
        let n = addrs.len();
        let mut counts = vec![0u32; n + 1];
        for &(a, b) in &pairs {
            counts[a as usize + 1] += 1;
            if b != a {
                counts[b as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let inc_off = counts.clone();
        let mut cursor = counts;
        let mut inc_pairs = vec![0u32; inc_off[n] as usize];
        for (pid, &(a, b)) in pairs.iter().enumerate() {
            inc_pairs[cursor[a as usize] as usize] = pid as u32;
            cursor[a as usize] += 1;
            if b != a {
                inc_pairs[cursor[b as usize] as usize] = pid as u32;
                cursor[b as usize] += 1;
            }
        }

        PairIndex {
            addrs,
            pairs,
            inc_off,
            inc_pairs,
            can_receive,
            seed_loc,
        }
    }
}

/// Runs the belief propagation. Does not mutate `igdb`; call
/// [`apply_inferences`] to push the tuples into `asn_loc`.
///
/// # Algorithm (output-identical to the per-round rescan)
///
/// The original formulation rescans every trace each round and rebuilds
/// the vote map from scratch against the current located set. Because the
/// located set only grows, round `r`'s vote count for an unlocated address
/// equals the number of qualifying pair occurrences whose partner is
/// located at the start of round `r` — so votes can be accumulated
/// *incrementally*: scan all pairs once against the seeds, then each later
/// round revisit only pairs incident to addresses located in the previous
/// round (the frontier), adding each occurrence's vote exactly when its
/// partner becomes located. Tallies persist across rounds in
/// capacity-retaining buffers; an address whose tally did not change since
/// a failed majority check would fail it again, so only touched addresses
/// are rechecked. Vote counting fans out over `igdb_par::par_chunks` with
/// a serial in-order merge and commits walk addresses in ascending interned
/// order, so the result is byte-identical at any worker count.
pub fn propagate(igdb: &Igdb, params: &BeliefPropParams) -> BeliefPropReport {
    let _span = igdb_obs::span("analysis.beliefprop");
    let idx = {
        let _s = igdb_obs::span("analysis.beliefprop.pair_index");
        PairIndex::build(igdb, params)
    };
    let n = idx.addrs.len();

    // Current location per interned address (seeds to start).
    let mut loc: Vec<u32> = idx.seed_loc.clone();
    // Persistent vote tallies: per-address sorted-by-metro (metro, count)
    // pairs. Small per address, so a sorted vec beats a map.
    let mut tally: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    // Round-scoped scratch, cleared (capacity retained) between rounds.
    let mut touched: Vec<bool> = vec![false; n];
    let mut dirty: Vec<u32> = Vec::new();
    let mut frontier_pairs: Vec<u32> = Vec::new();

    let mut assignments: HashMap<Ip4, usize> = HashMap::new();
    let mut located_per_round = Vec::new();

    for round in 0..params.max_iterations {
        let _t = igdb_obs::hist_timer("beliefprop.round_us", "");
        // Round 0 scans every pair against the seeds; later rounds only
        // the pairs incident to the previous round's commits.
        let active: &[u32] = if round == 0 {
            frontier_pairs = (0..idx.pairs.len() as u32).collect();
            &frontier_pairs
        } else {
            &frontier_pairs
        };
        igdb_obs::counter("beliefprop.pairs_scanned", "", active.len() as u64);

        // Parallel vote collection: each chunk emits (address, metro)
        // votes; counts are additive, and the serial merge below walks
        // chunks in order, so tallies are worker-count invariant.
        let votes: Vec<Vec<(u32, u32)>> = {
            let loc = &loc;
            igdb_par::par_chunks(active, |_, chunk| {
                let mut out: Vec<(u32, u32)> = Vec::new();
                for &pid in chunk {
                    let (a, b) = idx.pairs[pid as usize];
                    let (la, lb) = (loc[a as usize], loc[b as usize]);
                    if la != UNLOCATED && lb == UNLOCATED && idx.can_receive[b as usize] {
                        out.push((b, la));
                    } else if lb != UNLOCATED && la == UNLOCATED && idx.can_receive[a as usize] {
                        out.push((a, lb));
                    }
                }
                out
            })
        };
        dirty.clear();
        for (addr, metro) in votes.into_iter().flatten() {
            let t = &mut tally[addr as usize];
            match t.binary_search_by_key(&metro, |&(m, _)| m) {
                Ok(i) => t[i].1 += 1,
                Err(i) => t.insert(i, (metro, 1)),
            }
            if !touched[addr as usize] {
                touched[addr as usize] = true;
                dirty.push(addr);
            }
        }

        // Commit locations with a strict two-thirds majority — single
        // noisy observations must not seed further propagation. Walk the
        // touched addresses in ascending interned order (deterministic;
        // commits are independent, so order affects nothing but is pinned
        // anyway).
        dirty.sort_unstable();
        let mut committed_addrs: Vec<u32> = Vec::new();
        for &addr in &dirty {
            touched[addr as usize] = false;
            let t = &tally[addr as usize];
            let total: u32 = t.iter().map(|&(_, c)| c).sum();
            // Max count, ties to the smallest metro: the tally is sorted
            // by metro, so the first strict maximum wins.
            let Some(&(metro, best)) = t.iter().max_by_key(|&&(m, c)| (c, std::cmp::Reverse(m)))
            else {
                continue;
            };
            if 3 * best >= 2 * total {
                committed_addrs.push(addr);
                loc[addr as usize] = metro;
                assignments.insert(idx.addrs[addr as usize], metro as usize);
            }
        }
        // Located addresses stop tallying; release their buffers.
        for &addr in &committed_addrs {
            tally[addr as usize] = Vec::new();
        }

        located_per_round.push(committed_addrs.len());
        if committed_addrs.is_empty() {
            break;
        }

        // Next round's frontier: pairs incident to this round's commits,
        // deduplicated (a pair may touch two newly located addresses).
        frontier_pairs = committed_addrs
            .iter()
            .flat_map(|&addr| {
                let (s, e) = (
                    idx.inc_off[addr as usize] as usize,
                    idx.inc_off[addr as usize + 1] as usize,
                );
                idx.inc_pairs[s..e].iter().copied()
            })
            .collect();
        frontier_pairs.sort_unstable();
        frontier_pairs.dedup();
    }

    // New (asn, metro) tuples.
    let mut new_tuples: BTreeSet<(Asn, usize)> = BTreeSet::new();
    for (&ip, &metro) in &assignments {
        let Some(asn) = igdb.ip_info.get(&ip).and_then(|i| i.asn) else {
            continue;
        };
        if !igdb.metros_of_asn(asn).contains(&metro) {
            new_tuples.insert((asn, metro));
        }
    }
    let new_metros = new_tuples
        .iter()
        .map(|&(_, m)| m)
        .collect::<BTreeSet<_>>()
        .len();
    let involved: BTreeSet<Asn> = new_tuples.iter().map(|&(a, _)| a).collect();
    let new_ases = involved.len();
    let ases_gaining_first_location = involved
        .iter()
        .filter(|&&a| igdb.metros_of_asn(a).is_empty())
        .count();
    BeliefPropReport {
        located_per_round,
        assignments,
        new_tuples: new_tuples.into_iter().collect(),
        new_metros,
        new_ases,
        ases_gaining_first_location,
    }
}

/// Pushes the report's tuples into `asn_loc`, tagged `inferred = true`.
pub fn apply_inferences(igdb: &mut Igdb, report: &BeliefPropReport) -> usize {
    for &(asn, metro) in &report.new_tuples {
        igdb.add_inferred_location(asn, metro);
    }
    report.new_tuples.len()
}

/// The §4.4 consistency check: for every *seeded* address, what would its
/// neighbours have concluded? Compares the neighbour-majority metro with
/// the seed's own (Hoiho or IXP) metro. Paper: "86% of the output from
/// belief propagation results in recovering the same metro area."
#[derive(Clone, Copy, Debug)]
pub struct ConsistencyReport {
    pub comparable: usize,
    pub agreeing: usize,
}

impl ConsistencyReport {
    pub fn agreement(&self) -> f64 {
        if self.comparable == 0 {
            0.0
        } else {
            self.agreeing as f64 / self.comparable as f64
        }
    }
}

/// Runs the hold-one-out consistency evaluation over seeded addresses.
pub fn consistency_check(igdb: &Igdb, params: &BeliefPropParams) -> ConsistencyReport {
    let _span = igdb_obs::span("analysis.beliefprop.consistency");
    // Final located set (seeds only — one round of neighbour votes tells
    // us what propagation *would* say about each seed).
    let located: HashMap<Ip4, usize> = igdb
        .ip_info
        .iter()
        .filter_map(|(&ip, info)| Some((ip, info.metro?)))
        .collect();
    // Neighbour votes for every address, excluding its own seed. Vote
    // extraction fans out over traces (rolling previous-hop, no per-trace
    // allocation); the serial merge is additive, so the tallies — and the
    // majority decisions below — are worker-count invariant.
    let chunks: Vec<Vec<(Ip4, usize)>> = igdb_par::par_chunks(igdb.traces(), |_, chunk| {
        let mut out: Vec<(Ip4, usize)> = Vec::new();
        for tr in chunk {
            let mut prev: Option<(Ip4, f64, u8)> = None;
            for h in &tr.hops {
                let Some(ip) = h.ip else { continue };
                let cur = (ip, h.rtt_ms, h.ttl);
                if let Some((ip_a, rtt_a, ttl_a)) = prev {
                    let (ip_b, rtt_b, ttl_b) = cur;
                    if ttl_b == ttl_a + 1
                        && (rtt_a - rtt_b).abs() < params.metro_threshold_ms
                        && rtt_a < params.probe_rtt_max_ms
                        && rtt_b < params.probe_rtt_max_ms
                    {
                        if let Some(&m) = located.get(&ip_b) {
                            out.push((ip_a, m));
                        }
                        if let Some(&m) = located.get(&ip_a) {
                            out.push((ip_b, m));
                        }
                    }
                }
                prev = Some(cur);
            }
        }
        out
    });
    let mut votes: HashMap<Ip4, HashMap<usize, usize>> = HashMap::new();
    for (ip, m) in chunks.into_iter().flatten() {
        *votes.entry(ip).or_default().entry(m).or_default() += 1;
    }
    let mut comparable = 0usize;
    let mut agreeing = 0usize;
    for (ip, info) in &igdb.ip_info {
        let (Some(seed_metro), Some(source)) = (info.metro, info.geo_source) else {
            continue;
        };
        if !matches!(source, LocationSource::Hoiho | LocationSource::IxpPrefix) {
            continue;
        }
        let Some(ms) = votes.get(ip) else { continue };
        let total: usize = ms.values().sum();
        let Some((&bp_metro, &n)) = ms.iter().max_by_key(|&(m, n)| (*n, std::cmp::Reverse(*m)))
        else {
            continue;
        };
        if 2 * n <= total {
            continue;
        }
        comparable += 1;
        if bp_metro == seed_metro {
            agreeing += 1;
        }
    }
    ConsistencyReport {
        comparable,
        agreeing,
    }
}

/// Table 3 — metros an AS provably operates in (via rDNS geohints) that are
/// missing from its declared `asn_loc` footprint. Returns
/// `(metro, example hostname)` pairs.
pub fn missing_locations(igdb: &Igdb, asn: Asn) -> Vec<(usize, String)> {
    let declared: BTreeSet<usize> = igdb.metros_of_asn(asn).into_iter().collect();
    let mut found: HashMap<usize, String> = HashMap::new();
    for (ip, info) in &igdb.ip_info {
        if info.asn != Some(asn) || info.geo_source != Some(LocationSource::Hoiho) {
            continue;
        }
        let (Some(metro), Some(fqdn)) = (info.metro, info.fqdn.as_ref()) else {
            continue;
        };
        if !declared.contains(&metro) {
            found.entry(metro).or_insert_with(|| fqdn.as_str().to_owned());
        }
        let _ = ip;
    }
    let mut v: Vec<(usize, String)> = found.into_iter().collect();
    v.sort_by_key(|&(m, _)| m);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 1200);
        (world, Igdb::build(&snaps))
    }

    #[test]
    fn propagation_locates_new_addresses() {
        let (_, igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        let total: usize = report.located_per_round.iter().sum();
        assert!(total > 10, "only {total} addresses newly located");
        assert_eq!(total, report.assignments.len());
    }

    #[test]
    fn propagation_accuracy_against_ground_truth() {
        // The 2 ms differential bound resolves location to ~200 km (the
        // distance light covers in fiber in 1 ms each way), so the method
        // is scored at metro-area granularity: an inference is correct
        // when it lands within 150 km of the true city — and most should
        // be exactly right.
        let (world, igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        let mut checked = 0;
        let mut exact = 0;
        let mut near = 0;
        for (&ip, &metro) in &report.assignments {
            let Some(truth) = world.truth_city_of_ip(ip) else {
                continue;
            };
            checked += 1;
            if truth == metro {
                exact += 1;
                near += 1;
            } else {
                let d = igdb_geo::haversine_km(
                    &world.cities[truth].loc,
                    &world.cities[metro].loc,
                );
                if d <= 150.0 {
                    near += 1;
                }
            }
        }
        assert!(checked > 10);
        assert!(
            near * 100 >= checked * 85,
            "belief prop within-150km accuracy {near}/{checked}"
        );
        assert!(
            exact * 2 >= checked,
            "belief prop exact accuracy {exact}/{checked}"
        );
    }

    #[test]
    fn new_tuples_found_and_applied() {
        let (_, mut igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        assert!(
            !report.new_tuples.is_empty(),
            "no undeclared (asn, metro) tuples discovered"
        );
        assert!(report.new_metros > 0);
        assert!(report.new_ases > 0);
        let before = igdb.db.row_count("asn_loc").unwrap();
        let applied = apply_inferences(&mut igdb, &report);
        assert_eq!(igdb.db.row_count("asn_loc").unwrap(), before + applied);
        // Applied rows carry the inferred flag.
        igdb.db
            .with_table("asn_loc", |t| {
                let inferred = t
                    .rows()
                    .iter()
                    .filter(|r| r[5] == igdb_db::Value::Bool(true))
                    .count();
                assert_eq!(inferred, applied);
            })
            .unwrap();
    }

    #[test]
    fn consistency_above_paper_floor() {
        let (_, igdb) = built();
        let report = consistency_check(&igdb, &BeliefPropParams::default());
        assert!(report.comparable > 10, "only {} comparable", report.comparable);
        assert!(
            report.agreement() >= 0.7,
            "agreement {} below the paper's ~0.86 band",
            report.agreement()
        );
    }

    #[test]
    fn table3_missing_locations_for_underdeclared_as() {
        let (world, igdb) = built();
        let missing = missing_locations(&igdb, world.scenarios.globetrans);
        // GlobeTrans declares 20 of 60 metros; GeoCode rDNS reveals many of
        // the rest wherever its routers were traversed.
        assert!(
            !missing.is_empty(),
            "no missing metros recovered for the Table 3 scenario AS"
        );
        for (metro, host) in &missing {
            assert!(!igdb.metros_of_asn(world.scenarios.globetrans).contains(metro));
            assert!(host.contains("globetrans"), "{host}");
        }
    }

    #[test]
    fn propagation_rounds_monotone_decreasing_eventually_stop() {
        let (_, igdb) = built();
        let report = propagate(
            &igdb,
            &BeliefPropParams {
                max_iterations: 10,
                ..Default::default()
            },
        );
        // Rounds end with a zero (fixpoint) or hit the cap.
        if report.located_per_round.len() < 10 {
            assert_eq!(*report.located_per_round.last().unwrap(), 0);
        }
    }

    #[test]
    fn stricter_threshold_locates_fewer() {
        let (_, igdb) = built();
        let loose = propagate(&igdb, &BeliefPropParams::default());
        let strict = propagate(
            &igdb,
            &BeliefPropParams {
                metro_threshold_ms: 0.2,
                ..Default::default()
            },
        );
        assert!(strict.assignments.len() <= loose.assignments.len());
    }
}
