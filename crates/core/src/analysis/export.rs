//! Figure 5 — exporting the physical layer for GIS rendering.
//!
//! The paper renders nodes (orange), inferred right-of-way paths (green)
//! and submarine cables (purple) in ArcGIS. We export the same three layers
//! as WKT collections plus a minimal GeoJSON FeatureCollection writer, so
//! any GIS (QGIS, ArcGIS, kepler.gl) can draw Figure 5 from iGDB output.

use crate::build::Igdb;

/// The three layers of the Figure 5 map.
#[derive(Clone, Debug)]
pub struct MapExport {
    /// `POINT` WKT per physical node.
    pub node_points: Vec<String>,
    /// `LINESTRING` WKT per inferred right-of-way path.
    pub row_paths: Vec<String>,
    /// `MULTILINESTRING` WKT per submarine cable.
    pub cable_paths: Vec<String>,
}

/// Extracts the three layers from the database.
pub fn export_physical_map(igdb: &Igdb) -> MapExport {
    let _span = igdb_obs::span("analysis.export");
    let node_points = igdb
        .db
        .with_table("phys_nodes", |t| {
            t.rows()
                .iter()
                .filter_map(|r| {
                    let lat = r[6].as_float()?;
                    let lon = r[7].as_float()?;
                    Some(format!("POINT ({lon} {lat})"))
                })
                .collect()
        })
        .expect("phys_nodes exists");
    let row_paths = igdb
        .db
        .with_table("phys_conn", |t| {
            t.rows()
                .iter()
                .filter_map(|r| r[7].as_text().map(str::to_string))
                .collect()
        })
        .expect("phys_conn exists");
    let cable_paths = igdb
        .db
        .with_table("sub_cables", |t| {
            t.rows()
                .iter()
                .filter_map(|r| r[4].as_text().map(str::to_string))
                .collect()
        })
        .expect("sub_cables exists");
    MapExport {
        node_points,
        row_paths,
        cable_paths,
    }
}

impl MapExport {
    /// Renders the layers as a GeoJSON FeatureCollection with a `layer`
    /// property per feature (`nodes` / `row_paths` / `cables`).
    pub fn to_geojson(&self) -> String {
        let mut features = Vec::new();
        for (layer, wkts) in [
            ("nodes", &self.node_points),
            ("row_paths", &self.row_paths),
            ("cables", &self.cable_paths),
        ] {
            for wkt in wkts {
                if let Ok(geom) = igdb_geo::parse_wkt(wkt) {
                    features.push(feature_json(layer, &geom));
                }
            }
        }
        format!(
            "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
            features.join(",")
        )
    }
}

fn feature_json(layer: &str, geom: &igdb_geo::Geometry) -> String {
    format!(
        "{{\"type\":\"Feature\",\"properties\":{{\"layer\":\"{layer}\"}},\"geometry\":{}}}",
        geometry_json(geom)
    )
}

fn coords(p: &igdb_geo::GeoPoint) -> String {
    format!("[{},{}]", p.lon, p.lat)
}

fn geometry_json(geom: &igdb_geo::Geometry) -> String {
    use igdb_geo::Geometry as G;
    match geom {
        G::Point(p) => format!("{{\"type\":\"Point\",\"coordinates\":{}}}", coords(p)),
        G::LineString(ls) => format!(
            "{{\"type\":\"LineString\",\"coordinates\":[{}]}}",
            ls.0.iter().map(coords).collect::<Vec<_>>().join(",")
        ),
        G::MultiLineString(mls) => format!(
            "{{\"type\":\"MultiLineString\",\"coordinates\":[{}]}}",
            mls.0
                .iter()
                .map(|ls| format!(
                    "[{}]",
                    ls.0.iter().map(coords).collect::<Vec<_>>().join(",")
                ))
                .collect::<Vec<_>>()
                .join(",")
        ),
        G::Polygon(poly) => format!(
            "{{\"type\":\"Polygon\",\"coordinates\":[{}]}}",
            std::iter::once(&poly.exterior)
                .chain(poly.holes.iter())
                .map(|ring| format!(
                    "[{}]",
                    ring.iter().map(coords).collect::<Vec<_>>().join(",")
                ))
                .collect::<Vec<_>>()
                .join(",")
        ),
        G::MultiPolygon(mp) => format!(
            "{{\"type\":\"MultiPolygon\",\"coordinates\":[{}]}}",
            mp.0.iter()
                .map(|poly| format!(
                    "[{}]",
                    std::iter::once(&poly.exterior)
                        .chain(poly.holes.iter())
                        .map(|ring| format!(
                            "[{}]",
                            ring.iter().map(coords).collect::<Vec<_>>().join(",")
                        ))
                        .collect::<Vec<_>>()
                        .join(",")
                ))
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn export() -> MapExport {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 0);
        export_physical_map(&Igdb::build(&snaps))
    }

    #[test]
    fn three_layers_populated() {
        let e = export();
        assert!(e.node_points.len() > 100);
        assert!(e.row_paths.len() > 50);
        assert!(e.cable_paths.len() > 10);
    }

    #[test]
    fn all_wkt_parses() {
        let e = export();
        for wkt in e
            .node_points
            .iter()
            .take(50)
            .chain(e.row_paths.iter().take(50))
            .chain(e.cable_paths.iter().take(50))
        {
            igdb_geo::parse_wkt(wkt).unwrap_or_else(|err| panic!("{wkt}: {err}"));
        }
    }

    #[test]
    fn geojson_structurally_sound() {
        let e = export();
        let gj = e.to_geojson();
        assert!(gj.starts_with("{\"type\":\"FeatureCollection\""));
        assert!(gj.contains("\"layer\":\"nodes\""));
        assert!(gj.contains("\"layer\":\"row_paths\""));
        assert!(gj.contains("\"layer\":\"cables\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = gj.chars().filter(|&c| c == '{').count();
        let closes = gj.chars().filter(|&c| c == '}').count();
        assert_eq!(opens, closes);
        let ob = gj.chars().filter(|&c| c == '[').count();
        let cb = gj.chars().filter(|&c| c == ']').count();
        assert_eq!(ob, cb);
    }
}
