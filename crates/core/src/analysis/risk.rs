//! Disaster-risk analysis over the fused map (the RiskRoute use case).
//!
//! §4.2: "This technique could also be used by researchers … to identify
//! long-haul cable infrastructure used by ASes of interest at risk from
//! environmental damage (e.g., through a technique like RiskRoute)."
//! Given a hazard region, this module finds the physical paths and
//! submarine cables crossing it, the metros and ASes exposed, and — for a
//! metro pair of interest — the reroute penalty if the region's
//! infrastructure fails.

use igdb_geo::{parse_wkt, Geometry, Polygon};

use crate::analysis::physpath::PhysGraph;
use crate::build::Igdb;

/// What a hazard region touches.
#[derive(Clone, Debug)]
pub struct RiskReport {
    /// phys_conn pairs whose path enters the region.
    pub paths_at_risk: Vec<(usize, usize)>,
    /// Submarine cable ids whose path enters the region.
    pub cables_at_risk: Vec<i64>,
    /// Metros inside the region.
    pub metros_in_region: Vec<usize>,
    /// ASes with a declared peering presence inside the region.
    pub ases_exposed: Vec<igdb_net::Asn>,
}

/// Computes exposure of the physical layer to a hazard polygon.
pub fn exposure(igdb: &Igdb, region: &Polygon) -> RiskReport {
    let _span = igdb_obs::span("analysis.risk");
    igdb_obs::counter("analysis.queries", "risk", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "risk");
    let mut paths_at_risk = Vec::new();
    igdb.db
        .with_table("phys_conn", |t| {
            for (_, row) in t.iter() {
                let Some(Ok(Geometry::LineString(ls))) = row[7].as_text().map(parse_wkt) else {
                    continue;
                };
                if ls.0.iter().any(|p| region.contains(p)) {
                    paths_at_risk.push((
                        row[0].as_int().unwrap() as usize,
                        row[3].as_int().unwrap() as usize,
                    ));
                }
            }
        })
        .expect("phys_conn exists");
    let mut cables_at_risk = Vec::new();
    igdb.db
        .with_table("sub_cables", |t| {
            for (_, row) in t.iter() {
                let Some(Ok(Geometry::MultiLineString(mls))) = row[4].as_text().map(parse_wkt)
                else {
                    continue;
                };
                if mls.0.iter().any(|ls| ls.0.iter().any(|p| region.contains(p))) {
                    cables_at_risk.push(row[0].as_int().unwrap());
                }
            }
        })
        .expect("sub_cables exists");
    let metros_in_region: Vec<usize> = igdb
        .metros
        .metros()
        .iter()
        .filter(|m| region.contains(&m.loc))
        .map(|m| m.id)
        .collect();
    let mut ases_exposed: Vec<igdb_net::Asn> = igdb
        .asn_metros
        .iter()
        .filter(|(_, metros)| metros.iter().any(|m| metros_in_region.contains(m)))
        .map(|(&asn, _)| asn)
        .collect();
    ases_exposed.sort_unstable();
    RiskReport {
        paths_at_risk,
        cables_at_risk,
        metros_in_region,
        ases_exposed,
    }
}

/// The reroute penalty for one metro pair when the hazard region's
/// infrastructure fails.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reroute {
    /// Route unaffected: it never entered the region.
    Unaffected { km: f64 },
    /// A detour exists: the surviving-path length and its cost factor
    /// relative to the pre-disaster route.
    Detour { before_km: f64, after_km: f64 },
    /// The pair is disconnected once the region fails.
    Partitioned { before_km: f64 },
}

/// Computes the reroute outcome for `(from, to)` when every physical path
/// crossing `region` fails.
pub fn reroute(igdb: &Igdb, region: &Polygon, from: usize, to: usize) -> Option<Reroute> {
    let _span = igdb_obs::span("analysis.risk.reroute");
    igdb_obs::counter("analysis.queries", "risk.reroute", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "risk.reroute");
    let report = exposure(igdb, region);
    let failed: std::collections::HashSet<(usize, usize)> = report
        .paths_at_risk
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    // The intact-graph route comes from the shared graph (and its
    // corridor cache); only the degraded graph is built per call.
    let full = igdb.phys_graph();
    let mut ws = crate::spath::SpWorkspace::for_engine(full.engine());
    let (before_path, before_km) = full.shortest_path_cached(&mut ws, from, to)?;
    let used_failed = before_path
        .windows(2)
        .any(|w| failed.contains(&(w[0].min(w[1]), w[0].max(w[1]))));
    if !used_failed {
        return Some(Reroute::Unaffected { km: before_km });
    }
    // Rebuild the graph without the failed pairs.
    let surviving: Vec<(usize, usize, f64)> = igdb
        .phys_pairs
        .iter()
        .copied()
        .filter(|&(a, b, _)| !failed.contains(&(a.min(b), a.max(b))))
        .collect();
    let degraded = PhysGraph::from_pairs(igdb.metros.len(), &surviving);
    Some(match degraded.shortest_path(from, to) {
        Some((_, after_km)) => Reroute::Detour {
            before_km,
            after_km,
        },
        None => Reroute::Partitioned { before_km },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_geo::GeoPoint;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 100);
        (world, Igdb::build(&snaps))
    }

    /// A hazard box over the US Gulf coast (hurricane scenario).
    fn gulf() -> Polygon {
        Polygon::new(
            vec![
                GeoPoint::raw(-98.0, 27.0),
                GeoPoint::raw(-88.0, 27.0),
                GeoPoint::raw(-88.0, 31.5),
                GeoPoint::raw(-98.0, 31.5),
            ],
            vec![],
        )
    }

    #[test]
    fn gulf_hazard_exposes_gulf_infrastructure() {
        let (_, igdb) = built();
        let report = exposure(&igdb, &gulf());
        // Houston / New Orleans / San Antonio sit inside the box.
        let names: Vec<&str> = report
            .metros_in_region
            .iter()
            .map(|&m| igdb.metros.metro(m).name.as_str())
            .collect();
        assert!(names.contains(&"Houston"), "{names:?}");
        assert!(names.contains(&"New Orleans"), "{names:?}");
        assert!(!report.paths_at_risk.is_empty());
        assert!(!report.ases_exposed.is_empty());
        // The GulfEast scenario AS peers in Houston and New Orleans.
        let (world, _) = built();
        assert!(report.ases_exposed.contains(&world.scenarios.gulfeast));
    }

    #[test]
    fn reroute_detour_costs_more() {
        let (_, igdb) = built();
        let dallas = igdb.metros.by_name("Dallas").unwrap();
        let atlanta = igdb.metros.by_name("Atlanta").unwrap();
        match reroute(&igdb, &gulf(), dallas, atlanta).expect("connected") {
            Reroute::Detour {
                before_km,
                after_km,
            } => {
                assert!(
                    after_km > before_km,
                    "detour {after_km} not longer than {before_km}"
                );
            }
            Reroute::Unaffected { .. } => {
                // Acceptable when the pre-disaster route already avoids the
                // Gulf (corridor via Memphis/Nashville).
            }
            Reroute::Partitioned { .. } => panic!("US east-west must survive a Gulf hurricane"),
        }
    }

    #[test]
    fn unaffected_pair_reports_unaffected() {
        let (_, igdb) = built();
        let madrid = igdb.metros.by_name("Madrid").unwrap();
        let berlin = igdb.metros.by_name("Berlin").unwrap();
        match reroute(&igdb, &gulf(), madrid, berlin) {
            Some(Reroute::Unaffected { km }) => assert!(km > 1000.0),
            other => panic!("Gulf hurricane must not touch Europe: {other:?}"),
        }
    }

    #[test]
    fn empty_region_exposes_nothing() {
        let (_, igdb) = built();
        // A box in the mid-Atlantic with no metros.
        let empty = Polygon::new(
            vec![
                GeoPoint::raw(-40.0, 30.0),
                GeoPoint::raw(-35.0, 30.0),
                GeoPoint::raw(-35.0, 35.0),
                GeoPoint::raw(-40.0, 35.0),
            ],
            vec![],
        );
        let report = exposure(&igdb, &empty);
        assert!(report.metros_in_region.is_empty());
        assert!(report.paths_at_risk.is_empty());
        assert!(report.ases_exposed.is_empty());
        // Cables MAY cross the Atlantic box — that is the point of the
        // layer separation.
    }
}
