//! Figure 4 — comparing iGDB shortest-path routes with the recreated
//! InterTubes US long-haul map.
//!
//! Paper: "most of the InterTubes fiber optic cables are closely
//! approximated by the iGDB shortest-path links … the long haul link in the
//! southeast US from Atlanta, GA to Houston, TX … most likely follows a
//! natural gas pipeline … iGDB includes many potential alternate paths
//! along transportation networks that did not have long-haul links".
//!
//! We quantify all three observations: per long-haul link, the fraction of
//! its vertices within 25 miles of any iGDB inferred physical path
//! (covered / missed), and the number of iGDB corridors with no nearby
//! long-haul link (alternates).

use igdb_geo::{point_polyline_distance_km, GeoPoint, KM_PER_MILE};
use igdb_synth::intertubes::LongHaulLink;

use crate::build::Igdb;

/// The paper's corridor width: 25 miles.
pub const CORRIDOR_KM: f64 = 25.0 * KM_PER_MILE;

/// A long-haul link must have this fraction of its vertices inside a
/// corridor to count as approximated.
pub const COVERAGE_THRESHOLD: f64 = 0.9;

/// Per-link verdict.
#[derive(Clone, Debug)]
pub struct LinkVerdict {
    pub from_city: usize,
    pub to_city: usize,
    /// Fraction of link vertices within [`CORRIDOR_KM`] of iGDB paths.
    pub coverage: f64,
    pub covered: bool,
    /// Whether the source marked this link as following a non-road
    /// right-of-way (the pipeline analogue).
    pub off_road: bool,
}

/// The Figure 4 comparison report.
#[derive(Clone, Debug)]
pub struct IntertubesReport {
    pub verdicts: Vec<LinkVerdict>,
    pub covered: usize,
    pub missed: usize,
    /// iGDB inferred paths with no long-haul link nearby — the "potential
    /// alternate paths" plotted purple in the paper.
    pub alternate_paths: usize,
    pub total_igdb_paths: usize,
}

/// Runs the comparison at the paper's 25-mile corridor width. iGDB paths
/// are restricted to those within the bounding box of the long-haul map
/// (continental comparison, as the paper's Figure 4 is US-only).
pub fn compare(igdb: &Igdb, longhaul: &[LongHaulLink]) -> IntertubesReport {
    compare_with_width(igdb, longhaul, CORRIDOR_KM)
}

/// [`compare`] with a configurable corridor half-width (ablation knob).
pub fn compare_with_width(
    igdb: &Igdb,
    longhaul: &[LongHaulLink],
    corridor_km: f64,
) -> IntertubesReport {
    let _span = igdb_obs::span("analysis.intertubes");
    igdb_obs::counter("analysis.queries", "intertubes", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "intertubes");
    // iGDB inferred path geometries, parsed once per database and shared
    // across repeated comparisons (e.g. corridor-width ablations).
    let igdb_paths = igdb.phys_path_geometries();

    // Restrict to the long-haul map's region (inflated bounding box).
    let mut bbox = igdb_geo::BoundingBox::empty();
    for l in longhaul {
        for p in &l.path {
            bbox.expand(p);
        }
    }
    let bbox = bbox.inflated(2.0);
    let regional: Vec<&Vec<GeoPoint>> = igdb_paths
        .iter()
        .filter(|path| path.iter().all(|p| bbox.contains(p)))
        .collect();

    let mut verdicts = Vec::with_capacity(longhaul.len());
    for link in longhaul {
        let mut hit = 0usize;
        for v in &link.path {
            let near = regional
                .iter()
                .any(|path| point_polyline_distance_km(v, path) <= corridor_km);
            if near {
                hit += 1;
            }
        }
        let coverage = if link.path.is_empty() {
            0.0
        } else {
            hit as f64 / link.path.len() as f64
        };
        verdicts.push(LinkVerdict {
            from_city: link.from_city,
            to_city: link.to_city,
            coverage,
            covered: coverage >= COVERAGE_THRESHOLD,
            off_road: link.off_road,
        });
    }
    let covered = verdicts.iter().filter(|v| v.covered).count();
    let missed = verdicts.len() - covered;

    // Alternates: iGDB paths that mostly run OUTSIDE every long-haul
    // corridor (the paper's purple class). A path is an alternate when
    // under half of its vertices lie within 25 miles of any long-haul
    // link.
    let mut alternate_paths = 0usize;
    for path in &regional {
        if path.is_empty() {
            continue;
        }
        let near = path
            .iter()
            .filter(|v| {
                longhaul
                    .iter()
                    .any(|l| point_polyline_distance_km(v, &l.path) <= corridor_km)
            })
            .count();
        if near * 2 < path.len() {
            alternate_paths += 1;
        }
    }
    IntertubesReport {
        verdicts,
        covered,
        missed,
        alternate_paths,
        total_igdb_paths: regional.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::intertubes::intertubes_recreation;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn setup() -> (World, Igdb, IntertubesReport) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 100);
        let igdb = Igdb::build(&snaps);
        let links = intertubes_recreation(&world.cities, &world.row);
        let report = compare(&igdb, &links);
        (world, igdb, report)
    }

    #[test]
    fn majority_of_longhaul_links_covered() {
        let (_, _, report) = setup();
        assert!(
            report.covered * 3 >= report.verdicts.len() * 2,
            "only {}/{} covered",
            report.covered,
            report.verdicts.len()
        );
    }

    #[test]
    fn pipeline_link_among_missed() {
        let (_, _, report) = setup();
        let off = report.verdicts.iter().find(|v| v.off_road).unwrap();
        // The geodesic pipeline link cuts across the corridor-free
        // interior; it must not be fully approximated.
        assert!(
            !off.covered,
            "off-road link unexpectedly covered ({} coverage)",
            off.coverage
        );
        assert!(report.missed >= 1);
    }

    #[test]
    fn alternates_exist() {
        let (_, _, report) = setup();
        // iGDB infers paths for every documented Atlas edge in the US —
        // many more corridors than the curated long-haul subset.
        assert!(
            report.alternate_paths > 0,
            "no alternate corridors found among {}",
            report.total_igdb_paths
        );
    }

    #[test]
    fn coverage_fractions_bounded() {
        let (_, _, report) = setup();
        for v in &report.verdicts {
            assert!((0.0..=1.0).contains(&v.coverage));
        }
    }
}
