//! §4.1 — Identifying AS spatial extent.
//!
//! Two queries: the Table 2 ranking (ASes with physical presence in the
//! most countries) and the Figure 6 overlap of two access ISPs' metro
//! footprints, resolved through organization names exactly as the paper
//! does ("We first execute a SQL query in iGDB to identify the ASNs
//! associated with the two organizations").

use igdb_db::{Aggregate, Predicate, Query, Value};
use igdb_net::Asn;

use crate::build::Igdb;

/// One row of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct CountryPresenceRow {
    pub asn: Asn,
    pub as_name: String,
    pub organization: String,
    pub countries: usize,
}

/// ASes with physical presence in the most countries (Table 2).
/// `limit` bounds the rows returned (the paper prints 11).
pub fn top_by_countries(igdb: &Igdb, limit: usize) -> Vec<CountryPresenceRow> {
    let _span = igdb_obs::span("analysis.footprint");
    igdb_obs::counter("analysis.queries", "footprint", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "footprint");
    // GROUP BY asn, COUNT(DISTINCT country) over asn_loc — non-inferred
    // rows only, matching the paper's baseline footprints.
    let groups = igdb
        .db
        .with_table("asn_loc", |t| {
            Query::new(t)
                .filter(Predicate::Eq("inferred".into(), Value::Bool(false)))
                .group_by(
                    vec!["asn"],
                    vec![Aggregate::CountDistinct("country".into())],
                )
        })
        .expect("asn_loc exists")
        .expect("valid group-by");
    let mut ranked: Vec<(Asn, usize)> = groups
        .into_iter()
        .filter_map(|row| Some((Asn(row[0].as_int()? as u32), row[1].as_int()? as usize)))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(limit)
        .map(|(asn, countries)| CountryPresenceRow {
            asn,
            as_name: first_name(igdb, asn, "asn_name"),
            organization: first_name(igdb, asn, "asn_org"),
            countries,
        })
        .collect()
}

fn first_name(igdb: &Igdb, asn: Asn, table: &str) -> String {
    igdb.db
        .with_table(table, |t| {
            // Prefer the ASRank (WHOIS) spelling, else any. The asn
            // column is indexed at build time, so this borrows the
            // posting list instead of materializing id vectors per probe.
            let ids = t.lookup_ids("asn", &Value::from(asn.0)).unwrap_or_default();
            let mut any = String::new();
            for &id in ids {
                let row = t.row(id as usize).unwrap();
                let name = row[1].as_text().unwrap_or("").to_string();
                let source = row[2].as_text().unwrap_or("");
                if source == "asrank" {
                    return name;
                }
                if any.is_empty() {
                    any = name;
                }
            }
            any
        })
        .unwrap_or_default()
}

/// The Figure 6 overlap report.
#[derive(Clone, Debug)]
pub struct OverlapReport {
    pub org_a: String,
    pub org_b: String,
    pub asns_a: Vec<Asn>,
    pub asns_b: Vec<Asn>,
    /// Distinct metro ids where each org peers, and the intersection.
    pub metros_a: Vec<usize>,
    pub metros_b: Vec<usize>,
    pub shared: Vec<usize>,
}

/// Computes the geographic overlap of two organizations (Figure 6).
pub fn org_overlap(igdb: &Igdb, org_a: &str, org_b: &str) -> OverlapReport {
    let _span = igdb_obs::span("analysis.footprint.overlap");
    igdb_obs::counter("analysis.queries", "footprint.overlap", 1);
    let _t = igdb_obs::hist_timer("analysis.query_us", "footprint.overlap");
    let asns_a = igdb.asns_of_org(org_a);
    let asns_b = igdb.asns_of_org(org_b);
    let metros = |asns: &[Asn]| -> Vec<usize> {
        let mut v: Vec<usize> = asns.iter().flat_map(|&a| igdb.metros_of_asn(a)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let metros_a = metros(&asns_a);
    let metros_b = metros(&asns_b);
    let set_b: std::collections::HashSet<usize> = metros_b.iter().copied().collect();
    let shared: Vec<usize> = metros_a
        .iter()
        .copied()
        .filter(|m| set_b.contains(m))
        .collect();
    OverlapReport {
        org_a: org_a.to_string(),
        org_b: org_b.to_string(),
        asns_a,
        asns_b,
        metros_a,
        metros_b,
        shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 200);
        let igdb = Igdb::build(&snaps);
        (world, igdb)
    }

    #[test]
    fn table2_ranking_descends_and_resolves_names() {
        let (_, igdb) = built();
        let rows = top_by_countries(&igdb, 11);
        assert_eq!(rows.len(), 11);
        for w in rows.windows(2) {
            assert!(w[0].countries >= w[1].countries);
        }
        assert!(rows[0].countries >= 5, "top AS in only {} countries", rows[0].countries);
        assert!(!rows[0].as_name.is_empty());
        assert!(!rows[0].organization.is_empty());
    }

    #[test]
    fn table2_topped_by_global_footprint_classes() {
        let (world, igdb) = built();
        let rows = top_by_countries(&igdb, 8);
        // Most of the top-8 should be tier-1 or content networks (the
        // Cloudflare/Microsoft class of the real Table 2).
        let global = rows
            .iter()
            .filter(|r| {
                world
                    .eco
                    .get(r.asn)
                    .map(|a| {
                        matches!(
                            a.class,
                            igdb_synth::AsClass::Tier1 | igdb_synth::AsClass::Content
                        ) || a.region.is_none()
                    })
                    .unwrap_or(false)
            })
            .count();
        assert!(global * 2 >= rows.len(), "{global}/{} global", rows.len());
    }

    #[test]
    fn fig6_overlap_counts_match_scenario() {
        let (_, igdb) = built();
        let report = org_overlap(&igdb, "CoastCable", "Spectra Holdings");
        assert_eq!(report.asns_a.len(), 1);
        assert_eq!(report.asns_b.len(), 4);
        // Declared presence flows through PeeringDB netfac. Facility
        // coordinates carry source jitter, so a footprint city can
        // occasionally standardize to an adjacent town's cell — the
        // counts sit in a ±2 band around the scenario's 30/71/10.
        assert!((29..=32).contains(&report.metros_a.len()), "{}", report.metros_a.len());
        assert!((70..=74).contains(&report.metros_b.len()), "{}", report.metros_b.len());
        assert!((9..=13).contains(&report.shared.len()), "{}", report.shared.len());
    }

    #[test]
    fn overlap_is_symmetric() {
        let (_, igdb) = built();
        let ab = org_overlap(&igdb, "CoastCable", "Spectra Holdings");
        let ba = org_overlap(&igdb, "Spectra Holdings", "CoastCable");
        assert_eq!(ab.shared, ba.shared);
    }

    #[test]
    fn unknown_org_yields_empty_report() {
        let (_, igdb) = built();
        let r = org_overlap(&igdb, "No Such Operator", "CoastCable");
        assert!(r.asns_a.is_empty());
        assert!(r.metros_a.is_empty());
        assert!(r.shared.is_empty());
    }
}
