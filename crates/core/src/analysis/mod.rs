//! The paper's use cases (§4) as library functions, one module per
//! experiment family:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`footprint`] | §4.1, Table 2, Figure 6 |
//! | [`physpath`] | §4.2, Figure 7 |
//! | [`rocketfuel`] | §4.3, Figure 8 |
//! | [`beliefprop`] | §4.4, Table 3 |
//! | [`fusion`] | §4.5, Figures 1 & 9 |
//! | [`intertubes`] | §3.1, Figure 4 |
//! | [`density`] | Appendix, Figure 10 |
//! | [`export`] | Figure 5 |
//! | [`cbg`] | §4.5's latency geolocation fallback (CBG multilateration) |
//! | [`risk`] | §4.2's RiskRoute-style disaster exposure + reroute cost |

pub mod beliefprop;
pub mod cbg;
pub mod density;
pub mod export;
pub mod footprint;
pub mod fusion;
pub mod intertubes;
pub mod physpath;
pub mod risk;
pub mod rocketfuel;
