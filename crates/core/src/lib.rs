//! `igdb-core` — the Internet Geographic Database.
//!
//! This crate is the paper's primary contribution: a system that collects
//! Internet topology snapshots from public sources, standardizes their
//! geography against a single urban-area catalogue via Thiessen polygons,
//! infers physical paths along transportation rights-of-way, organizes
//! everything into the relational schema of the paper's Figure 2, and
//! answers the cross-layer questions of §4.
//!
//! Pipeline (mirroring §2–§3):
//!
//! 1. [`metros`] — build the standard-metro registry from the populated
//!    places dataset; every lat/lon in every source is *spatially joined*
//!    to its nearest urban area (equivalently: to the Thiessen cell
//!    containing it).
//! 2. [`roads`] — the public transportation network; unknown fiber paths
//!    between connected PoPs become shortest road paths (§3.1).
//! 3. [`bdrmap`] — IP→AS mapping: longest-prefix match over BGP RIBs with
//!    bdrmapIT-style border reassignment and traIXroute-style IXP hop
//!    handling (§3.2–§3.3).
//! 4. [`hoiho`] — hostname geolocation: the Hoiho rule file compiled with
//!    `igdb-regex`, tokens resolved through the public geocode dictionary
//!    or city-name slugs (§4.2).
//! 5. [`build`] — ingest + standardize + load: produces an [`Igdb`]
//!    database with every relation of Figure 2.
//! 6. [`analysis`] — the use cases: AS spatial extent (§4.1, Table 2,
//!    Fig 6), physical paths from logical measurements (§4.2, Fig 7),
//!    InterTubes and Rocketfuel comparisons (Figs 4 and 8), belief
//!    propagation geolocation (§4.4, Table 3), node density (Fig 10), and
//!    the Madrid→Berlin fusion (§4.5, Figs 1/9).

pub mod analysis;
pub mod bdrmap;
pub mod build;
pub mod corridor;
pub mod delta;
pub mod epoch;
pub mod hoiho;
pub mod metros;
pub mod roads;
pub mod schema;
pub mod serving;
pub mod shard;
pub mod spath;
pub mod validate;

pub use bdrmap::{BdrMap, IpOrigin};
pub use build::{Igdb, IpInfo, LocationSource};
pub use igdb_fault::{
    BuildError, BuildPolicy, BuildReport, Quarantine, QuarantinedRecord, RecordError,
    SourceFailure, SourceHealth, SourceId,
};
pub use delta::{diff_snapshots, SnapshotDelta, SourceDiff, Stage};
pub use epoch::{Epoch, EpochHandle};
pub use validate::CleanSnapshots;
/// Observability layer (re-exported): install a [`igdb_obs::Registry`] to
/// capture per-stage spans and the ingestion/build counters the pipeline
/// emits.
pub use igdb_obs;
pub use hoiho::HoihoEngine;
pub use metros::{Metro, MetroRegistry};
pub use corridor::CorridorCache;
pub use roads::RoadGraph;
pub use serving::{run_query_mix, MixFailure, QueryMixSummary};
pub use shard::{SpatialPartition, SHARD_MIN_METROS};
pub use spath::{with_mode, ShortestPathEngine, SpMode, SpWorkspace, CH_AUTO_THRESHOLD};
