//! Contraction-hierarchy preprocessing and queries for
//! [`ShortestPathEngine`].
//!
//! # Construction
//!
//! Nodes are contracted one at a time in ascending *priority* order, where
//! priority is the classic edge-difference heuristic
//! `shortcuts_needed − live_degree + contracted_neighbor_count`, with the
//! node index as the deterministic tie-breaker. Contracting node `v`
//! inserts a shortcut `x—y` for every pair of live neighbors whose unique
//! shortest `x→y` path is (as far as a budgeted witness search can tell)
//! exactly `x→v→y`; a shortcut is skipped only when the witness search
//! proves a strictly smaller path avoiding `v`, so budget exhaustion adds
//! redundant-but-harmless shortcuts rather than dropping necessary ones.
//!
//! Priorities are maintained lazily: the heap may hold stale entries, each
//! pop re-evaluates the node against the current overlay graph and
//! re-queues it if something better surfaced. Initial priorities are
//! computed in parallel with `igdb_par::par_map_with` (each node's
//! simulated contraction is a pure function of the untouched input graph,
//! so the result is worker-count invariant); the contraction loop itself is
//! strictly sequential in rank order, per the determinism contract.
//!
//! # Query
//!
//! A query runs two *upward* Dijkstras (edges only lead to higher-ranked
//! endpoints) from source and target — the graph is undirected, so the
//! backward search uses the same upward adjacency — to exhaustion, then
//! picks the meeting node minimizing the combined lexicographic key, and
//! unpacks shortcuts back to original edges. Both searches are tiny
//! compared to the full graph, and a workspace caches them by
//! (engine, endpoint), so batched queries from one source reuse the
//! forward search just like resumable Dijkstra does.
//!
//! # Determinism contract
//!
//! All searches here minimize the same `(weight, hops, tie)` key as
//! `spath.rs` Dijkstra, under which shortest paths are unique, so the CH
//! answer is the *same path*; the reported weight is re-accumulated
//! left-to-right over the unpacked original edges, so the `f64` total is
//! bit-identical too (see the `spath` module docs).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{Key, ShortestPathEngine, SpWorkspace, SHRINK_FACTOR, SHRINK_MIN};

const SENTINEL: u32 = u32::MAX;

/// Settle budget for one witness search. Exhausting it conservatively adds
/// the shortcut, so the budget trades preprocessing time against a few
/// redundant edges — never correctness.
const WITNESS_BUDGET: usize = 64;

/// Overlay edge store: original arcs first, shortcuts appended during
/// contraction. `mid` is `[SENTINEL; 2]` for originals, else the two child
/// edge ids (`x—v`, `v—y`) a shortcut expands to.
struct Edges {
    a: Vec<u32>,
    b: Vec<u32>,
    w: Vec<f64>,
    hops: Vec<u32>,
    tie: Vec<u128>,
    mid: Vec<[u32; 2]>,
}

impl Edges {
    fn len(&self) -> usize {
        self.a.len()
    }

    #[inline]
    fn key(&self, e: usize) -> Key {
        Key { w: self.w[e], hops: self.hops[e], tie: self.tie[e] }
    }

    #[inline]
    fn other(&self, e: usize, x: u32) -> u32 {
        if self.a[e] == x {
            self.b[e]
        } else {
            debug_assert_eq!(self.b[e], x);
            self.a[e]
        }
    }

    fn push(&mut self, a: u32, b: u32, key: Key, mid: [u32; 2]) -> u32 {
        let id = self.a.len() as u32;
        self.a.push(a);
        self.b.push(b);
        self.w.push(key.w);
        self.hops.push(key.hops);
        self.tie.push(key.tie);
        self.mid.push(mid);
        id
    }
}

/// A shortcut planned while (actually or hypothetically) contracting a
/// node: connects neighbors `x` and `y` through child edges `ex` (`x—v`)
/// and `ey` (`v—y`).
struct Shortcut {
    x: u32,
    y: u32,
    ex: u32,
    ey: u32,
    key: Key,
}

/// Generation-stamped scratch for budgeted witness Dijkstras over the
/// overlay graph.
struct WitnessScratch {
    generation: u32,
    reached: Vec<u32>,
    settled: Vec<u32>,
    w: Vec<f64>,
    hops: Vec<u32>,
    tie: Vec<u128>,
    heap: BinaryHeap<Reverse<(u64, u32, u128, u32)>>,
}

impl WitnessScratch {
    fn new(n: usize) -> Self {
        Self {
            generation: 0,
            reached: vec![0; n],
            settled: vec![0; n],
            w: vec![f64::INFINITY; n],
            hops: vec![0; n],
            tie: vec![0; n],
            heap: BinaryHeap::new(),
        }
    }

    fn begin(&mut self, source: u32) -> u32 {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.reached.fill(0);
            self.settled.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        let s = source as usize;
        self.reached[s] = self.generation;
        self.w[s] = 0.0;
        self.hops[s] = 0;
        self.tie[s] = 0;
        self.heap.push(Reverse((0, 0, 0, source)));
        self.generation
    }
}

/// Live (uncontracted) neighbors of `v`, one entry per distinct neighbor
/// carrying the minimum-key edge to it, sorted by neighbor index. The sort
/// plus min-key dedup make every downstream pair loop deterministic and
/// give duplicate arcs the same winner the Dijkstra relaxation picks.
fn live_neighbors(edges: &Edges, adj_v: &[u32], contracted: &[bool], v: u32) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for &e in adj_v {
        let o = edges.other(e as usize, v);
        if !contracted[o as usize] {
            out.push((o, e));
        }
    }
    out.sort_by_key(|&(o, e)| (o, edges.key(e as usize).bits(), e));
    out.dedup_by_key(|entry| entry.0);
    out
}

/// Budgeted multi-target witness search from `x`, avoiding `skip`. Sets
/// `witnessed[j]` iff a path `x→targets[j].0` *strictly* smaller than the
/// candidate key `targets[j].1` exists without going through `skip`.
fn witness_scan(
    edges: &Edges,
    adj: &[Vec<u32>],
    contracted: &[bool],
    scratch: &mut WitnessScratch,
    skip: u32,
    x: u32,
    targets: &[(u32, Key)],
    witnessed: &mut [bool],
) {
    let max_cand = targets.iter().map(|t| t.1.bits()).max().expect("targets non-empty");
    let generation = scratch.begin(x);
    let mut remaining = targets.len();
    let mut settles = 0usize;
    while let Some(Reverse((wb, h, t, u))) = scratch.heap.pop() {
        let un = u as usize;
        if scratch.settled[un] == generation {
            continue;
        }
        let key = Key { w: f64::from_bits(wb), hops: h, tie: t };
        if key.bits() > max_cand {
            break;
        }
        scratch.settled[un] = generation;
        settles += 1;
        if let Some(j) = targets.iter().position(|&(y, _)| y == u) {
            if key.lt(targets[j].1) {
                witnessed[j] = true;
            }
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        if settles >= WITNESS_BUDGET {
            break;
        }
        for &e in &adj[un] {
            let o = edges.other(e as usize, u);
            let on = o as usize;
            if o == skip || contracted[on] {
                continue;
            }
            let nk = key.add(edges.key(e as usize));
            if nk.bits() > max_cand {
                continue;
            }
            let better = scratch.reached[on] != generation
                || nk.bits() < (scratch.w[on].to_bits(), scratch.hops[on], scratch.tie[on]);
            if better {
                scratch.reached[on] = generation;
                scratch.w[on] = nk.w;
                scratch.hops[on] = nk.hops;
                scratch.tie[on] = nk.tie;
                scratch.heap.push(Reverse((nk.w.to_bits(), nk.hops, nk.tie, o)));
            }
        }
    }
}

/// Simulated (or real) contraction of `v`: the shortcuts it would require
/// and its current live degree.
fn plan_shortcuts(
    edges: &Edges,
    adj: &[Vec<u32>],
    contracted: &[bool],
    scratch: &mut WitnessScratch,
    v: u32,
) -> (Vec<Shortcut>, usize) {
    let nbrs = live_neighbors(edges, &adj[v as usize], contracted, v);
    let mut plan = Vec::new();
    let mut witnessed = Vec::new();
    for i in 0..nbrs.len() {
        let (x, ex) = nbrs[i];
        let targets: Vec<(u32, Key)> = nbrs[i + 1..]
            .iter()
            .map(|&(y, ey)| (y, edges.key(ex as usize).add(edges.key(ey as usize))))
            .collect();
        if targets.is_empty() {
            continue;
        }
        witnessed.clear();
        witnessed.resize(targets.len(), false);
        witness_scan(edges, adj, contracted, scratch, v, x, &targets, &mut witnessed);
        for (j, &(y, key)) in targets.iter().enumerate() {
            if !witnessed[j] {
                plan.push(Shortcut { x, y, ex, ey: nbrs[i + 1 + j].1, key });
            }
        }
    }
    (plan, nbrs.len())
}

/// The preprocessed hierarchy: final overlay edge set (originals +
/// shortcuts), contraction ranks, and the upward adjacency (each edge filed
/// under its lower-ranked endpoint).
pub(crate) struct Hierarchy {
    nodes: usize,
    edges: Edges,
    up_offsets: Vec<u32>,
    up_edges: Vec<u32>,
    /// Node ids in contraction (rank) order — the recipe a delta apply
    /// feeds back through [`Hierarchy::build_seeded`] to repair the index
    /// without recomputing priorities.
    order: Vec<u32>,
}

/// Fresh overlay (originals only) + adjacency for `engine`.
fn overlay_init(engine: &ShortestPathEngine) -> (Edges, Vec<Vec<u32>>) {
    let n = engine.node_count();
    let mut edges = Edges {
        a: Vec::new(),
        b: Vec::new(),
        w: Vec::new(),
        hops: Vec::new(),
        tie: Vec::new(),
        mid: Vec::new(),
    };
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b, w, tie) in engine.arcs() {
        // Self-loops can never lie on a shortest path (hops strictly
        // grow the key), so the overlay drops them.
        if a == b {
            continue;
        }
        let id = edges.push(a, b, Key { w, hops: 1, tie: tie as u128 }, [SENTINEL; 2]);
        adj[a as usize].push(id);
        adj[b as usize].push(id);
    }
    (edges, adj)
}

impl Hierarchy {
    pub(crate) fn build(engine: &ShortestPathEngine) -> Self {
        // No span here: the build is triggered lazily through a OnceLock,
        // so *which thread* (serial pipeline or pool worker) runs it is
        // scheduling-dependent — a span's parent would be too. Perf
        // metrics carry the cost instead; spans stay serial-only (§11).
        igdb_obs::perf("ch.builds", "", 1);
        let n = engine.node_count();
        let (mut edges, mut adj) = overlay_init(engine);
        let original_edges = edges.len();

        let mut contracted = vec![false; n];
        let mut deleted = vec![0u32; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);

        // Initial priorities in parallel: each simulated contraction is a
        // pure function of the untouched graph, and par_map_with preserves
        // input order, so this is worker-count invariant. `quiet` demotes
        // the pool's submission ticks to perf class for the same reason the
        // span above is suppressed: the build fires lazily, and whether it
        // fires at all depends on cache warmth (a delta apply reusing a warm
        // road graph never gets here), so the ticks cannot sit in the
        // deterministic counter stream.
        let node_ids: Vec<u32> = (0..n as u32).collect();
        let prios: Vec<i64> = igdb_par::quiet(|| {
            igdb_par::par_map_with(
                &node_ids,
                || WitnessScratch::new(n),
                |scratch, &v| {
                    let (plan, degree) = plan_shortcuts(&edges, &adj, &contracted, scratch, v);
                    plan.len() as i64 - degree as i64
                },
            )
        });
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = node_ids
            .iter()
            .map(|&v| Reverse((prios[v as usize], v)))
            .collect();

        // Sequential lazy-heap contraction in rank order.
        let mut scratch = WitnessScratch::new(n);
        while let Some(Reverse((_, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            let (plan, degree) = plan_shortcuts(&edges, &adj, &contracted, &mut scratch, v);
            let prio = plan.len() as i64 - degree as i64 + deleted[v as usize] as i64;
            if let Some(&Reverse(top)) = heap.peek() {
                if (prio, v) > top {
                    heap.push(Reverse((prio, v)));
                    continue;
                }
            }
            order.push(v);
            contracted[v as usize] = true;
            for &e in &adj[v as usize] {
                let o = edges.other(e as usize, v);
                if !contracted[o as usize] {
                    deleted[o as usize] += 1;
                }
            }
            for sc in plan {
                let id = edges.push(sc.x, sc.y, sc.key, [sc.ex, sc.ey]);
                adj[sc.x as usize].push(id);
                adj[sc.y as usize].push(id);
            }
        }
        debug_assert_eq!(order.len(), n);
        // Perf class per the observability contract: shortcut totals are
        // data-determined but reported alongside the other preprocessing
        // costs, outside the deterministic counter snapshot.
        igdb_obs::perf("ch.shortcuts_added", "", (edges.len() - original_edges) as u64);
        Self::finish(n, edges, order)
    }

    /// Builds a hierarchy by contracting in the *given* order instead of
    /// computing priorities — the scoped re-contraction path for delta
    /// repair. Any permutation yields a *correct* CH (witness searches are
    /// conservative: budget exhaustion adds redundant-but-harmless
    /// shortcuts, and queries re-accumulate weights over unpacked original
    /// arcs), so a delta apply reuses the previous build's order with the
    /// dirtied nodes moved to the end: untouched regions contract exactly
    /// as before, while dirty nodes — whose neighborhoods changed — are
    /// re-planned last, where contraction is cheapest. Skipping the
    /// parallel priority pass and the lazy heap is what makes repair much
    /// cheaper than `build`.
    pub(crate) fn build_seeded(engine: &ShortestPathEngine, order: &[u32]) -> Self {
        igdb_obs::perf("ch.builds", "seeded", 1);
        let n = engine.node_count();
        assert_eq!(order.len(), n, "seeded order must cover every node");
        debug_assert!(
            {
                let mut seen = vec![false; n];
                order.iter().all(|&v| {
                    let fresh = !seen[v as usize];
                    seen[v as usize] = true;
                    fresh
                })
            },
            "seeded order must be a permutation"
        );
        let (mut edges, mut adj) = overlay_init(engine);
        let original_edges = edges.len();
        let mut contracted = vec![false; n];
        let mut scratch = WitnessScratch::new(n);
        for &v in order {
            let (plan, _) = plan_shortcuts(&edges, &adj, &contracted, &mut scratch, v);
            contracted[v as usize] = true;
            for sc in plan {
                let id = edges.push(sc.x, sc.y, sc.key, [sc.ex, sc.ey]);
                adj[sc.x as usize].push(id);
                adj[sc.y as usize].push(id);
            }
        }
        igdb_obs::perf("ch.shortcuts_added", "seeded", (edges.len() - original_edges) as u64);
        Self::finish(n, edges, order.to_vec())
    }

    /// Shared epilogue: ranks from the contraction order, then the upward
    /// CSR (every overlay edge filed under its lower-ranked endpoint, in
    /// edge-id order).
    fn finish(n: usize, edges: Edges, order: Vec<u32>) -> Self {
        let mut rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        let mut up_degree = vec![0u32; n];
        for e in 0..edges.len() {
            let (a, b) = (edges.a[e] as usize, edges.b[e] as usize);
            let lower = if rank[a] < rank[b] { a } else { b };
            up_degree[lower] += 1;
        }
        let mut up_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        up_offsets.push(0);
        for d in &up_degree {
            acc += d;
            up_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = up_offsets[..n].to_vec();
        let mut up_edges = vec![0u32; edges.len()];
        for e in 0..edges.len() {
            let (a, b) = (edges.a[e] as usize, edges.b[e] as usize);
            let lower = if rank[a] < rank[b] { a } else { b };
            up_edges[cursor[lower] as usize] = e as u32;
            cursor[lower] += 1;
        }
        Self { nodes: n, edges, up_offsets, up_edges, order }
    }

    /// The contraction order this hierarchy was built with.
    pub(crate) fn contraction_order(&self) -> &[u32] {
        &self.order
    }

    /// Total number of shortcut edges the preprocessing added (diagnostic).
    #[cfg(test)]
    pub(crate) fn shortcut_count(&self) -> usize {
        self.edges.mid.iter().filter(|m| m[0] != SENTINEL).count()
    }

    /// CH point query. Same `(path, weight)` as the Dijkstra mode, or
    /// `None` when unreachable. `from != to` and both in range (the engine
    /// entry points already handled the trivial cases).
    pub(crate) fn shortest_path(
        &self,
        engine: &ShortestPathEngine,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        let SpWorkspace { ch_fwd, ch_bwd, unpack, .. } = ws;
        if ch_fwd.prepare(self, engine.id, from) {
            igdb_obs::perf("ch.up_settled", "", ch_fwd.settled_list.len() as u64);
            igdb_obs::observe("ch.settled_per_search", "up", ch_fwd.settled_list.len() as u64);
        }
        if ch_bwd.prepare(self, engine.id, to) {
            igdb_obs::perf("ch.down_settled", "", ch_bwd.settled_list.len() as u64);
            igdb_obs::observe("ch.settled_per_search", "down", ch_bwd.settled_list.len() as u64);
        }

        // Meeting node: minimum combined key over nodes settled by both
        // searches, node index as the final tie-breaker.
        let mut best: Option<(u64, u32, u128, u32)> = None;
        for &u in &ch_fwd.settled_list {
            let un = u as usize;
            if ch_bwd.settled[un] != ch_bwd.generation {
                continue;
            }
            let cand = (
                (ch_fwd.w[un] + ch_bwd.w[un]).to_bits(),
                ch_fwd.hops[un] + ch_bwd.hops[un],
                ch_fwd.tie[un] + ch_bwd.tie[un],
                u,
            );
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let (_, _, _, meet) = best?;

        // Hierarchy-edge chain from→meet (parent walk reversed), then
        // meet→to (backward parent walk reads off in forward order).
        let mut chain: Vec<u32> = Vec::new();
        let mut cur = meet as usize;
        while ch_fwd.parent[cur] != SENTINEL {
            chain.push(ch_fwd.parent[cur]);
            cur = ch_fwd.parent_node[cur] as usize;
        }
        chain.reverse();
        cur = meet as usize;
        while ch_bwd.parent[cur] != SENTINEL {
            chain.push(ch_bwd.parent[cur]);
            cur = ch_bwd.parent_node[cur] as usize;
        }

        // Unpack shortcuts depth-first; accumulate the total left-to-right
        // over original edges exactly as Dijkstra would.
        let mut nodes = vec![from];
        let mut total = 0.0f64;
        let mut at = from as u32;
        unpack.clear();
        for &eid in &chain {
            unpack.push(eid);
            while let Some(e) = unpack.pop() {
                let en = e as usize;
                let [c1, c2] = self.edges.mid[en];
                if c1 == SENTINEL {
                    let next = self.edges.other(en, at);
                    total += self.edges.w[en];
                    nodes.push(next as usize);
                    at = next;
                } else {
                    // The child touching the current endpoint expands
                    // first; endpoint sets make the choice unambiguous.
                    let c1n = c1 as usize;
                    let (first, second) =
                        if self.edges.a[c1n] == at || self.edges.b[c1n] == at {
                            (c1, c2)
                        } else {
                            (c2, c1)
                        };
                    unpack.push(second);
                    unpack.push(first);
                }
            }
        }
        debug_assert_eq!(at as usize, to);
        Some((nodes, total))
    }
}

/// One cached upward search (forward or backward) inside a workspace.
/// Generation-stamped like `SpWorkspace`; a search keyed by the same
/// (engine, endpoint) is reused across queries, which is what makes
/// batched `distances_from` share its forward search.
pub(crate) struct ChSearch {
    generation: u32,
    reached: Vec<u32>,
    settled: Vec<u32>,
    w: Vec<f64>,
    hops: Vec<u32>,
    tie: Vec<u128>,
    parent: Vec<u32>,
    parent_node: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32, u128, u32)>>,
    settled_list: Vec<u32>,
    source: usize,
    engine_id: u64,
}

impl ChSearch {
    pub(crate) fn new() -> Self {
        Self {
            generation: 0,
            reached: Vec::new(),
            settled: Vec::new(),
            w: Vec::new(),
            hops: Vec::new(),
            tie: Vec::new(),
            parent: Vec::new(),
            parent_node: Vec::new(),
            heap: BinaryHeap::new(),
            settled_list: Vec::new(),
            source: usize::MAX,
            engine_id: 0,
        }
    }

    fn size_to(&mut self, n: usize) {
        if self.reached.len() > SHRINK_MIN && self.reached.len() / SHRINK_FACTOR >= n.max(1) {
            self.reached.truncate(n);
            self.settled.truncate(n);
            self.w.truncate(n);
            self.hops.truncate(n);
            self.tie.truncate(n);
            self.parent.truncate(n);
            self.parent_node.truncate(n);
            self.reached.shrink_to_fit();
            self.settled.shrink_to_fit();
            self.w.shrink_to_fit();
            self.hops.shrink_to_fit();
            self.tie.shrink_to_fit();
            self.parent.shrink_to_fit();
            self.parent_node.shrink_to_fit();
            self.heap = BinaryHeap::new();
            self.settled_list = Vec::new();
        }
        if self.reached.len() < n {
            self.reached.resize(n, 0);
            self.settled.resize(n, 0);
            self.w.resize(n, f64::INFINITY);
            self.hops.resize(n, 0);
            self.tie.resize(n, 0);
            self.parent.resize(n, SENTINEL);
            self.parent_node.resize(n, SENTINEL);
        }
    }

    /// Ensures this scratch holds the exhaustive upward search from
    /// `source` on `hier`. Returns `true` when the search actually ran
    /// (`false` = cache hit on the same engine + endpoint).
    fn prepare(&mut self, hier: &Hierarchy, engine_id: u64, source: usize) -> bool {
        if self.engine_id == engine_id
            && self.source == source
            && self.generation != 0
            && self.reached.len() >= hier.nodes
        {
            return false;
        }
        self.size_to(hier.nodes);
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.reached.fill(0);
            self.settled.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        self.settled_list.clear();
        self.source = source;
        self.engine_id = engine_id;
        let generation = self.generation;
        let s = source;
        self.reached[s] = generation;
        self.w[s] = 0.0;
        self.hops[s] = 0;
        self.tie[s] = 0;
        self.parent[s] = SENTINEL;
        self.parent_node[s] = SENTINEL;
        self.heap.push(Reverse((0, 0, 0, s as u32)));
        while let Some(Reverse((_, _, _, u))) = self.heap.pop() {
            let un = u as usize;
            if self.settled[un] == generation {
                continue;
            }
            self.settled[un] = generation;
            self.settled_list.push(u);
            let key = Key { w: self.w[un], hops: self.hops[un], tie: self.tie[un] };
            let lo = hier.up_offsets[un] as usize;
            let hi = hier.up_offsets[un + 1] as usize;
            for &e in &hier.up_edges[lo..hi] {
                let en = e as usize;
                let v = hier.edges.other(en, u);
                let vn = v as usize;
                let nk = key.add(hier.edges.key(en));
                let better = self.reached[vn] != generation
                    || nk.bits() < (self.w[vn].to_bits(), self.hops[vn], self.tie[vn]);
                if better {
                    self.reached[vn] = generation;
                    self.w[vn] = nk.w;
                    self.hops[vn] = nk.hops;
                    self.tie[vn] = nk.tie;
                    self.parent[vn] = e;
                    self.parent_node[vn] = u;
                    self.heap.push(Reverse((nk.w.to_bits(), nk.hops, nk.tie, v)));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ShortestPathEngine, SpMode, SpWorkspace};

    fn engine(n: usize, arcs: &[(usize, usize, f64)]) -> ShortestPathEngine {
        ShortestPathEngine::from_undirected(n, arcs.iter().copied())
    }

    fn all_pairs_agree(e: &ShortestPathEngine) {
        e.prepare_ch();
        let n = e.node_count();
        for from in 0..n {
            for to in 0..n {
                let d = super::super::with_mode(SpMode::Dijkstra, || {
                    e.shortest_path_with(&mut SpWorkspace::new(), from, to)
                });
                let c = super::super::with_mode(SpMode::Ch, || {
                    e.shortest_path_with(&mut SpWorkspace::new(), from, to)
                });
                assert_eq!(d, c, "pair ({from}, {to})");
            }
        }
    }

    #[test]
    fn ch_matches_dijkstra_on_grid() {
        // 5x5 grid with dyadic weights: plenty of equal-weight paths, so
        // this exercises the tie-breaking contract, not just distances.
        let mut arcs = Vec::new();
        let id = |r: usize, c: usize| r * 5 + c;
        for r in 0..5 {
            for c in 0..5 {
                if c + 1 < 5 {
                    arcs.push((id(r, c), id(r, c + 1), 1.0));
                }
                if r + 1 < 5 {
                    arcs.push((id(r, c), id(r + 1, c), 1.0));
                }
            }
        }
        all_pairs_agree(&engine(25, &arcs));
    }

    #[test]
    fn ch_handles_disconnected_zero_weight_and_duplicates() {
        let arcs = vec![
            (0, 1, 0.0),
            (1, 2, 0.0),
            (0, 2, 0.0), // equal-weight triangle, broken by ties
            (2, 3, 1.5),
            (2, 3, 1.5), // duplicate arc
            (3, 4, 0.25),
            (5, 6, 2.0), // separate component
            (6, 6, 0.0), // self loop
        ];
        all_pairs_agree(&engine(7, &arcs));
    }

    #[test]
    fn hierarchy_adds_shortcuts_on_a_chain_free_graph() {
        // A star forces shortcuts between the leaves once the hub
        // contracts first (it has the highest edge difference, so it
        // contracts last; the leaves go first and need no shortcuts —
        // instead check a path graph where middles contract away).
        let e = engine(6, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        e.prepare_ch();
        let h = e.hierarchy();
        assert!(h.shortcut_count() > 0, "path contraction must add shortcuts");
        assert_eq!(h.nodes, 6);
        all_pairs_agree(&e);
    }
}
