//! Snapshot deltas: what changed between two validated snapshot sets, and
//! how far into the build pipeline the change reaches.
//!
//! [`diff_snapshots`] compares two *screened* record sets (see
//! [`CleanSnapshots::to_snapshot_set`](crate::validate::CleanSnapshots::to_snapshot_set))
//! source by source. Because the inputs are post-validation, FK cascades
//! are already closed: a removed atlas node takes its links with it either
//! in the generator or in quarantine, so the diff never sees a dangling
//! reference.
//!
//! The pipeline stages form a fixed order (the order `build_validated`
//! runs them in), and dirtiness is **monotone**: if stage *k* must re-run,
//! every later stage must too, because each stage reads tables and
//! intermediates the earlier ones wrote. The clean stages therefore form a
//! prefix of the build, and `apply_delta` copies their tables verbatim and
//! replays their recorded counter deltas instead of recomputing them.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use igdb_synth::sources::SnapshotSet;

/// One pipeline stage of `build_validated`, in execution order. The
/// discriminants index the per-stage counter ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Metro registry from Natural Earth (spatial index + Thiessen cells).
    Metros,
    /// Right-of-way road graph.
    Roads,
    /// `city_points` / `city_polygons`.
    CityTables,
    /// `phys_nodes` / `phys_conn` — spatial joins plus roadway routing.
    Physical,
    /// `land_points` / `sub_cables` from Telegeography.
    Telegeo,
    /// `asn_name` / `asn_org` / `asn_conn` / `ixp_prefixes`.
    Logical,
    /// `asn_loc` (facility + IXP presence, remote-peering inference).
    AsnLoc,
    /// `probes`.
    Probes,
    /// `traceroutes`.
    Traceroutes,
    /// `ip_asn_dns` — bdrmap, rDNS, Hoiho, anycast annotation.
    IpResolution,
}

impl Stage {
    /// All stages in build order.
    pub const ALL: [Stage; 10] = [
        Stage::Metros,
        Stage::Roads,
        Stage::CityTables,
        Stage::Physical,
        Stage::Telegeo,
        Stage::Logical,
        Stage::AsnLoc,
        Stage::Probes,
        Stage::Traceroutes,
        Stage::IpResolution,
    ];

    /// Stable lowercase label, used for per-stage perf metrics.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Metros => "metros",
            Stage::Roads => "roads",
            Stage::CityTables => "city_tables",
            Stage::Physical => "physical",
            Stage::Telegeo => "telegeo",
            Stage::Logical => "logical",
            Stage::AsnLoc => "asn_loc",
            Stage::Probes => "probes",
            Stage::Traceroutes => "traceroutes",
            Stage::IpResolution => "ip_resolution",
        }
    }

    /// Tables this stage writes (used to copy a clean prefix verbatim).
    pub fn tables(self) -> &'static [&'static str] {
        match self {
            Stage::Metros | Stage::Roads => &[],
            Stage::CityTables => &["city_points", "city_polygons"],
            Stage::Physical => &["phys_nodes", "phys_conn"],
            Stage::Telegeo => &["land_points", "sub_cables"],
            Stage::Logical => &["asn_name", "asn_org", "asn_conn", "ixp_prefixes"],
            Stage::AsnLoc => &["asn_loc"],
            Stage::Probes => &["probes"],
            Stage::Traceroutes => &["traceroutes"],
            Stage::IpResolution => &["ip_asn_dns"],
        }
    }
}

/// The earliest stage that consumes each source. A change to the source
/// dirties that stage and, by monotonicity, everything after it.
fn earliest_stage(source: &'static str) -> Stage {
    match source {
        "natural_earth" => Stage::Metros,
        "roads" => Stage::Roads,
        "atlas_nodes" | "atlas_links" | "pdb_facilities" => Stage::Physical,
        "telegeo" => Stage::Telegeo,
        // geo_codes feed the label resolver whose first consumer is the
        // IXP join; he_exchanges / euroix are screened and counted but not
        // loaded into relations — Logical is their conservative home.
        "asrank_entries" | "asrank_links" | "pdb_networks" | "pdb_ix" | "pch_ixps"
        | "geo_codes" | "he_exchanges" | "euroix" => Stage::Logical,
        "pdb_netfac" | "pdb_netix" => Stage::AsnLoc,
        "ripe_anchors" => Stage::Probes,
        "ripe_traceroutes" => Stage::Traceroutes,
        "rdns" | "bgp_prefixes" | "anycast_prefixes" | "hoiho_rules" => Stage::IpResolution,
        other => unreachable!("unknown source {other}"),
    }
}

/// Per-source record-level difference (multiset semantics: a mutated
/// record counts once as removed and once as added).
#[derive(Clone, Debug)]
pub struct SourceDiff {
    pub source: &'static str,
    pub added: usize,
    pub removed: usize,
    /// The earliest pipeline stage this source feeds.
    pub stage: Stage,
}

/// A typed diff between the snapshot set an [`crate::Igdb`] was built from
/// and a candidate replacement.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDelta {
    /// Sources whose record multisets differ, in pipeline-stage order.
    pub sources: Vec<SourceDiff>,
    /// Earliest dirty stage; `None` means the sets are identical and the
    /// whole table prefix can be copied.
    pub first_dirty: Option<Stage>,
    /// The `as_of_date` changed — every dated row changes, so the delta
    /// degenerates to a full rebuild.
    pub date_changed: bool,
    /// `natural_earth` only grew, and the old places are a prefix of the
    /// new: the metro registry can be extended in place (R-tree inserts)
    /// instead of rebuilt, keeping existing metro ids stable.
    pub metro_append_only: bool,
    /// Metros whose inferred physical connectivity changed, filled by
    /// `apply_delta` once the new `phys_conn` rows exist. Keys corridor
    /// eviction and the scoped CH re-contraction.
    pub touched_metros: BTreeSet<usize>,
    /// The physical pair set only shrank (no additions, no re-weights).
    /// Only then may corridor entries avoiding the touched metros migrate:
    /// removing edges can never create a shorter path, while any addition
    /// could, invalidating every cached corridor.
    pub phys_removal_only: bool,
    /// None of the sources the IP-resolution stage actually reads changed
    /// (see [`IP_RESOLUTION_INPUTS`]). IP resolution sits last in the
    /// pipeline, so monotone prefix dirtiness would re-run it for *every*
    /// non-empty delta — but its input set is narrower than "everything":
    /// atlas, facility, road, telegeo, and AS-Rank churn never reaches it.
    /// When true, `apply_delta` shares the prior's resolution products
    /// (`bdrmap`, `hoiho`, `ip_asn_dns`) instead of recomputing them.
    pub ip_inputs_clean: bool,
    /// The traceroute relation's only inputs — the `ripe_traceroutes`
    /// records and the snapshot date — are unchanged. Like
    /// [`ip_inputs_clean`](Self::ip_inputs_clean) this narrows monotone
    /// prefix dirtiness: atlas or logical churn dirties every stage from
    /// `Physical` on, but re-inserting tens of thousands of identical hop
    /// rows is the single most expensive table load in the suffix. When
    /// true, the stage's table is copied from the prior instead.
    pub traceroute_rows_clean: bool,
}

/// The sources the IP-resolution stage reads, directly or through the
/// products it consumes: the BGP RIB and traceroute hop sequences (bdrmap),
/// rDNS hostnames and Hoiho rules plus the geo-code label resolver and the
/// metro registry (Hoiho geolocation and row labels), anycast prefixes
/// (annotation), and the PeeringDB IXP catalogue (`ixp_lans` /
/// `ixp_prefix_metro`). A change to any other source cannot alter a single
/// `ip_asn_dns` row.
pub const IP_RESOLUTION_INPUTS: [&str; 8] = [
    "natural_earth",
    "geo_codes",
    "pdb_ix",
    "ripe_traceroutes",
    "rdns",
    "bgp_prefixes",
    "anycast_prefixes",
    "hoiho_rules",
];

impl SnapshotDelta {
    /// True when the two sets were record-identical.
    pub fn is_empty(&self) -> bool {
        self.first_dirty.is_none() && !self.date_changed
    }

    /// Total records added across sources.
    pub fn records_added(&self) -> usize {
        self.sources.iter().map(|s| s.added).sum()
    }

    /// Total records removed across sources.
    pub fn records_removed(&self) -> usize {
        self.sources.iter().map(|s| s.removed).sum()
    }
}

/// Streams a record's `Debug` rendering into two independently seeded
/// hashers without materializing the string — the diff below runs on every
/// apply, and allocating ~10⁵ debug strings (traceroute records carry
/// whole hop vectors) dominated its cost.
struct HashFmt<'a>(
    &'a mut std::collections::hash_map::DefaultHasher,
    &'a mut std::collections::hash_map::DefaultHasher,
);

impl std::fmt::Write for HashFmt<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        use std::hash::Hasher as _;
        self.0.write(s.as_bytes());
        self.1.write(s.as_bytes());
        Ok(())
    }
}

/// A 128-bit fingerprint of one record's `Debug` rendering. `DefaultHasher`
/// is deterministic (fixed-key SipHash), and the second lane starts from a
/// distinct seed byte, so a collision needs both independent 64-bit lanes
/// to collide at once — far below any practical concern for feed-sized
/// multisets.
fn record_key<T: std::fmt::Debug>(r: &T) -> (u64, u64) {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;
    let mut a = std::collections::hash_map::DefaultHasher::new();
    let mut b = std::collections::hash_map::DefaultHasher::new();
    b.write_u8(0xD1);
    write!(HashFmt(&mut a, &mut b), "{r:?}").expect("hashing never fails");
    (a.finish(), b.finish())
}

/// Multiset diff of one source via its records' `Debug` rendering (every
/// source record type derives `Debug` with full field coverage, so equal
/// renderings mean equal records). A small delta leaves most sources
/// untouched, and the common case is untouched *in order* — caught by the
/// plain slice equality below for the price of a field-by-field scan,
/// skipping the per-record `Debug` hashing that dominates diff cost.
fn diff_source<T: std::fmt::Debug + PartialEq>(
    source: &'static str,
    old: &[T],
    new: &[T],
    out: &mut Vec<SourceDiff>,
) {
    if old == new {
        return;
    }
    let mut counts: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for r in old {
        *counts.entry(record_key(r)).or_default() -= 1;
    }
    for r in new {
        *counts.entry(record_key(r)).or_default() += 1;
    }
    let added: i64 = counts.values().filter(|&&c| c > 0).sum();
    let removed: i64 = -counts.values().filter(|&&c| c < 0).sum::<i64>();
    if added > 0 || removed > 0 {
        out.push(SourceDiff {
            source,
            added: added as usize,
            removed: removed as usize,
            stage: earliest_stage(source),
        });
    }
}

/// Diffs two validated snapshot sets. `old` is the set the current world
/// was built from; `new` is the validated candidate.
pub fn diff_snapshots(old: &SnapshotSet, new: &SnapshotSet) -> SnapshotDelta {
    let mut sources = Vec::new();
    diff_source("natural_earth", &old.natural_earth, &new.natural_earth, &mut sources);
    diff_source("roads", &old.roads, &new.roads, &mut sources);
    diff_source("atlas_nodes", &old.atlas_nodes, &new.atlas_nodes, &mut sources);
    diff_source("atlas_links", &old.atlas_links, &new.atlas_links, &mut sources);
    diff_source("pdb_facilities", &old.pdb_facilities, &new.pdb_facilities, &mut sources);
    diff_source("telegeo", &old.telegeo, &new.telegeo, &mut sources);
    diff_source("asrank_entries", &old.asrank_entries, &new.asrank_entries, &mut sources);
    diff_source("asrank_links", &old.asrank_links, &new.asrank_links, &mut sources);
    diff_source("pdb_networks", &old.pdb_networks, &new.pdb_networks, &mut sources);
    diff_source("pdb_ix", &old.pdb_ix, &new.pdb_ix, &mut sources);
    diff_source("pch_ixps", &old.pch_ixps, &new.pch_ixps, &mut sources);
    diff_source("geo_codes", &old.geo_codes, &new.geo_codes, &mut sources);
    diff_source("he_exchanges", &old.he_exchanges, &new.he_exchanges, &mut sources);
    diff_source("euroix", &old.euroix, &new.euroix, &mut sources);
    diff_source("pdb_netfac", &old.pdb_netfac, &new.pdb_netfac, &mut sources);
    diff_source("pdb_netix", &old.pdb_netix, &new.pdb_netix, &mut sources);
    diff_source("ripe_anchors", &old.ripe_anchors, &new.ripe_anchors, &mut sources);
    diff_source("ripe_traceroutes", &old.ripe_traceroutes, &new.ripe_traceroutes, &mut sources);
    diff_source("rdns", &old.rdns, &new.rdns, &mut sources);
    diff_source("bgp_prefixes", &old.bgp_prefixes, &new.bgp_prefixes, &mut sources);
    diff_source("anycast_prefixes", &old.anycast_prefixes, &new.anycast_prefixes, &mut sources);
    diff_source("hoiho_rules", &old.hoiho_rules, &new.hoiho_rules, &mut sources);
    sources.sort_by_key(|s| s.stage);

    let date_changed = old.as_of_date != new.as_of_date;
    let first_dirty = if date_changed {
        Some(Stage::Metros)
    } else {
        sources.first().map(|s| s.stage)
    };
    let ne_changed = sources.iter().any(|s| s.source == "natural_earth");
    let metro_append_only = ne_changed
        && new.natural_earth.len() > old.natural_earth.len()
        && old.natural_earth == new.natural_earth[..old.natural_earth.len()];
    let ip_inputs_clean = !date_changed
        && sources
            .iter()
            .all(|s| !IP_RESOLUTION_INPUTS.contains(&s.source));
    let traceroute_rows_clean =
        !date_changed && sources.iter().all(|s| s.source != "ripe_traceroutes");
    SnapshotDelta {
        sources,
        first_dirty,
        date_changed,
        metro_append_only,
        touched_metros: BTreeSet::new(),
        phys_removal_only: false,
        ip_inputs_clean,
        traceroute_rows_clean,
    }
}

/// Metros incident to any pair present in one pair multiset but not the
/// other — the dirty region a delta's physical change reaches directly.
/// Pairs are `(from, to, km)` with `km` compared by bit pattern.
pub fn pair_diff_metros(
    old: &[(usize, usize, f64)],
    new: &[(usize, usize, f64)],
) -> BTreeSet<usize> {
    let mut counts: BTreeMap<(usize, usize, u64), i64> = BTreeMap::new();
    for &(a, b, km) in old {
        *counts.entry((a, b, km.to_bits())).or_default() -= 1;
    }
    for &(a, b, km) in new {
        *counts.entry((a, b, km.to_bits())).or_default() += 1;
    }
    let mut touched = BTreeSet::new();
    for (&(a, b, _), &c) in &counts {
        if c != 0 {
            touched.insert(a);
            touched.insert(b);
        }
    }
    touched
}

/// True when `new` is a sub-multiset of `old` (pairs were only removed).
pub fn pairs_removal_only(old: &[(usize, usize, f64)], new: &[(usize, usize, f64)]) -> bool {
    let mut counts: BTreeMap<(usize, usize, u64), i64> = BTreeMap::new();
    for &(a, b, km) in old {
        *counts.entry((a, b, km.to_bits())).or_default() += 1;
    }
    for &(a, b, km) in new {
        *counts.entry((a, b, km.to_bits())).or_default() -= 1;
    }
    counts.values().all(|&c| c >= 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, generate_delta, DeltaClass, World, WorldConfig};

    fn base() -> SnapshotSet {
        let world = World::generate(WorldConfig::tiny());
        emit_snapshots(&world, "2022-05-03", 400)
    }

    #[test]
    fn identical_sets_diff_empty() {
        let snaps = base();
        let d = diff_snapshots(&snaps, &snaps.clone());
        assert!(d.is_empty());
        assert!(d.sources.is_empty());
        assert_eq!(d.first_dirty, None);
    }

    #[test]
    fn every_delta_class_maps_to_its_stage() {
        let snaps = base();
        let expectations = [
            (DeltaClass::RoadChurn, Stage::Roads),
            (DeltaClass::AtlasChurn, Stage::Physical),
            (DeltaClass::AtlasPrune, Stage::Physical),
            (DeltaClass::FacilityChurn, Stage::Physical),
            (DeltaClass::LogicalChurn, Stage::Logical),
            (DeltaClass::TracerouteChurn, Stage::Traceroutes),
            (DeltaClass::MetroAdd, Stage::Metros),
            (DeltaClass::MetroRemove, Stage::Metros),
            (DeltaClass::EveryMetro, Stage::Metros),
        ];
        for (class, stage) in expectations {
            let (new, ops) = generate_delta(&snaps, 7, &[class]);
            assert!(!ops.is_empty(), "{class:?} generated no ops");
            let d = diff_snapshots(&snaps, &new);
            assert_eq!(d.first_dirty, Some(stage), "{class:?}");
        }
    }

    #[test]
    fn metro_add_detected_as_append_only() {
        let snaps = base();
        let (new, _) = generate_delta(&snaps, 3, &[DeltaClass::MetroAdd]);
        let d = diff_snapshots(&snaps, &new);
        assert!(d.metro_append_only);
        assert_eq!(d.first_dirty, Some(Stage::Metros));
        // Removal shifts ids: never append-only.
        let (removed, _) = generate_delta(&snaps, 3, &[DeltaClass::MetroRemove]);
        assert!(!diff_snapshots(&snaps, &removed).metro_append_only);
        // Mutating every place is not append-only either.
        let (mutated, _) = generate_delta(&snaps, 3, &[DeltaClass::EveryMetro]);
        assert!(!diff_snapshots(&snaps, &mutated).metro_append_only);
    }

    #[test]
    fn input_narrowing_flags_track_their_sources() {
        let snaps = base();
        // (class, ip_inputs_clean, traceroute_rows_clean)
        let expectations = [
            // Physical/logical feed churn reaches neither narrowed stage.
            (DeltaClass::AtlasChurn, true, true),
            (DeltaClass::AtlasPrune, true, true),
            (DeltaClass::FacilityChurn, true, true),
            (DeltaClass::RoadChurn, true, true),
            (DeltaClass::LogicalChurn, true, true),
            // New measurements feed both bdrmap and the hop relation.
            (DeltaClass::TracerouteChurn, false, false),
            // Metro changes reshape Hoiho's slug table and row labels,
            // but no traceroute row mentions a metro.
            (DeltaClass::MetroAdd, false, true),
            (DeltaClass::MetroRemove, false, true),
            (DeltaClass::EveryMetro, false, true),
        ];
        for (class, ip_clean, tr_clean) in expectations {
            let (new, ops) = generate_delta(&snaps, 7, &[class]);
            assert!(!ops.is_empty(), "{class:?} generated no ops");
            let d = diff_snapshots(&snaps, &new);
            assert_eq!(d.ip_inputs_clean, ip_clean, "{class:?} ip_inputs_clean");
            assert_eq!(
                d.traceroute_rows_clean, tr_clean,
                "{class:?} traceroute_rows_clean"
            );
        }
        // A date change re-stamps every dated row: nothing can be shared.
        let mut redated = snaps.clone();
        redated.as_of_date = "2022-06-01".into();
        let d = diff_snapshots(&snaps, &redated);
        assert!(!d.ip_inputs_clean);
        assert!(!d.traceroute_rows_clean);
    }

    #[test]
    fn date_change_forces_full_rebuild() {
        let snaps = base();
        let mut new = snaps.clone();
        new.as_of_date = "2022-06-01".into();
        let d = diff_snapshots(&snaps, &new);
        assert!(d.date_changed);
        assert_eq!(d.first_dirty, Some(Stage::Metros));
        assert!(!d.is_empty());
    }

    #[test]
    fn pair_diff_and_removal_only() {
        let old = vec![(0, 1, 10.0), (1, 2, 5.0), (2, 3, 7.0)];
        let removed = vec![(0, 1, 10.0), (2, 3, 7.0)];
        assert_eq!(
            pair_diff_metros(&old, &removed).into_iter().collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(pairs_removal_only(&old, &removed));
        // A re-weight is a removal plus an addition: not removal-only.
        let reweighted = vec![(0, 1, 10.0), (1, 2, 5.5), (2, 3, 7.0)];
        assert!(!pairs_removal_only(&old, &reweighted));
        assert_eq!(
            pair_diff_metros(&old, &reweighted).into_iter().collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(pairs_removal_only(&old, &old));
        assert!(pair_diff_metros(&old, &old).is_empty());
    }
}
