//! Fixed synthetic serving workload for telemetry and the regression gate.
//!
//! The paper's value is in *repeated* cross-layer queries over a built
//! database, so the telemetry layer needs a workload that exercises every
//! analysis entry point the same way on every run: the query mix below is
//! a pure function of the built world (no randomness, no environment), so
//! its deterministic counter stream is byte-identical across worker counts
//! and shortest-path modes — exactly what `igdb metrics diff` gates on in
//! CI against the committed `tests/golden/serving.jsonl` baseline.
//!
//! The mix covers all five §4 analyses:
//!
//! 1. **physpath** — the Figure 7 batch over the full traceroute mesh;
//! 2. **intertubes** — the Figure 4 long-haul comparison;
//! 3. **rocketfuel** — the Figure 8 logical-map remap;
//! 4. **risk** — Gulf-coast hurricane exposure plus a Dallas→Atlanta
//!    reroute (the RiskRoute scenario from `examples/risk_assessment.rs`);
//! 5. **footprint** — Table 2 country presence plus the Figure 6 overlap
//!    of the top two organizations.

use igdb_geo::{GeoPoint, Polygon};
use igdb_net::Ip4;
use igdb_synth::intertubes::{intertubes_recreation, rocketfuel_recreation};
use igdb_synth::World;

use crate::analysis::{footprint, intertubes, physpath, risk, rocketfuel};
use crate::build::Igdb;

/// Deterministic, data-derived summary of one query-mix run. Every field
/// is a function of the built database, never of scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryMixSummary {
    /// Traceroutes that produced a physical-path report.
    pub physpath_reports: usize,
    /// Long-haul links the InterTubes comparison covered.
    pub intertubes_covered: usize,
    /// Rocketfuel logical edges mapped onto physical corridors.
    pub rocketfuel_mapped: usize,
    /// Physical paths crossing the hazard region.
    pub risk_paths: usize,
    /// Table 2 rows returned by the footprint query.
    pub footprint_rows: usize,
    /// Legs that failed instead of reporting. Empty on a healthy run; a
    /// non-empty list means the matching count fields are zero because
    /// the query died, **not** because the data was empty — callers used
    /// to have no way to tell those apart.
    pub failures: Vec<MixFailure>,
}

/// One failed leg of the serving mix: which query died and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixFailure {
    /// The analysis leg (`physpath`, `intertubes`, …).
    pub query: &'static str,
    /// The rendered panic payload.
    pub detail: String,
}

/// Runs one mix leg under panic containment (the same discipline as the
/// serve worker's `catch_unwind`): a leg that dies yields `None` plus a
/// [`MixFailure`], tallied under the perf counter `serving.mix_failures`
/// so the deterministic gated stream is unaffected, and the remaining
/// legs still run.
fn guarded<T>(
    failures: &mut Vec<MixFailure>,
    query: &'static str,
    f: impl FnOnce() -> T,
) -> Option<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            igdb_obs::perf("serving.mix_failures", query, 1);
            failures.push(MixFailure { query, detail });
            None
        }
    }
}

/// The hazard polygon used by the risk leg of the mix: a hurricane
/// landfall box over the US Gulf coast (27°–31.5°N, 98°–88°W).
pub fn gulf_hazard() -> Polygon {
    Polygon::new(
        vec![
            GeoPoint::raw(-98.0, 27.0),
            GeoPoint::raw(-88.0, 27.0),
            GeoPoint::raw(-88.0, 31.5),
            GeoPoint::raw(-98.0, 31.5),
        ],
        vec![],
    )
}

/// Runs the fixed serving mix against a built database, emitting the
/// serving counters, latency histograms and analysis spans into the
/// currently installed [`igdb_obs::Registry`] (if any).
///
/// Span routing: this entry point is serial, so its spans land on the
/// registry's deterministic span list. The same analyses, when invoked by
/// `igdb-serve` pool workers, run under a per-request
/// [`igdb_obs::TraceContext`] instead — their free spans then build the
/// request's own tree and never touch the registry, which is what keeps
/// the gated counter stream identical between `igdb queries` and a
/// loaded server.
pub fn run_query_mix(world: &World, igdb: &Igdb) -> QueryMixSummary {
    let _span = igdb_obs::span("serving.query_mix");

    // Warm the CH layer up front in *both* modes, from serial code: a
    // serving deployment pays preprocessing once at startup, and doing it
    // unconditionally keeps the deterministic counter stream SP-mode
    // invariant (the CH build's `par.*` counters would otherwise appear
    // only under `IGDB_SP_MODE=ch`).
    {
        let _prep = igdb_obs::span("serving.prepare_ch");
        igdb.phys_graph().engine().prepare_ch();
    }

    let mut failures = Vec::new();

    // 1. Physical paths for the whole anchor-mesh traceroute set, in
    //    parallel (one report per trace, input order).
    let physpath_reports = guarded(&mut failures, "physpath", || {
        let traces: Vec<Vec<Ip4>> = igdb
            .traces()
            .iter()
            .map(|t| t.hops.iter().filter_map(|h| h.ip).collect())
            .collect();
        let reports = physpath::physical_path_reports_with(igdb, igdb.phys_graph(), &traces);
        reports.iter().flatten().count()
    })
    .unwrap_or(0);

    // 2. InterTubes long-haul comparison.
    let intertubes_covered = guarded(&mut failures, "intertubes", || {
        let links = intertubes_recreation(&world.cities, &world.row);
        intertubes::compare(igdb, &links).covered
    })
    .unwrap_or(0);

    // 3. Rocketfuel logical-map remap.
    let rocketfuel_mapped = guarded(&mut failures, "rocketfuel", || {
        let map = rocketfuel_recreation(world);
        rocketfuel::remap(igdb, &map).mapped_edges
    })
    .unwrap_or(0);

    // 4. Hazard exposure + reroute of a pair whose traffic crosses the
    //    Gulf (skipped quietly at scales where the metros don't exist).
    let risk_paths = guarded(&mut failures, "risk", || {
        let hazard = gulf_hazard();
        let exposure = risk::exposure(igdb, &hazard);
        if let (Some(a), Some(b)) =
            (igdb.metros.by_name("Dallas"), igdb.metros.by_name("Atlanta"))
        {
            let _ = risk::reroute(igdb, &hazard, a, b);
        }
        exposure.paths_at_risk.len()
    })
    .unwrap_or(0);

    // 5. AS footprints: Table 2 plus the overlap of the top two orgs.
    let footprint_rows = guarded(&mut failures, "footprint", || {
        let rows = footprint::top_by_countries(igdb, 11);
        if let [a, b, ..] = rows.as_slice() {
            let _ = footprint::org_overlap(igdb, &a.organization, &b.organization);
        }
        rows.len()
    })
    .unwrap_or(0);

    igdb_obs::counter("serving.mix_runs", "", 1);
    QueryMixSummary {
        physpath_reports,
        intertubes_covered,
        rocketfuel_mapped,
        risk_paths,
        footprint_rows,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, WorldConfig};

    #[test]
    fn query_mix_covers_every_analysis() {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 120);
        let igdb = Igdb::build(&snaps);
        let reg = igdb_obs::Registry::new();
        let summary = {
            let _g = reg.install();
            run_query_mix(&world, &igdb)
        };
        assert!(summary.physpath_reports > 0);
        assert!(summary.footprint_rows > 0);
        assert_eq!(summary.failures, vec![], "healthy run reported failures");
        assert_eq!(reg.counter_value("serving.mix_runs", ""), 1);
        // Every analysis entry point fired at least once.
        for label in ["physpath", "intertubes", "rocketfuel", "risk", "footprint"] {
            assert!(
                reg.counter_value("analysis.queries", label) > 0,
                "analysis.queries{{{label}}} never incremented"
            );
        }
        // Latency histograms are perf-class: present in the full stream,
        // absent from the deterministic one.
        let full = reg.json_lines(igdb_obs::JsonMode::Full);
        assert!(full.contains("analysis.query_us"));
        let det = reg.json_lines(igdb_obs::JsonMode::Deterministic);
        assert!(!det.contains("analysis.query_us"));
    }

    #[test]
    fn failed_legs_are_surfaced_not_swallowed() {
        let reg = igdb_obs::Registry::new();
        let _g = reg.install();
        let mut failures = Vec::new();
        // A healthy leg passes its value through and records nothing.
        assert_eq!(guarded(&mut failures, "physpath", || 42usize), Some(42));
        assert!(failures.is_empty());
        // A dead leg yields None plus a failure row with the panic text.
        let got: Option<usize> =
            guarded(&mut failures, "risk", || panic!("hazard polygon inverted"));
        assert_eq!(got, None);
        assert_eq!(
            failures,
            vec![MixFailure { query: "risk", detail: "hazard polygon inverted".into() }]
        );
        // The tally is perf-class: visible in the full stream, absent
        // from the deterministic one (goldens must not re-bless).
        assert_eq!(reg.perf_value("serving.mix_failures", "risk"), 1);
        assert!(reg.json_lines(igdb_obs::JsonMode::Full).contains("serving.mix_failures"));
        assert!(!reg
            .json_lines(igdb_obs::JsonMode::Deterministic)
            .contains("serving.mix_failures"));
    }
}
