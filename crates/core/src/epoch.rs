//! Epoch-versioned reads: a pointer-swap publication protocol that lets a
//! delta apply land while in-flight readers finish against the old world.
//!
//! A reader pins an [`Epoch`] once at request start (`Arc` clone under a
//! short read lock) and uses that world for its whole lifetime; the writer
//! builds the next world entirely outside the lock and swaps one pointer.
//! Torn reads are impossible by construction — a request either sees the
//! old epoch everywhere or the new epoch everywhere, and the old world
//! stays alive (and fully queryable) until its last reader drops it.

use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::build::Igdb;

/// One immutable published world: a fully built [`Igdb`] plus its
/// monotonically increasing epoch number and the instant it was swapped
/// in (the reference point for `epoch.lag` — how long after a publish an
/// older epoch was still pinned by in-flight readers).
pub struct Epoch {
    pub igdb: Arc<Igdb>,
    pub number: u64,
    pub published_at: Instant,
}

/// The swap point. Readers call [`current`](Self::current); the (single)
/// writer calls [`publish`](Self::publish). Readers never block behind an
/// apply: the write lock is held only for the pointer swap itself.
pub struct EpochHandle {
    inner: RwLock<Arc<Epoch>>,
}

impl EpochHandle {
    /// Wraps the initial world as epoch 0.
    pub fn new(igdb: Igdb) -> Self {
        Self::new_shared(Arc::new(igdb))
    }

    /// [`new`](Self::new) for a world the caller already shares (servers
    /// hand the same `Arc` to their warm-up path).
    pub fn new_shared(igdb: Arc<Igdb>) -> Self {
        Self {
            inner: RwLock::new(Arc::new(Epoch {
                igdb,
                number: 0,
                published_at: Instant::now(),
            })),
        }
    }

    /// Pins the current epoch. The returned `Arc` keeps the whole world
    /// alive for as long as the caller holds it, regardless of how many
    /// publishes happen meanwhile.
    pub fn current(&self) -> Arc<Epoch> {
        Arc::clone(&self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publishes `igdb` as the next epoch and returns its number. The
    /// build happened entirely on the caller's side; this only swaps the
    /// pointer, so readers observe either the old or the new epoch —
    /// never a mixture.
    pub fn publish(&self, igdb: Igdb) -> u64 {
        self.publish_shared(Arc::new(igdb))
    }

    /// [`publish`](Self::publish) for a world the caller already shares.
    pub fn publish_shared(&self, igdb: Arc<Igdb>) -> u64 {
        let mut slot = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let number = slot.number + 1;
        *slot = Arc::new(Epoch {
            igdb,
            number,
            published_at: Instant::now(),
        });
        drop(slot);
        // Deterministic: one tick per successful publish, independent of
        // readers, worker counts, and timing.
        igdb_obs::counter("epoch.published", "", 1);
        number
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    #[test]
    fn publish_increments_and_old_pin_survives() {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 400);
        let handle = EpochHandle::new(Igdb::build(&snaps));
        let pinned = handle.current();
        assert_eq!(pinned.number, 0);
        let n = handle.publish(Igdb::build(&snaps));
        assert_eq!(n, 1);
        assert_eq!(handle.current().number, 1);
        // The pinned epoch still answers from the old world.
        assert_eq!(pinned.number, 0);
        assert!(pinned.igdb.db.row_count("city_points").unwrap() > 0);
    }
}
