//! Shared memoized corridor cache.
//!
//! Every cross-layer analysis reduces to shortest-path queries over the
//! same immutable graphs, and they keep asking for the same metro pairs:
//! traceroute legs repeat across a mesh, Rocketfuel logical edges share
//! corridors, and snapshot refreshes re-route pairs already routed for an
//! earlier date. This module memoizes corridors keyed by the *normalized*
//! (min, max) metro pair, storing the path oriented from the smaller
//! endpoint and reversing on demand — an undirected corridor is one fact,
//! not two.
//!
//! # Determinism under parallel callers
//!
//! A naive "check map, else compute, then insert" cache would let two
//! racing workers both run the underlying engine query, making the
//! deterministic `spath.queries` counter depend on scheduling. Instead the
//! map stores one `Arc<OnceLock<…>>` per key (created under a short-lived
//! mutex), and the computation runs inside `OnceLock::get_or_init`: exactly
//! one caller computes per distinct key, everyone else blocks and reads, so
//! engine-query counts stay worker-count invariant. Cache hit/miss tallies
//! are scheduling-dependent in *which worker* reports them, so they are
//! perf metrics, outside the deterministic counter snapshot.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Generic per-pair memo table with compute-once semantics. `name` labels
/// the hit/miss perf metrics (`corridor.cache_hits{name}` /
/// `corridor.cache_misses{name}`).
pub struct PairCache<V> {
    name: &'static str,
    entries: Mutex<HashMap<(usize, usize), Arc<OnceLock<V>>>>,
}

impl<V: Clone> PairCache<V> {
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Number of distinct pairs cached so far (computed or in flight).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every settled `(key, value)` pair. Entries still in flight (cell
    /// allocated but not yet filled) are skipped. Used by delta ingestion
    /// to migrate still-valid corridors into a successor cache.
    pub fn settled_entries(&self) -> Vec<((usize, usize), V)> {
        let map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<((usize, usize), V)> = map
            .iter()
            .filter_map(|(k, cell)| cell.get().map(|v| (*k, v.clone())))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Pre-fills `key` with an already-known value (a migrated corridor).
    /// Seeding does not count as a hit or a miss; an existing entry for the
    /// key is left untouched.
    pub fn seed(&self, key: (usize, usize), value: V) {
        let cell = {
            let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        };
        let _ = cell.set(value);
    }

    /// Drops every settled entry whose key or value fails `keep`; in-flight
    /// cells are dropped too (their eventual value can't be vetted).
    pub fn retain(&self, keep: impl Fn(&(usize, usize), &V) -> bool) {
        let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        map.retain(|k, cell| match cell.get() {
            Some(v) => keep(k, v),
            None => false,
        });
    }

    /// The memoized value for `key`, computing it at most once per key
    /// process-wide (concurrent callers for the same key block on the
    /// first computation instead of repeating it).
    pub fn get_or_compute(&self, key: (usize, usize), compute: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        };
        let mut miss = false;
        let value = cell
            .get_or_init(|| {
                miss = true;
                compute()
            })
            .clone();
        if miss {
            igdb_obs::perf("corridor.cache_misses", self.name, 1);
            // Occupancy sampled on each miss gives a growth curve of the
            // cache (hist of sizes seen), without a hot-path lock on hits.
            igdb_obs::observe("corridor.occupancy", self.name, self.len() as u64);
        } else {
            igdb_obs::perf("corridor.cache_hits", self.name, 1);
        }
        value
    }
}

/// One cached corridor: the canonical shortest path oriented from the
/// smaller endpoint, plus its length.
#[derive(Clone, Debug)]
struct Corridor {
    path: Vec<usize>,
    km: f64,
}

/// Memoized shortest-path corridors over one immutable graph. `None`
/// entries record unreachable pairs, so misses are cached too.
pub struct CorridorCache {
    inner: PairCache<Option<Corridor>>,
}

impl CorridorCache {
    pub fn new(name: &'static str) -> Self {
        Self {
            inner: PairCache::new(name),
        }
    }

    /// Number of distinct pairs cached so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Evicts every corridor that touches any metro in `touched`: an entry
    /// survives only if both endpoints *and* every stored path node avoid
    /// the touched set. Cached-unreachable (`None`) entries survive on the
    /// endpoint test alone.
    ///
    /// Sound only for removal-only deltas: removing edges can't create a
    /// shorter path, so a surviving corridor — minimal over a superset of
    /// the remaining graph and fully intact — is still the canonical
    /// answer, and an unreachable pair stays unreachable. Any delta that
    /// adds or re-weights edges must flush instead (see
    /// `PhysGraph::rebuilt_for_delta`).
    pub fn evict_touching_metros(&self, touched: &std::collections::BTreeSet<usize>) {
        self.inner.retain(|k, v| {
            if touched.contains(&k.0) || touched.contains(&k.1) {
                return false;
            }
            v.as_ref()
                .map_or(true, |c| c.path.iter().all(|m| !touched.contains(m)))
        });
    }

    /// Seeds this (typically fresh) cache with every entry of `old` that
    /// survives [`evict_touching_metros`](Self::evict_touching_metros)'s
    /// criterion — the corridor-migration half of a delta apply.
    pub fn seed_surviving_from(&self, old: &CorridorCache, touched: &std::collections::BTreeSet<usize>) {
        for (k, v) in old.inner.settled_entries() {
            if touched.contains(&k.0) || touched.contains(&k.1) {
                continue;
            }
            if let Some(c) = &v {
                if c.path.iter().any(|m| touched.contains(m)) {
                    continue;
                }
            }
            self.inner.seed(k, v);
        }
    }

    /// The corridor `from → to`, computing it via `compute` (called with
    /// the normalized `(min, max)` pair) at most once per unordered pair.
    /// The canonical path is direction-independent (shortest paths are
    /// unique under the engine's lexicographic key), so the reverse
    /// orientation is served by reversing the stored path.
    pub fn shortest_path(
        &self,
        from: usize,
        to: usize,
        compute: impl FnOnce(usize, usize) -> Option<(Vec<usize>, f64)>,
    ) -> Option<(Vec<usize>, f64)> {
        let key = (from.min(to), from.max(to));
        let cached = self.inner.get_or_compute(key, || {
            compute(key.0, key.1).map(|(path, km)| Corridor { path, km })
        })?;
        let mut path = cached.path;
        if from > to {
            path.reverse();
        }
        Some((path, cached.km))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn computes_once_per_unordered_pair() {
        let cache = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        let compute = |lo: usize, hi: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            Some((vec![lo, 99, hi], 7.5))
        };
        assert_eq!(cache.shortest_path(2, 5, compute), Some((vec![2, 99, 5], 7.5)));
        assert_eq!(cache.shortest_path(5, 2, compute), Some((vec![5, 99, 2], 7.5)));
        assert_eq!(cache.shortest_path(2, 5, compute), Some((vec![2, 99, 5], 7.5)));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn unreachable_pairs_are_cached_as_none() {
        let cache = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        let compute = |_: usize, _: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            None
        };
        assert_eq!(cache.shortest_path(1, 9, compute), None);
        assert_eq!(cache.shortest_path(9, 1, compute), None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_fill_does_not_claim_the_entry() {
        // The serve worker pool runs analyses under catch_unwind, so a
        // compute closure *can* unwind mid-fill. `OnceLock::get_or_init`
        // must leave the cell uninitialized in that case — the entry may
        // stay allocated in the map, but it must never read as "computed
        // and empty". A later caller recomputes, and only then is the
        // value cached.
        let cache = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.shortest_path(3, 8, |_, _| -> Option<(Vec<usize>, f64)> {
                calls.fetch_add(1, Ordering::Relaxed);
                panic!("engine died mid-corridor");
            })
        }));
        assert!(poisoned.is_err(), "the panic must propagate to the caller");
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // The second caller recomputes instead of seeing a phantom miss…
        let compute = |lo: usize, hi: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            Some((vec![lo, hi], 4.0))
        };
        assert_eq!(cache.shortest_path(3, 8, compute), Some((vec![3, 8], 4.0)));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        // …and the recomputed value is now cached like any other.
        assert_eq!(cache.shortest_path(8, 3, compute), Some((vec![8, 3], 4.0)));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn eviction_drops_touched_and_keeps_untouched_hot() {
        let cache = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        let compute = |lo: usize, hi: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            Some((vec![lo, 50, hi], 1.0))
        };
        // Populate: (1,2) and (3,4) avoid metro 7; (7,9) has it as an
        // endpoint; (5,6) routes *through* it.
        cache.shortest_path(1, 2, compute);
        cache.shortest_path(3, 4, compute);
        cache.shortest_path(7, 9, compute);
        cache.shortest_path(5, 6, |lo, hi| {
            calls.fetch_add(1, Ordering::Relaxed);
            Some((vec![lo, 7, hi], 2.0))
        });
        assert_eq!(cache.len(), 4);
        let touched: std::collections::BTreeSet<usize> = [7].into_iter().collect();
        cache.evict_touching_metros(&touched);
        assert_eq!(cache.len(), 2, "endpoint-touched and path-touched entries evicted");
        // Untouched entries survive AND still hit: no recompute.
        let before = calls.load(Ordering::Relaxed);
        assert_eq!(cache.shortest_path(1, 2, compute), Some((vec![1, 50, 2], 1.0)));
        assert_eq!(cache.shortest_path(4, 3, compute), Some((vec![4, 50, 3], 1.0)));
        assert_eq!(calls.load(Ordering::Relaxed), before, "survivors must hit");
        // Evicted entries recompute on next request.
        cache.shortest_path(7, 9, compute);
        assert_eq!(calls.load(Ordering::Relaxed), before + 1);
    }

    #[test]
    fn eviction_keeps_unreachable_entries_on_endpoint_test() {
        let cache = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        let none = |_: usize, _: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            None
        };
        cache.shortest_path(1, 9, none);
        cache.shortest_path(2, 7, none);
        let touched: std::collections::BTreeSet<usize> = [7].into_iter().collect();
        cache.evict_touching_metros(&touched);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.shortest_path(1, 9, none), None);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "surviving None entry still hits");
    }

    #[test]
    fn migration_seeds_only_survivors() {
        let old = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        old.shortest_path(1, 2, |lo, hi| Some((vec![lo, hi], 1.0)));
        old.shortest_path(3, 8, |lo, hi| Some((vec![lo, 8, hi], 2.0)));
        old.shortest_path(4, 5, |lo, hi| Some((vec![lo, 6, hi], 3.0)));
        let fresh = CorridorCache::new("test");
        let touched: std::collections::BTreeSet<usize> = [6].into_iter().collect();
        fresh.seed_surviving_from(&old, &touched);
        assert_eq!(fresh.len(), 2, "(4,5) routes through touched metro 6");
        let compute = |lo: usize, hi: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            Some((vec![lo, hi], 9.9))
        };
        // Migrated entries answer without recompute, with the old value.
        assert_eq!(fresh.shortest_path(2, 1, compute), Some((vec![2, 1], 1.0)));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        // The dropped pair recomputes fresh.
        assert_eq!(fresh.shortest_path(4, 5, compute), Some((vec![4, 5], 9.9)));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn racing_workers_compute_each_pair_once() {
        let cache = CorridorCache::new("test");
        let calls = AtomicUsize::new(0);
        let pairs: Vec<(usize, usize)> = (0..64).map(|i| (i / 8, 10 + i % 4)).collect();
        let results = igdb_par::with_threads(4, || {
            igdb_par::par_map(&pairs, |&(a, b)| {
                cache.shortest_path(a, b, |lo, hi| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Some((vec![lo, hi], (lo + hi) as f64))
                })
            })
        });
        // 8 × 4 distinct normalized pairs, each computed exactly once no
        // matter how the 64 requests raced.
        assert_eq!(calls.load(Ordering::Relaxed), 32);
        assert_eq!(cache.len(), 32);
        for (i, r) in results.iter().enumerate() {
            let (a, b) = pairs[i];
            assert_eq!(r.as_ref().unwrap().0, vec![a, b]);
        }
    }
}
