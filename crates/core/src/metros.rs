//! Standard metros: the urban-area registry and spatial standardization.
//!
//! Paper §3.1: "we developed a name standardization process that spatially
//! maps each node to the closest urban area from a single data source of
//! urban areas … Any point inside each of these Thiessen polygons is
//! geographically closest to the single urban area used to create the
//! polygon." Assignment therefore reduces to nearest-site search, which
//! [`igdb_geo::NearestSiteIndex`] answers exactly; the polygons themselves
//! are materialized (lazily — they are pure output geometry) for the
//! `city_polygons` relation, Figure 3, and the Figure 10 density map.

use igdb_geo::{voronoi_cells, BoundingBox, GeoPoint, NearestSiteIndex, Polygon};
use igdb_synth::sources::NaturalEarthPlace;

/// One standard metro.
#[derive(Clone, Debug)]
pub struct Metro {
    /// Index in the registry — the standard metro id used across all
    /// relations.
    pub id: usize,
    pub name: String,
    pub state: String,
    pub country: String,
    pub loc: GeoPoint,
    pub population: u32,
}

impl Metro {
    /// The `City-ST-CC` standard label.
    pub fn label(&self) -> String {
        if self.state.is_empty() {
            format!("{}-{}", self.name, self.country)
        } else {
            format!("{}-{}-{}", self.name, self.state, self.country)
        }
    }
}

/// The registry: metros plus the nearest-site index that implements
/// Thiessen-cell assignment.
pub struct MetroRegistry {
    metros: Vec<Metro>,
    index: NearestSiteIndex,
    polygons: std::sync::OnceLock<Vec<Polygon>>,
}

impl MetroRegistry {
    /// Builds the registry from the populated-places dataset.
    pub fn build(places: &[NaturalEarthPlace]) -> Self {
        let metros: Vec<Metro> = places
            .iter()
            .enumerate()
            .map(|(id, p)| Metro {
                id,
                name: p.name.clone(),
                state: p.state.clone(),
                country: p.country.clone(),
                loc: p.loc,
                population: p.population,
            })
            .collect();
        let index = NearestSiteIndex::new(metros.iter().map(|m| m.loc).collect());
        Self {
            metros,
            index,
            polygons: std::sync::OnceLock::new(),
        }
    }

    /// A new registry covering this one's places plus `new_places`,
    /// appended in order — existing metro ids are unchanged, the new places
    /// take the next ids. The nearest-site R-tree is patched with inserts
    /// rather than rebuilt, and because nearest-site queries and tie-breaks
    /// are exact, the extended registry assigns every point exactly as
    /// `MetroRegistry::build` over the concatenated catalogue would. The
    /// original registry is untouched (old epochs keep reading it).
    ///
    /// Polygons are not carried over: Thiessen cells change globally when a
    /// site is added, so they re-materialize lazily on first use.
    pub fn extended(&self, new_places: &[NaturalEarthPlace]) -> Self {
        let mut metros = self.metros.clone();
        for p in new_places {
            metros.push(Metro {
                id: metros.len(),
                name: p.name.clone(),
                state: p.state.clone(),
                country: p.country.clone(),
                loc: p.loc,
                population: p.population,
            });
        }
        let new_sites: Vec<GeoPoint> = new_places.iter().map(|p| p.loc).collect();
        Self {
            metros,
            index: self.index.extended(&new_sites),
            polygons: std::sync::OnceLock::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.metros.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metros.is_empty()
    }

    /// The metro with this id.
    ///
    /// # Panics
    /// Panics on an out-of-range id; ids from a different (e.g. degraded)
    /// build are not interchangeable — use [`MetroRegistry::try_metro`]
    /// when the id's provenance is uncertain.
    pub fn metro(&self, id: usize) -> &Metro {
        &self.metros[id]
    }

    /// The metro with this id, or `None` when the id is not in the
    /// registry (ids shift when a degraded build quarantines part of the
    /// catalogue, so foreign ids must be looked up fallibly).
    pub fn try_metro(&self, id: usize) -> Option<&Metro> {
        self.metros.get(id)
    }

    pub fn metros(&self) -> &[Metro] {
        &self.metros
    }

    /// Standardizes a point: the metro whose Thiessen cell contains it.
    pub fn metro_of(&self, p: &GeoPoint) -> Option<usize> {
        self.index.nearest(p).map(|(id, _)| id)
    }

    /// Standardizes with the distance to the metro centre (km).
    pub fn metro_of_with_distance(&self, p: &GeoPoint) -> Option<(usize, f64)> {
        self.index.nearest(p)
    }

    /// Metros within `radius_km` of a point (used by buffer joins).
    pub fn metros_within(&self, p: &GeoPoint, radius_km: f64) -> Vec<(usize, f64)> {
        self.index.within_km(p, radius_km)
    }

    /// Finds a metro by exact name (convenience for examples/benches).
    pub fn by_name(&self, name: &str) -> Option<usize> {
        self.metros.iter().position(|m| m.name == name)
    }

    /// The Thiessen polygons, one per metro, clipped to the world box.
    /// Computed on first use (Figure 3 / `city_polygons`).
    pub fn polygons(&self) -> &[Polygon] {
        self.polygons.get_or_init(|| {
            let sites: Vec<GeoPoint> = self.metros.iter().map(|m| m.loc).collect();
            let cells = voronoi_cells(&sites, &BoundingBox::WORLD);
            // voronoi_cells skips duplicate sites; rebuild a dense vector
            // (duplicates get a degenerate empty polygon).
            let mut polys = vec![Polygon::new(vec![], vec![]); sites.len()];
            for cell in cells {
                polys[cell.site] = cell.polygon;
            }
            polys
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn places() -> Vec<NaturalEarthPlace> {
        [
            ("Madrid", "", "ES", -3.704, 40.417, 6700u32),
            ("Paris", "", "FR", 2.352, 48.857, 11000),
            ("Berlin", "", "DE", 13.405, 52.520, 3700),
            ("Kansas City", "MO", "US", -94.579, 39.100, 2200),
        ]
        .into_iter()
        .map(|(n, s, c, lon, lat, pop)| NaturalEarthPlace {
            name: n.to_string(),
            state: s.to_string(),
            country: c.to_string(),
            loc: GeoPoint::new(lon, lat),
            population: pop,
        })
        .collect()
    }

    #[test]
    fn assignment_picks_nearest_metro() {
        let reg = MetroRegistry::build(&places());
        // A point in Lyon standardizes to Paris (nearest of the four).
        let lyon = GeoPoint::new(4.835, 45.764);
        assert_eq!(reg.metro_of(&lyon), reg.by_name("Paris"));
        // Toledo, ES → Madrid.
        let toledo = GeoPoint::new(-4.027, 39.863);
        assert_eq!(reg.metro_of(&toledo), reg.by_name("Madrid"));
    }

    #[test]
    fn labels_follow_convention() {
        let reg = MetroRegistry::build(&places());
        assert_eq!(reg.metro(reg.by_name("Madrid").unwrap()).label(), "Madrid-ES");
        assert_eq!(
            reg.metro(reg.by_name("Kansas City").unwrap()).label(),
            "Kansas City-MO-US"
        );
    }

    #[test]
    fn polygons_agree_with_assignment() {
        let reg = MetroRegistry::build(&places());
        let polys = reg.polygons();
        assert_eq!(polys.len(), 4);
        // Probe points: the polygon containing each probe must be the
        // assigned metro's.
        for probe in [
            GeoPoint::new(4.8, 45.8),
            GeoPoint::new(-3.0, 41.0),
            GeoPoint::new(10.0, 51.0),
            GeoPoint::new(-90.0, 40.0),
        ] {
            let assigned = reg.metro_of(&probe).unwrap();
            for (i, poly) in polys.iter().enumerate() {
                let inside = poly.contains(&probe);
                assert_eq!(
                    inside,
                    i == assigned,
                    "probe {probe:?} polygon {i} vs assigned {assigned}"
                );
            }
        }
    }

    #[test]
    fn empty_registry() {
        let reg = MetroRegistry::build(&[]);
        assert!(reg.is_empty());
        assert_eq!(reg.metro_of(&GeoPoint::new(0.0, 0.0)), None);
    }

    #[test]
    fn metros_within_radius() {
        let reg = MetroRegistry::build(&places());
        // 1,100 km around Paris: Paris itself and Berlin (~880 km).
        let hits = reg.metros_within(&GeoPoint::new(2.352, 48.857), 1100.0);
        let names: Vec<&str> = hits
            .iter()
            .map(|&(id, _)| reg.metro(id).name.as_str())
            .collect();
        assert!(names.contains(&"Paris"));
        assert!(names.contains(&"Berlin"));
        assert!(!names.contains(&"Kansas City"));
    }
}
