//! Hostname geolocation: the Hoiho rule engine.
//!
//! Paper §4.2: "ISPs often encode geohints within the hostname assigned to
//! IP addresses … The Hoiho hostname-to-location geohints are available for
//! use in the form of a set of downloadable regular expressions … we
//! determine the city-country code from the hostnames by leveraging these
//! existing regexes … rather than learning and developing our own
//! hostname-location pairings."
//!
//! The engine compiles the rule file with `igdb-regex` and resolves the
//! captured token either through the public geocode dictionary (IATA-style
//! 3-letter codes) or by city-name slug comparison against the standard
//! metros.

use std::collections::HashMap;

use igdb_regex::Regex;
use igdb_synth::naming::{HoihoRule, TokenKind};

use crate::metros::MetroRegistry;

/// A compiled rule.
struct CompiledRule {
    regex: Regex,
    token_kind: TokenKind,
}

/// The rule engine: hostname in, standard metro out.
pub struct HoihoEngine {
    rules: Vec<CompiledRule>,
    /// geocode → metro id (the public dictionary).
    codes: HashMap<String, usize>,
    /// city-name slug → metro id.
    slugs: HashMap<String, usize>,
}

impl HoihoEngine {
    /// Compiles the rule file. Rules whose regex fails to compile are
    /// skipped (and counted) rather than aborting the build — a malformed
    /// rule in a community-maintained file must not poison the pipeline.
    pub fn build(
        rules: &[HoihoRule],
        geo_codes: &[(String, usize)],
        metros: &MetroRegistry,
    ) -> (Self, usize) {
        let mut compiled = Vec::with_capacity(rules.len());
        let mut skipped = 0;
        for r in rules {
            match Regex::new(&r.pattern) {
                Ok(regex) => compiled.push(CompiledRule {
                    regex,
                    token_kind: r.token_kind,
                }),
                Err(_) => skipped += 1,
            }
        }
        let codes = geo_codes.iter().cloned().collect();
        let slugs = metros
            .metros()
            .iter()
            .map(|m| (slugify(&m.name), m.id))
            .collect();
        (
            Self {
                rules: compiled,
                codes,
                slugs,
            },
            skipped,
        )
    }

    /// Number of usable rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Geolocates a hostname: the standard metro its geohint names, if any
    /// rule matches and its token resolves.
    pub fn geolocate(&self, hostname: &str) -> Option<usize> {
        let host = hostname.to_ascii_lowercase();
        for rule in &self.rules {
            let Some(caps) = rule.regex.captures(&host) else {
                continue;
            };
            let Some(token) = caps.group(1) else {
                continue;
            };
            let hit = match rule.token_kind {
                TokenKind::GeoCode => self.codes.get(token).copied(),
                TokenKind::CitySlug => self.slugs.get(token).copied(),
            };
            if hit.is_some() {
                return hit;
            }
        }
        None
    }
}

/// Lowercase dash-slug, matching the convention of CityName hostnames.
pub fn slugify(name: &str) -> String {
    name.split_whitespace()
        .map(|w| w.to_ascii_lowercase())
        .collect::<Vec<_>>()
        .join("-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_geo::GeoPoint;
    use igdb_synth::sources::NaturalEarthPlace;

    fn registry() -> MetroRegistry {
        let places: Vec<NaturalEarthPlace> = [
            ("Dresden", "DE", 13.738, 51.051),
            ("Kansas City", "US", -94.579, 39.100),
            ("Hong Kong", "HK", 114.169, 22.319),
        ]
        .into_iter()
        .map(|(n, c, lon, lat)| NaturalEarthPlace {
            name: n.to_string(),
            state: String::new(),
            country: c.to_string(),
            loc: GeoPoint::new(lon, lat),
            population: 1000,
        })
        .collect();
        MetroRegistry::build(&places)
    }

    fn rules() -> Vec<HoihoRule> {
        vec![
            HoihoRule {
                pattern: r"\.rcr\d+\.([a-z]{3})\d{2}\.atlas\.example\.com$".to_string(),
                token_kind: TokenKind::GeoCode,
                domain: "example.com".to_string(),
            },
            HoihoRule {
                pattern: r"^xe-\d+\.([a-z0-9-]+)\.citystyle\.net$".to_string(),
                token_kind: TokenKind::CitySlug,
                domain: "citystyle.net".to_string(),
            },
        ]
    }

    fn codes() -> Vec<(String, usize)> {
        vec![("drs".to_string(), 0), ("kcy".to_string(), 1), ("hkg".to_string(), 2)]
    }

    #[test]
    fn geocode_rule_resolves() {
        let reg = registry();
        let (engine, skipped) = HoihoEngine::build(&rules(), &codes(), &reg);
        assert_eq!(skipped, 0);
        assert_eq!(engine.rule_count(), 2);
        assert_eq!(
            engine.geolocate("be2695.rcr21.drs01.atlas.example.com"),
            Some(0)
        );
        assert_eq!(
            engine.geolocate("be3701.rcr11.hkg02.atlas.example.com"),
            Some(2)
        );
    }

    #[test]
    fn slug_rule_resolves() {
        let reg = registry();
        let (engine, _) = HoihoEngine::build(&rules(), &codes(), &reg);
        assert_eq!(engine.geolocate("xe-3.kansas-city.citystyle.net"), Some(1));
        assert_eq!(engine.geolocate("xe-3.hong-kong.citystyle.net"), Some(2));
    }

    #[test]
    fn unknown_token_or_no_match_is_none() {
        let reg = registry();
        let (engine, _) = HoihoEngine::build(&rules(), &codes(), &reg);
        assert_eq!(engine.geolocate("be1.rcr2.zzz01.atlas.example.com"), None);
        assert_eq!(engine.geolocate("ip-10-1-2-3.opaque.net"), None);
        assert_eq!(engine.geolocate("xe-1.atlantis.citystyle.net"), None);
    }

    #[test]
    fn hostname_case_insensitive() {
        let reg = registry();
        let (engine, _) = HoihoEngine::build(&rules(), &codes(), &reg);
        assert_eq!(
            engine.geolocate("BE2695.RCR21.DRS01.ATLAS.EXAMPLE.COM"),
            Some(0)
        );
    }

    #[test]
    fn malformed_rule_skipped_not_fatal() {
        let reg = registry();
        let mut rs = rules();
        rs.push(HoihoRule {
            pattern: "(((".to_string(),
            token_kind: TokenKind::GeoCode,
            domain: "broken.example".to_string(),
        });
        let (engine, skipped) = HoihoEngine::build(&rs, &codes(), &reg);
        assert_eq!(skipped, 1);
        assert_eq!(engine.rule_count(), 2);
    }
}
