//! IP→AS mapping with border correction (the bdrmapIT role).
//!
//! Paper §3.3: "IP to AS mapping is problematic because a link between two
//! ASes is usually assigned IP addresses from one of the ASes. As a result,
//! mapping the IP address to the AS announcing the smallest subprefix can
//! result in wrongly inferred ownership of links. … we leverage bdrmapIT, a
//! state of the art technique to map network borders."
//!
//! Our implementation performs the two bdrmapIT moves that matter for
//! iGDB's use of it (AS *path* identification from traceroutes, §5):
//!
//! 1. **Longest-prefix match** against the BGP RIB (origin prefixes).
//! 2. **Border reassignment**: when an address whose covering prefix
//!    belongs to AS *A* is consistently observed with *A*-owned hops
//!    before it and *B*-owned hops after it, the interface is the far end
//!    of an A–B link, operated by *B* — so it is reassigned to *B*.
//!
//! IXP LAN addresses (known from `ixp_prefixes`) are handled
//! traIXroute-style: the hop belongs to the AS of the *next* resolved hop
//! (the member router that answered from the LAN).

use std::collections::HashMap;

use igdb_net::{Asn, Ip4, Prefix, PrefixTrie};

/// How an address was mapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpOrigin {
    /// Straight longest-prefix match.
    PrefixMatch(Asn),
    /// Reassigned across a border by the traceroute heuristic.
    BorderReassigned(Asn),
    /// An IXP LAN address, attributed to the following member AS.
    IxpLan(Asn),
    /// No covering prefix and no usable context.
    Unknown,
}

impl IpOrigin {
    pub fn asn(&self) -> Option<Asn> {
        match self {
            IpOrigin::PrefixMatch(a) | IpOrigin::BorderReassigned(a) | IpOrigin::IxpLan(a) => {
                Some(*a)
            }
            IpOrigin::Unknown => None,
        }
    }
}

/// The mapper: build once from RIB + IXP prefixes, refine with traceroutes.
pub struct BdrMap {
    rib: PrefixTrie<Asn>,
    ixp_lans: Vec<Prefix>,
    /// Final per-address decisions after refinement.
    assignments: HashMap<Ip4, IpOrigin>,
}

impl BdrMap {
    /// Builds the initial mapper from BGP RIB entries and IXP LAN prefixes.
    pub fn new(rib_entries: &[(Prefix, Asn)], ixp_lans: &[Prefix]) -> Self {
        let mut rib = PrefixTrie::new();
        for &(p, a) in rib_entries {
            rib.insert(p, a);
        }
        Self {
            rib,
            ixp_lans: ixp_lans.to_vec(),
            assignments: HashMap::new(),
        }
    }

    /// True if `ip` lies on a known IXP peering LAN.
    pub fn is_ixp_address(&self, ip: Ip4) -> bool {
        self.ixp_lans.iter().any(|p| p.contains(ip))
    }

    /// Raw longest-prefix match (no border logic).
    pub fn prefix_owner(&self, ip: Ip4) -> Option<Asn> {
        self.rib.lookup(ip).map(|(_, &a)| a)
    }

    /// Refines the map over a corpus of traceroutes (each a sequence of
    /// responding addresses in hop order). Call once after construction;
    /// subsequent [`BdrMap::resolve`] calls use the refined assignments.
    pub fn refine(&mut self, traces: &[Vec<Ip4>]) {
        // Pass 1: votes. For every observed address, tally the prefix-owner
        // of its nearest resolved predecessor and successor hops.
        #[derive(Default)]
        struct Votes {
            pred: HashMap<Asn, usize>,
            succ: HashMap<Asn, usize>,
        }
        let mut votes: HashMap<Ip4, Votes> = HashMap::new();
        for trace in traces {
            for (i, &ip) in trace.iter().enumerate() {
                let v = votes.entry(ip).or_default();
                if i > 0 {
                    if let Some(a) = self.prefix_owner(trace[i - 1]) {
                        *v.pred.entry(a).or_default() += 1;
                    }
                }
                if i + 1 < trace.len() {
                    if let Some(a) = self.prefix_owner(trace[i + 1]) {
                        *v.succ.entry(a).or_default() += 1;
                    }
                }
            }
        }
        // Pass 2: decisions.
        for (&ip, v) in &votes {
            let decision = if self.is_ixp_address(ip) {
                // traIXroute rule: the IXP hop is the entering member —
                // attribute to the majority successor AS.
                match majority(&v.succ) {
                    Some(b) => IpOrigin::IxpLan(b),
                    None => match majority(&v.pred) {
                        Some(a) => IpOrigin::IxpLan(a),
                        None => IpOrigin::Unknown,
                    },
                }
            } else {
                match self.prefix_owner(ip) {
                    Some(lpm) => {
                        let pred = majority(&v.pred);
                        let succ = majority(&v.succ);
                        match (pred, succ) {
                            // A-owned space, A behind, B ahead: the far end
                            // of the A→B border link — operated by B.
                            (Some(a), Some(b)) if a == lpm && b != lpm => {
                                IpOrigin::BorderReassigned(b)
                            }
                            _ => IpOrigin::PrefixMatch(lpm),
                        }
                    }
                    None => match majority(&v.succ) {
                        // Unannounced space mid-path: trust the successor.
                        Some(b) => IpOrigin::BorderReassigned(b),
                        None => IpOrigin::Unknown,
                    },
                }
            };
            self.assignments.insert(ip, decision);
        }
    }

    /// Resolves an address: refined assignment if available, else LPM.
    pub fn resolve(&self, ip: Ip4) -> IpOrigin {
        if let Some(&d) = self.assignments.get(&ip) {
            return d;
        }
        match self.prefix_owner(ip) {
            Some(a) => IpOrigin::PrefixMatch(a),
            None => IpOrigin::Unknown,
        }
    }

    /// The AS path of a traceroute: resolved per hop, deduplicated runs.
    pub fn as_path(&self, trace: &[Ip4]) -> Vec<Asn> {
        let mut path = Vec::new();
        for &ip in trace {
            if let Some(a) = self.resolve(ip).asn() {
                if path.last() != Some(&a) {
                    path.push(a);
                }
            }
        }
        path
    }

    /// Number of refined (per-address) decisions.
    pub fn refined_count(&self) -> usize {
        self.assignments.len()
    }
}

fn majority(m: &HashMap<Asn, usize>) -> Option<Asn> {
    let total: usize = m.values().sum();
    m.iter()
        .max_by_key(|&(asn, n)| (*n, std::cmp::Reverse(asn.0)))
        .filter(|&(_, n)| 2 * n > total)
        .map(|(&a, _)| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ip4 {
        s.parse().unwrap()
    }
    fn pre(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// AS 1 owns 10.1.0.0/16, AS 2 owns 10.2.0.0/16; the 1–2 border link is
    /// numbered from AS 1's space (10.1.9.0/30): 10.1.9.1 on AS1's router,
    /// 10.1.9.2 on AS2's router.
    fn mapper() -> BdrMap {
        BdrMap::new(
            &[(pre("10.1.0.0/16"), Asn(1)), (pre("10.2.0.0/16"), Asn(2))],
            &[pre("192.0.2.0/24")],
        )
    }

    #[test]
    fn lpm_without_refinement() {
        let m = mapper();
        assert_eq!(m.resolve(ip("10.1.5.5")), IpOrigin::PrefixMatch(Asn(1)));
        assert_eq!(m.resolve(ip("10.2.5.5")), IpOrigin::PrefixMatch(Asn(2)));
        assert_eq!(m.resolve(ip("44.0.0.1")), IpOrigin::Unknown);
    }

    #[test]
    fn border_interface_reassigned() {
        let mut m = mapper();
        // Traceroute: A-internal, A-side of border, B-side of border
        // (from A's space!), B-internal.
        let traces = vec![
            vec![ip("10.1.0.1"), ip("10.1.9.1"), ip("10.1.9.2"), ip("10.2.0.1")],
            vec![ip("10.1.0.2"), ip("10.1.9.1"), ip("10.1.9.2"), ip("10.2.0.9")],
        ];
        m.refine(&traces);
        assert_eq!(m.resolve(ip("10.1.9.2")), IpOrigin::BorderReassigned(Asn(2)));
        // The near side stays with A.
        assert_eq!(m.resolve(ip("10.1.9.1")).asn(), Some(Asn(1)));
        // AS path is clean: [1, 2].
        assert_eq!(m.as_path(&traces[0]), vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn ixp_hop_attributed_to_next_member() {
        let mut m = mapper();
        // A → IXP LAN → B.
        let traces = vec![
            vec![ip("10.1.0.1"), ip("192.0.2.7"), ip("10.2.0.1")],
            vec![ip("10.1.0.3"), ip("192.0.2.7"), ip("10.2.0.2")],
        ];
        m.refine(&traces);
        assert_eq!(m.resolve(ip("192.0.2.7")), IpOrigin::IxpLan(Asn(2)));
        assert_eq!(m.as_path(&traces[0]), vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn ixp_hop_at_path_end_uses_predecessor() {
        let mut m = mapper();
        let traces = vec![vec![ip("10.1.0.1"), ip("192.0.2.9")]];
        m.refine(&traces);
        assert_eq!(m.resolve(ip("192.0.2.9")), IpOrigin::IxpLan(Asn(1)));
    }

    #[test]
    fn interior_addresses_not_reassigned() {
        let mut m = mapper();
        // Pure intra-AS trace: everything stays PrefixMatch.
        let traces = vec![vec![ip("10.1.0.1"), ip("10.1.0.2"), ip("10.1.0.3")]];
        m.refine(&traces);
        for s in ["10.1.0.1", "10.1.0.2", "10.1.0.3"] {
            assert_eq!(m.resolve(ip(s)), IpOrigin::PrefixMatch(Asn(1)), "{s}");
        }
    }

    #[test]
    fn conflicting_votes_fall_back_to_lpm() {
        let mut m = mapper();
        // 10.1.9.2 appears once A→B and once B→A: no majority successor.
        let traces = vec![
            vec![ip("10.1.0.1"), ip("10.1.9.2"), ip("10.2.0.1")],
            vec![ip("10.2.0.1"), ip("10.1.9.2"), ip("10.1.0.1")],
        ];
        m.refine(&traces);
        assert_eq!(m.resolve(ip("10.1.9.2")), IpOrigin::PrefixMatch(Asn(1)));
    }

    #[test]
    fn unannounced_midpath_takes_successor() {
        let mut m = mapper();
        let traces = vec![
            vec![ip("10.1.0.1"), ip("44.0.0.1"), ip("10.2.0.1")],
            vec![ip("10.1.0.2"), ip("44.0.0.1"), ip("10.2.0.3")],
        ];
        m.refine(&traces);
        assert_eq!(m.resolve(ip("44.0.0.1")), IpOrigin::BorderReassigned(Asn(2)));
    }

    #[test]
    fn as_path_dedupes_runs() {
        let m = mapper();
        let path = m.as_path(&[
            ip("10.1.0.1"),
            ip("10.1.0.2"),
            ip("10.2.0.1"),
            ip("10.2.0.2"),
        ]);
        assert_eq!(path, vec![Asn(1), Asn(2)]);
    }
}
