//! Spatial sharding for planet-scale builds.
//!
//! The build's per-metro stages — R-tree spatial joins and right-of-way
//! routing — are embarrassingly parallel per record, but at 20K+ metros a
//! flat split scatters each worker across the whole planet: every chunk
//! touches every part of the spatial index and the corridor cache. A
//! [`SpatialPartition`] (k-d median cut over metro coordinates) groups the
//! work by region instead, so one worker's queries stay inside one shard's
//! bounding box and its resumable shortest-path workspace re-visits the
//! same neighborhood of the road graph.
//!
//! Determinism contract: sharding changes only the *execution grouping*,
//! never the output. [`sharded_map`] buckets items by shard, fans the
//! shards out through `igdb-par`, and scatters each pure per-item result
//! back to the item's original index — byte-identical to a flat
//! `par_map` at any worker count and shard count. The partition itself is
//! a pure function of the input coordinates (median cuts with a total
//! order on floats), so every run at every parallelism builds the same
//! tree.

use igdb_geo::GeoPoint;

/// Worlds below this metro count keep the flat per-record split: the whole
/// spatial index fits in cache, so regional grouping has nothing to win,
/// and the small tiers keep exercising the original code path.
pub const SHARD_MIN_METROS: usize = 4096;

/// Target number of metros per shard. Shards end in the 512..1024 range:
/// small enough that a shard's R-tree region and corridor working set stay
/// cache-resident, large enough that per-shard overhead is noise.
const TARGET_LEAF: usize = 1024;

#[cfg(test)]
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(test)]
static MIN_METROS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The sharding gate the build consults. Tests can force the sharded path
/// at small scale with [`force_sharding_for_tests`].
pub fn shards_enabled(n_metros: usize) -> bool {
    #[cfg(test)]
    {
        let o = MIN_METROS_OVERRIDE.load(Ordering::Relaxed);
        if o != 0 {
            return n_metros >= o;
        }
    }
    n_metros >= SHARD_MIN_METROS
}

/// Lowers the sharding gate so small-scale tests can drive the sharded
/// code path and assert byte-identity against the flat one.
#[cfg(test)]
pub fn force_sharding_for_tests(min_metros: usize) {
    MIN_METROS_OVERRIDE.store(min_metros, Ordering::Relaxed);
}

/// One k-d tree node: either a split (dimension + threshold, children) or
/// a leaf owning a shard id.
#[derive(Clone, Copy, Debug)]
enum Node {
    /// `dim` 0 splits on longitude, 1 on latitude; points with
    /// `coord < threshold` descend left, the rest right.
    Split { dim: u8, threshold: f64, left: u32, right: u32 },
    Leaf { shard: u32 },
}

/// A k-d median cut over a point set, mapping any coordinate to the shard
/// (leaf cell) containing it.
#[derive(Debug)]
pub struct SpatialPartition {
    nodes: Vec<Node>,
    n_shards: usize,
}

impl SpatialPartition {
    /// Builds the partition over `points` (typically metro centroids),
    /// splitting on the wider dimension's median until every leaf holds at
    /// most `target_leaf` points. Pure: identical inputs give identical
    /// trees at any parallelism.
    pub fn build(points: &[GeoPoint], target_leaf: usize) -> Self {
        let target_leaf = target_leaf.max(1);
        let mut part = SpatialPartition { nodes: Vec::new(), n_shards: 0 };
        let mut idx: Vec<u32> = (0..points.len() as u32).collect();
        part.split(points, &mut idx, target_leaf, 0);
        part
    }

    /// Builds with the default leaf target tuned for metro registries.
    pub fn over_metros(points: &[GeoPoint]) -> Self {
        Self::build(points, TARGET_LEAF)
    }

    fn split(
        &mut self,
        points: &[GeoPoint],
        idx: &mut [u32],
        target_leaf: usize,
        depth: u32,
    ) -> u32 {
        let at = self.nodes.len() as u32;
        // Depth cap guards degenerate inputs (all points coincident).
        if idx.len() <= target_leaf || depth >= 32 {
            let shard = self.n_shards as u32;
            self.n_shards += 1;
            self.nodes.push(Node::Leaf { shard });
            return at;
        }
        // Split the wider extent; ties go to longitude. Extents and
        // medians use IEEE total order, so NaN-free inputs sort stably.
        let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
        for &i in idx.iter() {
            let p = &points[i as usize];
            for (d, c) in [p.lon, p.lat].into_iter().enumerate() {
                lo[d] = lo[d].min(c);
                hi[d] = hi[d].max(c);
            }
        }
        let dim = u8::from(hi[1] - lo[1] > hi[0] - lo[0]);
        let coord =
            |i: u32| -> f64 { if dim == 0 { points[i as usize].lon } else { points[i as usize].lat } };
        let mid = idx.len() / 2;
        // Stable secondary key (the point index) makes the median unique
        // even among equal coordinates.
        idx.sort_unstable_by(|&a, &b| coord(a).total_cmp(&coord(b)).then(a.cmp(&b)));
        let threshold = coord(idx[mid]);
        // All points equal on this dim ⇒ unsplittable here; leaf out.
        if coord(idx[0]).total_cmp(&threshold).is_eq()
            && coord(idx[idx.len() - 1]).total_cmp(&threshold).is_eq()
        {
            let shard = self.n_shards as u32;
            self.n_shards += 1;
            self.nodes.push(Node::Leaf { shard });
            return at;
        }
        // `locate` descends by `coord < threshold`, so the split point must
        // be the first index whose coordinate reaches the threshold — not
        // the positional median — or boundary points would land in a leaf
        // that `locate` never returns for them.
        let split_at = idx.partition_point(|&i| coord(i) < threshold);
        self.nodes.push(Node::Leaf { shard: 0 }); // placeholder, patched below
        let (l_idx, r_idx) = idx.split_at_mut(split_at);
        let left = self.split(points, l_idx, target_leaf, depth + 1);
        let right = self.split(points, r_idx, target_leaf, depth + 1);
        self.nodes[at as usize] = Node::Split { dim, threshold, left, right };
        at
    }

    /// Number of leaf cells (parallel work units).
    pub fn shard_count(&self) -> usize {
        self.n_shards
    }

    /// The shard whose cell contains `p`. Total: every coordinate maps to
    /// exactly one leaf, including points outside the build set's bounds.
    pub fn locate(&self, p: &GeoPoint) -> usize {
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                Node::Leaf { shard } => return shard as usize,
                Node::Split { dim, threshold, left, right } => {
                    let c = if dim == 0 { p.lon } else { p.lat };
                    at = if c < threshold { left } else { right } as usize;
                }
            }
        }
    }

    /// Buckets item indices by shard. Each bucket is ascending (input
    /// order), and the bucket list is in shard order — the deterministic
    /// unit of parallel work.
    pub fn bucket_by<T>(&self, items: &[T], loc: impl Fn(&T) -> GeoPoint) -> Vec<Vec<u32>> {
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.n_shards];
        for (i, item) in items.iter().enumerate() {
            buckets[self.locate(&loc(item))].push(i as u32);
        }
        buckets
    }
}

/// Runs a pure per-item function over `items` grouped by spatial shard,
/// through `igdb-par`, and scatters the results back into input order.
/// Byte-identical to `igdb_par::par_map(items, f)` at any worker count —
/// only the grouping (and therefore each worker's locality) changes.
pub fn sharded_map<T, R>(
    part: &SpatialPartition,
    items: &[T],
    loc: impl Fn(&T) -> GeoPoint,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let buckets = part.bucket_by(items, loc);
    let per_shard: Vec<Vec<(u32, R)>> = igdb_par::par_map(&buckets, |bucket| {
        bucket.iter().map(|&i| (i, f(&items[i as usize]))).collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for shard in per_shard {
        for (i, r) in shard {
            out[i as usize] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every item bucketed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<GeoPoint> {
        // Deterministic scatter over a lon/lat box, no RNG needed.
        (0..n)
            .map(|i| {
                GeoPoint::new(
                    ((i * 61) % 320) as f64 - 160.0 + (i % 11) as f64 * 0.01,
                    ((i * 37) % 140) as f64 - 70.0 + (i % 7) as f64 * 0.01,
                )
            })
            .collect()
    }

    #[test]
    fn every_build_point_lands_in_its_leaf() {
        let pts = grid(5000);
        let part = SpatialPartition::build(&pts, 256);
        assert!(part.shard_count() >= 2);
        let buckets = part.bucket_by(&pts, |p| *p);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
        // locate() agrees with bucket_by() for every member.
        for (shard, bucket) in buckets.iter().enumerate() {
            for &i in bucket {
                assert_eq!(part.locate(&pts[i as usize]), shard);
            }
        }
    }

    #[test]
    fn leaves_respect_target_size() {
        let pts = grid(5000);
        let part = SpatialPartition::build(&pts, 256);
        for bucket in part.bucket_by(&pts, |p| *p) {
            assert!(bucket.len() <= 256, "leaf of {} exceeds target", bucket.len());
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let pts = grid(3000);
        let a = SpatialPartition::build(&pts, 128);
        let b = SpatialPartition::build(&pts, 128);
        assert_eq!(a.shard_count(), b.shard_count());
        for p in &pts {
            assert_eq!(a.locate(p), b.locate(p));
        }
    }

    #[test]
    fn coincident_points_terminate() {
        let pts = vec![GeoPoint::new(10.0, 20.0); 500];
        let part = SpatialPartition::build(&pts, 16);
        assert_eq!(part.shard_count(), 1);
        assert_eq!(part.locate(&pts[0]), 0);
    }

    #[test]
    fn out_of_bounds_points_still_map() {
        let pts = grid(1000);
        let part = SpatialPartition::build(&pts, 64);
        for p in [
            GeoPoint::new(179.9, 89.9),
            GeoPoint::new(-179.9, -89.9),
            GeoPoint::new(0.0, 0.0),
        ] {
            assert!(part.locate(&p) < part.shard_count());
        }
    }

    #[test]
    fn sharded_map_matches_flat_map_at_any_worker_count() {
        let pts = grid(2000);
        let part = SpatialPartition::build(&pts, 100);
        let f = |p: &GeoPoint| ((p.lat * 3.0 + p.lon) * 1e6) as i64;
        let flat: Vec<i64> = pts.iter().map(f).collect();
        for workers in [1, 2, 5] {
            let sharded = igdb_par::with_threads(workers, || {
                sharded_map(&part, &pts, |p| *p, f)
            });
            assert_eq!(sharded, flat, "workers={workers}");
        }
    }
}
