//! The iGDB relational schema (paper Figure 2).
//!
//! Physical layer: `city_points`, `city_polygons`, `phys_nodes`,
//! `phys_conn` (standard right-of-way paths), `land_points`, `sub_cables`,
//! `asn_loc`. Logical layer: `asn_name`, `asn_org`, `asn_conn`,
//! `ip_asn_dns`, `ixp_prefixes`, `probes`, `traceroutes`. Every relation
//! carries `source` and `as_of_date` (paper §3: "iGDB includes an
//! as-of-date as an attribute for all collected data").

use igdb_db::{ColumnDef as C, ColumnType as T, Schema};

/// `city_points`: the standard urban areas.
pub fn city_points() -> Schema {
    Schema::new(vec![
        C::new("metro_id", T::Int),
        C::new("city", T::Text),
        C::new("state_province", T::Text),
        C::new("country", T::Text),
        C::new("latitude", T::Float),
        C::new("longitude", T::Float),
        C::new("population", T::Int),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `city_polygons`: the Thiessen cell of each urban area, as WKT.
pub fn city_polygons() -> Schema {
    Schema::new(vec![
        C::new("metro_id", T::Int),
        C::new("city", T::Text),
        C::new("state_province", T::Text),
        C::new("country", T::Text),
        C::new("geom", T::Geometry),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `phys_nodes`: PoPs, IXP facilities, colocation centres.
pub fn phys_nodes() -> Schema {
    Schema::new(vec![
        C::new("node_name", T::Text),
        C::new("organization", T::Text),
        C::new("raw_city_label", T::Text),
        C::new("metro_id", T::Int),
        C::new("metro", T::Text),
        C::new("country", T::Text),
        C::new("latitude", T::Float),
        C::new("longitude", T::Float),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `phys_conn`: inferred standard paths between connected metros.
pub fn phys_conn() -> Schema {
    Schema::new(vec![
        C::new("from_metro_id", T::Int),
        C::new("from_metro", T::Text),
        C::new("from_country", T::Text),
        C::new("to_metro_id", T::Int),
        C::new("to_metro", T::Text),
        C::new("to_country", T::Text),
        C::new("distance_km", T::Float),
        C::new("path_wkt", T::Geometry),
        // Right-of-way class: "roadway", "microwave", … (paper §5).
        C::new("row_type", T::Text),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `land_points`: submarine cable landing sites.
pub fn land_points() -> Schema {
    Schema::new(vec![
        C::new("cable_id", T::Int),
        C::new("landing_name", T::Text),
        C::new("metro_id", T::Int),
        C::new("metro", T::Text),
        C::new("country", T::Text),
        C::new("latitude", T::Float),
        C::new("longitude", T::Float),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `sub_cables`: submarine cable systems with their paths.
pub fn sub_cables() -> Schema {
    Schema::new(vec![
        C::new("cable_id", T::Int),
        C::new("cable_name", T::Text),
        C::new("owners", T::Text),
        C::new("length_km", T::Float),
        C::new("cable_wkt", T::Geometry),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `asn_loc`: the geographic footprint of each ASN, with remote-peering
/// and inference flags (§3.3, §4.4).
pub fn asn_loc() -> Schema {
    Schema::new(vec![
        C::new("asn", T::Int),
        C::new("metro_id", T::Int),
        C::new("metro", T::Text),
        C::new("country", T::Text),
        C::new("remote_peering", T::Bool),
        C::new("inferred", T::Bool),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `asn_name`: ASN ↔ AS-name, one row per source spelling (§3.2).
pub fn asn_name() -> Schema {
    Schema::new(vec![
        C::new("asn", T::Int),
        C::new("asn_name", T::Text),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `asn_org`: ASN ↔ organization, one row per source spelling.
pub fn asn_org() -> Schema {
    Schema::new(vec![
        C::new("asn", T::Int),
        C::new("organization", T::Text),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `asn_conn`: undirected AS adjacency from collector aggregation.
pub fn asn_conn() -> Schema {
    Schema::new(vec![
        C::new("from_asn", T::Int),
        C::new("to_asn", T::Int),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `ip_asn_dns`: the IP↔ASN↔FQDN↔geolocation bridge (§3.2).
pub fn ip_asn_dns() -> Schema {
    Schema::new(vec![
        C::new("ip", T::Text),
        C::nullable("asn", T::Int),
        C::nullable("fqdn", T::Text),
        C::nullable("metro_id", T::Int),
        C::nullable("metro", T::Text),
        C::new("geo_source", T::Text),
        // §5: "an extra column … that annotates whether an IP address is
        // part of an anycast prefix. This allows for several locations to
        // be stored for such an IP address."
        C::new("anycast", T::Bool),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `ixp_prefixes`: IXP peering LANs.
pub fn ixp_prefixes() -> Schema {
    Schema::new(vec![
        C::new("ixp_name", T::Text),
        C::new("prefix", T::Text),
        C::new("metro_id", T::Int),
        C::new("metro", T::Text),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `probes`: measurement anchors (the RIPE Atlas registration data).
pub fn probes() -> Schema {
    Schema::new(vec![
        C::new("probe_id", T::Int),
        C::new("ip", T::Text),
        C::new("asn", T::Int),
        C::new("metro_id", T::Int),
        C::new("metro", T::Text),
        C::new("latitude", T::Float),
        C::new("longitude", T::Float),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// `traceroutes`: one row per hop of every mesh measurement.
pub fn traceroutes() -> Schema {
    Schema::new(vec![
        C::new("src_probe", T::Int),
        C::new("dst_probe", T::Int),
        C::new("ttl", T::Int),
        C::nullable("ip", T::Text),
        C::new("rtt_ms", T::Float),
        C::new("source", T::Text),
        C::new("as_of_date", T::Text),
    ])
}

/// Every (name, schema) pair, for bulk table creation.
pub fn all_relations() -> Vec<(&'static str, Schema)> {
    vec![
        ("city_points", city_points()),
        ("city_polygons", city_polygons()),
        ("phys_nodes", phys_nodes()),
        ("phys_conn", phys_conn()),
        ("land_points", land_points()),
        ("sub_cables", sub_cables()),
        ("asn_loc", asn_loc()),
        ("asn_name", asn_name()),
        ("asn_org", asn_org()),
        ("asn_conn", asn_conn()),
        ("ip_asn_dns", ip_asn_dns()),
        ("ixp_prefixes", ixp_prefixes()),
        ("probes", probes()),
        ("traceroutes", traceroutes()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_relations_unique_and_carry_provenance() {
        let rels = all_relations();
        assert_eq!(rels.len(), 14);
        let names: std::collections::HashSet<&str> = rels.iter().map(|r| r.0).collect();
        assert_eq!(names.len(), rels.len());
        for (name, schema) in &rels {
            assert!(
                schema.index_of("source").is_ok(),
                "{name} missing source column"
            );
            assert!(
                schema.index_of("as_of_date").is_ok(),
                "{name} missing as_of_date column"
            );
        }
    }

    #[test]
    fn geometry_columns_are_geometry_typed() {
        let pc = phys_conn();
        let idx = pc.index_of("path_wkt").unwrap();
        assert_eq!(pc.columns()[idx].ty, igdb_db::ColumnType::Geometry);
        let cp = city_polygons();
        let idx = cp.index_of("geom").unwrap();
        assert_eq!(cp.columns()[idx].ty, igdb_db::ColumnType::Geometry);
    }
}
