//! Ingest + standardize + load: snapshots in, the iGDB database out.
//!
//! This is the §2–§3 pipeline. Every source record is parsed, its location
//! standardized against the metro registry (spatial join where coordinates
//! exist, label resolution where only free text exists), and loaded into
//! the Figure 2 relations with `source`/`as_of_date` provenance. The
//! logical side is then bridged: traceroute addresses are mapped to ASes
//! (bdrmapIT role), to hostnames (Rapid7 rDNS), and to metros (Hoiho + IXP
//! prefixes), filling `ip_asn_dns`.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use igdb_db::{Database, Value};
use igdb_fault::{BuildError, BuildPolicy, BuildReport, SourceId};
use igdb_geo::{parse_wkt, to_wkt, GeoPoint, Geometry, LineString, MultiLineString};
use igdb_net::{Asn, Ip4, Prefix};
use igdb_synth::sources::{AtlasLink, AtlasNode, PdbFacility, RipeTraceroute, SnapshotSet};

use crate::bdrmap::BdrMap;
use crate::delta::{diff_snapshots, pair_diff_metros, pairs_removal_only, SnapshotDelta, Stage};
use crate::hoiho::HoihoEngine;
use crate::metros::MetroRegistry;
use crate::roads::RoadGraph;
use crate::schema;
use crate::shard::{self, SpatialPartition};
use crate::validate::{validate, CleanSnapshots};

/// Where a metro assignment for an IP came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocationSource {
    /// Hoiho hostname geohint.
    Hoiho,
    /// The address sits on a known IXP peering LAN.
    IxpPrefix,
    /// Latency belief propagation (§4.4), added after the base build.
    BeliefProp,
}

impl LocationSource {
    pub fn tag(&self) -> &'static str {
        match self {
            LocationSource::Hoiho => "hoiho",
            LocationSource::IxpPrefix => "ixp_prefix",
            LocationSource::BeliefProp => "belief_prop",
        }
    }
}

/// Everything iGDB knows about one observed address.
#[derive(Clone, Debug, Default)]
pub struct IpInfo {
    pub asn: Option<Asn>,
    pub fqdn: Option<igdb_db::Str>,
    pub metro: Option<usize>,
    pub geo_source: Option<LocationSource>,
    /// The address sits inside a known anycast prefix: any single
    /// location is suspect, and inference must not assign one (§5).
    pub anycast: bool,
}

/// A registered probe (anchor).
#[derive(Clone, Copy, Debug)]
pub struct ProbeInfo {
    pub ip: Ip4,
    pub asn: Asn,
    pub metro: usize,
}

/// Ingests the physical layer of one snapshot: `phys_nodes` rows from
/// Internet Atlas and PeeringDB facilities (standardized by spatial join),
/// and `phys_conn` rows from Atlas edges routed along rights-of-way.
/// Returns the Atlas node→metro and facility→metro maps the logical-layer
/// ingestion needs.
fn load_physical(
    db: &Database,
    metros: &MetroRegistry,
    roads: &RoadGraph,
    partition: Option<&SpatialPartition>,
    atlas_nodes: &[AtlasNode],
    atlas_links: &[AtlasLink],
    pdb_facilities: &[PdbFacility],
    date: &str,
    replay_warm_hits: bool,
) -> (HashMap<String, usize>, HashMap<u32, usize>) {
    // Spatial joins are embarrassingly parallel; row insertion stays
    // serial and in input order so the loaded tables are byte-identical
    // regardless of worker count.
    let _span = igdb_obs::span("build.physical");
    let join_span = igdb_obs::span("physical.spatial_join");
    let atlas_assignments = match partition {
        Some(part) => shard::sharded_map(part, atlas_nodes, |n| n.loc, |n| metros.metro_of(&n.loc)),
        None => igdb_par::par_map(atlas_nodes, |n| metros.metro_of(&n.loc)),
    };
    let mut atlas_node_metro: HashMap<String, usize> = HashMap::new();
    for (n, mid) in atlas_nodes.iter().zip(atlas_assignments) {
        let Some(mid) = mid else {
            continue;
        };
        atlas_node_metro.insert(n.node_name.to_string(), mid);
        db.insert(
            "phys_nodes",
            vec![
                Value::Text(n.node_name.clone()),
                Value::Text(n.network.clone()),
                Value::Text(n.city_label.clone()),
                Value::from(mid),
                Value::text(metros.metro(mid).label()),
                Value::Text(n.country.clone()),
                Value::Float(n.loc.lat),
                Value::Float(n.loc.lon),
                Value::text("internet_atlas"),
                Value::text(date),
            ],
        )
        .expect("phys_nodes row");
    }
    let fac_assignments = match partition {
        Some(part) => shard::sharded_map(part, pdb_facilities, |f| f.loc, |f| metros.metro_of(&f.loc)),
        None => igdb_par::par_map(pdb_facilities, |f| metros.metro_of(&f.loc)),
    };
    let mut fac_metro: HashMap<u32, usize> = HashMap::new();
    for (f, mid) in pdb_facilities.iter().zip(fac_assignments) {
        let Some(mid) = mid else {
            continue;
        };
        fac_metro.insert(f.fac_id, mid);
        db.insert(
            "phys_nodes",
            vec![
                Value::text(&f.name),
                Value::text(&f.name),
                Value::text(&f.city_label),
                Value::from(mid),
                Value::text(metros.metro(mid).label()),
                Value::text(&f.country),
                Value::Float(f.loc.lat),
                Value::Float(f.loc.lon),
                Value::text("peeringdb"),
                Value::text(date),
            ],
        )
        .expect("phys_nodes row");
    }

    drop(join_span);

    // Atlas edges → shortest right-of-way paths, deduped per metro pair.
    // Dedup runs serially (first-seen order defines the output), then
    // roadway routing — the expensive part — fans out with one shortest-
    // path workspace per worker. Pairs are grouped by source metro first,
    // so each worker's resumable Dijkstra amortizes to roughly one full
    // search per source. Rows are inserted serially in first-seen order,
    // keeping the table byte-identical at any worker count.
    let mut seen_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut link_work: Vec<(usize, usize, igdb_synth::sources::LinkType)> = Vec::new();
    for l in atlas_links {
        let (Some(&ma), Some(&mb)) = (
            atlas_node_metro.get(l.from_node.as_str()),
            atlas_node_metro.get(l.to_node.as_str()),
        ) else {
            continue;
        };
        if ma == mb {
            continue;
        }
        let key = (ma.min(mb), ma.max(mb));
        if !seen_pairs.insert(key) {
            continue;
        }
        link_work.push((key.0, key.1, l.link_type));
    }
    let mut roadway_order: Vec<usize> = (0..link_work.len())
        .filter(|&i| matches!(link_work[i].2, igdb_synth::sources::LinkType::Roadway))
        .collect();
    roadway_order.sort_by_key(|&i| link_work[i].0);
    // A delta apply reuses the prior road graph with its memoized
    // corridors; every attempted pair already settled there skips its
    // engine query, so the `spath.queries` ticks a cold rebuild would
    // emit are replayed after routing to keep the deterministic counter
    // stream byte-identical. A fresh build's cache is cold and replays
    // nothing.
    let warm_hits = if replay_warm_hits {
        let cached = roads.cached_route_keys();
        roadway_order
            .iter()
            .filter(|&&i| cached.contains(&(link_work[i].0, link_work[i].1)))
            .count() as u64
    } else {
        0
    };
    let routing_span = igdb_obs::span("physical.routing");
    let mut routed: Vec<Option<(f64, Vec<igdb_geo::GeoPoint>)>> = vec![None; link_work.len()];
    let route_group = |group: &[usize]| -> Vec<(usize, Option<(f64, Vec<igdb_geo::GeoPoint>)>)> {
        let mut ws = crate::spath::SpWorkspace::new();
        group
            .iter()
            .map(|&i| {
                let (a, b, _) = link_work[i];
                // Memoized per unordered pair: snapshot appends and
                // overlapping atlas links reuse earlier routes.
                let route = roads
                    .route_cached(&mut ws, a, b)
                    .map(|(_, km, geom)| (km, geom));
                (i, route)
            })
            .collect()
    };
    let grouped: Vec<Vec<(usize, Option<(f64, Vec<igdb_geo::GeoPoint>)>)>> = match partition {
        // At scale, corridors group by the source metro's spatial shard:
        // one worker's searches stay inside one region of the road graph,
        // so its resumable workspace and the corridor cache's pages stay
        // hot. Results scatter by link index — the table is byte-identical
        // to the flat split's.
        Some(part) => {
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); part.shard_count()];
            for &i in &roadway_order {
                groups[part.locate(&metros.metro(link_work[i].0).loc)].push(i);
            }
            groups.retain(|g| !g.is_empty());
            igdb_par::par_map(&groups, |g| route_group(g))
        }
        None => igdb_par::par_chunks(&roadway_order, |_, chunk| route_group(chunk)),
    };
    for chunk in grouped {
        for (i, route) in chunk {
            routed[i] = route;
        }
    }
    drop(routing_span);
    if warm_hits > 0 {
        igdb_obs::counter("spath.queries", "", warm_hits);
    }
    for (i, &(ka, kb, link_type)) in link_work.iter().enumerate() {
        let key = (ka, kb);
        // Right-of-way class decides the path model (paper §5): roadway
        // links follow the transportation network; microwave links ARE
        // straight lines between the nodes.
        let (km, geom, row_type) = match link_type {
            igdb_synth::sources::LinkType::Roadway => {
                let Some((km, geom)) = routed[i].take() else {
                    // no terrestrial right-of-way (e.g. across an ocean)
                    igdb_obs::counter("build.route_misses", "", 1);
                    continue;
                };
                (km, geom, "roadway")
            }
            igdb_synth::sources::LinkType::Microwave => {
                let (a, b) = (metros.metro(key.0).loc, metros.metro(key.1).loc);
                let arc = igdb_geo::great_circle_arc(&a, &b, 8);
                let km = igdb_geo::polyline_length_km(&arc);
                (km, arc, "microwave")
            }
        };
        igdb_obs::counter("build.phys_conn", row_type, 1);
        let (fm, tm) = (metros.metro(key.0), metros.metro(key.1));
        db.insert(
            "phys_conn",
            vec![
                Value::from(key.0),
                Value::text(fm.label()),
                Value::text(&fm.country),
                Value::from(key.1),
                Value::text(tm.label()),
                Value::text(&tm.country),
                Value::Float(km),
                Value::text(to_wkt(&Geometry::LineString(LineString::new(geom)))),
                Value::text(row_type),
                Value::text("internet_atlas+row"),
                Value::text(date),
            ],
        )
        .expect("phys_conn row");
    }
    (atlas_node_metro, fac_metro)
}

/// Reads the distinct physical path pairs for one snapshot date.
fn phys_pairs_for(db: &Database, date: &str) -> Vec<(usize, usize, f64)> {
    db.with_table("phys_conn", |t| {
        let col = t.schema().index_of("as_of_date").expect("schema");
        t.rows()
            .iter()
            .filter(|r| r[col].as_text() == Some(date))
            .map(|r| {
                (
                    r[0].as_int().unwrap() as usize,
                    r[3].as_int().unwrap() as usize,
                    r[6].as_float().unwrap(),
                )
            })
            .collect()
    })
    .expect("phys_conn exists")
}

/// The built database plus the typed indices analyses use.
pub struct Igdb {
    pub db: Database,
    /// Shared: a delta apply whose metro catalogue is untouched reuses
    /// the registry (and its spatial index) by reference.
    pub metros: Arc<MetroRegistry>,
    /// Shared: reusing the road graph keeps its memoized corridors warm
    /// across a delta apply, so unchanged atlas links never re-route.
    pub roads: Arc<RoadGraph>,
    /// Shared: a delta apply whose IP-resolution inputs are untouched
    /// (see [`crate::delta::IP_RESOLUTION_INPUTS`]) reuses the trained
    /// border map by reference instead of re-refining it.
    pub bdrmap: Arc<BdrMap>,
    /// Shared on the same condition as `bdrmap`.
    pub hoiho: Arc<HoihoEngine>,
    pub as_of_date: String,
    /// Per-address knowledge (mirrors `ip_asn_dns`).
    pub ip_info: HashMap<Ip4, IpInfo>,
    /// Raw PTR records. Hostnames are interned [`igdb_db::Str`]s — the
    /// same symbols the `ip_asn_dns` cells hold, so this map adds ids,
    /// not string copies.
    pub rdns: HashMap<Ip4, igdb_db::Str>,
    /// Declared footprint per ASN (from `asn_loc`, non-inferred rows).
    pub asn_metros: HashMap<Asn, BTreeSet<usize>>,
    /// Distinct inferred physical paths: (from_metro, to_metro, km),
    /// normalized from < to.
    pub phys_pairs: Vec<(usize, usize, f64)>,
    /// Probe registry.
    pub probes: HashMap<u32, ProbeInfo>,
    /// Lazily-built shared physical-path graph over [`Self::phys_pairs`];
    /// analyses that used to each build their own copy (physpath, risk,
    /// rocketfuel) share this one, and with it one corridor cache.
    phys_graph: OnceLock<crate::analysis::physpath::PhysGraph>,
    /// Lazily-parsed `phys_conn` WKT geometries (all dates, row order).
    phys_geoms: OnceLock<Vec<Vec<GeoPoint>>>,
    /// The validated record set this world was built from — the baseline
    /// [`crate::delta::diff_snapshots`] diffs a replacement against.
    snapshots: igdb_synth::sources::SnapshotSet,
    /// Per-stage deterministic-counter deltas recorded while building.
    /// A delta apply replays a clean stage's entry instead of re-running
    /// the stage, keeping the counter stream byte-identical to a
    /// from-scratch rebuild.
    stage_ledger: Vec<Vec<(String, String, u64)>>,
    /// Extra dated rows were appended via [`Igdb::append_snapshot`]; the
    /// multi-date tables can no longer be copied verbatim by a delta
    /// apply, so table reuse is clamped to the pre-physical stages.
    appended: bool,
}

/// Releases every table's cell-arena growth slack. Runs at each stage
/// boundary so a finished table's doubling headroom is returned before
/// later stages stack their own working set on top — the build's peak
/// RSS then tracks real rows, not growth history. Tables still growing
/// pay at most one extra copy per stage.
fn compact_tables(db: &Database) {
    for table in db.table_names() {
        let _ = db.with_table_mut(&table, |t| t.shrink_to_fit());
    }
    // Also hand the stage's freed scratch back to the OS, so the next
    // stage's working set doesn't stack on retained-but-dead pages.
    igdb_obs::trim_heap();
}

/// Hands one screened source back the moment its last stage has consumed
/// it. For `Cow::Owned` sources (scratch builds) this frees the records
/// mid-build, so peak RSS tracks the stages still running rather than the
/// whole input set; for borrowed sources it is a free no-op.
fn release<T: Clone>(source: &mut Cow<'_, [T]>) {
    *source = Cow::Borrowed(&[]);
}

/// Deterministic counters as a map, for per-stage bracketing.
fn counter_map(reg: &Option<igdb_obs::Registry>) -> BTreeMap<(String, String), u64> {
    match reg {
        Some(r) => r
            .counters()
            .into_iter()
            .map(|(n, l, v)| ((n, l), v))
            .collect(),
        None => BTreeMap::new(),
    }
}

/// Brackets each pipeline stage, recording the deterministic-counter
/// delta it emitted (perf-class metrics are excluded by construction).
///
/// When no registry is installed, a private one is installed for the
/// build's duration: emissions were unobservable anyway, and the ledger
/// must exist regardless so a later [`Igdb::apply_delta`] can replay
/// clean stages under whatever registry *it* runs in.
struct LedgerRecorder {
    reg: Option<igdb_obs::Registry>,
    before: BTreeMap<(String, String), u64>,
    ledger: Vec<Vec<(String, String, u64)>>,
    /// Keeps the private registry installed for the recorder's lifetime.
    _shadow: Option<igdb_obs::Installed>,
}

impl LedgerRecorder {
    fn start() -> Self {
        let (reg, shadow) = match igdb_obs::current() {
            Some(r) => (Some(r), None),
            None => {
                let r = igdb_obs::Registry::new();
                let guard = r.install();
                (Some(r), Some(guard))
            }
        };
        let before = counter_map(&reg);
        Self {
            reg,
            before,
            ledger: Vec::new(),
            _shadow: shadow,
        }
    }

    /// Closes the current stage: everything emitted since the previous
    /// cut becomes this stage's ledger entry.
    fn cut(&mut self) {
        // Resident-set sample at each stage boundary (perf-class, so the
        // deterministic stream and the replayed ledger never see it).
        if let (Some(stage), Some(kb)) = (
            Stage::ALL.get(self.ledger.len()),
            igdb_obs::current_rss_kb(),
        ) {
            if let Some(r) = &self.reg {
                let prev = r.perf_value("mem.rss_kb", stage.name());
                if kb > prev {
                    r.perf_add("mem.rss_kb", stage.name(), kb - prev);
                }
            }
        }
        let now = counter_map(&self.reg);
        let entry = now
            .iter()
            .filter_map(|((n, l), v)| {
                let base = self
                    .before
                    .get(&(n.clone(), l.clone()))
                    .copied()
                    .unwrap_or(0);
                (*v > base).then(|| (n.clone(), l.clone(), *v - base))
            })
            .collect();
        self.before = now;
        self.ledger.push(entry);
    }
}

impl Igdb {
    /// Runs the full pipeline over one snapshot set, requiring it to be
    /// pristine. Equivalent to [`Igdb::try_build`] under
    /// [`BuildPolicy::strict`], except that faults panic — the legacy
    /// contract existing callers rely on. Anything ingesting real-world
    /// (or possibly corrupted) snapshots should use `try_build`.
    ///
    /// # Panics
    /// Panics on the first faulty record or missing required source.
    pub fn build(snaps: &SnapshotSet) -> Self {
        match Self::try_build(snaps, &BuildPolicy::strict()) {
            Ok((igdb, _)) => igdb,
            Err(e) => panic!("Igdb::build on faulty input (use try_build): {e}"),
        }
    }

    /// Runs the full pipeline with fault tolerance. Snapshots are screened
    /// against `policy` first (see [`crate::validate`]): bad records land
    /// in the report's quarantine with source/index/reason provenance,
    /// optional sources degrade (or are dropped past the policy's bad-row
    /// threshold), and only an unusable *required* source — the metro
    /// catalogue or the road network — or any fault under a fail-fast
    /// policy aborts the build, with a typed error rather than a panic.
    ///
    /// On clean input the output database is byte-identical to
    /// [`Igdb::build`]'s at any worker count, and the report
    /// [`BuildReport::is_clean`].
    pub fn try_build(
        snaps: &SnapshotSet,
        policy: &BuildPolicy,
    ) -> Result<(Igdb, BuildReport), BuildError> {
        let _span = igdb_obs::span("pipeline");
        let (mut clean, report) = Self::screen(snaps, policy)?;
        Ok((Self::build_validated(&mut clean), report))
    }

    /// Like [`Igdb::try_build`], but takes the snapshot set by value. When
    /// screening leaves every source untouched (the common clean path) the
    /// input set itself becomes the retained diff baseline, instead of a
    /// second, fully materialized copy — at planet scale that copy is one
    /// of the largest allocations in the whole build. Output is
    /// byte-identical to [`Igdb::try_build`] on the same input.
    pub fn try_build_owned(
        snaps: SnapshotSet,
        policy: &BuildPolicy,
    ) -> Result<(Igdb, BuildReport), BuildError> {
        let _span = igdb_obs::span("pipeline");
        let (clean, report) = Self::screen(&snaps, policy)?;
        if clean.is_modified() {
            let mut clean = clean;
            return Ok((Self::build_validated(&mut clean), report));
        }
        igdb_obs::trim_heap();
        let mut clean = clean;
        let mut igdb = Self::build_staged(&mut clean, None, false);
        drop(clean);
        igdb.snapshots = snaps;
        Ok((igdb, report))
    }

    /// One-shot build: consumes the snapshot set and returns each source's
    /// memory the moment its last stage has consumed it, so peak RSS
    /// tracks the stages still executing instead of the whole input. The
    /// output database is byte-identical to [`Igdb::try_build`]'s, but the
    /// returned Igdb retains an *empty* snapshot baseline:
    /// [`Igdb::traces`] is empty and [`Igdb::apply_delta`] falls back to a
    /// full rebuild. Use it for build-and-save pipelines (the `igdb build`
    /// CLI, scaling benches); long-lived serving or delta-ingesting
    /// instances want [`Igdb::try_build_owned`].
    pub fn try_build_scratch(
        snaps: SnapshotSet,
        policy: &BuildPolicy,
    ) -> Result<(Igdb, BuildReport), BuildError> {
        let _span = igdb_obs::span("pipeline");
        let (clean, report) = Self::screen(&snaps, policy)?;
        if clean.is_modified() {
            let mut clean = clean;
            return Ok((Self::build_validated(&mut clean), report));
        }
        drop(clean);
        igdb_obs::trim_heap();
        let SnapshotSet {
            as_of_date,
            atlas_nodes,
            atlas_links,
            pdb_facilities,
            pdb_networks,
            pdb_netfac,
            pdb_ix,
            pdb_netix,
            pch_ixps,
            he_exchanges,
            euroix,
            rdns,
            asrank_entries,
            asrank_links,
            ripe_anchors,
            ripe_traceroutes,
            natural_earth,
            roads,
            telegeo,
            bgp_prefixes,
            anycast_prefixes,
            hoiho_rules,
            geo_codes,
        } = snaps;
        let mut owned = CleanSnapshots {
            as_of_date: &as_of_date,
            atlas_nodes: Cow::Owned(atlas_nodes),
            atlas_links: Cow::Owned(atlas_links),
            pdb_facilities: Cow::Owned(pdb_facilities),
            pdb_networks: Cow::Owned(pdb_networks),
            pdb_netfac: Cow::Owned(pdb_netfac),
            pdb_ix: Cow::Owned(pdb_ix),
            pdb_netix: Cow::Owned(pdb_netix),
            pch_ixps: Cow::Owned(pch_ixps),
            he_exchanges: Cow::Owned(he_exchanges),
            euroix: Cow::Owned(euroix),
            rdns: Cow::Owned(rdns),
            asrank_entries: Cow::Owned(asrank_entries),
            asrank_links: Cow::Owned(asrank_links),
            ripe_anchors: Cow::Owned(ripe_anchors),
            ripe_traceroutes: Cow::Owned(ripe_traceroutes),
            natural_earth: Cow::Owned(natural_earth),
            roads: Cow::Owned(roads),
            telegeo: Cow::Owned(telegeo),
            bgp_prefixes: Cow::Owned(bgp_prefixes),
            anycast_prefixes: Cow::Owned(anycast_prefixes),
            hoiho_rules: Cow::Owned(hoiho_rules),
            geo_codes: Cow::Owned(geo_codes),
        };
        Ok((Self::build_staged(&mut owned, None, false), report))
    }

    /// Validation + the two accounting cross-checks shared by
    /// [`Igdb::try_build`] and [`Igdb::apply_delta`].
    fn screen<'a>(
        snaps: &'a SnapshotSet,
        policy: &BuildPolicy,
    ) -> Result<(CleanSnapshots<'a>, BuildReport), BuildError> {
        // The ingestion counters accumulate across builds sharing one
        // registry, so the report cross-check compares per-source *deltas*
        // against a baseline captured before validation runs.
        let reg = igdb_obs::current();
        let baseline: Vec<[u64; 3]> = match &reg {
            Some(r) => SourceId::ALL
                .iter()
                .map(|s| {
                    [
                        r.counter_value("ingest.rows_in", s.name()),
                        r.counter_value("ingest.rows_accepted", s.name()),
                        r.counter_value("ingest.rows_quarantined", s.name()),
                    ]
                })
                .collect(),
            None => Vec::new(),
        };
        let (clean, report) = validate(snaps, policy)?;
        // Two independent views of the same accounting — the quarantine
        // ledger inside the report, and the observability counters — must
        // agree exactly; divergence is a pipeline bug, typed, never silent.
        report.crosscheck()?;
        if let Some(r) = &reg {
            for (s, base) in SourceId::ALL.iter().zip(&baseline) {
                let h = report.health(*s);
                let got = [
                    r.counter_value("ingest.rows_in", s.name()) - base[0],
                    r.counter_value("ingest.rows_accepted", s.name()) - base[1],
                    r.counter_value("ingest.rows_quarantined", s.name()) - base[2],
                ];
                let want = [
                    h.rows_in as u64,
                    h.rows_accepted as u64,
                    h.rows_quarantined as u64,
                ];
                let what = ["rows_in counter", "rows_accepted counter", "rows_quarantined counter"];
                for i in 0..3 {
                    if got[i] != want[i] {
                        return Err(BuildError::InternalAccounting {
                            source: *s,
                            what: what[i],
                            expected: want[i] as usize,
                            actual: got[i] as usize,
                        });
                    }
                }
            }
        }
        Ok((clean, report))
    }

    /// The build proper. Assumes `snaps` passed validation: endpoints in
    /// range, parallel arrays aligned, coordinates finite, ids unique.
    fn build_validated(snaps: &mut CleanSnapshots<'_>) -> Self {
        Self::build_staged(snaps, None, true)
    }

    /// Replays one stage's recorded deterministic-counter deltas.
    fn replay_stage(ledger: &[Vec<(String, String, u64)>], stage: Stage) {
        for (name, label, v) in &ledger[stage as usize] {
            igdb_obs::counter(name.clone(), label.clone(), *v);
        }
    }

    /// Copies `names` verbatim from `src` into `dst` (clean-prefix reuse).
    fn copy_tables(dst: &Database, src: &Database, names: &[&str]) {
        for name in names {
            let table = src.with_table(name, |t| t.clone()).expect("table exists");
            dst.replace_table(name, table);
        }
    }

    /// One staged pipeline pass. With `reuse = None` this is the plain
    /// full build. With `reuse = Some((prior, delta))` it is the
    /// incremental path: every stage strictly before `delta.first_dirty`
    /// is *clean* — its tables are copied from `prior` verbatim and its
    /// recorded counter deltas replayed — while the dirty suffix re-runs
    /// exactly the code a full build would run, on the same inputs, so
    /// the result is byte-identical to a from-scratch rebuild.
    ///
    /// Stage dirtiness is monotone (see [`crate::delta`]): each stage
    /// reads what earlier ones wrote, so the clean stages always form a
    /// prefix. The one exception to strict prefix reuse is the final
    /// IP-resolution stage: its true input set is narrower than "every
    /// stage before it" ([`crate::delta::IP_RESOLUTION_INPUTS`]), so when
    /// the diff proves those sources untouched the stage is shared from
    /// the prior even though earlier stages were dirty.
    fn build_staged(
        snaps: &mut CleanSnapshots<'_>,
        reuse: Option<(&Igdb, &SnapshotDelta)>,
        retain_snapshots: bool,
    ) -> Self {
        let _span = igdb_obs::span("build");
        let date = snaps.as_of_date.to_string();
        let prior = reuse.map(|(p, _)| p);
        let first_dirty = match reuse {
            Some((_, d)) => d.first_dirty,
            None => Some(Stage::Metros),
        };
        let is_clean =
            |s: Stage| prior.is_some() && first_dirty.map_or(true, |fd| s < fd);
        let mut rec = LedgerRecorder::start();

        let metros: Arc<MetroRegistry> = {
            let _s = igdb_obs::span("build.metros");
            if is_clean(Stage::Metros) {
                let p = prior.expect("clean implies prior");
                Self::replay_stage(&p.stage_ledger, Stage::Metros);
                Arc::clone(&p.metros)
            } else if let Some((p, _)) = reuse.filter(|(_, d)| d.metro_append_only) {
                // Append-only metro growth: the old places are a prefix
                // of the new, so ids are stable and extending the
                // registry (R-tree inserts) answers every spatial join
                // identically to a rebuilt one.
                Arc::new(p.metros.extended(&snaps.natural_earth[p.snapshots.natural_earth.len()..]))
            } else {
                Arc::new(MetroRegistry::build(&snaps.natural_earth))
            }
        };
        // Thiessen cells materialize lazily, and whether that fires later
        // depends on cache warmth: a delta apply sharing a warm registry
        // would skip the compute ticks a cold rebuild emits, tearing the
        // deterministic counter stream. Forcing them here pins the ticks
        // inside the Metros cut — a clean stage replays them, a dirty one
        // recomputes them — and wastes nothing: `city_polygons` needs
        // every cell anyway.
        metros.polygons();
        rec.cut();
        let roads: Arc<RoadGraph> = {
            let _s = igdb_obs::span("build.roads");
            if is_clean(Stage::Roads) {
                let p = prior.expect("clean implies prior");
                Self::replay_stage(&p.stage_ledger, Stage::Roads);
                Arc::clone(&p.roads)
            } else {
                Arc::new(RoadGraph::build(metros.len(), &snaps.roads))
            }
        };
        rec.cut();
        if !retain_snapshots {
            release(&mut snaps.natural_earth);
            release(&mut snaps.roads);
            // Screened but not consumed by any stage below.
            release(&mut snaps.he_exchanges);
            release(&mut snaps.euroix);
        }
        // Planet-scale worlds group the per-metro stages by spatial shard
        // (see `crate::shard`); smaller worlds keep the flat per-record
        // split. Either way the output is byte-identical — the partition
        // only changes which worker touches which region.
        let partition: Option<SpatialPartition> = shard::shards_enabled(metros.len()).then(|| {
            let locs: Vec<igdb_geo::GeoPoint> =
                metros.metros().iter().map(|m| m.loc).collect();
            SpatialPartition::over_metros(&locs)
        });
        let db = Database::new();
        for (name, sch) in schema::all_relations() {
            db.create_table(name, sch).expect("fresh database");
        }

        // --- city_points / city_polygons. ---
        let city_span = igdb_obs::span("build.city_tables");
        if is_clean(Stage::CityTables) {
            let p = prior.expect("clean implies prior");
            Self::copy_tables(&db, &p.db, Stage::CityTables.tables());
            Self::replay_stage(&p.stage_ledger, Stage::CityTables);
        } else {
            for m in metros.metros() {
                db.insert(
                    "city_points",
                    vec![
                        Value::from(m.id),
                        Value::text(&m.name),
                        Value::text(&m.state),
                        Value::text(&m.country),
                        Value::Float(m.loc.lat),
                        Value::Float(m.loc.lon),
                        Value::from(m.population as i64),
                        Value::text("natural_earth"),
                        Value::text(&date),
                    ],
                )
                .expect("city_points row");
            }
            for (m, poly) in metros.metros().iter().zip(metros.polygons()) {
                let wkt = if poly.exterior.is_empty() {
                    "POLYGON EMPTY".to_string()
                } else {
                    to_wkt(&Geometry::Polygon(poly.clone()))
                };
                db.insert(
                    "city_polygons",
                    vec![
                        Value::from(m.id),
                        Value::text(&m.name),
                        Value::text(&m.state),
                        Value::text(&m.country),
                        Value::text(wkt),
                        Value::text("igdb_thiessen"),
                        Value::text(&date),
                    ],
                )
                .expect("city_polygons row");
            }
        }

        drop(city_span);
        compact_tables(&db);
        rec.cut();

        // Label resolver for sources that publish only text locations.
        let name_to_metro: HashMap<String, usize> = metros
            .metros()
            .iter()
            .map(|m| (m.name.to_ascii_lowercase(), m.id))
            .collect();
        let code_to_metro: HashMap<String, usize> = snaps.geo_codes.iter().cloned().collect();
        let resolve_label = |label: &str| -> Option<usize> {
            let lower = label.to_ascii_lowercase();
            if let Some(&m) = name_to_metro.get(&lower) {
                return Some(m);
            }
            if let Some(head) = lower.split(',').next() {
                if let Some(&m) = name_to_metro.get(head.trim()) {
                    return Some(m);
                }
            }
            code_to_metro.get(&lower).copied()
        };

        // --- phys_nodes / phys_conn (shared with snapshot refresh). ---
        let fac_metro: HashMap<u32, usize> = if is_clean(Stage::Physical) {
            let p = prior.expect("clean implies prior");
            Self::copy_tables(&db, &p.db, Stage::Physical.tables());
            Self::replay_stage(&p.stage_ledger, Stage::Physical);
            // The facility→metro join is pure (exact nearest-site
            // queries), so recomputing it for the later stages that need
            // it cannot diverge from the copied rows. Serial on purpose:
            // `igdb_par` ticks deterministic `par.*` counters, and this
            // stage's ledger replay already accounts the originals.
            snaps
                .pdb_facilities
                .iter()
                .filter_map(|f| metros.metro_of(&f.loc).map(|m| (f.fac_id, m)))
                .collect()
        } else {
            let (_atlas_node_metro, fac_metro) = load_physical(
                &db,
                &metros,
                &roads,
                partition.as_ref(),
                &snaps.atlas_nodes,
                &snaps.atlas_links,
                &snaps.pdb_facilities,
                &date,
                true,
            );
            fac_metro
        };
        compact_tables(&db);
        rec.cut();
        if !retain_snapshots {
            release(&mut snaps.atlas_nodes);
            release(&mut snaps.atlas_links);
            release(&mut snaps.pdb_facilities);
        }

        let phys_pairs = phys_pairs_for(&db, &date);

        // --- land_points / sub_cables from Telegeography. ---
        // Landing-point spatial joins fan out in parallel; inserts stay
        // serial and in input order (see load_physical).
        let telegeo_span = igdb_obs::span("build.telegeo");
        if is_clean(Stage::Telegeo) {
            let p = prior.expect("clean implies prior");
            Self::copy_tables(&db, &p.db, Stage::Telegeo.tables());
            Self::replay_stage(&p.stage_ledger, Stage::Telegeo);
        } else {
            let landing_locs: Vec<&igdb_geo::GeoPoint> = snaps
                .telegeo
                .iter()
                .flat_map(|c| c.landings.iter().map(|(_, _, loc)| loc))
                .collect();
            let landing_assignments = igdb_par::par_map(&landing_locs, |loc| metros.metro_of(loc));
            let mut landing_iter = landing_assignments.into_iter();
            for c in snaps.telegeo.iter() {
                for (lname, _, loc) in &c.landings {
                    let Some(mid) = landing_iter.next().expect("one assignment per landing")
                    else {
                        continue;
                    };
                    db.insert(
                        "land_points",
                        vec![
                            Value::from(c.cable_id),
                            Value::text(lname),
                            Value::from(mid),
                            Value::text(metros.metro(mid).label()),
                            Value::text(&metros.metro(mid).country),
                            Value::Float(loc.lat),
                            Value::Float(loc.lon),
                            Value::text("telegeography"),
                            Value::text(&date),
                        ],
                    )
                    .expect("land_points row");
                }
                let mls = MultiLineString::new(
                    c.segments.iter().cloned().map(LineString::new).collect(),
                );
                db.insert(
                    "sub_cables",
                    vec![
                        Value::from(c.cable_id),
                        Value::text(&c.name),
                        Value::text(c.owners.join("; ")),
                        Value::Float(mls.length_km()),
                        Value::text(to_wkt(&Geometry::MultiLineString(mls))),
                        Value::text("telegeography"),
                        Value::text(&date),
                    ],
                )
                .expect("sub_cables row");
            }
        }

        drop(telegeo_span);
        compact_tables(&db);
        rec.cut();
        if !retain_snapshots {
            release(&mut snaps.telegeo);
        }

        // --- Logical names: asn_name / asn_org (inconsistencies kept). ---
        let logical_span = igdb_obs::span("build.logical");
        let net_asn: HashMap<u32, Asn> = snaps
            .pdb_networks
            .iter()
            .map(|n| (n.net_id, n.asn))
            .collect();
        let mut ixp_metro: HashMap<u32, usize> = HashMap::new();
        let mut ixp_lans: Vec<Prefix> = Vec::new();
        let mut ixp_prefix_metro: Vec<(Prefix, usize)> = Vec::new();
        if is_clean(Stage::Logical) {
            let p = prior.expect("clean implies prior");
            Self::copy_tables(&db, &p.db, Stage::Logical.tables());
            Self::replay_stage(&p.stage_ledger, Stage::Logical);
            // The IXP maps are pure label-resolution products; rebuild
            // them without touching the copied tables.
            for ix in snaps.pdb_ix.iter() {
                let Some(mid) = resolve_label(&ix.city_label) else {
                    continue;
                };
                ixp_metro.insert(ix.ix_id, mid);
                ixp_lans.push(ix.prefix);
                ixp_prefix_metro.push((ix.prefix, mid));
            }
        } else {
            for e in snaps.asrank_entries.iter() {
                db.insert(
                    "asn_name",
                    vec![
                        Value::from(e.asn.0),
                        Value::text(&e.as_name),
                        Value::text("asrank"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_name row");
                db.insert(
                    "asn_org",
                    vec![
                        Value::from(e.asn.0),
                        Value::text(&e.org),
                        Value::text("asrank"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_org row");
            }
            for n in snaps.pdb_networks.iter() {
                db.insert(
                    "asn_name",
                    vec![
                        Value::from(n.asn.0),
                        Value::text(&n.as_name),
                        Value::text("peeringdb"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_name row");
                db.insert(
                    "asn_org",
                    vec![
                        Value::from(n.asn.0),
                        Value::text(&n.org),
                        Value::text("peeringdb"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_org row");
            }
            let mut pch_orgs: BTreeSet<(u32, String)> = BTreeSet::new();
            for x in snaps.pch_ixps.iter() {
                for (asn, org) in x.member_asns.iter().zip(&x.member_orgs) {
                    pch_orgs.insert((asn.0, org.clone()));
                }
            }
            for (asn, org) in pch_orgs {
                db.insert(
                    "asn_org",
                    vec![
                        Value::from(asn),
                        Value::text(org),
                        Value::text("pch"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_org row");
            }

            // --- asn_conn. ---
            for &(a, b) in snaps.asrank_links.iter() {
                db.insert(
                    "asn_conn",
                    vec![
                        Value::from(a.0),
                        Value::from(b.0),
                        Value::text("asrank"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_conn row");
            }

            // --- IXPs: prefixes + memberships. ---
            for ix in snaps.pdb_ix.iter() {
                let Some(mid) = resolve_label(&ix.city_label) else {
                    continue;
                };
                ixp_metro.insert(ix.ix_id, mid);
                ixp_lans.push(ix.prefix);
                ixp_prefix_metro.push((ix.prefix, mid));
                db.insert(
                    "ixp_prefixes",
                    vec![
                        Value::text(&ix.name),
                        Value::text(ix.prefix.to_string()),
                        Value::from(mid),
                        Value::text(metros.metro(mid).label()),
                        Value::text("peeringdb"),
                        Value::text(&date),
                    ],
                )
                .expect("ixp_prefixes row");
            }
        }

        drop(logical_span);
        compact_tables(&db);
        rec.cut();
        if !retain_snapshots {
            release(&mut snaps.pdb_networks);
            release(&mut snaps.asrank_entries);
            release(&mut snaps.asrank_links);
            release(&mut snaps.pdb_ix);
        }

        // --- asn_loc: facilities, IXP memberships, PCH/EuroIX echoes. ---
        // (asn, metro, source) → remote flag, deduped.
        let asn_loc_span = igdb_obs::span("build.asn_loc");
        let asn_metros: HashMap<Asn, BTreeSet<usize>> = if is_clean(Stage::AsnLoc) {
            let p = prior.expect("clean implies prior");
            Self::copy_tables(&db, &p.db, Stage::AsnLoc.tables());
            Self::replay_stage(&p.stage_ledger, Stage::AsnLoc);
            p.asn_metros.clone()
        } else {
            let mut netfac_metros: HashMap<Asn, BTreeSet<usize>> = HashMap::new();
            for nf in snaps.pdb_netfac.iter() {
                let (Some(&asn), Some(&mid)) =
                    (net_asn.get(&nf.net_id), fac_metro.get(&nf.fac_id))
                else {
                    continue;
                };
                netfac_metros.entry(asn).or_default().insert(mid);
            }
            let mut asn_loc_rows: BTreeMap<(u32, usize, &'static str), bool> = BTreeMap::new();
            for (&asn, mids) in &netfac_metros {
                for &mid in mids {
                    asn_loc_rows.insert((asn.0, mid, "peeringdb_fac"), false);
                }
            }
            // Remote-peering inference (§3.3): an IX member with no declared
            // facility in the metro, whose nearest declared facility is far.
            let is_remote = |asn: Asn, mid: usize| -> bool {
                match netfac_metros.get(&asn) {
                    Some(mids) if mids.contains(&mid) => false,
                    Some(mids) => {
                        let here = metros.metro(mid).loc;
                        let nearest = mids
                            .iter()
                            .map(|&m| igdb_geo::haversine_km(&here, &metros.metro(m).loc))
                            .fold(f64::INFINITY, f64::min);
                        nearest > 1000.0
                    }
                    None => false, // nothing declared anywhere: cannot say
                }
            };
            for nix in snaps.pdb_netix.iter() {
                let (Some(&asn), Some(&mid)) =
                    (net_asn.get(&nix.net_id), ixp_metro.get(&nix.ix_id))
                else {
                    continue;
                };
                let remote = is_remote(asn, mid);
                asn_loc_rows
                    .entry((asn.0, mid, "peeringdb_ix"))
                    .and_modify(|r| *r = *r && remote)
                    .or_insert(remote);
            }
            for x in snaps.pch_ixps.iter() {
                let Some(mid) = resolve_label(&x.city_label) else {
                    continue;
                };
                for &asn in &x.member_asns {
                    let remote = is_remote(asn, mid);
                    asn_loc_rows
                        .entry((asn.0, mid, "pch"))
                        .and_modify(|r| *r = *r && remote)
                        .or_insert(remote);
                }
            }
            for ((asn, mid, source), remote) in &asn_loc_rows {
                db.insert(
                    "asn_loc",
                    vec![
                        Value::from(*asn),
                        Value::from(*mid),
                        Value::text(metros.metro(*mid).label()),
                        Value::text(&metros.metro(*mid).country),
                        Value::Bool(*remote),
                        Value::Bool(false),
                        Value::text(*source),
                        Value::text(&date),
                    ],
                )
                .expect("asn_loc row");
            }
            let mut asn_metros: HashMap<Asn, BTreeSet<usize>> = HashMap::new();
            for (asn, mid, _) in asn_loc_rows.keys() {
                asn_metros.entry(Asn(*asn)).or_default().insert(*mid);
            }
            asn_metros
        };

        drop(asn_loc_span);
        compact_tables(&db);
        rec.cut();
        if !retain_snapshots {
            release(&mut snaps.pdb_netfac);
            release(&mut snaps.pdb_netix);
            release(&mut snaps.pch_ixps);
        }

        // --- Probes + traceroute relation. ---
        // Anchor spatial joins fan out in parallel; inserts stay serial
        // and in input order (see load_physical).
        let probes_span = igdb_obs::span("build.probes");
        let probes: HashMap<u32, ProbeInfo> = if is_clean(Stage::Probes) {
            let p = prior.expect("clean implies prior");
            Self::copy_tables(&db, &p.db, Stage::Probes.tables());
            Self::replay_stage(&p.stage_ledger, Stage::Probes);
            p.probes.clone()
        } else {
            let anchor_assignments =
                match partition.as_ref() {
                    Some(part) => shard::sharded_map(
                        part,
                        &snaps.ripe_anchors[..],
                        |a| a.loc,
                        |a| metros.metro_of(&a.loc),
                    ),
                    None => igdb_par::par_map(&snaps.ripe_anchors[..], |a| metros.metro_of(&a.loc)),
                };
            let mut probes = HashMap::new();
            for (a, mid) in snaps.ripe_anchors.iter().zip(anchor_assignments) {
                let Some(mid) = mid else {
                    continue;
                };
                probes.insert(
                    a.id,
                    ProbeInfo {
                        ip: a.ip,
                        asn: a.asn,
                        metro: mid,
                    },
                );
                db.insert(
                    "probes",
                    vec![
                        Value::from(a.id),
                        Value::text(a.ip.to_string()),
                        Value::from(a.asn.0),
                        Value::from(mid),
                        Value::text(metros.metro(mid).label()),
                        Value::Float(a.loc.lat),
                        Value::Float(a.loc.lon),
                        Value::text("ripe_atlas"),
                        Value::text(&date),
                    ],
                )
                .expect("probes row");
            }
            probes
        };
        drop(probes_span);
        compact_tables(&db);
        rec.cut();
        if !retain_snapshots {
            release(&mut snaps.ripe_anchors);
        }
        let traces_span = igdb_obs::span("build.traceroutes");
        // Shared on narrowed inputs like IP resolution below: the hop
        // relation reads only `ripe_traceroutes` and the date, yet sits
        // deep enough that any atlas or logical churn dirties it by
        // prefix. Re-inserting tens of thousands of identical rows is the
        // costliest table load in the suffix, so the copy is worth a flag.
        let traces_shared =
            is_clean(Stage::Traceroutes) || reuse.is_some_and(|(_, d)| d.traceroute_rows_clean);
        if traces_shared {
            let p = prior.expect("shared implies prior");
            Self::copy_tables(&db, &p.db, Stage::Traceroutes.tables());
            Self::replay_stage(&p.stage_ledger, Stage::Traceroutes);
        } else {
            for tr in snaps.ripe_traceroutes.iter() {
                for h in &tr.hops {
                    db.insert(
                        "traceroutes",
                        vec![
                            Value::from(tr.src_anchor),
                            Value::from(tr.dst_anchor),
                            Value::from(h.ttl as i64),
                            match h.ip {
                                Some(ip) => Value::text(ip.to_string()),
                                None => Value::Null,
                            },
                            Value::Float(h.rtt_ms),
                            Value::text("ripe_atlas"),
                            Value::text(&date),
                        ],
                    )
                    .expect("traceroutes row");
                }
            }
        }

        drop(traces_span);
        compact_tables(&db);
        rec.cut();

        // --- IP → AS (bdrmap), → FQDN (rDNS), → metro (Hoiho / IXP). ---
        // The stage sits last, so monotone prefix dirtiness alone would
        // re-run it for every non-empty delta — but its input set is
        // narrower than "everything before it": atlas, facility, road,
        // telegeo, and AS-Rank churn cannot change a single `ip_asn_dns`
        // row (see `IP_RESOLUTION_INPUTS`). When the diff proves those
        // inputs untouched, the prior's products are shared and its
        // counter ticks replayed; otherwise the stage re-runs in full and,
        // on identical inputs, reproduces identical rows and counters.
        let ip_span = igdb_obs::span("build.ip_resolution");
        let ip_shared = reuse.filter(|(_, d)| d.ip_inputs_clean).map(|(p, _)| p);
        let (bdrmap, hoiho, rdns, ip_info) = if let Some(p) = ip_shared {
            Self::copy_tables(&db, &p.db, Stage::IpResolution.tables());
            Self::replay_stage(&p.stage_ledger, Stage::IpResolution);
            (
                Arc::clone(&p.bdrmap),
                Arc::clone(&p.hoiho),
                p.rdns.clone(),
                p.ip_info.clone(),
            )
        } else {
            let bdr_span = igdb_obs::span("ip_resolution.bdrmap");
            let rib: Vec<(Prefix, Asn)> = snaps
                .bgp_prefixes
                .iter()
                .map(|r| (r.prefix, r.origin))
                .collect();
            let mut bdrmap = BdrMap::new(&rib, &ixp_lans);
            let ip_sequences: Vec<Vec<Ip4>> = snaps
                .ripe_traceroutes
                .iter()
                .map(|t| t.hops.iter().filter_map(|h| h.ip).collect())
                .collect();
            bdrmap.refine(&ip_sequences);
            drop(bdr_span);
            if !retain_snapshots {
                release(&mut snaps.ripe_traceroutes);
                release(&mut snaps.bgp_prefixes);
                igdb_obs::trim_heap();
            }

            let rdns: HashMap<Ip4, igdb_db::Str> = snaps
                .rdns
                .iter()
                .map(|r| (r.ip, igdb_db::Str::new(&r.hostname)))
                .collect();
            if !retain_snapshots {
                release(&mut snaps.rdns);
            }
            let hoiho_span = igdb_obs::span("ip_resolution.hoiho");
            let (hoiho, _skipped) =
                HoihoEngine::build(&snaps.hoiho_rules, &snaps.geo_codes, &metros);
            drop(hoiho_span);
            if !retain_snapshots {
                release(&mut snaps.hoiho_rules);
                release(&mut snaps.geo_codes);
            }

            let mut observed: BTreeSet<Ip4> = BTreeSet::new();
            for seq in &ip_sequences {
                observed.extend(seq.iter().copied());
            }
            // Per-address resolution (bdrmap LPM, rDNS, anycast scan, IXP
            // prefix scan, Hoiho geolocation) is read-only against the
            // built indexes and fans out in parallel; row insertion stays
            // serial in sorted-address order so `ip_asn_dns` is
            // byte-identical at any worker count.
            let observed: Vec<Ip4> = observed.into_iter().collect();
            igdb_obs::counter("build.observed_ips", "", observed.len() as u64);
            let resolve_span = igdb_obs::span("ip_resolution.resolve");
            let resolved = igdb_par::par_map(&observed, |&ip| {
                let asn = bdrmap.resolve(ip).asn();
                let fqdn = rdns.get(&ip).cloned();
                let anycast = snaps.anycast_prefixes.iter().any(|p| p.contains(ip));
                let ixp_hit = ixp_prefix_metro
                    .iter()
                    .find(|(p, _)| p.contains(ip))
                    .map(|&(_, m)| m);
                let (metro, geo_source) = if let Some(mid) = ixp_hit {
                    (Some(mid), Some(LocationSource::IxpPrefix))
                } else if anycast {
                    // An anycast address has no single location; per §5 it
                    // is annotated instead of pinned (Hoiho would see just
                    // one of its instances).
                    (None, None)
                } else if let Some(h) = fqdn.as_deref() {
                    match hoiho.geolocate(h) {
                        Some(m) => (Some(m), Some(LocationSource::Hoiho)),
                        None => (None, None),
                    }
                } else {
                    (None, None)
                };
                (asn, fqdn, anycast, metro, geo_source)
            });
            drop(resolve_span);
            let mut ip_info: HashMap<Ip4, IpInfo> = HashMap::new();
            for (&ip, (asn, fqdn, anycast, metro, geo_source)) in observed.iter().zip(resolved) {
                if let Some(g) = geo_source {
                    igdb_obs::counter("build.ip_geolocated", g.tag(), 1);
                }
                db.insert(
                    "ip_asn_dns",
                    vec![
                        Value::text(ip.to_string()),
                        asn.map(|a| Value::from(a.0)).unwrap_or(Value::Null),
                        fqdn.clone().map(Value::Text).unwrap_or(Value::Null),
                        metro.map(Value::from).unwrap_or(Value::Null),
                        metro
                            .map(|m| Value::text(metros.metro(m).label()))
                            .unwrap_or(Value::Null),
                        Value::text(geo_source.map(|g| g.tag()).unwrap_or("none")),
                        Value::Bool(anycast),
                        Value::text("igdb_pipeline"),
                        Value::text(&date),
                    ],
                )
                .expect("ip_asn_dns row");
                ip_info.insert(
                    ip,
                    IpInfo {
                        asn,
                        fqdn,
                        metro,
                        geo_source,
                        anycast,
                    },
                );
            }
            (Arc::new(bdrmap), Arc::new(hoiho), rdns, ip_info)
        };

        drop(ip_span);
        compact_tables(&db);
        rec.cut();
        debug_assert_eq!(rec.ledger.len(), Stage::ALL.len());

        // Index the hot keys.
        {
            let _s = igdb_obs::span("build.index");
            for (table, col) in [
                ("asn_loc", "asn"),
                ("asn_name", "asn"),
                ("asn_org", "asn"),
                ("asn_conn", "from_asn"),
                ("phys_nodes", "metro_id"),
                ("ip_asn_dns", "ip"),
            ] {
                db.with_table_mut(table, |t| t.create_index(col))
                    .expect("table exists")
                    .expect("column exists");
            }
        }

        // Final per-relation row totals: these are exactly what `igdb
        // tables` / the BuildReport consumer sees, so the CLI can assert
        // the metrics stream agrees with the database it just wrote.
        for table in db.table_names() {
            let rows = db.row_count(&table).unwrap_or(0);
            igdb_obs::counter("build.rows", table, rows as u64);
        }

        // Perf-class (machine-dependent), so the deterministic stream is
        // untouched; `igdb metrics` and benches read it back.
        igdb_obs::record_peak_rss("build");

        let snapshots = if retain_snapshots {
            snaps.to_snapshot_set()
        } else {
            // The owned-build caller swaps the input set in afterwards.
            SnapshotSet::empty(date.clone())
        };
        Igdb {
            db,
            metros,
            roads,
            bdrmap,
            hoiho,
            as_of_date: date,
            ip_info,
            rdns,
            asn_metros,
            phys_pairs,
            probes,
            phys_graph: OnceLock::new(),
            phys_geoms: OnceLock::new(),
            snapshots,
            stage_ledger: rec.ledger,
            appended: false,
        }
    }

    /// The validated record set this world was built from.
    pub fn source_snapshots(&self) -> &SnapshotSet {
        &self.snapshots
    }

    /// The raw traceroute corpus (kept out of the DB for §2's practical
    /// reason; the `traceroutes` relation holds the hop rows). Borrowed
    /// from the retained snapshot set — it used to be a second owned copy.
    pub fn traces(&self) -> &[RipeTraceroute] {
        &self.snapshots.ripe_traceroutes
    }

    /// Applies a replacement snapshot set incrementally: validate it in
    /// full (quarantine and ingestion accounting are identical to a
    /// rebuild's), diff it against the set this world was built from,
    /// copy the clean stage prefix verbatim, re-run the dirty suffix, and
    /// repair the lazily built physical-path graph in place — surviving
    /// corridors migrate and the contraction hierarchy is re-contracted
    /// in the recorded order with dirty nodes pushed last.
    ///
    /// The contract, enforced by the delta-determinism suite and CI: the
    /// returned world is **byte-identical** to `try_build(snaps, policy)`
    /// — database fingerprint, quarantine, and deterministic counter
    /// stream — at every worker count and in both shortest-path modes.
    ///
    /// Worlds that took [`Igdb::append_snapshot`] refreshes hold
    /// multi-date tables no stage copy can reproduce, so table reuse is
    /// clamped to the stages appends never touch; the result still equals
    /// a fresh build of `snaps` (appended dates are not carried over).
    pub fn apply_delta(
        &self,
        snaps: &SnapshotSet,
        policy: &BuildPolicy,
    ) -> Result<(Igdb, BuildReport, SnapshotDelta), BuildError> {
        let _span = igdb_obs::span("delta.apply");
        // A scratch-built prior kept no baseline; there is nothing to diff
        // against, so the only correct answer is a full rebuild.
        if self.snapshots.natural_earth.is_empty() && !snaps.natural_earth.is_empty() {
            let (igdb, report) = Self::try_build(snaps, policy)?;
            let delta = diff_snapshots(&self.snapshots, &igdb.snapshots);
            return Ok((igdb, report, delta));
        }
        let (clean, report) = Self::screen(snaps, policy)?;
        let snap_span = igdb_obs::span("delta.snapshot_set");
        let new_set = clean.to_snapshot_set();
        drop(snap_span);
        let diff_span = igdb_obs::span("delta.diff");
        let mut delta = diff_snapshots(&self.snapshots, &new_set);
        drop(diff_span);
        if self.appended {
            delta.first_dirty = Some(
                delta
                    .first_dirty
                    .map_or(Stage::Physical, |fd| fd.min(Stage::Physical)),
            );
            // Appends also grew the dated relations (`traceroutes`,
            // `ip_asn_dns` hold rows for every loaded date), so the
            // prior's tables no longer mirror its stored snapshot set —
            // input-narrowed sharing is off the table too.
            delta.ip_inputs_clean = false;
            delta.traceroute_rows_clean = false;
        }
        let mut clean = clean;
        let igdb = Self::build_staged(&mut clean, Some((self, &delta)), true);
        // The physical dirty region, from ground truth: the pair multisets.
        delta.touched_metros = pair_diff_metros(&self.phys_pairs, &igdb.phys_pairs);
        delta.phys_removal_only = pairs_removal_only(&self.phys_pairs, &igdb.phys_pairs);
        if let Some(old_graph) = self.phys_graph.get() {
            let repaired = crate::analysis::physpath::PhysGraph::rebuilt_for_delta(
                old_graph,
                igdb.metros.len(),
                &igdb.phys_pairs,
                &delta.touched_metros,
                delta.phys_removal_only,
            );
            let _ = igdb.phys_graph.set(repaired);
        }
        Ok((igdb, report, delta))
    }

    /// The shared physical-path graph over the current snapshot's
    /// inferred corridors, built once on first use. Analyses route over
    /// this instance so its memoized corridors are shared too.
    pub fn phys_graph(&self) -> &crate::analysis::physpath::PhysGraph {
        self.phys_graph
            .get_or_init(|| crate::analysis::physpath::PhysGraph::from_igdb(self))
    }

    /// Every inferred physical-path geometry (`phys_conn` WKT linestring
    /// rows across all loaded dates, in row order), parsed once.
    pub fn phys_path_geometries(&self) -> &[Vec<GeoPoint>] {
        self.phys_geoms.get_or_init(|| {
            self.db
                .with_table("phys_conn", |t| {
                    t.rows()
                        .iter()
                        .filter_map(|r| match parse_wkt(r[7].as_text()?) {
                            Ok(Geometry::LineString(ls)) => Some(ls.0),
                            _ => None,
                        })
                        .collect()
                })
                .expect("phys_conn exists")
        })
    }

    /// Declared metros of an ASN (from `asn_loc`, non-inferred).
    pub fn metros_of_asn(&self, asn: Asn) -> Vec<usize> {
        self.asn_metros
            .get(&asn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All ASNs carrying an organization name containing `needle`
    /// (case-insensitive), across all org sources.
    pub fn asns_of_org(&self, needle: &str) -> Vec<Asn> {
        let needle = needle.to_ascii_lowercase();
        self.db
            .with_table("asn_org", |t| {
                let mut asns: Vec<Asn> = t
                    .rows()
                    .iter()
                    .filter(|r| {
                        r[1].as_text()
                            .map(|s| s.to_ascii_lowercase().contains(&needle))
                            .unwrap_or(false)
                    })
                    .filter_map(|r| r[0].as_int().map(|i| Asn(i as u32)))
                    .collect();
                asns.sort_unstable();
                asns.dedup();
                asns
            })
            .expect("asn_org exists")
    }

    /// Geolocated metro of an observed IP, if known.
    pub fn metro_of_ip(&self, ip: Ip4) -> Option<usize> {
        self.ip_info.get(&ip).and_then(|i| i.metro)
    }

    /// Appends a later snapshot of the *physical* layer (the paper's §2
    /// refresh loop: "iGDB saves timestamped snapshots of each source, then
    /// automatically processes and loads the data"). New `phys_nodes`,
    /// `phys_conn` and `asn_conn` rows are added under the snapshot's
    /// `as_of_date`; existing rows are untouched, so queries can pin either
    /// date. Analyses and caches switch to the new date.
    ///
    /// The logical bridge relations (`ip_asn_dns`, `asn_loc`) depend on the
    /// measurement corpus and are rebuilt by a fresh [`Igdb::build`] — a
    /// full rebuild costs the same as this append plus the traceroute
    /// passes, so the paper's "refresh as frequently as required" stays
    /// cheap either way.
    ///
    /// # Panics
    /// Panics if the snapshot carries the same `as_of_date` as one already
    /// loaded (snapshots are keyed by date).
    pub fn append_snapshot(&mut self, snaps: &SnapshotSet) {
        let date = snaps.as_of_date.clone();
        assert_ne!(
            date, self.as_of_date,
            "snapshot for {date} already loaded"
        );
        let geoms_before = self
            .db
            .row_count("phys_conn")
            .expect("phys_conn exists");
        load_physical(
            &self.db,
            &self.metros,
            &self.roads,
            None,
            &snaps.atlas_nodes,
            &snaps.atlas_links,
            &snaps.pdb_facilities,
            &date,
            false,
        );
        for &(a, b) in snaps.asrank_links.iter() {
            self.db
                .insert(
                    "asn_conn",
                    vec![
                        Value::from(a.0),
                        Value::from(b.0),
                        Value::text("asrank"),
                        Value::text(&date),
                    ],
                )
                .expect("asn_conn row");
        }
        let pairs = phys_pairs_for(&self.db, &date);
        // Invalidate the lazy caches only when their inputs changed: the
        // geometry list keys off `phys_conn` rows (append-only, so a stable
        // row count means identical rows), and the path graph keys off the
        // current date's corridor pairs. A refresh with no new geometry —
        // the common "re-pull the same physical world" case — keeps both,
        // so held `phys_path_geometries()` slices stay warm instead of
        // being reparsed from WKT on next touch.
        if self
            .db
            .row_count("phys_conn")
            .expect("phys_conn exists")
            != geoms_before
        {
            self.phys_geoms = OnceLock::new();
        }
        if pairs != self.phys_pairs {
            self.phys_graph = OnceLock::new();
        }
        self.phys_pairs = pairs;
        self.as_of_date = date;
        self.appended = true;
    }

    /// Rows of `table` grouped by `as_of_date` — the time axis the paper's
    /// §3 promises ("some researchers … require a better understanding of
    /// topology and how it changes over time").
    pub fn counts_by_date(&self, table: &str) -> Vec<(String, usize)> {
        self.db
            .with_table(table, |t| {
                let col = t.schema().index_of("as_of_date").expect("schema");
                let mut m: std::collections::BTreeMap<String, usize> =
                    std::collections::BTreeMap::new();
                for (_, row) in t.iter() {
                    if let Some(d) = row[col].as_text() {
                        *m.entry(d.to_string()).or_default() += 1;
                    }
                }
                m.into_iter().collect()
            })
            .unwrap_or_default()
    }

    /// Registers a §4.4 inference: a new (ASN, metro) presence discovered
    /// by belief propagation, tagged `inferred = true` so users can discard
    /// it ("We clearly tag each inference in iGDB").
    pub fn add_inferred_location(&mut self, asn: Asn, metro: usize) {
        let m = self.metros.metro(metro);
        self.db
            .insert(
                "asn_loc",
                vec![
                    Value::from(asn.0),
                    Value::from(metro),
                    Value::text(m.label()),
                    Value::text(&m.country),
                    Value::Bool(false),
                    Value::Bool(true),
                    Value::text("belief_prop"),
                    Value::text(&self.as_of_date),
                ],
            )
            .expect("asn_loc row");
        self.asn_metros.entry(asn).or_default().insert(metro);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_synth::{emit_snapshots, World, WorldConfig};

    fn built() -> (World, Igdb) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 400);
        let igdb = Igdb::build(&snaps);
        (world, igdb)
    }

    #[test]
    fn all_relations_populated() {
        let (_, igdb) = built();
        for table in [
            "city_points",
            "city_polygons",
            "phys_nodes",
            "phys_conn",
            "land_points",
            "sub_cables",
            "asn_loc",
            "asn_name",
            "asn_org",
            "asn_conn",
            "ip_asn_dns",
            "ixp_prefixes",
            "probes",
            "traceroutes",
        ] {
            let n = igdb.db.row_count(table).unwrap();
            assert!(n > 0, "{table} is empty");
        }
    }

    #[test]
    fn standardization_matches_ground_truth() {
        // Every Atlas node was generated at a (jittered) city location;
        // the spatial join must recover that city almost always (jitter is
        // 0.05°, far below intercity spacing for real cities).
        let (world, igdb) = built();
        let snaps = emit_snapshots(&world, "2022-05-03", 0);
        let mut checked = 0;
        let mut correct = 0;
        for n in snaps.atlas_nodes.iter().take(400) {
            let Some(mid) = igdb.metros.metro_of(&n.loc) else {
                continue;
            };
            // Ground truth: the nearest city to the *unjittered* label
            // can't be recovered directly here, but the node's network +
            // city must be a footprint city of that AS.
            let brand = &n.network;
            let a = world
                .eco
                .ases
                .iter()
                .find(|a| *brand == a.names.brand)
                .unwrap();
            checked += 1;
            if a.footprint.contains(&mid) {
                correct += 1;
            }
        }
        assert!(checked > 100);
        assert!(
            correct * 10 >= checked * 9,
            "standardization recovered {correct}/{checked}"
        );
    }

    #[test]
    fn phys_conn_paths_follow_roads_and_have_length() {
        let (_, igdb) = built();
        igdb.db
            .with_table("phys_conn", |t| {
                assert!(t.len() > 50, "too few inferred paths: {}", t.len());
                for (_, row) in t.iter().take(100) {
                    let km = row[6].as_float().unwrap();
                    assert!(km > 0.0);
                    let wkt = row[7].as_text().unwrap();
                    let geom = igdb_geo::parse_wkt(wkt).unwrap();
                    match geom {
                        igdb_geo::Geometry::LineString(ls) => {
                            // Stored distance equals geometry length.
                            assert!(
                                (ls.length_km() - km).abs() < 1.0,
                                "wkt length {} vs stored {km}",
                                ls.length_km()
                            );
                        }
                        other => panic!("phys_conn geometry not a linestring: {other:?}"),
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn anycast_addresses_annotated_and_never_located() {
        let (world, igdb) = built();
        let mut flagged = 0;
        for (&ip, info) in &igdb.ip_info {
            let truth_anycast = world
                .anycast_prefixes
                .iter()
                .any(|&(_, p)| p.contains(ip));
            assert_eq!(info.anycast, truth_anycast, "{ip} flag mismatch");
            if info.anycast {
                flagged += 1;
                assert!(
                    info.metro.is_none(),
                    "anycast {ip} was pinned to a single metro"
                );
            }
        }
        assert!(flagged > 0, "no anycast addresses observed in the mesh");
        // The relation carries the annotation column.
        igdb.db
            .with_table("ip_asn_dns", |t| {
                let col = t.schema().index_of("anycast").unwrap();
                let n = t
                    .rows()
                    .iter()
                    .filter(|r| r[col] == Value::Bool(true))
                    .count();
                assert_eq!(n, flagged);
            })
            .unwrap();
    }

    #[test]
    fn belief_prop_respects_anycast(){
        use crate::analysis::beliefprop::{propagate, BeliefPropParams};
        let (_, igdb) = built();
        let report = propagate(&igdb, &BeliefPropParams::default());
        for ip in report.assignments.keys() {
            assert!(
                !igdb.ip_info.get(ip).map(|i| i.anycast).unwrap_or(false),
                "belief propagation located anycast {ip}"
            );
        }
    }

    #[test]
    fn microwave_links_stored_as_straight_lines() {
        // §5 future work realized: microwave links carry row_type
        // "microwave" and their path IS the geodesic.
        let (_, igdb) = built();
        let mut microwave = 0;
        igdb.db
            .with_table("phys_conn", |t| {
                for (_, row) in t.iter() {
                    if row[8].as_text() != Some("microwave") {
                        assert_eq!(row[8].as_text(), Some("roadway"));
                        continue;
                    }
                    microwave += 1;
                    let km = row[6].as_float().unwrap();
                    let gc = igdb_geo::haversine_km(
                        &igdb.metros.metro(row[0].as_int().unwrap() as usize).loc,
                        &igdb.metros.metro(row[3].as_int().unwrap() as usize).loc,
                    );
                    assert!(
                        (km - gc).abs() < gc * 0.01 + 1.0,
                        "microwave path {km} km vs geodesic {gc} km"
                    );
                }
            })
            .unwrap();
        assert!(microwave > 0, "no microwave links in the tiny world");
    }

    #[test]
    fn ip_to_as_mapping_mostly_correct() {
        // Score bdrmap against the world's ground truth (operator AS).
        let (world, igdb) = built();
        let mut checked = 0;
        let mut correct = 0;
        for (&ip, info) in &igdb.ip_info {
            let Some(got) = info.asn else { continue };
            let Some(truth) = world.truth_asn_of_ip(ip) else {
                continue;
            };
            checked += 1;
            if got == truth {
                correct += 1;
            }
        }
        assert!(checked > 200, "only {checked} scored addresses");
        assert!(
            correct * 100 >= checked * 85,
            "IP→AS accuracy {correct}/{checked}"
        );
    }

    #[test]
    fn hoiho_geolocations_match_ground_truth() {
        let (world, igdb) = built();
        let mut checked = 0;
        let mut correct = 0;
        for (&ip, info) in &igdb.ip_info {
            if info.geo_source != Some(LocationSource::Hoiho) {
                continue;
            }
            let Some(truth_city) = world.truth_city_of_ip(ip) else {
                continue;
            };
            checked += 1;
            if info.metro == Some(truth_city) {
                correct += 1;
            }
        }
        assert!(checked > 20, "only {checked} hoiho-geolocated addresses");
        assert!(
            correct * 100 >= checked * 95,
            "Hoiho accuracy {correct}/{checked}"
        );
    }

    #[test]
    fn rdns_funnel_shape() {
        // §4.4: a substantial fraction of observed IPs don't resolve, and
        // most resolving hostnames carry no geohint.
        let (_, igdb) = built();
        let total = igdb.ip_info.len() as f64;
        let resolved = igdb
            .ip_info
            .values()
            .filter(|i| i.fqdn.is_some())
            .count() as f64;
        let hinted = igdb
            .ip_info
            .values()
            .filter(|i| i.geo_source == Some(LocationSource::Hoiho))
            .count() as f64;
        assert!(total > 300.0);
        let unresolved_frac = 1.0 - resolved / total;
        assert!(
            (0.1..0.7).contains(&unresolved_frac),
            "unresolved fraction {unresolved_frac}"
        );
        assert!(hinted < resolved, "geohints must be a strict subset");
    }

    #[test]
    fn asn_loc_has_remote_flags_and_inference_column() {
        let (_, igdb) = built();
        igdb.db
            .with_table("asn_loc", |t| {
                let remote = t
                    .rows()
                    .iter()
                    .filter(|r| r[4] == Value::Bool(true))
                    .count();
                let inferred = t
                    .rows()
                    .iter()
                    .filter(|r| r[5] == Value::Bool(true))
                    .count();
                assert!(remote > 0, "no remote-peering flags set");
                assert_eq!(inferred, 0, "base build must not contain inferences");
            })
            .unwrap();
    }

    #[test]
    fn org_lookup_and_footprints() {
        let (world, igdb) = built();
        // The Figure 6 scenario org must resolve to its four ASNs.
        let asns = igdb.asns_of_org("Spectra Holdings");
        assert_eq!(asns.len(), 4, "{asns:?}");
        for asn in asns {
            assert!(world.scenarios.spectra.contains(&asn));
        }
    }

    /// The one-shot scratch build frees each source mid-pipeline; the
    /// resulting database must still be byte-identical to the borrowing
    /// build, and the (intentionally empty) baseline must route delta
    /// application through a full rebuild rather than a bogus diff.
    #[test]
    fn scratch_build_is_byte_identical_and_baseline_free() {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 400);
        let (full, _) = Igdb::try_build(&snaps, &BuildPolicy::strict()).unwrap();
        let (scratch, report) =
            Igdb::try_build_scratch(snaps.clone(), &BuildPolicy::strict()).unwrap();
        assert!(report.is_clean());
        assert_eq!(scratch.db.fingerprint(), full.db.fingerprint());
        assert!(scratch.traces().is_empty(), "scratch build kept a baseline");

        let later = emit_snapshots(&world, "2022-06-01", 400);
        let (via_delta, _, _) = scratch.apply_delta(&later, &BuildPolicy::strict()).unwrap();
        let (fresh, _) = Igdb::try_build(&later, &BuildPolicy::strict()).unwrap();
        assert_eq!(via_delta.db.fingerprint(), fresh.db.fingerprint());
        // The fallback rebuild retains a real baseline again.
        assert!(!via_delta.traces().is_empty());
    }

    /// Forces the spatial-sharding gate down to tiny scale and asserts the
    /// sharded build is byte-identical to the flat one — fingerprint and
    /// deterministic counter stream — at several worker counts.
    #[test]
    fn sharded_build_is_byte_identical_across_worker_counts() {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 400);
        let build_fingerprint = || {
            let reg = igdb_obs::Registry::new();
            let _guard = reg.install();
            let (igdb, _) = Igdb::try_build(&snaps, &BuildPolicy::strict()).unwrap();
            (igdb.db.fingerprint(), reg.counter_snapshot())
        };
        let (flat_fp, _) = build_fingerprint();

        // Sharding regroups the parallel dispatch, so the `par.*` shape
        // counters legitimately differ from the flat path's; the contract
        // is that the *data* (fingerprint) matches the flat build and the
        // whole stream is invariant across worker counts.
        crate::shard::force_sharding_for_tests(1);
        let mut sharded_counters: Option<String> = None;
        for workers in [1, 3] {
            let (fp, counters) = igdb_par::with_threads(workers, build_fingerprint);
            assert_eq!(fp, flat_fp, "fingerprint diverged at {workers} workers");
            match &sharded_counters {
                None => sharded_counters = Some(counters),
                Some(first) => assert_eq!(
                    &counters, first,
                    "counter stream diverged at {workers} workers"
                ),
            }
        }
        crate::shard::force_sharding_for_tests(0);
    }
}
