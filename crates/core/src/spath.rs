//! Shared shortest-path engine for the right-of-way and physical graphs.
//!
//! Both `RoadGraph` (§3.1 right-of-way routing) and `PhysGraph` (§4.2
//! physical-path inference) previously carried their own hand-rolled
//! Dijkstra that allocated fresh `dist`/`prev` vectors and a fresh heap on
//! every query. Both hot paths issue *many* queries against an immutable
//! graph — atlas-link routing asks for every deduped metro pair, the bench
//! traceroute mesh asks for thousands of leg pairs — so this module
//! centralizes the algorithm with two structural optimizations:
//!
//! * **CSR adjacency** (`offsets`/`targets`/`weights` flat arrays) instead
//!   of `Vec<Vec<…>>`, for locality and zero per-node allocation.
//! * **Generation-stamped workspaces** ([`SpWorkspace`]): `dist`/`prev`/
//!   settled state is validated by a generation counter, so starting a new
//!   query is O(1) instead of O(n) clearing, and repeated queries reuse the
//!   same allocations.
//! * **Resumable per-source search**: a workspace retains the frontier heap
//!   between queries. Asking for a second target from the *same* source
//!   continues the partially-run Dijkstra instead of restarting it, so a
//!   loop over targets grouped by source amortizes to a single full SSSP
//!   per source. Dijkstra settles nodes in deterministic order, so results
//!   are identical whether a query ran fresh or resumed.
//!
//! # Determinism
//!
//! The search is fully deterministic given (graph, source): edge relaxation
//! follows CSR order (= insertion order) and ties in the heap are broken on
//! the node index exactly as the previous per-graph implementations did.
//! Parallel callers hand each worker its own workspace; the engine itself
//! is immutable and shared by reference.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Immutable CSR graph + Dijkstra. Weights must be non-negative and finite
/// (asserted at build time); `f64::to_bits` then orders them correctly in
/// the integer heap.
pub struct ShortestPathEngine {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

/// Reusable per-caller state for [`ShortestPathEngine`] queries. One
/// workspace serves any number of sequential queries; parallel callers use
/// one workspace per worker.
pub struct SpWorkspace {
    generation: u32,
    /// Stamp equal to `generation` ⇔ `dist`/`prev` entries are valid.
    reached: Vec<u32>,
    /// Stamp equal to `generation` ⇔ node is settled (final distance).
    settled: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<u32>,
    heap: BinaryHeap<(Reverse<u64>, u32)>,
    /// Source of the search currently held in the workspace.
    source: usize,
    /// True once the frontier drained: every reachable node is settled.
    exhausted: bool,
}

impl SpWorkspace {
    pub fn new() -> Self {
        Self {
            generation: 0,
            reached: Vec::new(),
            settled: Vec::new(),
            dist: Vec::new(),
            prev: Vec::new(),
            heap: BinaryHeap::new(),
            source: usize::MAX,
            exhausted: false,
        }
    }

    fn reset_for(&mut self, n: usize, source: usize) {
        // Perf class: reset counts depend on how callers chunk work across
        // workers (resume amortization), so they are not in the
        // deterministic counter snapshot.
        igdb_obs::perf("spath.resets", "", 1);
        if self.reached.len() < n {
            self.reached.resize(n, 0);
            self.settled.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, u32::MAX);
        }
        // Generation wrap: stamps from 4 billion queries ago could alias,
        // so clear them once per wrap.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.reached.fill(0);
            self.settled.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        self.source = source;
        self.exhausted = false;
        self.reached[source] = self.generation;
        self.dist[source] = 0.0;
        self.prev[source] = u32::MAX;
        self.heap.push((Reverse(0u64), source as u32));
    }
}

impl Default for SpWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ShortestPathEngine {
    /// Builds the CSR form of an undirected graph from `(a, b, weight)`
    /// arcs. Per-node neighbor order equals arc insertion order (each arc
    /// contributes `a→b` and `b→a` in sequence), matching the neighbor
    /// order of the `Vec<Vec<…>>` adjacency it replaces.
    pub fn from_undirected(n: usize, arcs: impl Iterator<Item = (usize, usize, f64)> + Clone) -> Self {
        let mut degree = vec![0u32; n];
        let mut m = 0usize;
        for (a, b, w) in arcs.clone() {
            assert!(a < n && b < n, "arc ({a}, {b}) out of range for {n} nodes");
            assert!(w >= 0.0 && w.is_finite(), "negative or non-finite weight {w}");
            degree[a] += 1;
            degree[b] += 1;
            m += 2;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; m];
        let mut weights = vec![0.0f64; m];
        for (a, b, w) in arcs {
            let ca = cursor[a] as usize;
            targets[ca] = b as u32;
            weights[ca] = w;
            cursor[a] += 1;
            let cb = cursor[b] as usize;
            targets[cb] = a as u32;
            weights[cb] = w;
            cursor[b] += 1;
        }
        Self { offsets, targets, weights }
    }

    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    pub fn degree(&self, node: usize) -> usize {
        if node + 1 >= self.offsets.len() {
            return 0;
        }
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    fn neighbors(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t as usize, w))
    }

    /// Shortest path `from → to` as `(node sequence, total weight)`, using
    /// (and advancing) `ws`. Consecutive queries from the same `from`
    /// resume the retained search; a new source restarts it in O(1).
    pub fn shortest_path_with(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        igdb_obs::counter("spath.queries", "", 1);
        let n = self.node_count();
        if from >= n || to >= n {
            return None;
        }
        if from == to {
            return Some((vec![from], 0.0));
        }
        if ws.source != from || ws.generation == 0 || ws.reached.len() < n {
            ws.reset_for(n, from);
        }
        if ws.settled[to] != ws.generation && !ws.exhausted {
            self.run_until_settled(ws, to);
        }
        if ws.settled[to] != ws.generation {
            return None;
        }
        // Reconstruct by walking prev back to the source.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = ws.prev[cur] as usize;
            path.push(cur);
        }
        path.reverse();
        Some((path, ws.dist[to]))
    }

    /// Advances the workspace's Dijkstra until `target` settles or the
    /// frontier drains.
    fn run_until_settled(&self, ws: &mut SpWorkspace, target: usize) {
        let generation = ws.generation;
        let mut settled_now = 0u64;
        let mut hit = false;
        while let Some((Reverse(dbits), u32u)) = ws.heap.pop() {
            let u = u32u as usize;
            let d = f64::from_bits(dbits);
            // Stale heap entry: the node settled earlier at a smaller
            // distance.
            if ws.settled[u] == generation {
                continue;
            }
            ws.settled[u] = generation;
            settled_now += 1;
            for (v, w) in self.neighbors(u) {
                let nd = d + w;
                let fresh = ws.reached[v] != generation;
                if fresh || nd < ws.dist[v] {
                    ws.reached[v] = generation;
                    ws.dist[v] = nd;
                    ws.prev[v] = u as u32;
                    ws.heap.push((Reverse(nd.to_bits()), v as u32));
                }
            }
            if u == target {
                hit = true;
                break;
            }
        }
        if !hit {
            ws.exhausted = true;
        }
        // Perf class: how much of the graph each run explores depends on
        // resume amortization, i.e. on work chunking across workers.
        igdb_obs::perf("spath.nodes_settled", "", settled_now);
        igdb_obs::observe("spath.settled_per_run", "", settled_now);
    }

    /// Total shortest-path weight `from → to` (no path reconstruction).
    pub fn distance_with(&self, ws: &mut SpWorkspace, from: usize, to: usize) -> Option<f64> {
        igdb_obs::counter("spath.queries", "", 1);
        let n = self.node_count();
        if from >= n || to >= n {
            return None;
        }
        if from == to {
            return Some(0.0);
        }
        if ws.source != from || ws.generation == 0 || ws.reached.len() < n {
            ws.reset_for(n, from);
        }
        if ws.settled[to] != ws.generation && !ws.exhausted {
            self.run_until_settled(ws, to);
        }
        (ws.settled[to] == ws.generation).then(|| ws.dist[to])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: usize, arcs: &[(usize, usize, f64)]) -> ShortestPathEngine {
        ShortestPathEngine::from_undirected(n, arcs.iter().copied())
    }

    #[test]
    fn chain_beats_long_shortcut() {
        let e = engine(5, &[(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0), (0, 3, 50.0)]);
        let mut ws = SpWorkspace::new();
        let (path, km) = e.shortest_path_with(&mut ws, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!((km - 30.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_is_none_and_self_is_zero() {
        let e = engine(4, &[(0, 1, 1.0)]);
        let mut ws = SpWorkspace::new();
        assert!(e.shortest_path_with(&mut ws, 0, 3).is_none());
        assert_eq!(e.shortest_path_with(&mut ws, 3, 3), Some((vec![3], 0.0)));
        assert!(e.shortest_path_with(&mut ws, 0, 99).is_none());
    }

    #[test]
    fn resumed_queries_match_fresh_queries() {
        // A lattice with enough structure that different targets settle at
        // different times.
        let mut arcs = Vec::new();
        for i in 0..20usize {
            arcs.push((i, (i + 1) % 20, 1.0 + (i % 3) as f64));
            if i % 4 == 0 {
                arcs.push((i, (i + 7) % 20, 2.5));
            }
        }
        let e = engine(20, &arcs);
        let mut resumed = SpWorkspace::new();
        for to in 0..20 {
            let mut fresh = SpWorkspace::new();
            let a = e.shortest_path_with(&mut resumed, 3, to);
            let b = e.shortest_path_with(&mut fresh, 3, to);
            assert_eq!(a, b, "target {to}");
        }
    }

    #[test]
    fn workspace_survives_source_switches() {
        let e = engine(6, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let mut ws = SpWorkspace::new();
        assert_eq!(e.distance_with(&mut ws, 0, 5), Some(5.0));
        assert_eq!(e.distance_with(&mut ws, 5, 0), Some(5.0));
        assert_eq!(e.distance_with(&mut ws, 2, 4), Some(2.0));
        assert_eq!(e.distance_with(&mut ws, 2, 0), Some(2.0));
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let e = engine(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
        let mut ws = SpWorkspace::new();
        let (path, km) = e.shortest_path_with(&mut ws, 0, 2).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        assert_eq!(km, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_panics() {
        engine(2, &[(0, 5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn negative_weight_panics() {
        engine(2, &[(0, 1, -1.0)]);
    }
}
