//! Shared shortest-path engine for the right-of-way and physical graphs.
//!
//! Both `RoadGraph` (§3.1 right-of-way routing) and `PhysGraph` (§4.2
//! physical-path inference) previously carried their own hand-rolled
//! Dijkstra that allocated fresh `dist`/`prev` vectors and a fresh heap on
//! every query. Both hot paths issue *many* queries against an immutable
//! graph — atlas-link routing asks for every deduped metro pair, the bench
//! traceroute mesh asks for thousands of leg pairs — so this module
//! centralizes the algorithm with three structural optimizations:
//!
//! * **CSR adjacency** (`offsets`/`targets`/`weights` flat arrays) instead
//!   of `Vec<Vec<…>>`, for locality and zero per-node allocation.
//! * **Generation-stamped workspaces** ([`SpWorkspace`]): `dist`/`prev`/
//!   settled state is validated by a generation counter, so starting a new
//!   query is O(1) instead of O(n) clearing, and repeated queries reuse the
//!   same allocations.
//! * **Resumable per-source search**: a workspace retains the frontier heap
//!   between queries. Asking for a second target from the *same* source
//!   continues the partially-run Dijkstra instead of restarting it, so a
//!   loop over targets grouped by source amortizes to a single full SSSP
//!   per source.
//! * **Contraction hierarchies** ([`ch`]): a one-time preprocessing pass
//!   (edge-difference node ordering, shortcut insertion, upward CSR) that
//!   turns each point query into two tiny upward searches. Selected
//!   automatically above [`CH_AUTO_THRESHOLD`] nodes, overridable with
//!   `IGDB_SP_MODE=dijkstra|ch` or [`with_mode`].
//!
//! # Determinism and the canonical-path contract
//!
//! Queries are fully deterministic given (graph, source, target) and — by
//! construction — **mode-independent**: the CH path and the Dijkstra path
//! are bit-identical, including which of several equal-weight paths is
//! returned and the exact `f64` total.
//!
//! This works because both algorithms minimize one shared lexicographic
//! key per path: `(weight, hop count, tie)`, where `tie` is the exact
//! `u128` sum of a per-arc pseudo-random perturbation
//! (`splitmix64(arc index)`, identical on both directions of an arc).
//! Distinct paths get distinct keys, so *the* shortest path is unique and
//! both algorithms must agree on it. The reported weight is recomputed by
//! left-to-right summation along the unpacked original-edge sequence, which
//! is exactly how Dijkstra accumulates it, so even the floating-point total
//! matches byte-for-byte. Tie sums are accumulated exactly (`u128`, no
//! wrapping) because a wrapping sum is not monotone under extension and
//! would break Dijkstra's prefix-optimality.
//!
//! Parallel callers hand each worker its own workspace; the engine itself
//! is immutable and shared by reference.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

mod ch;

/// Heap entry: lexicographic path key `(weight bits, hops, tie)` plus the
/// node index as the final tie-breaker. Weights are non-negative finite, so
/// `f64::to_bits` orders them correctly as integers.
type HeapKey = (u64, u32, u128, u32);

/// Query algorithm used by [`ShortestPathEngine`]. Both modes return
/// bit-identical results (see the module docs); they differ only in cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpMode {
    /// Resumable generation-stamped Dijkstra. No preprocessing; best for
    /// small graphs or one-shot queries.
    Dijkstra,
    /// Bidirectional contraction-hierarchy query over a lazily built
    /// preprocessing layer. Best for many point queries on larger graphs.
    Ch,
}

impl SpMode {
    /// Stable lowercase label used for metric labels and `IGDB_SP_MODE`.
    pub fn label(self) -> &'static str {
        match self {
            SpMode::Dijkstra => "dijkstra",
            SpMode::Ch => "ch",
        }
    }
}

/// Nodes at or above this count select [`SpMode::Ch`] automatically when
/// neither [`with_mode`] nor `IGDB_SP_MODE` says otherwise.
pub const CH_AUTO_THRESHOLD: usize = 256;

thread_local! {
    static MODE_OVERRIDE: Cell<Option<SpMode>> = const { Cell::new(None) };
}

/// Runs `f` with the shortest-path mode forced to `mode` on this thread,
/// restoring the previous override afterwards (mirrors
/// `igdb_par::with_threads`). The override does not propagate into
/// `igdb-par` workers; use `IGDB_SP_MODE` for process-wide selection.
pub fn with_mode<R>(mode: SpMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SpMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(MODE_OVERRIDE.with(|m| m.replace(Some(mode))));
    f()
}

fn env_mode() -> Option<SpMode> {
    static ENV: OnceLock<Option<SpMode>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("IGDB_SP_MODE").ok()?;
        match raw.to_ascii_lowercase().as_str() {
            "dijkstra" => Some(SpMode::Dijkstra),
            "ch" => Some(SpMode::Ch),
            other => panic!("IGDB_SP_MODE must be `dijkstra` or `ch`, got `{other}`"),
        }
    })
}

/// Exact lexicographic path key. `w` and `hops` grow left-to-right along a
/// path; `tie` is the exact sum of per-arc perturbations. Distinct paths
/// have distinct keys (with overwhelming probability on `tie`), making the
/// shortest path unique — the foundation of the CH/Dijkstra bit-identity
/// contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Key {
    pub w: f64,
    pub hops: u32,
    pub tie: u128,
}

impl Key {
    #[inline]
    pub(crate) fn bits(self) -> (u64, u32, u128) {
        (self.w.to_bits(), self.hops, self.tie)
    }

    #[inline]
    pub(crate) fn lt(self, other: Key) -> bool {
        self.bits() < other.bits()
    }

    /// Path extension: `self` then `other`. `w` uses f64 addition in
    /// left-to-right order; `hops`/`tie` are exact integer sums.
    #[inline]
    pub(crate) fn add(self, other: Key) -> Key {
        Key { w: self.w + other.w, hops: self.hops + other.hops, tie: self.tie + other.tie }
    }
}

/// Deterministic per-arc tie perturbation; both CSR slots of one undirected
/// arc share the value.
pub(crate) fn arc_tie(arc_index: u64) -> u64 {
    let mut x = arc_index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

/// Immutable CSR graph + Dijkstra + optional contraction hierarchy.
/// Weights must be non-negative and finite (asserted at build time).
pub struct ShortestPathEngine {
    /// Process-unique id; lets workspaces detect cross-engine reuse instead
    /// of resuming a stale search that happens to share a source index.
    id: u64,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    /// Per-CSR-slot tie perturbation (same value on both slots of an arc).
    ties: Vec<u64>,
    /// Original undirected arcs `(a, b, w, tie)` in insertion order; the CH
    /// builder consumes these so duplicate arcs keep distinct ties.
    arcs: Vec<(u32, u32, f64, u64)>,
    hierarchy: OnceLock<ch::Hierarchy>,
}

/// Reusable per-caller state for [`ShortestPathEngine`] queries. One
/// workspace serves any number of sequential queries; parallel callers use
/// one workspace per worker. Holds both the Dijkstra search state and the
/// two CH search scratches, so a workspace works under either mode.
pub struct SpWorkspace {
    generation: u32,
    /// Stamp equal to `generation` ⇔ `dist`/`hops`/`tie`/`prev` are valid.
    reached: Vec<u32>,
    /// Stamp equal to `generation` ⇔ node is settled (final key).
    settled: Vec<u32>,
    dist: Vec<f64>,
    hops: Vec<u32>,
    tie: Vec<u128>,
    prev: Vec<u32>,
    heap: BinaryHeap<Reverse<HeapKey>>,
    /// Source of the search currently held in the workspace.
    source: usize,
    /// True once the frontier drained: every reachable node is settled.
    exhausted: bool,
    /// Engine the current search state belongs to (0 = none).
    engine_id: u64,
    ch_fwd: ch::ChSearch,
    ch_bwd: ch::ChSearch,
    /// Scratch for CH path unpacking.
    unpack: Vec<u32>,
}

/// Reused workspaces shrink back to the live graph's size once their
/// buffers exceed it by this factor (and the [`SHRINK_MIN`] floor), so a
/// long-lived worker that once served a huge graph does not pin its memory
/// forever.
const SHRINK_FACTOR: usize = 4;
const SHRINK_MIN: usize = 1 << 12;

impl SpWorkspace {
    pub fn new() -> Self {
        Self {
            generation: 0,
            reached: Vec::new(),
            settled: Vec::new(),
            dist: Vec::new(),
            hops: Vec::new(),
            tie: Vec::new(),
            prev: Vec::new(),
            heap: BinaryHeap::new(),
            source: usize::MAX,
            exhausted: false,
            engine_id: 0,
            ch_fwd: ch::ChSearch::new(),
            ch_bwd: ch::ChSearch::new(),
            unpack: Vec::new(),
        }
    }

    /// A workspace right-sized for `engine` up front: the first query pays
    /// no incremental growth, and the stale-state guards are primed for
    /// that engine.
    pub fn for_engine(engine: &ShortestPathEngine) -> Self {
        let mut ws = Self::new();
        ws.size_to(engine.node_count());
        ws.engine_id = engine.id;
        ws
    }

    /// Bytes of buffer capacity currently held (diagnostic; used by the
    /// shrink tests).
    pub fn buffer_len(&self) -> usize {
        self.reached.len()
    }

    fn size_to(&mut self, n: usize) {
        if self.reached.len() < n {
            self.reached.resize(n, 0);
            self.settled.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.hops.resize(n, 0);
            self.tie.resize(n, 0);
            self.prev.resize(n, u32::MAX);
        }
    }

    /// Drops buffer tails (and capacity) when this workspace was last used
    /// against a much larger graph.
    fn maybe_shrink(&mut self, n: usize) {
        if self.reached.len() > SHRINK_MIN && self.reached.len() / SHRINK_FACTOR >= n.max(1) {
            self.reached.truncate(n);
            self.settled.truncate(n);
            self.dist.truncate(n);
            self.hops.truncate(n);
            self.tie.truncate(n);
            self.prev.truncate(n);
            self.reached.shrink_to_fit();
            self.settled.shrink_to_fit();
            self.dist.shrink_to_fit();
            self.hops.shrink_to_fit();
            self.tie.shrink_to_fit();
            self.prev.shrink_to_fit();
            self.heap = BinaryHeap::new();
        }
    }

    fn reset_for(&mut self, n: usize, source: usize, engine_id: u64) {
        // Perf class: reset counts depend on how callers chunk work across
        // workers (resume amortization), so they are not in the
        // deterministic counter snapshot.
        igdb_obs::perf("spath.resets", "", 1);
        self.maybe_shrink(n);
        self.size_to(n);
        // Generation wrap: stamps from 4 billion queries ago could alias,
        // so clear them once per wrap.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.reached.fill(0);
            self.settled.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        self.source = source;
        self.engine_id = engine_id;
        self.exhausted = false;
        self.reached[source] = self.generation;
        self.dist[source] = 0.0;
        self.hops[source] = 0;
        self.tie[source] = 0;
        self.prev[source] = u32::MAX;
        self.heap.push(Reverse((0u64, 0u32, 0u128, source as u32)));
    }
}

impl Default for SpWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ShortestPathEngine {
    /// Builds the CSR form of an undirected graph from `(a, b, weight)`
    /// arcs in a single pass (arcs are collected once, so consuming
    /// iterators work). Per-node neighbor order equals arc insertion order
    /// (each arc contributes `a→b` and `b→a` in sequence), matching the
    /// neighbor order of the `Vec<Vec<…>>` adjacency it replaced.
    pub fn from_undirected<I>(n: usize, arcs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut collected: Vec<(u32, u32, f64, u64)> = Vec::new();
        let mut degree = vec![0u32; n];
        for (k, (a, b, w)) in arcs.into_iter().enumerate() {
            assert!(a < n && b < n, "arc ({a}, {b}) out of range for {n} nodes");
            assert!(w >= 0.0 && w.is_finite(), "negative or non-finite weight {w}");
            // `w + 0.0` normalizes -0.0 so equal weights share one bit
            // pattern in the lexicographic heap key.
            collected.push((a as u32, b as u32, w + 0.0, arc_tie(k as u64)));
            degree[a] += 1;
            degree[b] += 1;
        }
        let m = collected.len() * 2;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; m];
        let mut weights = vec![0.0f64; m];
        let mut ties = vec![0u64; m];
        for &(a, b, w, tie) in &collected {
            let ca = cursor[a as usize] as usize;
            targets[ca] = b;
            weights[ca] = w;
            ties[ca] = tie;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize] as usize;
            targets[cb] = a;
            weights[cb] = w;
            ties[cb] = tie;
            cursor[b as usize] += 1;
        }
        Self {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            offsets,
            targets,
            weights,
            ties,
            arcs: collected,
            hierarchy: OnceLock::new(),
        }
    }

    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    pub(crate) fn arcs(&self) -> &[(u32, u32, f64, u64)] {
        &self.arcs
    }

    pub fn degree(&self, node: usize) -> usize {
        debug_assert!(
            node < self.node_count(),
            "node {node} out of range for {} nodes",
            self.node_count()
        );
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    fn neighbors(&self, node: usize) -> impl Iterator<Item = (usize, f64, u64)> + '_ {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .zip(&self.ties[lo..hi])
            .map(|((&t, &w), &tie)| (t as usize, w, tie))
    }

    /// Shared bounds check for every query entry point: out-of-range
    /// endpoints make the query unanswerable (`None`), not a panic — the
    /// callers pass metro ids straight from snapshot joins.
    #[inline]
    fn pair_in_range(&self, from: usize, to: usize) -> bool {
        let n = self.node_count();
        from < n && to < n
    }

    /// Mode this engine resolves to right now: thread override, then
    /// `IGDB_SP_MODE`, then the node-count auto threshold.
    pub fn resolved_mode(&self) -> SpMode {
        if let Some(mode) = MODE_OVERRIDE.with(|m| m.get()) {
            return mode;
        }
        if let Some(mode) = env_mode() {
            return mode;
        }
        if self.node_count() >= CH_AUTO_THRESHOLD {
            SpMode::Ch
        } else {
            SpMode::Dijkstra
        }
    }

    /// Forces the contraction hierarchy to exist (it is otherwise built
    /// lazily on the first CH-mode query). Useful for benches that must
    /// keep preprocessing out of the timed region.
    pub fn prepare_ch(&self) {
        self.hierarchy();
    }

    /// Whether the contraction hierarchy has already been built. Delta
    /// repair uses this to decide between the CH path and the Dijkstra
    /// overlay fallback without *triggering* the lazy build.
    pub fn hierarchy_ready(&self) -> bool {
        self.hierarchy.get().is_some()
    }

    /// Builds this engine's hierarchy by re-contracting in `old`'s recorded
    /// order with the `dirty` nodes moved (stably) to the end — the scoped
    /// CH repair for a delta apply. Falls back to the normal lazy build
    /// when `old` never built a hierarchy or the node counts differ (a
    /// recorded order from a different world is meaningless). No-op if this
    /// engine's hierarchy already exists. Returns true when a seeded
    /// re-contraction actually ran.
    ///
    /// Answer bytes are unaffected either way: any contraction order yields
    /// a correct CH, and CH answers are pinned bit-identical to Dijkstra.
    pub fn seed_hierarchy_from(
        &self,
        old: &ShortestPathEngine,
        dirty: &std::collections::BTreeSet<usize>,
    ) -> bool {
        if self.hierarchy.get().is_some() {
            return false;
        }
        let Some(old_h) = old.hierarchy.get() else {
            return false;
        };
        let prev = old_h.contraction_order();
        if prev.len() != self.node_count() {
            return false;
        }
        let mut order: Vec<u32> = Vec::with_capacity(prev.len());
        let mut tail: Vec<u32> = Vec::new();
        for &v in prev {
            if dirty.contains(&(v as usize)) {
                tail.push(v);
            } else {
                order.push(v);
            }
        }
        order.extend(tail);
        let mut ran = false;
        self.hierarchy.get_or_init(|| {
            ran = true;
            ch::Hierarchy::build_seeded(self, &order)
        });
        ran
    }

    pub(crate) fn hierarchy(&self) -> &ch::Hierarchy {
        self.hierarchy.get_or_init(|| ch::Hierarchy::build(self))
    }

    /// Shortest path `from → to` as `(node sequence, total weight)`, using
    /// (and advancing) `ws`. Consecutive queries from the same `from`
    /// resume the retained search; a new source restarts it in O(1).
    /// Results are identical under both [`SpMode`]s.
    pub fn shortest_path_with(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        igdb_obs::counter("spath.queries", "", 1);
        // Latency is a perf-class histogram labeled by the resolved mode,
        // so Dijkstra-vs-CH quantiles fall out of one registry without
        // touching the deterministic counter stream.
        let _t = igdb_obs::hist_timer("spath.query_us", self.resolved_mode().label());
        self.shortest_path_inner(ws, from, to)
    }

    fn shortest_path_inner(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        to: usize,
    ) -> Option<(Vec<usize>, f64)> {
        if !self.pair_in_range(from, to) {
            return None;
        }
        if from == to {
            return Some((vec![from], 0.0));
        }
        if self.resolved_mode() == SpMode::Ch {
            return self.hierarchy().shortest_path(self, ws, from, to);
        }
        self.ensure_settled(ws, from, to)?;
        // Reconstruct by walking prev back to the source.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = ws.prev[cur] as usize;
            path.push(cur);
        }
        path.reverse();
        Some((path, ws.dist[to]))
    }

    /// Dijkstra-mode core: makes `ws` hold a search from `from` with `to`
    /// settled, or returns `None` if `to` is unreachable.
    fn ensure_settled(&self, ws: &mut SpWorkspace, from: usize, to: usize) -> Option<()> {
        let n = self.node_count();
        if ws.engine_id != self.id || ws.source != from || ws.generation == 0 || ws.reached.len() < n
        {
            ws.reset_for(n, from, self.id);
        }
        if ws.settled[to] != ws.generation && !ws.exhausted {
            self.run_until_settled(ws, to);
        }
        (ws.settled[to] == ws.generation).then_some(())
    }

    /// Advances the workspace's Dijkstra until `target` settles or the
    /// frontier drains. Relaxation minimizes the full lexicographic key
    /// `(weight, hops, tie)` — see the module docs.
    fn run_until_settled(&self, ws: &mut SpWorkspace, target: usize) {
        let generation = ws.generation;
        let mut settled_now = 0u64;
        let mut hit = false;
        while let Some(Reverse((_, _, _, u32u))) = ws.heap.pop() {
            let u = u32u as usize;
            // Stale heap entry: the node settled earlier at a smaller key.
            if ws.settled[u] == generation {
                continue;
            }
            ws.settled[u] = generation;
            settled_now += 1;
            let (d, h, t) = (ws.dist[u], ws.hops[u], ws.tie[u]);
            for (v, w, tie) in self.neighbors(u) {
                let nd = d + w;
                let nh = h + 1;
                let nt = t + tie as u128;
                let better = ws.reached[v] != generation
                    || (nd.to_bits(), nh, nt) < (ws.dist[v].to_bits(), ws.hops[v], ws.tie[v]);
                if better {
                    ws.reached[v] = generation;
                    ws.dist[v] = nd;
                    ws.hops[v] = nh;
                    ws.tie[v] = nt;
                    ws.prev[v] = u as u32;
                    ws.heap.push(Reverse((nd.to_bits(), nh, nt, v as u32)));
                }
            }
            if u == target {
                hit = true;
                break;
            }
        }
        if !hit {
            ws.exhausted = true;
        }
        // Perf class: how much of the graph each run explores depends on
        // resume amortization, i.e. on work chunking across workers.
        igdb_obs::perf("spath.nodes_settled", "", settled_now);
        igdb_obs::observe("spath.settled_per_run", "", settled_now);
    }

    /// Total shortest-path weight `from → to` (no path reconstruction).
    pub fn distance_with(&self, ws: &mut SpWorkspace, from: usize, to: usize) -> Option<f64> {
        igdb_obs::counter("spath.queries", "", 1);
        let _t = igdb_obs::hist_timer("spath.query_us", self.resolved_mode().label());
        self.distance_inner(ws, from, to)
    }

    fn distance_inner(&self, ws: &mut SpWorkspace, from: usize, to: usize) -> Option<f64> {
        if !self.pair_in_range(from, to) {
            return None;
        }
        if from == to {
            return Some(0.0);
        }
        if self.resolved_mode() == SpMode::Ch {
            // CH distances are recomputed along the unpacked path so the
            // f64 total matches Dijkstra's left-to-right accumulation.
            return self.hierarchy().shortest_path(self, ws, from, to).map(|(_, w)| w);
        }
        self.ensure_settled(ws, from, to)?;
        Some(ws.dist[to])
    }

    /// Batched one-to-many distances: one query stream from `from` to each
    /// of `targets`, sharing the forward search across the whole batch
    /// (resumable Dijkstra in [`SpMode::Dijkstra`], one upward search plus
    /// a per-target backward search in [`SpMode::Ch`]). Entry `i` is the
    /// distance to `targets[i]`, `None` when unreachable or out of range.
    pub fn distances_from(
        &self,
        ws: &mut SpWorkspace,
        from: usize,
        targets: &[usize],
    ) -> Vec<Option<f64>> {
        igdb_obs::counter("spath.queries", "", targets.len() as u64);
        // One timer for the whole batch (not per target) so batched and
        // point queries stay distinguishable in the latency tables.
        let _t = igdb_obs::hist_timer("spath.batch_us", self.resolved_mode().label());
        targets.iter().map(|&to| self.distance_inner(ws, from, to)).collect()
    }

    /// Batched many-to-many distances; row `i` is
    /// `distances_from(sources[i], targets)`.
    pub fn many_to_many(
        &self,
        ws: &mut SpWorkspace,
        sources: &[usize],
        targets: &[usize],
    ) -> Vec<Vec<Option<f64>>> {
        sources.iter().map(|&from| self.distances_from(ws, from, targets)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: usize, arcs: &[(usize, usize, f64)]) -> ShortestPathEngine {
        ShortestPathEngine::from_undirected(n, arcs.iter().copied())
    }

    #[test]
    fn chain_beats_long_shortcut() {
        let e = engine(5, &[(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0), (0, 3, 50.0)]);
        let mut ws = SpWorkspace::new();
        let (path, km) = e.shortest_path_with(&mut ws, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!((km - 30.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_is_none_and_self_is_zero() {
        let e = engine(4, &[(0, 1, 1.0)]);
        let mut ws = SpWorkspace::new();
        assert!(e.shortest_path_with(&mut ws, 0, 3).is_none());
        assert_eq!(e.shortest_path_with(&mut ws, 3, 3), Some((vec![3], 0.0)));
        assert!(e.shortest_path_with(&mut ws, 0, 99).is_none());
    }

    #[test]
    fn resumed_queries_match_fresh_queries() {
        // A lattice with enough structure that different targets settle at
        // different times.
        let mut arcs = Vec::new();
        for i in 0..20usize {
            arcs.push((i, (i + 1) % 20, 1.0 + (i % 3) as f64));
            if i % 4 == 0 {
                arcs.push((i, (i + 7) % 20, 2.5));
            }
        }
        let e = engine(20, &arcs);
        let mut resumed = SpWorkspace::new();
        for to in 0..20 {
            let mut fresh = SpWorkspace::new();
            let a = e.shortest_path_with(&mut resumed, 3, to);
            let b = e.shortest_path_with(&mut fresh, 3, to);
            assert_eq!(a, b, "target {to}");
        }
    }

    #[test]
    fn workspace_survives_source_switches() {
        let e = engine(6, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let mut ws = SpWorkspace::new();
        assert_eq!(e.distance_with(&mut ws, 0, 5), Some(5.0));
        assert_eq!(e.distance_with(&mut ws, 5, 0), Some(5.0));
        assert_eq!(e.distance_with(&mut ws, 2, 4), Some(2.0));
        assert_eq!(e.distance_with(&mut ws, 2, 0), Some(2.0));
    }

    #[test]
    fn workspace_survives_engine_switches() {
        // Same source index, different engine: the workspace must not
        // resume the stale search.
        let a = engine(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let b = engine(4, &[(0, 1, 5.0), (1, 3, 5.0)]);
        let mut ws = SpWorkspace::new();
        assert_eq!(a.distance_with(&mut ws, 0, 3), Some(3.0));
        assert_eq!(b.distance_with(&mut ws, 0, 3), Some(10.0));
        assert_eq!(a.distance_with(&mut ws, 0, 3), Some(3.0));
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let e = engine(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
        let mut ws = SpWorkspace::new();
        let (path, km) = e.shortest_path_with(&mut ws, 0, 2).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        assert_eq!(km, 0.0);
    }

    #[test]
    fn single_pass_construction_accepts_consuming_iterators() {
        // A non-Clone iterator (mutable state captured by move).
        let mut produced = 0usize;
        let arcs = std::iter::from_fn(move || {
            if produced < 3 {
                let a = produced;
                produced += 1;
                Some((a, a + 1, 1.0))
            } else {
                None
            }
        });
        let e = ShortestPathEngine::from_undirected(4, arcs);
        let mut ws = SpWorkspace::for_engine(&e);
        assert_eq!(e.distance_with(&mut ws, 0, 3), Some(3.0));
    }

    #[test]
    fn distances_from_matches_individual_queries() {
        let mut arcs = Vec::new();
        for i in 0..12usize {
            arcs.push((i, (i + 1) % 12, 1.0 + (i % 4) as f64));
        }
        arcs.push((0, 6, 2.25));
        let e = engine(12, &arcs);
        let targets: Vec<usize> = (0..12).rev().collect();
        let mut ws = SpWorkspace::for_engine(&e);
        let batch = e.distances_from(&mut ws, 4, &targets);
        for (i, &to) in targets.iter().enumerate() {
            let mut fresh = SpWorkspace::new();
            assert_eq!(batch[i], e.distance_with(&mut fresh, 4, to), "target {to}");
        }
        let rows = e.many_to_many(&mut ws, &[0, 5], &targets);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], e.distances_from(&mut SpWorkspace::new(), 0, &targets));
    }

    #[test]
    fn workspace_shrinks_after_large_graph() {
        // Pin Dijkstra: the big graph is over the CH auto threshold, and
        // this test is about the Dijkstra buffers.
        with_mode(SpMode::Dijkstra, || {
            let big_n = (SHRINK_MIN * SHRINK_FACTOR) + 8;
            let arcs: Vec<(usize, usize, f64)> = (0..big_n - 1).map(|i| (i, i + 1, 1.0)).collect();
            let big = ShortestPathEngine::from_undirected(big_n, arcs);
            let small = engine(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
            let mut ws = SpWorkspace::new();
            assert_eq!(big.distance_with(&mut ws, 0, 4), Some(4.0));
            assert_eq!(ws.buffer_len(), big_n);
            assert_eq!(small.distance_with(&mut ws, 0, 3), Some(3.0));
            assert_eq!(ws.buffer_len(), 4, "buffers shrink back to the live graph");
            // And the shrunken workspace still answers correctly.
            assert_eq!(small.distance_with(&mut ws, 3, 0), Some(3.0));
        });
    }

    #[test]
    fn mode_override_round_trips() {
        assert_eq!(
            with_mode(SpMode::Ch, || MODE_OVERRIDE.with(|m| m.get())),
            Some(SpMode::Ch)
        );
        assert_eq!(MODE_OVERRIDE.with(|m| m.get()), None);
        let e = engine(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let (d_path, c_path) = (
            with_mode(SpMode::Dijkstra, || {
                e.shortest_path_with(&mut SpWorkspace::new(), 0, 2)
            }),
            with_mode(SpMode::Ch, || e.shortest_path_with(&mut SpWorkspace::new(), 0, 2)),
        );
        assert_eq!(d_path, c_path);
        assert_eq!(d_path, Some((vec![0, 1, 2], 2.0)));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_out_of_range_asserts() {
        engine(2, &[(0, 1, 1.0)]).degree(7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_panics() {
        engine(2, &[(0, 5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn negative_weight_panics() {
        engine(2, &[(0, 1, -1.0)]);
    }
}
