//! Blocking client and the seeded load generator.
//!
//! The loadgen replays a seeded, interleaved query stream against a
//! server and reports sustained throughput and latency quantiles through
//! the same [`igdb_obs`] machinery the server uses, so one merged
//! JSON-lines stream carries both sides and `igdb metrics diff` can gate
//! it. Client-side metric classes mirror the server's: `loadgen.sent{kind}`
//! and `loadgen.ok{kind}` are deterministic counters (pure functions of
//! seed × request count on a clean run), per-error tallies are perf, and
//! round-trip latencies are histograms.
//!
//! Two driving modes:
//!
//! * **closed loop** (`qps == 0`): each connection waits for every
//!   response before sending the next request — deterministic, the mode
//!   the golden stream is recorded in;
//! * **open loop** (`qps > 0`): a sender thread paces requests against a
//!   fixed schedule while a receiver thread collects responses, so
//!   arrival rate keeps pressing even when the server slows — the mode
//!   that makes saturation and shedding measurable.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use igdb_fault::ServeError;
use igdb_obs::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{
    read_frame, write_frame, FrameError, ProtoError, Request, Response, DEFAULT_MAX_FRAME,
};
use crate::server::{ServerAddr, Stream};

/// Client-side failure (server-side failures arrive as
/// [`Response::Error`] values, not as `Err`).
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Proto(ProtoError),
    /// The server closed the connection.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Closed => f.write_str("connection closed by server"),
        }
    }
}

/// A blocking protocol client over one connection.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Connects with the given socket timeout (also the per-read wait
    /// while collecting responses).
    pub fn connect(addr: &ServerAddr, io_timeout: Duration) -> io::Result<Client> {
        let stream = addr.connect()?;
        stream.set_timeouts(Some(io_timeout))?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends one request without waiting; returns its correlation id.
    /// `deadline_ms` of 0 asks for the server default.
    /// The id the next `send` will use (for pre-registering in-flight
    /// bookkeeping before the frame is on the wire).
    pub fn peek_id(&self) -> u64 {
        self.next_id
    }

    pub fn send(&mut self, req: &Request, deadline_ms: u32) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, id, deadline_ms, req.op(), &req.encode_payload())?;
        Ok(id)
    }

    /// Receives the next response frame (any id). Blocks through idle
    /// timeouts until a frame arrives or the connection drops.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        loop {
            match read_frame(&mut self.stream, DEFAULT_MAX_FRAME) {
                Ok(frame) => {
                    let resp = Response::decode(frame.op, &frame.payload)
                        .map_err(ClientError::Proto)?;
                    return Ok((frame.id, resp));
                }
                Err(FrameError::IdleTimeout) => continue,
                Err(FrameError::CleanEof) => return Err(ClientError::Closed),
                Err(FrameError::Proto(e)) => return Err(ClientError::Proto(e)),
                Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// One blocking round trip.
    pub fn call(&mut self, req: &Request, deadline_ms: u32) -> Result<Response, ClientError> {
        let id = self.send(req, deadline_ms).map_err(ClientError::Io)?;
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            // A response to an earlier pipelined request: not ours, drop.
        }
    }

    /// The underlying stream (chaos injections need raw socket control).
    pub fn stream(&mut self) -> &mut Stream {
        &mut self.stream
    }
}

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent connections (requests are split round-robin).
    pub conns: usize,
    /// Seed for the request mix (same seed ⇒ same stream).
    pub seed: u64,
    /// Target offered load in requests/second; 0 = closed loop.
    pub qps: f64,
    /// Per-request deadline sent on the wire; 0 = server default.
    pub deadline_ms: u32,
    /// Socket timeout.
    pub io_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            requests: 400,
            conns: 2,
            seed: 7,
            qps: 0.0,
            deadline_ms: 0,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// What one loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenSummary {
    pub sent: u64,
    pub ok: u64,
    /// Typed error responses, by [`ServeError::name`].
    pub errors: Vec<(&'static str, u64)>,
    /// Typed error responses broken out by request kind: `(kind, error
    /// name, count)`, nonzero rows only. A saturation run that sheds
    /// batches but serves pings is visible here, not just as one number.
    pub errors_by_kind: Vec<(&'static str, &'static str, u64)>,
    /// Transport-level losses (closed connections, decode failures) —
    /// zero on every clean and overload run; non-zero means the server
    /// dropped a response, which the chaos harness treats as a failure.
    pub lost: u64,
    pub wall: Duration,
    /// Served responses per second of wall time.
    pub throughput: f64,
    /// Round-trip latency quantiles over successful requests, µs.
    pub p50_us: f64,
    pub p99_us: f64,
}

impl LoadgenSummary {
    /// Typed errors of one kind.
    pub fn error_count(&self, name: &str) -> u64 {
        self.errors.iter().find(|(n, _)| *n == name).map(|&(_, c)| c).unwrap_or(0)
    }

    /// All typed errors.
    pub fn error_total(&self) -> u64 {
        self.errors.iter().map(|&(_, c)| c).sum()
    }

    /// Typed errors of one kind × error name.
    pub fn error_count_for(&self, kind: &str, name: &str) -> u64 {
        self.errors_by_kind
            .iter()
            .find(|(k, n, _)| *k == kind && *n == name)
            .map(|&(_, _, c)| c)
            .unwrap_or(0)
    }

    /// One-line human rendering, plus a per-kind error breakdown when
    /// any request failed (attributing a storm to the kinds it hit).
    pub fn render(&self) -> String {
        let mut errs = String::new();
        for (n, c) in &self.errors {
            if *c > 0 {
                errs.push_str(&format!(" {n}={c}"));
            }
        }
        let mut out = format!(
            "sent {} ok {} lost {}{} | {:.1} req/s | p50 {:.0} µs p99 {:.0} µs",
            self.sent, self.ok, self.lost, errs, self.throughput, self.p50_us, self.p99_us
        );
        if !self.errors_by_kind.is_empty() {
            out.push_str("\nerrors by kind:");
            for (kind, name, c) in &self.errors_by_kind {
                out.push_str(&format!(" {kind}:{name}={c}"));
            }
        }
        out
    }
}

/// SplitMix64: derives independent per-connection seeds from one run
/// seed (same construction the synth world uses for stream splitting).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E9B5);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The seeded request mix: shortest-path heavy, with batches and the
/// heavier analyses sprinkled in — the serving profile the paper's
/// repeated cross-layer queries imply.
fn gen_request(rng: &mut StdRng, n_metros: usize) -> Request {
    let n = n_metros.max(2) as u32;
    match rng.gen_range(0u32..100) {
        0..=54 => Request::SpQuery { from: rng.gen_range(0..n), to: rng.gen_range(0..n) },
        55..=69 => {
            let len = rng.gen_range(2usize..=6);
            let pairs =
                (0..len).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
            Request::SpBatch { pairs }
        }
        70..=79 => {
            // A random bbox over the synthetic world's populated band.
            let west = rng.gen_range(-120.0f64..-70.0);
            let south = rng.gen_range(25.0f64..45.0);
            Request::RiskExposure {
                west,
                south,
                east: west + rng.gen_range(2.0f64..15.0),
                north: south + rng.gen_range(2.0f64..10.0),
            }
        }
        80..=89 => Request::Footprint { top_n: rng.gen_range(3u16..=12) },
        _ => Request::Ping,
    }
}

/// Runs the load generator against `addr`. `n_metros` bounds the metro
/// ids in the mix (ask the server via `Request::Stats` when remote).
/// Metrics land in `reg` (installed per worker thread).
pub fn run_loadgen(addr: &ServerAddr, n_metros: usize, cfg: &LoadgenConfig, reg: &Registry) -> LoadgenSummary {
    let conns = cfg.conns.max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let addr = addr.clone();
        let cfg = cfg.clone();
        let reg = reg.clone();
        let share = cfg.requests / conns + usize::from(c < cfg.requests % conns);
        let seed = splitmix64(cfg.seed ^ (c as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        handles.push(std::thread::spawn(move || {
            conn_loop(&addr, n_metros, &cfg, seed, share, c, &reg)
        }));
    }
    let mut lost = 0u64;
    for h in handles {
        lost += h.join().unwrap_or(0);
    }
    let wall = start.elapsed();
    let sent: u64 = KIND_LABELS.iter().map(|k| reg.counter_value("loadgen.sent", k)).sum();
    let ok: u64 = KIND_LABELS.iter().map(|k| reg.counter_value("loadgen.ok", k)).sum();
    let errors: Vec<(&'static str, u64)> = ServeError::NAMES
        .iter()
        .map(|&n| (n, reg.perf_value("loadgen.err", n)))
        .collect();
    let mut errors_by_kind = Vec::new();
    for &kind in &KIND_LABELS {
        for &name in &ServeError::NAMES {
            let c = reg.perf_value("loadgen.err_kind", &format!("{kind}:{name}"));
            if c > 0 {
                errors_by_kind.push((kind, name, c));
            }
        }
    }
    let (p50_us, p99_us) = match reg.histogram("loadgen.rtt_us", "all") {
        Some(h) => (h.quantile(0.5), h.quantile(0.99)),
        None => (0.0, 0.0),
    };
    LoadgenSummary {
        sent,
        ok,
        errors,
        errors_by_kind,
        lost,
        wall,
        throughput: ok as f64 / wall.as_secs_f64().max(1e-9),
        p50_us,
        p99_us,
    }
}

const KIND_LABELS: [&str; 5] = ["ping", "sp_query", "sp_batch", "risk", "footprint"];

/// Drives one connection; returns the number of lost responses.
fn conn_loop(
    addr: &ServerAddr,
    n_metros: usize,
    cfg: &LoadgenConfig,
    seed: u64,
    share: usize,
    conn_index: usize,
    reg: &Registry,
) -> u64 {
    let _ins = reg.install();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = match Client::connect(addr, cfg.io_timeout) {
        Ok(c) => c,
        Err(_) => {
            igdb_obs::perf("loadgen.connect_errors", "", 1);
            return share as u64;
        }
    };
    if cfg.qps <= 0.0 {
        closed_loop(&mut client, &mut rng, n_metros, cfg, share)
    } else {
        open_loop(client, rng, n_metros, cfg, share, conn_index, reg)
    }
}

fn record_response(kind: &'static str, rtt_us: u64, resp: &Response) {
    match resp {
        Response::Error(e) => {
            igdb_obs::perf("loadgen.err", e.name(), 1);
            igdb_obs::perf("loadgen.err_kind", format!("{kind}:{}", e.name()), 1);
        }
        _ => {
            igdb_obs::counter("loadgen.ok", kind, 1);
            igdb_obs::observe("loadgen.rtt_us", kind, rtt_us);
            igdb_obs::observe("loadgen.rtt_us", "all", rtt_us);
        }
    }
}

fn closed_loop(
    client: &mut Client,
    rng: &mut StdRng,
    n_metros: usize,
    cfg: &LoadgenConfig,
    share: usize,
) -> u64 {
    let mut lost = 0;
    for _ in 0..share {
        let req = gen_request(rng, n_metros);
        let kind = req.kind();
        igdb_obs::counter("loadgen.sent", kind, 1);
        let t0 = Instant::now();
        match client.call(&req, cfg.deadline_ms) {
            Ok(resp) => record_response(kind, t0.elapsed().as_micros() as u64, &resp),
            Err(_) => {
                igdb_obs::perf("loadgen.lost", "", 1);
                lost += 1;
            }
        }
    }
    lost
}

/// Open loop: the sender paces against the schedule `start + i/qps`
/// regardless of response progress; the receiver matches responses to
/// send timestamps by correlation id. One lock-per-request on a plain
/// map is far below the rates this workload reaches.
fn open_loop(
    mut client: Client,
    mut rng: StdRng,
    n_metros: usize,
    cfg: &LoadgenConfig,
    share: usize,
    conn_index: usize,
    reg: &Registry,
) -> u64 {
    let per_conn_qps = cfg.qps / cfg.conns.max(1) as f64;
    let interval = Duration::from_secs_f64(1.0 / per_conn_qps.max(1e-9));
    let in_flight: Arc<Mutex<HashMap<u64, (&'static str, Instant)>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let mut recv_stream = match client.stream().try_clone() {
        Ok(s) => s,
        Err(_) => {
            igdb_obs::perf("loadgen.connect_errors", "", 1);
            return share as u64;
        }
    };
    let receiver = {
        let in_flight = Arc::clone(&in_flight);
        let reg = reg.clone();
        std::thread::Builder::new()
            .name(format!("loadgen-recv-{conn_index}"))
            .spawn(move || {
                let _ins = reg.install();
                let mut got = 0usize;
                let mut lost = 0u64;
                while got < share {
                    match read_frame(&mut recv_stream, DEFAULT_MAX_FRAME) {
                        Ok(frame) => {
                            let Ok(resp) = Response::decode(frame.op, &frame.payload) else {
                                igdb_obs::perf("loadgen.lost", "", 1);
                                lost += 1;
                                got += 1;
                                continue;
                            };
                            let sent = in_flight
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&frame.id);
                            if let Some((kind, t0)) = sent {
                                record_response(
                                    kind,
                                    t0.elapsed().as_micros() as u64,
                                    &resp,
                                );
                                got += 1;
                            }
                        }
                        Err(FrameError::IdleTimeout) => {
                            // Sender may have failed mid-run; stop once
                            // nothing is in flight and the share arrived.
                            if in_flight
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .is_empty()
                            {
                                break;
                            }
                        }
                        Err(_) => {
                            let pending = in_flight
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .len() as u64;
                            igdb_obs::perf("loadgen.lost", "", pending);
                            lost += pending;
                            break;
                        }
                    }
                }
                lost
            })
            .expect("spawn loadgen receiver")
    };
    let start = Instant::now();
    let mut send_failures = 0u64;
    for i in 0..share {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = gen_request(&mut rng, n_metros);
        let kind = req.kind();
        igdb_obs::counter("loadgen.sent", kind, 1);
        // Register the id *before* the frame hits the wire: the response
        // can come back (and the receiver run) before `send` returns, and
        // a response with no in-flight entry would never be counted.
        let id = client.peek_id();
        let t0 = Instant::now();
        in_flight.lock().unwrap_or_else(|e| e.into_inner()).insert(id, (kind, t0));
        if client.send(&req, cfg.deadline_ms).is_err() {
            in_flight.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
            igdb_obs::perf("loadgen.lost", "", 1);
            send_failures += 1;
        }
    }
    let recv_lost = receiver.join().unwrap_or(0);
    send_failures + recv_lost
}
