//! The hardened query server.
//!
//! One acceptor thread, one reader thread per connection, and a fixed
//! pool of worker threads around a bounded queue:
//!
//! ```text
//! accept ─▶ reader ──(admit)──▶ bounded queue ──▶ worker pool ──▶ writer
//!              │                     │                              (per-conn
//!              └── inline: Stats, Introspect, BadRequest,            mutex)
//!                  Overloaded, ShuttingDown — never needs worker
//!                  capacity
//! ```
//!
//! Robustness is the load-bearing feature:
//!
//! * **Deadlines.** Every request carries a monotonic budget fixed at
//!   admission ([`crate::deadline::Deadline`]); workers check it before
//!   dispatch and at analysis-loop safepoints, so an expired request is
//!   a typed `Timeout`, never a hang.
//! * **Backpressure.** Admission is a bounded queue; at capacity the
//!   *reader* answers `Overloaded` (with the observed depth) directly —
//!   load-shedding must not consume the resource that is exhausted.
//! * **Panic containment.** Each request body runs under
//!   `catch_unwind`; a poisoned query becomes a typed `Internal` error
//!   and the worker, the connection, and the shared [`Igdb`] /
//!   corridor-cache state all keep serving.
//! * **Graceful drain.** [`Server::drain`] stops admissions (typed
//!   `ShuttingDown`), lets workers finish everything already queued,
//!   then closes connections and joins every thread — no response is
//!   abandoned in the queue.
//!
//! # Metric classes
//!
//! Deterministic counters (in the gated snapshot): `serve.requests{kind}`
//! and `serve.bytes_in{kind}` at admission, `serve.ok{kind}` and
//! `serve.bytes_out{kind}` on success — pure functions of the accepted
//! workload, worker-count and SP-mode invariant (success payloads are
//! bit-identical by the SP-equivalence contract). Everything timing- or
//! scheduling-shaped is perf-class: `serve.rejects{shed|shutting_down|
//! bad_request}` (reader-side refusals), `serve.err{name}` (worker-side
//! failures), `serve.bytes_out_err{kind}` (error-response bytes — which
//! requests fail depends on timing), `serve.conns{…}` lifecycle tallies,
//! `serve.write_errors`, and the `serve.queue_depth` /
//! `serve.queue_wait_us` / `serve.request_us{kind}` histograms.
//!
//! # Request-scoped tracing
//!
//! The reader opens an [`igdb_obs::TraceContext`] per admitted request
//! (trace id = connection id + frame correlation id) and ships it through
//! the queue in the [`Job`]. The worker installs it for the request's
//! lifetime, so the analyses' free spans build the request's own tree —
//! `request → queue.wait / execute / encode` — instead of being gagged:
//! the registry's serial span list (determinism rule 2) never sees a pool
//! thread, and completed traces land in the [`FlightRecorder`] (ring,
//! slow-query log, per-client accounting, epoch-pin visibility).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use igdb_core::analysis::{footprint, risk};
use igdb_core::{EpochHandle, Igdb, SpWorkspace};
use igdb_fault::ServeError;
use igdb_geo::{GeoPoint, Polygon};
use igdb_obs::{Registry, TraceContext};

use crate::deadline::Deadline;
use crate::proto::{
    read_frame, write_frame, FrameError, Introspection, Request, Response, DEFAULT_MAX_FRAME,
    HEADER_LEN,
};
use crate::recorder::{FlightRecorder, RecorderConfig, RequestTrace};

/// Server tuning knobs. The defaults suit an interactive deployment;
/// the chaos tests shrink the timeouts and the queue to make every
/// failure mode reachable in milliseconds.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads; 0 means [`igdb_par::num_threads`].
    pub workers: usize,
    /// Bounded queue capacity; admissions beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied when a request's `deadline_ms` field is 0.
    pub default_deadline: Duration,
    /// Socket read/write timeout: a peer stalled mid-frame longer than
    /// this is cut off with a typed error (slow-loris defense).
    pub io_timeout: Duration,
    /// Largest accepted frame payload.
    pub max_frame: u32,
    /// Whether the chaos instruments (`Sleep`, `Panic`) decode.
    pub enable_test_ops: bool,
    /// Flight-recorder ring capacity (completed request traces kept).
    pub trace_ring: usize,
    /// Requests whose wall time is at or above this go to the slow-query
    /// log; 0 disables slow classification.
    pub slow_ms: u64,
    /// Where slow-query traces are appended as span JSONL; `None` keeps
    /// them in the ring only.
    pub slow_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 32,
            default_deadline: Duration::from_secs(2),
            io_timeout: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
            enable_test_ops: false,
            trace_ring: 256,
            slow_ms: 0,
            slow_log: None,
        }
    }
}

/// Where a server listens / a client connects.
#[derive(Clone, Debug)]
pub enum ServerAddr {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp://{a}"),
            ServerAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

impl ServerAddr {
    /// Opens a client-side stream to this address.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            ServerAddr::Tcp(a) => TcpStream::connect(a).map(Stream::Tcp),
            ServerAddr::Unix(p) => UnixStream::connect(p).map(Stream::Unix),
        }
    }
}

/// A connected byte stream, TCP or unix-domain.
#[derive(Debug)]
pub enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    pub fn set_timeouts(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            Stream::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }

    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    /// Half-close the write side (the read side keeps draining — lets a
    /// chaos client stop sending yet still collect the typed error).
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket. Unix listeners own their socket file and
/// remove it on drop.
pub enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds a TCP listener (use port 0 for an ephemeral port).
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// Binds a unix-domain listener, replacing a stale socket file.
    pub fn bind_unix(path: &Path) -> io::Result<Listener> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        UnixListener::bind(path).map(|l| Listener::Unix(l, path.to_path_buf()))
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> io::Result<ServerAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().map(ServerAddr::Tcp),
            Listener::Unix(_, p) => Ok(ServerAddr::Unix(p.clone())),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// One admitted request waiting for (or holding) a worker.
struct Job {
    writer: Arc<ConnWriter>,
    id: u64,
    req: Request,
    deadline: Deadline,
    enqueued: Instant,
    /// The request's own span tree, opened by the reader at admission
    /// and installed by whichever worker picks the job up.
    trace: TraceContext,
    /// Server-assigned connection id (per-client accounting key).
    conn: u64,
    /// Full frame bytes (header + payload) this request arrived as.
    bytes_in: u64,
}

/// The per-connection response writer. Workers and the reader share it;
/// the mutex makes each frame write atomic, so interleaved responses
/// from concurrent requests on one connection never tear.
struct ConnWriter {
    stream: Mutex<Stream>,
}

impl ConnWriter {
    fn send(&self, id: u64, resp: &Response) -> io::Result<()> {
        self.send_raw(id, resp.tag(), &resp.encode_payload())
    }

    /// Frame-write a pre-encoded payload (workers encode under the
    /// request's `encode` span, then hand the bytes here).
    fn send_raw(&self, id: u64, tag: u8, payload: &[u8]) -> io::Result<()> {
        let mut s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *s, id, 0, tag, payload)
    }
}

struct Shared {
    /// Epoch-versioned world: a request pins the current epoch once at
    /// dispatch and uses that world for its whole lifetime, so a delta
    /// published mid-request never tears it. See [`igdb_core::epoch`].
    epochs: Arc<EpochHandle>,
    cfg: ServerConfig,
    reg: Registry,
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that the queue (or drain flag) changed.
    data: Condvar,
    draining: AtomicBool,
    busy: AtomicUsize,
    /// Clones of every live connection, for shutdown during drain.
    conns: Mutex<Vec<Stream>>,
    /// Reader threads spawned so far (joined by drain).
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Completed-request traces, slow-query log, per-client ledger.
    recorder: FlightRecorder,
    /// When the server came up (introspection uptime).
    started: Instant,
    /// Next connection id (1-based; 0 means "no connection").
    next_conn: AtomicU64,
    /// Resolved worker-thread count (introspection).
    workers_n: usize,
}

impl Shared {
    /// Admission control. `Ok` means a worker will answer; `Err` is
    /// written back by the *reader* — shedding never waits on a worker.
    fn admit(&self, job: Job) -> Result<(), ServeError> {
        if self.draining.load(Ordering::SeqCst) {
            self.reg.perf_add("serve.rejects", "shutting_down", 1);
            return Err(ServeError::ShuttingDown);
        }
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.cfg.queue_capacity {
            let depth = q.len() as u32;
            drop(q);
            self.reg.perf_add("serve.rejects", "shed", 1);
            return Err(ServeError::Overloaded { queue_depth: depth });
        }
        self.reg.counter_add("serve.requests", job.req.kind(), 1);
        self.reg.counter_add("serve.bytes_in", job.req.kind(), job.bytes_in);
        self.recorder.on_admit(job.conn, job.bytes_in);
        q.push_back(job);
        let depth = q.len() as u64;
        drop(q);
        self.reg.observe("serve.queue_depth", "", depth);
        self.data.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once draining *and* the
    /// queue is empty (drain finishes queued work before stopping).
    fn next_job(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(j) = q.pop_front() {
                return Some(j);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            q = self.data.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn stats(&self) -> Response {
        Response::Stats {
            n_metros: self.epochs.current().igdb.metros.len() as u32,
            queue_depth: self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u32,
            queue_capacity: self.cfg.queue_capacity as u32,
            busy_workers: self.busy.load(Ordering::SeqCst) as u32,
            draining: self.draining.load(Ordering::SeqCst),
        }
    }

    /// One live introspection snapshot: liveness gauges plus the flight
    /// recorder's ledger, client table, ring summary and epoch pins, plus
    /// the registry's deterministic counter text (so `igdb top` can show
    /// the gated stream without a second op).
    fn introspect(&self) -> Introspection {
        Introspection {
            epoch: self.epochs.current().number,
            uptime_us: self.started.elapsed().as_micros() as u64,
            workers: self.workers_n as u32,
            busy_workers: self.busy.load(Ordering::SeqCst) as u32,
            queue_depth: self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u32,
            queue_capacity: self.cfg.queue_capacity as u32,
            draining: self.draining.load(Ordering::SeqCst),
            recorder: self.recorder.snapshot(),
            counters: self.reg.counter_snapshot(),
        }
    }
}

/// What [`Server::drain`] hands back once every thread has joined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Successful responses, summed over request kinds (`serve.ok`).
    pub served: u64,
    /// Worker-side typed errors (`serve.err`, all labels).
    pub errors: u64,
    /// Reader-side refusals (`serve.rejects`, all labels).
    pub rejects: u64,
}

/// A running server; dropping it without [`drain`](Self::drain) aborts
/// the process-local threads unconditionally (prefer drain).
pub struct Server {
    shared: Arc<Shared>,
    addr: ServerAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// All request kinds, for summing per-kind counters.
pub const KINDS: [&str; 9] =
    ["ping", "sp_query", "sp_batch", "risk", "footprint", "sleep", "panic", "stats", "introspect"];

impl Server {
    /// Starts serving on `listener`. The shared [`Igdb`]'s physical
    /// graph and CH index are warmed *here*, serially, under `reg` — a
    /// serving deployment pays preprocessing once at startup, and the
    /// warm-up spans land in the deterministic stream in a fixed shape.
    pub fn start(
        igdb: Arc<Igdb>,
        listener: Listener,
        cfg: ServerConfig,
        reg: Registry,
    ) -> io::Result<Server> {
        let addr = listener.addr()?;
        {
            let _g = reg.install();
            let _span = igdb_obs::span("serve.prepare");
            igdb.phys_graph().engine().prepare_ch();
        }
        let workers = if cfg.workers == 0 { igdb_par::num_threads() } else { cfg.workers };
        let recorder = FlightRecorder::new(RecorderConfig {
            ring: cfg.trace_ring,
            slow_ms: cfg.slow_ms,
            slow_log: cfg.slow_log.clone(),
        })?;
        let shared = Arc::new(Shared {
            epochs: Arc::new(EpochHandle::new_shared(igdb)),
            cfg,
            reg,
            queue: Mutex::new(VecDeque::new()),
            data: Condvar::new(),
            draining: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            recorder,
            started: Instant::now(),
            next_conn: AtomicU64::new(0),
            workers_n: workers,
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("igdb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("igdb-serve-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn acceptor")
        };
        Ok(Server { shared, addr, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The address clients should connect to (resolved, so an ephemeral
    /// TCP port is concrete here).
    pub fn addr(&self) -> ServerAddr {
        self.addr.clone()
    }

    /// The registry the server records into.
    pub fn registry(&self) -> Registry {
        self.shared.reg.clone()
    }

    /// The epoch handle the workers pin from. A writer (delta-ingestion
    /// loop, test harness) builds the next world on its own time and
    /// publishes here; in-flight requests finish on the epoch they
    /// pinned, new requests see the new one.
    pub fn epochs(&self) -> Arc<EpochHandle> {
        Arc::clone(&self.shared.epochs)
    }

    /// The flight recorder's current ring contents, oldest first
    /// (tests and in-process tooling; the wire gets [`Self::introspection`]).
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.shared.recorder.traces()
    }

    /// The same snapshot the `Introspect` op answers with.
    pub fn introspection(&self) -> Introspection {
        self.shared.introspect()
    }

    /// Graceful shutdown: stop admitting (new requests get a typed
    /// `ShuttingDown`), finish everything already queued, write every
    /// response, then close connections and join all threads.
    pub fn drain(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.data.notify_all();
        // Workers first: the queue must be empty and every in-flight
        // response written before any connection is torn down.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Unblock the acceptor with a wake-up connection, then close
        // every live connection so blocked readers return.
        let _ = self.addr.connect();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for c in self.shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = c.shutdown();
        }
        let readers: Vec<_> =
            self.shared.readers.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for r in readers {
            let _ = r.join();
        }
        self.shared.recorder.flush();
        let reg = &self.shared.reg;
        let served = KINDS.iter().map(|k| reg.counter_value("serve.ok", k)).sum();
        let errors =
            ServeError::NAMES.iter().map(|n| reg.perf_value("serve.err", n)).sum();
        let rejects = ["shed", "shutting_down", "bad_request"]
            .iter()
            .map(|n| reg.perf_value("serve.rejects", n))
            .sum();
        DrainReport { served, errors, rejects }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: Listener) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The drain wake-up (or a late client): close and exit.
            let _ = stream.shutdown();
            return;
        }
        let _ = stream.set_timeouts(Some(shared.cfg.io_timeout));
        shared.reg.perf_add("serve.conns", "opened", 1);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
        }
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("igdb-serve-reader".into())
            .spawn(move || reader_loop(&shared2, stream))
            .expect("spawn reader");
        shared.readers.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
    }
}

/// Per-connection read loop: decode, admit, and answer everything that
/// must not depend on worker capacity (control ops and refusals).
fn reader_loop(shared: &Arc<Shared>, stream: Stream) {
    let _ins = shared.reg.install();
    let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter { stream: Mutex::new(w) }),
        Err(_) => {
            shared.reg.perf_add("serve.conns", "closed_error", 1);
            return;
        }
    };
    let mut reader = stream;
    let close_label = loop {
        match read_frame(&mut reader, shared.cfg.max_frame) {
            Ok(frame) => {
                let bytes_in = (HEADER_LEN + frame.payload.len()) as u64;
                match Request::decode(frame.op, &frame.payload) {
                    Ok(req) => {
                        // Control plane: answered inline, never queued.
                        if matches!(req, Request::Stats) {
                            shared.reg.perf_add("serve.control", "stats", 1);
                            if writer.send(frame.id, &shared.stats()).is_err() {
                                shared.reg.perf_add("serve.write_errors", "", 1);
                                break "closed_error";
                            }
                            continue;
                        }
                        if matches!(req, Request::Introspect) {
                            shared.reg.perf_add("serve.control", "introspect", 1);
                            let resp = Response::Introspect(shared.introspect());
                            if writer.send(frame.id, &resp).is_err() {
                                shared.reg.perf_add("serve.write_errors", "", 1);
                                break "closed_error";
                            }
                            continue;
                        }
                        if matches!(req, Request::Sleep { .. } | Request::Panic)
                            && !shared.cfg.enable_test_ops
                        {
                            shared.reg.perf_add("serve.rejects", "bad_request", 1);
                            let e = ServeError::BadRequest {
                                detail: "test op on a production server".into(),
                            };
                            shared.recorder.on_reject(conn, &e);
                            if writer.send(frame.id, &Response::Error(e)).is_err() {
                                shared.reg.perf_add("serve.write_errors", "", 1);
                                break "closed_error";
                            }
                            continue;
                        }
                        let budget = if frame.deadline_ms == 0 {
                            shared.cfg.default_deadline
                        } else {
                            Duration::from_millis(frame.deadline_ms as u64)
                        };
                        let job = Job {
                            trace: TraceContext::new(conn, frame.id, req.kind()),
                            writer: Arc::clone(&writer),
                            id: frame.id,
                            req,
                            deadline: Deadline::after(budget),
                            enqueued: Instant::now(),
                            conn,
                            bytes_in,
                        };
                        if let Err(e) = shared.admit(job) {
                            // Refusal (shed / shutting down): typed, inline.
                            shared.recorder.on_reject(conn, &e);
                            if writer.send(frame.id, &Response::Error(e)).is_err() {
                                shared.reg.perf_add("serve.write_errors", "", 1);
                                break "closed_error";
                            }
                        }
                    }
                    Err(pe) => {
                        // The frame parsed but its payload didn't: answer
                        // typed, then close — the stream may be
                        // desynchronized past this point.
                        shared.reg.perf_add("serve.rejects", "bad_request", 1);
                        let e = ServeError::BadRequest { detail: pe.to_string() };
                        shared.recorder.on_reject(conn, &e);
                        let _ = writer.send(frame.id, &Response::Error(e));
                        break "closed_proto";
                    }
                }
            }
            Err(FrameError::CleanEof) => break "closed_eof",
            Err(FrameError::IdleTimeout) => {
                // Idle between frames: harmless, but a natural moment to
                // notice a drain and stop holding the socket open.
                if shared.draining.load(Ordering::SeqCst) {
                    break "closed_drain";
                }
                continue;
            }
            Err(e) if e.is_stall() => {
                // Slow-loris: the peer stalled mid-frame past io_timeout.
                shared.reg.perf_add("serve.rejects", "bad_request", 1);
                let err = ServeError::BadRequest {
                    detail: "stalled mid-frame past the io timeout".into(),
                };
                shared.recorder.on_reject(conn, &err);
                let _ = writer.send(0, &Response::Error(err));
                break "closed_stall";
            }
            Err(FrameError::Proto(pe)) => {
                // Unframeable bytes: one typed error, then hang up.
                shared.reg.perf_add("serve.rejects", "bad_request", 1);
                let e = ServeError::BadRequest { detail: pe.to_string() };
                shared.recorder.on_reject(conn, &e);
                let _ = writer.send(0, &Response::Error(e));
                break "closed_proto";
            }
            Err(FrameError::Io(_)) => break "closed_error",
        }
    };
    // On a drain-notice exit the socket stays open: responses for this
    // connection's admitted requests may still be in flight, and drain
    // closes every connection itself once the workers have joined.
    // Every other exit reason means the stream is dead or desynchronized.
    if close_label != "closed_drain" {
        let _ = reader.shutdown();
    }
    shared.reg.perf_add("serve.conns", close_label, 1);
}

fn worker_loop(shared: &Arc<Shared>) {
    let _ins = shared.reg.install();
    let mut ws = SpWorkspace::new();
    while let Some(job) = shared.next_job() {
        shared.busy.fetch_add(1, Ordering::SeqCst);
        let wait_us = job.enqueued.elapsed().as_micros() as u64;
        shared.reg.observe("serve.queue_wait_us", "", wait_us);
        let kind = job.req.kind();
        // Install the request's trace for this job's lifetime: the
        // analyses' free spans route here (never to the registry's
        // serial span list), and the cross-thread queue wait — which
        // this thread never *observed* as an open span — is backfilled
        // as a closed child of the root.
        let trace = job.trace.clone();
        let _t = trace.install();
        trace.record("queue.wait", trace.offset_us(job.enqueued), wait_us);
        let (resp, pinned_no, pinned_at) = if let Err(e) = job.deadline.check() {
            // Expired while queued: don't burn a worker on a dead
            // request. No epoch is pinned; account against the current
            // one so the trace still says what world it *would* have
            // seen.
            let cur = shared.epochs.current();
            (Response::Error(e), cur.number, cur.published_at)
        } else {
            // Pin once per request: everything this request touches —
            // graph, corridors, tables — comes from one epoch, even if a
            // delta is published while it runs.
            let epoch = shared.epochs.current();
            let resp = {
                let _exec = igdb_obs::span("execute");
                let timer = igdb_obs::hist_timer("serve.request_us", kind);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    execute(&epoch.igdb, &mut ws, &job.req, &job.deadline)
                }));
                drop(timer);
                match outcome {
                    Ok(Ok(resp)) => {
                        igdb_obs::counter("serve.ok", kind, 1);
                        resp
                    }
                    Ok(Err(e)) => Response::Error(e),
                    Err(payload) => {
                        // Containment boundary: the panic stops here; the
                        // worker, its workspace (generation-stamped, safe
                        // to reuse), and the shared caches all keep
                        // serving. (`&*payload`: the box must deref
                        // before the unsize, or the Box itself becomes
                        // the `dyn Any` and every downcast misses.)
                        Response::Error(ServeError::Internal {
                            detail: panic_detail(&*payload),
                        })
                    }
                }
            };
            (resp, epoch.number, epoch.published_at)
        };
        let err_code = match &resp {
            Response::Error(e) => {
                igdb_obs::perf("serve.err", e.name(), 1);
                Some(e.code())
            }
            _ => None,
        };
        let bytes_out;
        {
            let _enc = igdb_obs::span("encode");
            let payload = resp.encode_payload();
            bytes_out = (HEADER_LEN + payload.len()) as u64;
            if job.writer.send_raw(job.id, resp.tag(), &payload).is_err() {
                // The peer vanished mid-request; the response is still
                // accounted (ok/err above), this only tallies the lost
                // write.
                igdb_obs::perf("serve.write_errors", "", 1);
            }
        }
        if err_code.is_none() {
            // Success payloads are deterministic (SP-equivalence makes
            // them bit-identical across modes), so their bytes gate.
            igdb_obs::counter("serve.bytes_out", kind, bytes_out);
        } else {
            // Which requests fail is timing-shaped: perf-class.
            igdb_obs::perf("serve.bytes_out_err", kind, bytes_out);
        }
        drop(_t);
        let newest = shared.epochs.current();
        let start_offset_us = trace
            .started()
            .saturating_duration_since(shared.recorder.started())
            .as_micros() as u64;
        let record = trace.finish();
        shared.recorder.on_done(
            RequestTrace {
                conn: job.conn,
                corr: job.id,
                kind,
                epoch: pinned_no,
                err_code,
                queue_wait_us: wait_us,
                bytes_in: job.bytes_in,
                bytes_out,
                start_offset_us,
                record,
            },
            pinned_at,
            (newest.number, newest.published_at),
        );
        shared.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Renders a caught panic payload for the `Internal` detail field.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes one request body. Everything here runs under the worker's
/// `catch_unwind`; `Err` is a typed refusal, a panic is contained above.
fn execute(
    igdb: &Igdb,
    ws: &mut SpWorkspace,
    req: &Request,
    deadline: &Deadline,
) -> Result<Response, ServeError> {
    deadline.check()?;
    let n_metros = igdb.metros.len();
    let check_metro = |m: u32| -> Result<usize, ServeError> {
        if (m as usize) < n_metros {
            Ok(m as usize)
        } else {
            Err(ServeError::BadRequest {
                detail: format!("metro id {m} out of range (database has {n_metros})"),
            })
        }
    };
    match req {
        Request::Ping => Ok(Response::Pong),
        Request::SpQuery { from, to } => {
            let (from, to) = (check_metro(*from)?, check_metro(*to)?);
            let pg = igdb.phys_graph();
            match pg.shortest_path_cached(ws, from, to) {
                Some((path, km)) => {
                    Ok(Response::Path { hops: path.len().saturating_sub(1) as u32, km })
                }
                None => Ok(Response::NoRoute),
            }
        }
        Request::SpBatch { pairs } => {
            let pg = igdb.phys_graph();
            let (mut routed, mut unreachable, mut total_km) = (0u32, 0u32, 0.0f64);
            for &(a, b) in pairs {
                // The batch safepoint: a deadline storm expires here,
                // mid-batch, instead of hanging to completion.
                deadline.check()?;
                let (a, b) = (check_metro(a)?, check_metro(b)?);
                match pg.shortest_path_cached(ws, a, b) {
                    Some((_, km)) => {
                        routed += 1;
                        total_km += km;
                    }
                    None => unreachable += 1,
                }
            }
            Ok(Response::Batch { routed, unreachable, total_km })
        }
        Request::RiskExposure { west, south, east, north } => {
            let finite = [west, south, east, north].iter().all(|v| v.is_finite());
            if !finite || west >= east || south >= north {
                return Err(ServeError::BadRequest {
                    detail: "risk bbox wants finite west<east, south<north".into(),
                });
            }
            let region = Polygon::new(
                vec![
                    GeoPoint::raw(*west, *south),
                    GeoPoint::raw(*east, *south),
                    GeoPoint::raw(*east, *north),
                    GeoPoint::raw(*west, *north),
                ],
                vec![],
            );
            let report = risk::exposure(igdb, &region);
            Ok(Response::Risk {
                paths: report.paths_at_risk.len() as u32,
                cables: report.cables_at_risk.len() as u32,
                metros: report.metros_in_region.len() as u32,
                ases: report.ases_exposed.len() as u32,
            })
        }
        Request::Footprint { top_n } => {
            if *top_n == 0 || *top_n > 1000 {
                return Err(ServeError::BadRequest {
                    detail: "footprint top_n wants 1..=1000".into(),
                });
            }
            let rows = footprint::top_by_countries(igdb, *top_n as usize);
            Ok(Response::Footprint { rows: rows.len() as u32 })
        }
        Request::Sleep { ms } => {
            // 1 ms slices with a deadline check between each: the
            // archetypal safepointed long-running analysis.
            for _ in 0..*ms {
                deadline.check()?;
                std::thread::sleep(Duration::from_millis(1));
            }
            deadline.check()?;
            Ok(Response::Slept)
        }
        Request::Panic => panic!("injected analysis panic (chaos harness)"),
        Request::Stats | Request::Introspect => {
            // Control ops are answered inline by the reader; reaching a
            // worker is a dispatch bug.
            Err(ServeError::Internal { detail: "control op reached a worker".into() })
        }
    }
}
