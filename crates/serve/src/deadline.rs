//! Per-request monotonic deadlines.
//!
//! A deadline is fixed when the request is *admitted* (read off the
//! wire), not when a worker picks it up — queue wait burns budget, which
//! is what makes backpressure visible to deadline-sensitive clients. The
//! budget is checked at analysis-loop safepoints (batch-item boundaries,
//! sleep slices, and once before dispatch); a coarse single-shot analysis
//! may overrun its deadline by one analysis duration, but never hangs —
//! the check after it still turns the result into a typed `Timeout`.

use std::time::{Duration, Instant};

use igdb_fault::ServeError;

/// A monotonic request budget.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self { at: Instant::now() + budget, budget }
    }

    /// The budget the deadline was created with, in milliseconds (echoed
    /// in [`ServeError::Timeout`] so clients see what they asked for).
    pub fn budget_ms(&self) -> u64 {
        self.budget.as_millis() as u64
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left, zero once expired.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The safepoint check: `Err(Timeout)` once the budget is spent.
    pub fn check(&self) -> Result<(), ServeError> {
        if self.expired() {
            Err(ServeError::Timeout { budget_ms: self.budget_ms() })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires_into_typed_timeout() {
        let d = Deadline::after(Duration::from_millis(20));
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert!(d.remaining() <= Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(25));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert_eq!(d.check(), Err(ServeError::Timeout { budget_ms: 20 }));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.budget_ms(), 0);
    }
}
