//! Flight recorder: a fixed-size ring of completed request traces plus
//! the accounting a live operator needs — per-client tallies, a
//! slow-query log, and epoch-churn visibility.
//!
//! The recorder is the server-side sink for [`igdb_obs::TraceContext`]
//! records: the reader opens a trace per admitted request, the pool
//! worker fills it (queue wait → execute → encode), and the completed
//! record lands here. Everything is behind one mutex so a snapshot is
//! *exactly consistent*: `requests == ok + err + live` holds in every
//! snapshot, mid-storm included — that invariant is what the chaos
//! harness probes over the wire.
//!
//! Three views come out of it:
//!
//! * **Ring** — the last N completed traces, for post-hoc inspection and
//!   the trace-determinism tests.
//! * **Slow log** (`--slow-ms` + `--slow-log FILE.jsonl`) — every request
//!   whose wall time crossed the threshold is appended as standard
//!   `span`-type JSON lines (file-absolute parent indices), so the
//!   existing `Registry::from_json_lines` / `igdb metrics --in` tooling
//!   reads it with no new parser. Entries are ordered by *completion*;
//!   the root span name carries the request metadata
//!   (`slow.<kind> conn=<c> id=<r> epoch=<e> status=<s>`).
//! * **Snapshot** — the versioned introspection payload: ledger totals,
//!   per-client table, ring/slow summary, pinned-epoch distribution and
//!   the `epoch.lag` histogram summary.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use igdb_fault::ServeError;
use igdb_obs::{Histogram, TraceRecord};

/// How many distinct epochs the pin distribution keeps before evicting
/// the oldest rows (their pins roll into `pins_evicted`).
const EPOCH_HISTORY: usize = 64;

/// Recorder knobs, set from `igdb serve --slow-ms/--slow-log` flags.
#[derive(Debug)]
pub struct RecorderConfig {
    /// Completed traces retained in the ring (0 disables the ring).
    pub ring: usize,
    /// Wall-time threshold in milliseconds for the slow classification
    /// (0 disables slow accounting and the slow log).
    pub slow_ms: u64,
    /// Where to append slow-request span trees as JSON lines.
    pub slow_log: Option<PathBuf>,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            ring: 256,
            slow_ms: 0,
            slow_log: None,
        }
    }
}

/// One completed, admitted request: identity, outcome, byte accounting
/// and the full span tree.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Server-assigned connection id (1-based, accept order).
    pub conn: u64,
    /// Client-chosen correlation id (the frame id).
    pub corr: u64,
    pub kind: &'static str,
    /// The epoch the request pinned at dispatch.
    pub epoch: u64,
    /// `None` on success, `Some(ServeError::code())` otherwise.
    pub err_code: Option<u8>,
    /// Time spent in the admission queue, microseconds.
    pub queue_wait_us: u64,
    /// Request frame bytes (header + payload).
    pub bytes_in: u64,
    /// Response frame bytes (header + payload).
    pub bytes_out: u64,
    /// Trace start relative to the recorder's start, microseconds.
    pub start_offset_us: u64,
    pub record: TraceRecord,
}

impl RequestTrace {
    /// `"ok"` or the [`ServeError`] variant name.
    pub fn status_name(&self) -> &'static str {
        match self.err_code {
            None => "ok",
            Some(c) => ServeError::NAMES
                .get(c as usize - 1)
                .copied()
                .unwrap_or("unknown"),
        }
    }
}

/// Per-connection accounting: the substrate for fairness decisions.
#[derive(Clone, Debug)]
pub struct ClientStats {
    /// Admitted requests (reader-side refusals are in `rejected`).
    pub requests: u64,
    pub ok: u64,
    /// Worker-side errors by `ServeError::code() - 1`.
    pub err: [u64; 5],
    /// Reader-side refusals by `ServeError::code() - 1` (shed, draining,
    /// bad request) — these never entered the queue.
    pub rejected: [u64; 5],
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub queue_wait: Histogram,
}

impl ClientStats {
    fn new() -> Self {
        Self {
            requests: 0,
            ok: 0,
            err: [0; 5],
            rejected: [0; 5],
            bytes_in: 0,
            bytes_out: 0,
            queue_wait: Histogram::new(),
        }
    }
}

/// Compact histogram digest for the wire (quantiles are derived fields,
/// computed server-side).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistDigest {
    pub count: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl HistDigest {
    fn of(h: &Histogram) -> Self {
        if h.count == 0 {
            return Self::default();
        }
        Self {
            count: h.count,
            p50_us: h.quantile(0.50) as u64,
            p99_us: h.quantile(0.99) as u64,
            max_us: h.max,
        }
    }
}

/// One row of the per-client table as it goes over the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientRow {
    pub conn: u64,
    pub requests: u64,
    pub ok: u64,
    pub err: [u64; 5],
    pub rejected: [u64; 5],
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub queue_wait: HistDigest,
}

/// Exactly consistent view of the recorder, taken under one lock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecorderSnapshot {
    /// Admitted requests ever.
    pub requests: u64,
    pub ok: u64,
    pub err: [u64; 5],
    /// Admitted but not yet completed. `requests == ok + Σerr + live`
    /// holds in every snapshot by construction.
    pub live: u64,
    /// Reader-side refusals by variant (never admitted, not in
    /// `requests`).
    pub rejected: [u64; 5],
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub ring_len: u32,
    pub ring_cap: u32,
    pub slow_count: u64,
    pub slow_ms: u64,
    pub clients: Vec<ClientRow>,
    /// `(epoch, completed requests pinned to it)`, oldest retained first.
    pub epoch_pins: Vec<(u64, u64)>,
    /// Pins on epochs evicted from the bounded history.
    pub pins_evicted: u64,
    /// How long after a newer epoch was published older epochs were
    /// still being released by in-flight readers.
    pub epoch_lag: HistDigest,
}

impl RecorderSnapshot {
    /// The mid-storm conservation law the chaos probe asserts.
    pub fn err_total(&self) -> u64 {
        self.err.iter().sum()
    }
}

struct RecInner {
    requests: u64,
    ok: u64,
    err: [u64; 5],
    live: u64,
    rejected: [u64; 5],
    bytes_in: u64,
    bytes_out: u64,
    clients: BTreeMap<u64, ClientStats>,
    ring: VecDeque<RequestTrace>,
    slow_count: u64,
    /// Span lines written to the slow log so far — the file-absolute
    /// index base for the next entry's parent pointers.
    slow_spans_written: u64,
    epoch_pins: BTreeMap<u64, u64>,
    pins_evicted: u64,
    /// First known publish instant per epoch (fed by workers from
    /// `Epoch::published_at`), the reference for `epoch.lag`.
    epoch_published: BTreeMap<u64, Instant>,
    epoch_lag: Histogram,
}

/// The flight recorder. One per server; shared by readers and workers.
pub struct FlightRecorder {
    epoch: Instant,
    ring_cap: usize,
    slow_ms: u64,
    inner: Mutex<RecInner>,
    slow_log: Option<Mutex<BufWriter<File>>>,
}

impl FlightRecorder {
    pub fn new(cfg: RecorderConfig) -> io::Result<Self> {
        let slow_log = match &cfg.slow_log {
            Some(path) => Some(Mutex::new(BufWriter::new(File::create(path)?))),
            None => None,
        };
        Ok(Self {
            epoch: Instant::now(),
            ring_cap: cfg.ring,
            slow_ms: cfg.slow_ms,
            inner: Mutex::new(RecInner {
                requests: 0,
                ok: 0,
                err: [0; 5],
                live: 0,
                rejected: [0; 5],
                bytes_in: 0,
                bytes_out: 0,
                clients: BTreeMap::new(),
                ring: VecDeque::new(),
                slow_count: 0,
                slow_spans_written: 0,
                epoch_pins: BTreeMap::new(),
                pins_evicted: 0,
                epoch_published: BTreeMap::new(),
                epoch_lag: Histogram::new(),
            }),
            slow_log,
        })
    }

    /// The recorder's time origin (slow-log `start_us` offsets are
    /// relative to it).
    pub fn started(&self) -> Instant {
        self.epoch
    }

    pub fn slow_ms(&self) -> u64 {
        self.slow_ms
    }

    /// A request was admitted to the queue.
    pub fn on_admit(&self, conn: u64, bytes_in: u64) {
        let mut g = self.inner.lock().unwrap();
        g.requests += 1;
        g.live += 1;
        g.bytes_in += bytes_in;
        let c = g.clients.entry(conn).or_insert_with(ClientStats::new);
        c.requests += 1;
        c.bytes_in += bytes_in;
    }

    /// The reader refused a request before admission (shed, draining,
    /// undecodable).
    pub fn on_reject(&self, conn: u64, err: &ServeError) {
        let i = err.code() as usize - 1;
        let mut g = self.inner.lock().unwrap();
        g.rejected[i] += 1;
        g.clients.entry(conn).or_insert_with(ClientStats::new).rejected[i] += 1;
    }

    /// A worker completed an admitted request. `pinned_published_at` is
    /// the publish instant of the epoch the request pinned; `newest` is
    /// the epoch current at completion (number + publish instant), used
    /// as the lag reference when the pinned epoch has been superseded.
    pub fn on_done(
        &self,
        rt: RequestTrace,
        pinned_published_at: Instant,
        newest: (u64, Instant),
    ) {
        let now = Instant::now();
        let mut g = self.inner.lock().unwrap();
        g.live = g.live.saturating_sub(1);
        g.bytes_out += rt.bytes_out;
        match rt.err_code {
            None => g.ok += 1,
            Some(c) => g.err[c as usize - 1] += 1,
        }
        {
            let c = g.clients.entry(rt.conn).or_insert_with(ClientStats::new);
            match rt.err_code {
                None => c.ok += 1,
                Some(code) => c.err[code as usize - 1] += 1,
            }
            c.bytes_out += rt.bytes_out;
            c.queue_wait.record(rt.queue_wait_us);
        }

        // Epoch-churn visibility: which epoch the request pinned, and —
        // when that epoch was already superseded at release — how long
        // past the successor's publish it was still held. The successor's
        // publish instant is used when known, else the newest epoch's (a
        // lower bound on the true lag).
        *g.epoch_pins.entry(rt.epoch).or_insert(0) += 1;
        g.epoch_published.entry(rt.epoch).or_insert(pinned_published_at);
        g.epoch_published.entry(newest.0).or_insert(newest.1);
        if rt.epoch < newest.0 {
            if let Some((_, &published)) = g.epoch_published.range(rt.epoch + 1..).next() {
                let lag_us = now.saturating_duration_since(published).as_micros() as u64;
                g.epoch_lag.record(lag_us);
            }
        }
        while g.epoch_pins.len() > EPOCH_HISTORY {
            let oldest = *g.epoch_pins.keys().next().unwrap();
            let evicted = g.epoch_pins.remove(&oldest).unwrap_or(0);
            g.pins_evicted += evicted;
            g.epoch_published.remove(&oldest);
        }

        // Slow classification before the ring consumes the trace.
        let is_slow = self.slow_ms > 0 && rt.record.wall_us() >= self.slow_ms * 1000;
        if is_slow {
            g.slow_count += 1;
            if let Some(w) = &self.slow_log {
                let base = g.slow_spans_written;
                let (text, lines) = render_slow_entry(&rt, base);
                g.slow_spans_written += lines;
                // Write under the recorder lock so concurrent workers
                // can't interleave entries (parent indices are
                // file-absolute).
                let mut w = w.lock().unwrap();
                let _ = w.write_all(text.as_bytes());
                let _ = w.flush();
            }
        }

        if self.ring_cap > 0 {
            if g.ring.len() >= self.ring_cap {
                g.ring.pop_front();
            }
            g.ring.push_back(rt);
        }
    }

    /// Clones the ring (oldest first).
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// One-lock consistent snapshot for the introspection payload.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let g = self.inner.lock().unwrap();
        RecorderSnapshot {
            requests: g.requests,
            ok: g.ok,
            err: g.err,
            live: g.live,
            rejected: g.rejected,
            bytes_in: g.bytes_in,
            bytes_out: g.bytes_out,
            ring_len: g.ring.len() as u32,
            ring_cap: self.ring_cap as u32,
            slow_count: g.slow_count,
            slow_ms: self.slow_ms,
            clients: g
                .clients
                .iter()
                .map(|(&conn, c)| ClientRow {
                    conn,
                    requests: c.requests,
                    ok: c.ok,
                    err: c.err,
                    rejected: c.rejected,
                    bytes_in: c.bytes_in,
                    bytes_out: c.bytes_out,
                    queue_wait: HistDigest::of(&c.queue_wait),
                })
                .collect(),
            epoch_pins: g.epoch_pins.iter().map(|(&e, &n)| (e, n)).collect(),
            pins_evicted: g.pins_evicted,
            epoch_lag: HistDigest::of(&g.epoch_lag),
        }
    }

    /// Flushes the slow log (drain path).
    pub fn flush(&self) {
        if let Some(w) = &self.slow_log {
            let _ = w.lock().unwrap().flush();
        }
    }
}

/// Renders one slow request as `span`-type JSON lines compatible with
/// `Registry::from_json_lines`. Returns the text and the number of span
/// lines it contains. Parent indices are rebased to file-absolute
/// positions; `start_us` is rebased to the recorder's time origin. The
/// root span's name is rewritten to carry the request metadata.
fn render_slow_entry(rt: &RequestTrace, base: u64) -> (String, u64) {
    let mut out = String::new();
    let mut lines = 0u64;
    for (i, s) in rt.record.spans.iter().enumerate() {
        let name = if i == 0 {
            format!(
                "slow.{} conn={} id={} epoch={} status={}",
                rt.kind,
                rt.conn,
                rt.corr,
                rt.epoch,
                rt.status_name()
            )
        } else {
            s.name.to_string()
        };
        let parent = match s.parent {
            Some(p) => (base + p as u64).to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"parent\":{},\"depth\":{},\"start_us\":{},\"dur_us\":{}}}\n",
            json_escape(&name),
            parent,
            s.depth,
            rt.start_offset_us + s.start_us,
            s.dur_us.unwrap_or(0),
        ));
        lines += 1;
    }
    (out, lines)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igdb_obs::TraceContext;

    fn completed(conn: u64, corr: u64, wall_sleep_ms: u64) -> RequestTrace {
        let trace = TraceContext::new(conn, corr, "request");
        {
            let _t = trace.install();
            trace.record("queue.wait", 0, 5);
            let _e = trace.span("execute");
            std::thread::sleep(std::time::Duration::from_millis(wall_sleep_ms));
        }
        RequestTrace {
            conn,
            corr,
            kind: "sp_query",
            epoch: 0,
            err_code: None,
            queue_wait_us: 5,
            bytes_in: 40,
            bytes_out: 60,
            start_offset_us: 0,
            record: trace.finish(),
        }
    }

    #[test]
    fn ledger_is_exact_in_every_snapshot() {
        let rec = FlightRecorder::new(RecorderConfig::default()).unwrap();
        let t0 = Instant::now();
        rec.on_admit(1, 40);
        rec.on_admit(1, 40);
        rec.on_admit(2, 40);
        let snap = rec.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.live, 3);
        assert_eq!(snap.requests, snap.ok + snap.err_total() + snap.live);

        rec.on_done(completed(1, 1, 0), t0, (0, t0));
        let mut err = completed(1, 2, 0);
        err.err_code = Some(2); // timeout
        rec.on_done(err, t0, (0, t0));
        rec.on_reject(2, &ServeError::Overloaded { queue_depth: 3 });
        let snap = rec.snapshot();
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.err[1], 1);
        assert_eq!(snap.live, 1);
        assert_eq!(snap.requests, snap.ok + snap.err_total() + snap.live);
        assert_eq!(snap.rejected[2], 1);
        // Per-client rows add up to the totals.
        let c1 = snap.clients.iter().find(|c| c.conn == 1).unwrap();
        assert_eq!(c1.requests, 2);
        assert_eq!(c1.ok, 1);
        assert_eq!(c1.err[1], 1);
        assert_eq!(c1.queue_wait.count, 2);
        assert_eq!(snap.epoch_pins, vec![(0, 2)]);
    }

    #[test]
    fn ring_evicts_oldest_and_slow_log_is_parseable() {
        let dir = std::env::temp_dir().join(format!("igdb-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let rec = FlightRecorder::new(RecorderConfig {
            ring: 2,
            slow_ms: 1,
            slow_log: Some(path.clone()),
        })
        .unwrap();
        let t0 = Instant::now();
        for corr in 0..3 {
            rec.on_admit(7, 40);
            rec.on_done(completed(7, corr, 2), t0, (0, t0));
        }
        let traces = rec.traces();
        assert_eq!(traces.len(), 2, "ring capacity 2 keeps the newest 2");
        assert_eq!(traces[0].corr, 1);
        let snap = rec.snapshot();
        assert_eq!(snap.slow_count, 3);
        rec.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        // Three entries of three spans each, parent indices
        // file-absolute: roots at lines 0, 3 and 6.
        let parsed = igdb_obs::Registry::from_json_lines(&text).unwrap();
        let spans = parsed.spans();
        assert_eq!(spans.len(), 9);
        for (i, s) in spans.iter().enumerate() {
            match i % 3 {
                0 => {
                    assert!(s.name.starts_with("slow.sp_query conn=7"), "root: {}", s.name);
                    assert_eq!(s.parent, None);
                }
                _ => assert_eq!(s.parent, Some(i - i % 3), "child of its own root"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_lag_records_only_superseded_pins() {
        let rec = FlightRecorder::new(RecorderConfig::default()).unwrap();
        let t0 = Instant::now();
        rec.on_admit(1, 40);
        // Pinned epoch 0, released while epoch 1 is current → lag.
        let mut rt = completed(1, 1, 0);
        rt.epoch = 0;
        rec.on_done(rt, t0, (1, t0));
        let snap = rec.snapshot();
        assert_eq!(snap.epoch_lag.count, 1);
        // A pin on the newest epoch records no lag.
        rec.on_admit(1, 40);
        let mut rt = completed(1, 2, 0);
        rt.epoch = 1;
        rec.on_done(rt, t0, (1, t0));
        assert_eq!(rec.snapshot().epoch_lag.count, 1);
    }
}
