//! igdb-serve: a hardened query front end for the iGDB corpus.
//!
//! A std-only TCP / unix-socket server speaking a compact length-prefixed
//! binary protocol ([`proto`]), multiplexing client connections onto a
//! bounded worker pool over the shared [`igdb_core::Igdb`] corpus and its
//! corridor/CH caches. The robustness contract:
//!
//! - **Deadlines** ([`deadline`]): every request carries a monotonic
//!   budget, checked at analysis-loop safepoints; overruns become a typed
//!   `Timeout`, never a hang.
//! - **Backpressure** ([`server`]): a bounded admission queue; when full,
//!   requests shed with a typed `Overloaded { queue_depth }` answered by
//!   the connection reader — shedding never consumes worker capacity.
//! - **Panic containment**: each request executes under `catch_unwind`;
//!   a panicking analysis becomes a typed `Internal` and the worker,
//!   connection, and shared caches all survive.
//! - **Graceful drain**: in-flight requests finish, new ones are rejected
//!   with `ShuttingDown`, and the metrics registry is flushed.
//! - **Chaos harness** ([`chaos`]): seeded fault injection with a ledger
//!   asserting every fault maps to exactly one typed error and zero
//!   responses are lost.
//! - **Flight recorder** ([`recorder`]): a ring of completed request
//!   traces (request-scoped [`igdb_obs::TraceContext`] span trees), a
//!   slow-query log, per-client accounting and epoch-churn visibility,
//!   exposed live over the wire via the versioned `Introspect` op and
//!   `igdb top`.
//!
//! The [`client`] module holds the matching client plus the seeded
//! loadgen used by `igdb loadgen` and the sustained-load experiments.

pub mod chaos;
pub mod client;
pub mod deadline;
pub mod proto;
pub mod recorder;
pub mod server;

pub use chaos::{run_chaos, ChaosEnv, ChaosLedger, FaultClass, Observed};
pub use client::{run_loadgen, Client, ClientError, LoadgenConfig, LoadgenSummary};
pub use deadline::Deadline;
pub use proto::{Introspection, ProtoError, Request, Response, INTROSPECT_VERSION};
pub use recorder::{
    ClientRow, FlightRecorder, HistDigest, RecorderConfig, RecorderSnapshot, RequestTrace,
};
pub use server::{
    DrainReport, Listener, Server, ServerAddr, ServerConfig, Stream, KINDS,
};

/// One full in-process loadgen session: start a server over `igdb` on a
/// unix socket, drive the seeded loadgen against it with **one shared
/// registry** (so the server- and client-side telemetry land in a single
/// stream), drain, and hand everything back.
///
/// Both `igdb loadgen` (without `--addr`) and the golden-stream test run
/// through here, which is what makes the committed deterministic stream
/// and the CLI's output byte-comparable.
pub fn loadgen_session(
    igdb: std::sync::Arc<igdb_core::Igdb>,
    socket: &std::path::Path,
    server_cfg: ServerConfig,
    loadgen_cfg: &LoadgenConfig,
) -> std::io::Result<(LoadgenSummary, DrainReport, igdb_obs::Registry)> {
    let reg = igdb_obs::Registry::new();
    let listener = Listener::bind_unix(socket)?;
    let n_metros = igdb.metros.len();
    let server = Server::start(igdb, listener, server_cfg, reg.clone())?;
    let summary = run_loadgen(&server.addr(), n_metros, loadgen_cfg, &reg);
    let report = server.drain();
    Ok((summary, report, reg))
}
