//! Seeded serving-path chaos harness.
//!
//! The PR 2 discipline — seeded fault classes, a ledger, exact
//! accounting — applied to the server instead of the ingest pipeline.
//! Each [`FaultClass`] is one way a client or a query can misbehave;
//! [`run_chaos`] injects them in seeded shuffled order, interleaved with
//! clean probes on a long-lived control connection, and records what the
//! server actually did. The invariant under test:
//!
//! > every injected fault maps to **exactly one typed error** (or, for
//! > the disconnect class, to server-side accounting), the server never
//! > panics, hangs, or silently drops a response, and clean traffic
//! > keeps getting byte-identical answers throughout.
//!
//! `MidRequestDisconnect` is the one class with nothing to observe
//! client-side (we hung up). Its ledger entry is the server's
//! conservation law, checked by the caller after drain:
//! `Σ serve.requests{kind} == Σ serve.ok{kind} + Σ serve.err{name}` —
//! the response was still produced and accounted exactly once even when
//! its write went to a dead socket.

use std::io::Write as _;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use igdb_fault::ServeError;

use crate::client::Client;
use crate::proto::{read_frame, write_frame, FrameError, Request, Response, HEADER_LEN, MAGIC};
use crate::server::ServerAddr;

/// The seeded serving-fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// A frame header whose magic is not the protocol's.
    MalformedMagic,
    /// A well-formed frame with an opcode outside the protocol.
    UnknownOpcode,
    /// A frame whose payload ends before its claimed length.
    TruncatedFrame,
    /// A frame claiming a payload larger than the server's cap.
    OversizedFrame,
    /// Hang up after sending a valid request, before the response.
    MidRequestDisconnect,
    /// Stall mid-frame longer than the server's io timeout.
    SlowLoris,
    /// A query that panics inside the analysis.
    PanickingAnalysis,
    /// Requests whose deadline is far shorter than their work.
    DeadlineStorm,
    /// Fill every worker and the whole queue, then one more request.
    Saturation,
}

impl FaultClass {
    pub const ALL: [FaultClass; 9] = [
        FaultClass::MalformedMagic,
        FaultClass::UnknownOpcode,
        FaultClass::TruncatedFrame,
        FaultClass::OversizedFrame,
        FaultClass::MidRequestDisconnect,
        FaultClass::SlowLoris,
        FaultClass::PanickingAnalysis,
        FaultClass::DeadlineStorm,
        FaultClass::Saturation,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultClass::MalformedMagic => "malformed_magic",
            FaultClass::UnknownOpcode => "unknown_opcode",
            FaultClass::TruncatedFrame => "truncated_frame",
            FaultClass::OversizedFrame => "oversized_frame",
            FaultClass::MidRequestDisconnect => "mid_request_disconnect",
            FaultClass::SlowLoris => "slow_loris",
            FaultClass::PanickingAnalysis => "panicking_analysis",
            FaultClass::DeadlineStorm => "deadline_storm",
            FaultClass::Saturation => "saturation",
        }
    }

    /// The [`ServeError::name`] this class must map to; `None` for the
    /// disconnect class (server-side accounting instead).
    pub fn expected_error(self) -> Option<&'static str> {
        match self {
            FaultClass::MalformedMagic
            | FaultClass::UnknownOpcode
            | FaultClass::TruncatedFrame
            | FaultClass::OversizedFrame
            | FaultClass::SlowLoris => Some("bad_request"),
            FaultClass::MidRequestDisconnect => None,
            FaultClass::PanickingAnalysis => Some("internal"),
            FaultClass::DeadlineStorm => Some("timeout"),
            FaultClass::Saturation => Some("overloaded"),
        }
    }
}

/// What the harness needs to know about the server under test.
#[derive(Clone, Debug)]
pub struct ChaosEnv {
    pub addr: ServerAddr,
    /// The server's io timeout (slow-loris stalls must exceed it).
    pub io_timeout: Duration,
    pub workers: usize,
    pub queue_capacity: usize,
    /// Metro-id bound for valid probe queries.
    pub n_metros: usize,
}

impl ChaosEnv {
    /// Client socket timeout: comfortably past the server's stall cutoff
    /// so the typed error always arrives before the client gives up.
    fn client_timeout(&self) -> Duration {
        self.io_timeout + Duration::from_secs(2)
    }
}

/// What one injection observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observed {
    /// Exactly the expected typed error(s), nothing else.
    TypedError { name: &'static str, count: usize },
    /// Nothing client-side by construction (disconnect class).
    ServerSideOnly,
}

/// One ledger row.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    pub class: FaultClass,
    pub round: usize,
    /// `Ok` when the server met the class's contract; `Err` describes
    /// the violation.
    pub result: Result<Observed, String>,
}

/// The chaos run's ledger.
#[derive(Clone, Debug, Default)]
pub struct ChaosLedger {
    pub outcomes: Vec<ChaosOutcome>,
    /// Clean probes answered byte-identically between injections.
    pub clean_probes_ok: usize,
    /// Clean probes that failed (must be 0).
    pub clean_probes_failed: usize,
    /// `MidRequestDisconnect` injections (for the caller's conservation
    /// check against server counters).
    pub disconnects: usize,
}

impl ChaosLedger {
    /// Human-readable contract violations; empty means the matrix is
    /// green.
    pub fn failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .outcomes
            .iter()
            .filter_map(|o| {
                o.result.as_ref().err().map(|e| {
                    format!("round {} {}: {e}", o.round, o.class.name())
                })
            })
            .collect();
        if self.clean_probes_failed > 0 {
            out.push(format!(
                "{} of {} clean probes failed between injections",
                self.clean_probes_failed,
                self.clean_probes_failed + self.clean_probes_ok
            ));
        }
        out
    }
}

/// Runs `rounds` shuffled passes over every fault class, with a clean
/// probe after each injection.
pub fn run_chaos(env: &ChaosEnv, seed: u64, rounds: usize) -> ChaosLedger {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ledger = ChaosLedger::default();

    // The control connection stays open across all injections: faults on
    // *other* connections must never perturb it. Its reference answer is
    // the byte-level contract for every later probe.
    let mut control = Client::connect(&env.addr, env.client_timeout())
        .expect("chaos control connection");
    let reference = control
        .call(&Request::SpQuery { from: 0, to: (env.n_metros - 1) as u32 }, 0)
        .expect("chaos reference query");

    for round in 0..rounds {
        // Seeded Fisher–Yates over the class list.
        let mut order = FaultClass::ALL.to_vec();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for class in order {
            let result = inject(class, env, &mut rng);
            if class == FaultClass::MidRequestDisconnect {
                ledger.disconnects += 1;
            }
            ledger.outcomes.push(ChaosOutcome { class, round, result });
            // Clean probe: the control connection still gets the exact
            // reference answer, plus a queued liveness round trip.
            let probe_ok = control
                .call(&Request::SpQuery { from: 0, to: (env.n_metros - 1) as u32 }, 0)
                .map(|r| r == reference)
                .unwrap_or(false)
                && matches!(control.call(&Request::Ping, 0), Ok(Response::Pong));
            if probe_ok {
                ledger.clean_probes_ok += 1;
            } else {
                ledger.clean_probes_failed += 1;
            }
        }
    }
    ledger
}

/// Injects one fault and checks the class contract.
fn inject(class: FaultClass, env: &ChaosEnv, rng: &mut StdRng) -> Result<Observed, String> {
    match class {
        FaultClass::MalformedMagic => expect_reader_error(env, |stream, rng| {
            // A full header's worth of noise whose magic can't match.
            let mut junk = [0u8; HEADER_LEN];
            for b in junk.iter_mut() {
                *b = rng.gen_range(0..=255u32) as u8;
            }
            junk[0..4].copy_from_slice(&(!MAGIC).to_le_bytes());
            stream.write_all(&junk).map_err(|e| format!("inject write: {e}"))
        }, rng),
        FaultClass::UnknownOpcode => expect_reader_error(env, |stream, _| {
            write_frame(stream, 99, 0, 0x7F, &[]).map_err(|e| format!("inject write: {e}"))
        }, rng),
        FaultClass::TruncatedFrame => expect_reader_error(env, |stream, _| {
            // Claim 64 payload bytes, deliver 5, then half-close: the
            // server hits EOF mid-payload.
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC.to_le_bytes());
            buf.extend_from_slice(&7u64.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.push(0x02);
            buf.extend_from_slice(&64u32.to_le_bytes());
            buf.extend_from_slice(&[1, 2, 3, 4, 5]);
            stream.write_all(&buf).map_err(|e| format!("inject write: {e}"))?;
            stream.shutdown_write().map_err(|e| format!("half-close: {e}"))
        }, rng),
        FaultClass::OversizedFrame => expect_reader_error(env, |stream, _| {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC.to_le_bytes());
            buf.extend_from_slice(&8u64.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.push(0x02);
            buf.extend_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&buf).map_err(|e| format!("inject write: {e}"))
        }, rng),
        FaultClass::SlowLoris => expect_reader_error(env, |stream, _| {
            // Ten header bytes, then silence past the server's cutoff.
            stream
                .write_all(&MAGIC.to_le_bytes())
                .and_then(|_| stream.write_all(&[0u8; 6]))
                .map_err(|e| format!("inject write: {e}"))?;
            std::thread::sleep(env.io_timeout + Duration::from_millis(300));
            Ok(())
        }, rng),
        FaultClass::MidRequestDisconnect => {
            let mut client = Client::connect(&env.addr, env.client_timeout())
                .map_err(|e| format!("connect: {e}"))?;
            client
                .send(&Request::Sleep { ms: 30 }, 2_000)
                .map_err(|e| format!("send: {e}"))?;
            // Give the reader a beat to admit it, then vanish.
            std::thread::sleep(Duration::from_millis(5));
            let _ = client.stream().shutdown();
            drop(client);
            Ok(Observed::ServerSideOnly)
        }
        FaultClass::PanickingAnalysis => {
            let mut client = Client::connect(&env.addr, env.client_timeout())
                .map_err(|e| format!("connect: {e}"))?;
            match client.call(&Request::Panic, 0) {
                Ok(Response::Error(ServeError::Internal { detail })) => {
                    if !detail.contains("injected analysis panic") {
                        return Err(format!("unexpected panic detail: {detail:?}"));
                    }
                }
                other => return Err(format!("expected Internal, got {other:?}")),
            }
            // Containment proof: the same connection, worker pool, and
            // shared caches still answer a real query correctly.
            match client.call(
                &Request::SpQuery { from: 0, to: (env.n_metros - 1) as u32 },
                0,
            ) {
                Ok(Response::Path { .. }) | Ok(Response::NoRoute) => {}
                other => {
                    return Err(format!("connection dead after contained panic: {other:?}"))
                }
            }
            Ok(Observed::TypedError { name: "internal", count: 1 })
        }
        FaultClass::DeadlineStorm => {
            let mut client = Client::connect(&env.addr, env.client_timeout())
                .map_err(|e| format!("connect: {e}"))?;
            // Three pipelined requests whose work (500 ms) dwarfs their
            // budget (40 ms): each must expire at a safepoint into its
            // own typed Timeout — three faults, three errors, no hang.
            const STORM: usize = 3;
            for _ in 0..STORM {
                client
                    .send(&Request::Sleep { ms: 500 }, 40)
                    .map_err(|e| format!("send: {e}"))?;
            }
            let mut timeouts = 0;
            for _ in 0..STORM {
                match client.recv() {
                    Ok((_, Response::Error(ServeError::Timeout { budget_ms }))) => {
                        if budget_ms != 40 {
                            return Err(format!("timeout echoed budget {budget_ms}, sent 40"));
                        }
                        timeouts += 1;
                    }
                    other => return Err(format!("expected Timeout, got {other:?}")),
                }
            }
            Ok(Observed::TypedError { name: "timeout", count: timeouts })
        }
        FaultClass::Saturation => saturate(env),
    }
}

/// Raw-socket fault classes: perform the injection, then require exactly
/// one `BadRequest` followed by connection close.
fn expect_reader_error(
    env: &ChaosEnv,
    inject: impl FnOnce(&mut crate::server::Stream, &mut StdRng) -> Result<(), String>,
    rng: &mut StdRng,
) -> Result<Observed, String> {
    let mut stream = env.addr.connect().map_err(|e| format!("connect: {e}"))?;
    stream
        .set_timeouts(Some(env.client_timeout()))
        .map_err(|e| format!("timeouts: {e}"))?;
    inject(&mut stream, rng)?;
    // Exactly one typed error…
    match read_frame(&mut stream, crate::proto::DEFAULT_MAX_FRAME) {
        Ok(frame) => match Response::decode(frame.op, &frame.payload) {
            Ok(Response::Error(ServeError::BadRequest { .. })) => {}
            Ok(other) => return Err(format!("expected BadRequest, got {other:?}")),
            Err(e) => return Err(format!("undecodable response: {e}")),
        },
        Err(e) => return Err(format!("no typed error before close: {e:?}")),
    }
    // …then the connection closes (the stream can't be trusted further).
    match read_frame(&mut stream, crate::proto::DEFAULT_MAX_FRAME) {
        Err(FrameError::CleanEof) | Err(FrameError::Io(_)) => {}
        Ok(f) => return Err(format!("server kept talking after bad frame: {f:?}")),
        Err(FrameError::IdleTimeout) => {
            return Err("connection left open after bad frame".into())
        }
        Err(FrameError::Proto(e)) => return Err(format!("garbage after error: {e}")),
    }
    Ok(Observed::TypedError { name: "bad_request", count: 1 })
}

/// Saturation: occupy every worker and every queue slot with slow
/// requests, confirm the state via inline `Stats`, then require one
/// probe to shed with `Overloaded{queue_depth == capacity}` — and the
/// occupiers to all still finish.
///
/// The fill is **phased**: first the workers (wait until all are busy),
/// then the queue (wait until it is full). Blind pipelining would race —
/// a job sits in the queue for a moment before a free worker pops it, so
/// a burst of `workers + capacity` sends can shed spuriously.
fn saturate(env: &ChaosEnv) -> Result<Observed, String> {
    let occupancy = env.workers + env.queue_capacity;
    let mut occupier = Client::connect(&env.addr, env.client_timeout() + Duration::from_secs(5))
        .map_err(|e| format!("connect occupier: {e}"))?;
    let mut control = Client::connect(&env.addr, env.client_timeout())
        .map_err(|e| format!("connect control: {e}"))?;
    // Stats bypasses the queue, so the control connection answers even
    // with the server saturated.
    let mut wait_for = |what: &str, pred: &dyn Fn(u32, u32) -> bool| -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match control.call(&Request::Stats, 0) {
                Ok(Response::Stats { queue_depth, busy_workers, .. }) => {
                    if pred(busy_workers, queue_depth) {
                        return Ok(());
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "{what} never reached (busy {busy_workers}, depth {queue_depth})"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => return Err(format!("stats failed during saturation: {other:?}")),
            }
        }
    };
    // A previous fault can leave an orphaned request still executing (a
    // disconnected client's sleep, say) — start from a quiescent pool so
    // the occupancy arithmetic below is exact.
    wait_for("idle server before saturation", &|busy, depth| busy == 0 && depth == 0)?;
    // One at a time: a pipelined burst of `workers` sleeps passes
    // *through* the queue, and when `workers > capacity` the transit
    // alone overflows it and sheds an occupier. `depth == 0` confirms
    // each sleep was popped by a worker, not parked in the queue.
    for i in 0..env.workers {
        occupier
            .send(&Request::Sleep { ms: 600 }, 10_000)
            .map_err(|e| format!("send worker occupier: {e}"))?;
        wait_for("worker occupancy", &move |busy, depth| busy as usize > i && depth == 0)?;
    }
    for _ in 0..env.queue_capacity {
        occupier
            .send(&Request::Sleep { ms: 600 }, 10_000)
            .map_err(|e| format!("send queue occupier: {e}"))?;
    }
    wait_for("queue fill", &|_, depth| depth as usize == env.queue_capacity)?;
    // The probe must shed, typed, with the observed depth.
    let mut probe = Client::connect(&env.addr, env.client_timeout())
        .map_err(|e| format!("connect probe: {e}"))?;
    match probe.call(&Request::SpQuery { from: 0, to: 1 }, 0) {
        Ok(Response::Error(ServeError::Overloaded { queue_depth })) => {
            if queue_depth as usize != env.queue_capacity {
                return Err(format!(
                    "shed at depth {queue_depth}, capacity is {}",
                    env.queue_capacity
                ));
            }
        }
        other => return Err(format!("expected Overloaded, got {other:?}")),
    }
    // Backpressure, not collapse: every occupier still completes.
    for i in 0..occupancy {
        match occupier.recv() {
            Ok((_, Response::Slept)) => {}
            other => return Err(format!("occupier {i} lost under saturation: {other:?}")),
        }
    }
    Ok(Observed::TypedError { name: "overloaded", count: 1 })
}
