//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message — request or response — travels in one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x42444769 ("iGDB" little-endian)
//!      4     8  id           correlation id, echoed on the response
//!     12     4  deadline_ms  requests: per-request budget (0 = server
//!                            default); responses: always 0
//!     16     1  op           opcode (requests) / tag (responses)
//!     17     4  len          payload length in bytes
//!     21   len  payload      opcode-specific little-endian fields
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns in a
//! `u64`. The frame is self-delimiting, so a reader always knows whether
//! it is desynchronized: a bad magic, an oversized `len`, or bytes left
//! over after decoding are each a typed [`ProtoError`], which the server
//! answers with a [`ServeError::BadRequest`] before closing the
//! connection (a desynchronized stream cannot be trusted further).
//!
//! The error taxonomy on the wire is exactly [`ServeError`]: tag
//! [`TAG_ERROR`] carries the one-byte [`ServeError::code`], a `u64`
//! auxiliary (deadline budget or queue depth), and a detail string.

use std::io::{Read, Write};

use igdb_fault::ServeError;

use crate::recorder::{ClientRow, HistDigest, RecorderSnapshot};

/// `"iGDB"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"iGDB");

/// Fixed frame-header size (magic + id + deadline + op + len).
pub const HEADER_LEN: usize = 21;

/// Default cap on payload length; a frame claiming more is refused
/// without allocating.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Response tag carrying a [`ServeError`].
pub const TAG_ERROR: u8 = 0xE0;

/// A request the server can execute.
///
/// `Sleep` and `Panic` are chaos-harness instruments: they only decode
/// when the server was started with `enable_test_ops` (production
/// configurations answer them with `BadRequest`). `Stats` is a control
/// op answered inline by the connection reader — it bypasses the request
/// queue so the chaos harness can observe saturation while every worker
/// is busy.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe through the full queue/worker path.
    Ping,
    /// One shortest-path query over the physical graph.
    SpQuery { from: u32, to: u32 },
    /// A batch of shortest-path queries; the deadline is checked between
    /// pairs (the analysis-loop safepoint).
    SpBatch { pairs: Vec<(u32, u32)> },
    /// Hazard-region exposure (§4.4) over an axis-aligned bounding box.
    RiskExposure { west: f64, south: f64, east: f64, north: f64 },
    /// Country-presence footprint (§4.5, Table 2).
    Footprint { top_n: u16 },
    /// Test op: hold a worker for `ms`, checking the deadline every
    /// millisecond.
    Sleep { ms: u32 },
    /// Test op: panic inside the analysis (exercises containment).
    Panic,
    /// Control op: server stats, answered inline by the reader.
    Stats,
    /// Control op: full live introspection (flight-recorder snapshot,
    /// per-client table, registry counters), answered inline by the
    /// reader with a *versioned* payload — see [`Introspection`].
    Introspect,
}

impl Request {
    /// Stable opcode.
    pub fn op(&self) -> u8 {
        match self {
            Request::Ping => 0x01,
            Request::SpQuery { .. } => 0x02,
            Request::SpBatch { .. } => 0x03,
            Request::RiskExposure { .. } => 0x04,
            Request::Footprint { .. } => 0x05,
            Request::Sleep { .. } => 0x06,
            Request::Panic => 0x07,
            Request::Stats => 0x08,
            Request::Introspect => 0x09,
        }
    }

    /// Metric label for this request kind (`serve.requests{kind}`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::SpQuery { .. } => "sp_query",
            Request::SpBatch { .. } => "sp_batch",
            Request::RiskExposure { .. } => "risk",
            Request::Footprint { .. } => "footprint",
            Request::Sleep { .. } => "sleep",
            Request::Panic => "panic",
            Request::Stats => "stats",
            Request::Introspect => "introspect",
        }
    }

    /// Serializes the payload (everything after the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping | Request::Panic | Request::Stats | Request::Introspect => {}
            Request::SpQuery { from, to } => {
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&to.to_le_bytes());
            }
            Request::SpBatch { pairs } => {
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(a, b) in pairs {
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
            Request::RiskExposure { west, south, east, north } => {
                for v in [west, south, east, north] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Request::Footprint { top_n } => out.extend_from_slice(&top_n.to_le_bytes()),
            Request::Sleep { ms } => out.extend_from_slice(&ms.to_le_bytes()),
        }
        out
    }

    /// Decodes a request payload for `op`. Rejects trailing bytes: a
    /// frame that decodes but is longer than its opcode allows is a
    /// desynchronization signal, not padding.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cur::new(payload);
        let req = match op {
            0x01 => Request::Ping,
            0x02 => Request::SpQuery { from: c.u32()?, to: c.u32()? },
            0x03 => {
                let n = c.u32()? as usize;
                // Bound before allocating: the count must be consistent
                // with the bytes actually present.
                if payload.len().saturating_sub(4) != n * 8 {
                    return Err(ProtoError::BadValue {
                        what: "sp_batch pair count disagrees with payload length",
                    });
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((c.u32()?, c.u32()?));
                }
                Request::SpBatch { pairs }
            }
            0x04 => Request::RiskExposure {
                west: c.f64()?,
                south: c.f64()?,
                east: c.f64()?,
                north: c.f64()?,
            },
            0x05 => Request::Footprint { top_n: c.u16()? },
            0x06 => Request::Sleep { ms: c.u32()? },
            0x07 => Request::Panic,
            0x08 => Request::Stats,
            0x09 => Request::Introspect,
            other => return Err(ProtoError::UnknownOpcode { op: other }),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A typed response. Exactly one is produced for every admitted request,
/// and exactly one `Error` for every refused or failed one — the chaos
/// ledger's conservation law.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Pong,
    /// A route exists: hop count and length.
    Path { hops: u32, km: f64 },
    /// No route between the endpoints (a result, not an error).
    NoRoute,
    /// Batch summary: routed pairs, unreachable pairs, total km routed.
    Batch { routed: u32, unreachable: u32, total_km: f64 },
    Risk { paths: u32, cables: u32, metros: u32, ases: u32 },
    Footprint { rows: u32 },
    Slept,
    Stats {
        n_metros: u32,
        queue_depth: u32,
        queue_capacity: u32,
        busy_workers: u32,
        draining: bool,
    },
    /// Live introspection snapshot; payload is versioned (see
    /// [`Introspection`]).
    Introspect(Introspection),
    Error(ServeError),
}

/// The `Introspect` response body: everything `igdb top` renders.
///
/// The wire payload leads with a one-byte version ([`INTROSPECT_VERSION`]);
/// a decoder seeing a version it does not understand refuses the whole
/// payload with a typed [`ProtoError::BadValue`] instead of guessing at
/// field offsets — the schema can evolve without silently misreading old
/// clients.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Introspection {
    /// Currently published epoch number.
    pub epoch: u64,
    /// Microseconds since the server started.
    pub uptime_us: u64,
    pub workers: u32,
    pub busy_workers: u32,
    pub queue_depth: u32,
    pub queue_capacity: u32,
    pub draining: bool,
    /// Flight-recorder view: exact ledger, ring/slow summary, per-client
    /// table, epoch-pin distribution.
    pub recorder: RecorderSnapshot,
    /// The registry's deterministic counter snapshot
    /// (`name{label} value` lines) — reading it over the wire must not
    /// perturb the gated stream.
    pub counters: String,
}

/// Current version of the [`Introspection`] wire payload.
pub const INTROSPECT_VERSION: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_digest(out: &mut Vec<u8>, d: &HistDigest) {
    for v in [d.count, d.p50_us, d.p99_us, d.max_us] {
        put_u64(out, v);
    }
}

fn get_digest(c: &mut Cur<'_>) -> Result<HistDigest, ProtoError> {
    Ok(HistDigest {
        count: c.u64()?,
        p50_us: c.u64()?,
        p99_us: c.u64()?,
        max_us: c.u64()?,
    })
}

impl Introspection {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(INTROSPECT_VERSION);
        put_u64(out, self.epoch);
        put_u64(out, self.uptime_us);
        for v in [self.workers, self.busy_workers, self.queue_depth, self.queue_capacity] {
            put_u32(out, v);
        }
        out.push(self.draining as u8);
        let r = &self.recorder;
        put_u64(out, r.requests);
        put_u64(out, r.ok);
        for v in r.err {
            put_u64(out, v);
        }
        put_u64(out, r.live);
        for v in r.rejected {
            put_u64(out, v);
        }
        put_u64(out, r.bytes_in);
        put_u64(out, r.bytes_out);
        put_u32(out, r.ring_len);
        put_u32(out, r.ring_cap);
        put_u64(out, r.slow_count);
        put_u64(out, r.slow_ms);
        put_u32(out, r.clients.len() as u32);
        for row in &r.clients {
            put_u64(out, row.conn);
            put_u64(out, row.requests);
            put_u64(out, row.ok);
            for v in row.err {
                put_u64(out, v);
            }
            for v in row.rejected {
                put_u64(out, v);
            }
            put_u64(out, row.bytes_in);
            put_u64(out, row.bytes_out);
            put_digest(out, &row.queue_wait);
        }
        put_u32(out, r.epoch_pins.len() as u32);
        for &(e, n) in &r.epoch_pins {
            put_u64(out, e);
            put_u64(out, n);
        }
        put_u64(out, r.pins_evicted);
        put_digest(out, &r.epoch_lag);
        put_u32(out, self.counters.len() as u32);
        out.extend_from_slice(self.counters.as_bytes());
    }

    fn decode_from(c: &mut Cur<'_>) -> Result<Self, ProtoError> {
        let version = c.u8()?;
        if version != INTROSPECT_VERSION {
            return Err(ProtoError::BadValue {
                what: "unsupported introspection payload version",
            });
        }
        let epoch = c.u64()?;
        let uptime_us = c.u64()?;
        let workers = c.u32()?;
        let busy_workers = c.u32()?;
        let queue_depth = c.u32()?;
        let queue_capacity = c.u32()?;
        let draining = c.u8()? != 0;
        let mut r = RecorderSnapshot {
            requests: c.u64()?,
            ok: c.u64()?,
            ..Default::default()
        };
        for v in r.err.iter_mut() {
            *v = c.u64()?;
        }
        r.live = c.u64()?;
        for v in r.rejected.iter_mut() {
            *v = c.u64()?;
        }
        r.bytes_in = c.u64()?;
        r.bytes_out = c.u64()?;
        r.ring_len = c.u32()?;
        r.ring_cap = c.u32()?;
        r.slow_count = c.u64()?;
        r.slow_ms = c.u64()?;
        let n_clients = c.u32()? as usize;
        // Bound before allocating (a client row is at least 15 u64s plus
        // the queue-wait digest on the wire).
        if n_clients > c.remaining() / (19 * 8) {
            return Err(ProtoError::BadValue {
                what: "client-table count disagrees with payload length",
            });
        }
        let mut clients = Vec::with_capacity(n_clients);
        for _ in 0..n_clients {
            let mut row = ClientRow {
                conn: c.u64()?,
                requests: c.u64()?,
                ok: c.u64()?,
                ..Default::default()
            };
            for v in row.err.iter_mut() {
                *v = c.u64()?;
            }
            for v in row.rejected.iter_mut() {
                *v = c.u64()?;
            }
            row.bytes_in = c.u64()?;
            row.bytes_out = c.u64()?;
            row.queue_wait = get_digest(c)?;
            clients.push(row);
        }
        r.clients = clients;
        let n_pins = c.u32()? as usize;
        if n_pins > c.remaining() / 16 {
            return Err(ProtoError::BadValue {
                what: "epoch-pin count disagrees with payload length",
            });
        }
        let mut pins = Vec::with_capacity(n_pins);
        for _ in 0..n_pins {
            pins.push((c.u64()?, c.u64()?));
        }
        r.epoch_pins = pins;
        r.pins_evicted = c.u64()?;
        r.epoch_lag = get_digest(c)?;
        let len = c.u32()? as usize;
        let counters = String::from_utf8_lossy(c.bytes(len)?).into_owned();
        Ok(Introspection {
            epoch,
            uptime_us,
            workers,
            busy_workers,
            queue_depth,
            queue_capacity,
            draining,
            recorder: r,
            counters,
        })
    }
}

impl Response {
    /// Stable response tag.
    pub fn tag(&self) -> u8 {
        match self {
            Response::Pong => 0x81,
            Response::Path { .. } => 0x82,
            Response::NoRoute => 0x83,
            Response::Batch { .. } => 0x84,
            Response::Risk { .. } => 0x85,
            Response::Footprint { .. } => 0x86,
            Response::Slept => 0x87,
            Response::Stats { .. } => 0x88,
            Response::Introspect(_) => 0x89,
            Response::Error(_) => TAG_ERROR,
        }
    }

    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong | Response::NoRoute | Response::Slept => {}
            Response::Path { hops, km } => {
                out.extend_from_slice(&hops.to_le_bytes());
                out.extend_from_slice(&km.to_bits().to_le_bytes());
            }
            Response::Batch { routed, unreachable, total_km } => {
                out.extend_from_slice(&routed.to_le_bytes());
                out.extend_from_slice(&unreachable.to_le_bytes());
                out.extend_from_slice(&total_km.to_bits().to_le_bytes());
            }
            Response::Risk { paths, cables, metros, ases } => {
                for v in [paths, cables, metros, ases] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Footprint { rows } => out.extend_from_slice(&rows.to_le_bytes()),
            Response::Stats { n_metros, queue_depth, queue_capacity, busy_workers, draining } => {
                for v in [n_metros, queue_depth, queue_capacity, busy_workers] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.push(*draining as u8);
            }
            Response::Introspect(i) => i.encode_into(&mut out),
            Response::Error(e) => {
                out.push(e.code());
                let (aux, detail): (u64, &str) = match e {
                    ServeError::BadRequest { detail } => (0, detail),
                    ServeError::Timeout { budget_ms } => (*budget_ms, ""),
                    ServeError::Overloaded { queue_depth } => (*queue_depth as u64, ""),
                    ServeError::Internal { detail } => (0, detail),
                    ServeError::ShuttingDown => (0, ""),
                };
                out.extend_from_slice(&aux.to_le_bytes());
                out.extend_from_slice(&(detail.len() as u32).to_le_bytes());
                out.extend_from_slice(detail.as_bytes());
            }
        }
        out
    }

    pub fn decode(tag: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cur::new(payload);
        let resp = match tag {
            0x81 => Response::Pong,
            0x82 => Response::Path { hops: c.u32()?, km: c.f64()? },
            0x83 => Response::NoRoute,
            0x84 => Response::Batch {
                routed: c.u32()?,
                unreachable: c.u32()?,
                total_km: c.f64()?,
            },
            0x85 => Response::Risk {
                paths: c.u32()?,
                cables: c.u32()?,
                metros: c.u32()?,
                ases: c.u32()?,
            },
            0x86 => Response::Footprint { rows: c.u32()? },
            0x87 => Response::Slept,
            0x88 => Response::Stats {
                n_metros: c.u32()?,
                queue_depth: c.u32()?,
                queue_capacity: c.u32()?,
                busy_workers: c.u32()?,
                draining: c.u8()? != 0,
            },
            0x89 => Response::Introspect(Introspection::decode_from(&mut c)?),
            TAG_ERROR => {
                let code = c.u8()?;
                let aux = c.u64()?;
                let len = c.u32()? as usize;
                let detail = String::from_utf8_lossy(c.bytes(len)?).into_owned();
                Response::Error(match code {
                    1 => ServeError::BadRequest { detail },
                    2 => ServeError::Timeout { budget_ms: aux },
                    3 => ServeError::Overloaded { queue_depth: aux as u32 },
                    4 => ServeError::Internal { detail },
                    5 => ServeError::ShuttingDown,
                    _ => return Err(ProtoError::BadValue { what: "unknown error code" }),
                })
            }
            other => return Err(ProtoError::UnknownOpcode { op: other }),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// A decode-level failure: the bytes did not form a valid frame or
/// payload. The server maps each to a [`ServeError::BadRequest`] with the
/// `Display` text as detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream is not speaking this protocol (or is desynchronized).
    BadMagic { got: u32 },
    /// Claimed payload length exceeds the configured cap.
    FrameTooLarge { len: u32, max: u32 },
    /// Payload ended before the opcode's fields did.
    Truncated { what: &'static str },
    /// Opcode/tag outside the protocol.
    UnknownOpcode { op: u8 },
    /// Payload longer than the opcode's fields.
    TrailingBytes { extra: usize },
    /// A field decoded but its value is inconsistent.
    BadValue { what: &'static str },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic { got } => write!(f, "bad frame magic 0x{got:08x}"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Truncated { what } => write!(f, "truncated {what}"),
            ProtoError::UnknownOpcode { op } => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            ProtoError::BadValue { what } => f.write_str(what),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One frame off the wire, not yet decoded past the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub id: u64,
    pub deadline_ms: u32,
    pub op: u8,
    pub payload: Vec<u8>,
}

/// Why [`read_frame`] stopped.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly between frames.
    CleanEof,
    /// The read timeout fired *between* frames: the peer is idle, not
    /// misbehaving. Callers typically retry (it doubles as a periodic
    /// drain-flag check).
    IdleTimeout,
    /// The bytes violated the protocol (magic/size); connection must
    /// close after one typed error.
    Proto(ProtoError),
    /// Transport failure — includes read timeouts *inside* a frame (a
    /// stalled peer mid-frame: the slow-loris case).
    Io(std::io::Error),
}

impl FrameError {
    /// Whether this is a read timeout (slow-loris / stalled peer).
    pub fn is_stall(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Writes one frame. The payload is assembled first so the header's
/// `len` is always consistent, then written in a single `write_all` —
/// the writer side is never a source of torn frames.
pub fn write_frame(
    w: &mut impl Write,
    id: u64,
    deadline_ms: u32,
    op: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.push(op);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, distinguishing a clean EOF *between* frames (normal
/// hangup) from a truncation *inside* one (a protocol violation).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: EOF here is a clean close and a timeout is
    // mere idleness — only *inside* a frame do they become protocol or
    // stall errors.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::CleanEof),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(FrameError::IdleTimeout)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    header[0] = first[0];
    if let Err(e) = r.read_exact(&mut header[1..]) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Proto(ProtoError::Truncated { what: "frame header" })
        } else {
            FrameError::Io(e)
        });
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::Proto(ProtoError::BadMagic { got: magic }));
    }
    let id = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let deadline_ms = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let op = header[16];
    let len = u32::from_le_bytes(header[17..21].try_into().unwrap());
    if len > max_frame {
        return Err(FrameError::Proto(ProtoError::FrameTooLarge { len, max: max_frame }));
    }
    let mut payload = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Proto(ProtoError::Truncated { what: "frame payload" })
        } else {
            FrameError::Io(e)
        });
    }
    Ok(Frame { id, deadline_ms, op, payload })
}

/// Little-endian field cursor over a payload slice.
struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, off: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or(ProtoError::Truncated { what: "payload field" })?;
        let s = &self.b[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Bytes not yet consumed (length-prefix sanity bounds).
    fn remaining(&self) -> usize {
        self.b.len() - self.off
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.off == self.b.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes { extra: self.b.len() - self.off })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = req.encode_payload();
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, 250, req.op(), &payload).unwrap();
        let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame.id, 7);
        assert_eq!(frame.deadline_ms, 250);
        assert_eq!(Request::decode(frame.op, &frame.payload).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::SpQuery { from: 3, to: 900 });
        roundtrip_request(Request::SpBatch { pairs: vec![(0, 1), (5, 2), (7, 7)] });
        roundtrip_request(Request::RiskExposure {
            west: -98.0,
            south: 27.0,
            east: -88.0,
            north: 31.5,
        });
        roundtrip_request(Request::Footprint { top_n: 11 });
        roundtrip_request(Request::Sleep { ms: 40 });
        roundtrip_request(Request::Panic);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Introspect);
    }

    #[test]
    fn responses_roundtrip() {
        let all = [
            Response::Pong,
            Response::Path { hops: 4, km: 1234.5 },
            Response::NoRoute,
            Response::Batch { routed: 10, unreachable: 2, total_km: 99.25 },
            Response::Risk { paths: 1, cables: 2, metros: 3, ases: 4 },
            Response::Footprint { rows: 11 },
            Response::Slept,
            Response::Stats {
                n_metros: 40,
                queue_depth: 3,
                queue_capacity: 8,
                busy_workers: 2,
                draining: true,
            },
            Response::Error(ServeError::BadRequest { detail: "bad\nfield".into() }),
            Response::Error(ServeError::Timeout { budget_ms: 250 }),
            Response::Error(ServeError::Overloaded { queue_depth: 8 }),
            Response::Error(ServeError::Internal { detail: "panicked".into() }),
            Response::Error(ServeError::ShuttingDown),
        ];
        for resp in all {
            let payload = resp.encode_payload();
            assert_eq!(Response::decode(resp.tag(), &payload).unwrap(), resp);
        }
    }

    fn sample_introspection() -> Introspection {
        Introspection {
            epoch: 3,
            uptime_us: 1_234_567,
            workers: 4,
            busy_workers: 2,
            queue_depth: 1,
            queue_capacity: 64,
            draining: false,
            recorder: RecorderSnapshot {
                requests: 100,
                ok: 90,
                err: [0, 7, 0, 2, 0],
                live: 1,
                rejected: [1, 0, 5, 0, 0],
                bytes_in: 4200,
                bytes_out: 9001,
                ring_len: 100,
                ring_cap: 256,
                slow_count: 3,
                slow_ms: 50,
                clients: vec![
                    ClientRow {
                        conn: 1,
                        requests: 60,
                        ok: 55,
                        err: [0, 5, 0, 0, 0],
                        rejected: [0, 0, 3, 0, 0],
                        bytes_in: 2520,
                        bytes_out: 5000,
                        queue_wait: HistDigest { count: 60, p50_us: 40, p99_us: 900, max_us: 1500 },
                    },
                    ClientRow { conn: 2, requests: 40, ok: 35, ..Default::default() },
                ],
                epoch_pins: vec![(2, 30), (3, 70)],
                pins_evicted: 12,
                epoch_lag: HistDigest { count: 30, p50_us: 100, p99_us: 4000, max_us: 9000 },
            },
            counters: "serve.ok{ping} 32\nserve.ok{sp_query} 152\n".to_string(),
        }
    }

    #[test]
    fn introspection_roundtrips_versioned() {
        let resp = Response::Introspect(sample_introspection());
        let payload = resp.encode_payload();
        assert_eq!(payload[0], INTROSPECT_VERSION, "payload leads with the version");
        assert_eq!(Response::decode(resp.tag(), &payload).unwrap(), resp);
        // An all-defaults snapshot (fresh server) round-trips too.
        let empty = Response::Introspect(Introspection::default());
        assert_eq!(
            Response::decode(0x89, &empty.encode_payload()).unwrap(),
            empty
        );
    }

    #[test]
    fn unknown_introspection_version_is_refused_typed() {
        let mut payload = Response::Introspect(sample_introspection()).encode_payload();
        payload[0] = INTROSPECT_VERSION + 1;
        match Response::decode(0x89, &payload) {
            Err(ProtoError::BadValue { what }) => {
                assert!(what.contains("version"), "got: {what}")
            }
            other => panic!("expected a typed version refusal, got {other:?}"),
        }
        // A count field inconsistent with the bytes present is refused
        // before allocation, like SpBatch.
        let mut payload = Response::Introspect(sample_introspection()).encode_payload();
        let clients_off = 1 + 8 + 8 + 16 + 1 // version..draining
            + 8 * (1 + 1 + 5 + 1 + 5 + 1 + 1) // ledger
            + 4 + 4 + 8 + 8; // ring summary
        payload[clients_off..clients_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(0x89, &payload),
            Err(ProtoError::BadValue { .. })
        ));
    }

    #[test]
    fn bad_magic_oversize_truncation_and_trailing_are_typed() {
        // Garbage magic.
        let mut wire = vec![0xDE, 0xAD, 0xBE, 0xEF];
        wire.extend_from_slice(&[0u8; HEADER_LEN - 4]);
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::BadMagic { got })) => {
                assert_eq!(got, 0xEFBEADDE)
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }

        // Oversized claimed length: refused before allocation.
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 0, 0x01, &[]).unwrap();
        wire[17..21].copy_from_slice(&(DEFAULT_MAX_FRAME + 1).to_le_bytes());
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::FrameTooLarge { len, .. })) => {
                assert_eq!(len, DEFAULT_MAX_FRAME + 1)
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }

        // Header truncated mid-way.
        let wire = MAGIC.to_le_bytes();
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::Truncated { what })) => {
                assert_eq!(what, "frame header")
            }
            other => panic!("expected Truncated header, got {other:?}"),
        }

        // Payload shorter than claimed.
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 0, 0x02, &[0u8; 8]).unwrap();
        wire.truncate(wire.len() - 3);
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::Truncated { what })) => {
                assert_eq!(what, "frame payload")
            }
            other => panic!("expected Truncated payload, got {other:?}"),
        }

        // Clean EOF between frames is not an error class.
        match read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::CleanEof) => {}
            other => panic!("expected CleanEof, got {other:?}"),
        }

        // Trailing payload bytes are a desync signal.
        let mut payload = Request::SpQuery { from: 1, to: 2 }.encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode(0x02, &payload),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );

        // Unknown opcode.
        assert_eq!(Request::decode(0x7F, &[]), Err(ProtoError::UnknownOpcode { op: 0x7F }));

        // Batch count inconsistent with its bytes (never over-allocates).
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Request::decode(0x03, &payload),
            Err(ProtoError::BadValue { .. })
        ));
    }
}
