//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message — request or response — travels in one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x42444769 ("iGDB" little-endian)
//!      4     8  id           correlation id, echoed on the response
//!     12     4  deadline_ms  requests: per-request budget (0 = server
//!                            default); responses: always 0
//!     16     1  op           opcode (requests) / tag (responses)
//!     17     4  len          payload length in bytes
//!     21   len  payload      opcode-specific little-endian fields
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns in a
//! `u64`. The frame is self-delimiting, so a reader always knows whether
//! it is desynchronized: a bad magic, an oversized `len`, or bytes left
//! over after decoding are each a typed [`ProtoError`], which the server
//! answers with a [`ServeError::BadRequest`] before closing the
//! connection (a desynchronized stream cannot be trusted further).
//!
//! The error taxonomy on the wire is exactly [`ServeError`]: tag
//! [`TAG_ERROR`] carries the one-byte [`ServeError::code`], a `u64`
//! auxiliary (deadline budget or queue depth), and a detail string.

use std::io::{Read, Write};

use igdb_fault::ServeError;

/// `"iGDB"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"iGDB");

/// Fixed frame-header size (magic + id + deadline + op + len).
pub const HEADER_LEN: usize = 21;

/// Default cap on payload length; a frame claiming more is refused
/// without allocating.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Response tag carrying a [`ServeError`].
pub const TAG_ERROR: u8 = 0xE0;

/// A request the server can execute.
///
/// `Sleep` and `Panic` are chaos-harness instruments: they only decode
/// when the server was started with `enable_test_ops` (production
/// configurations answer them with `BadRequest`). `Stats` is a control
/// op answered inline by the connection reader — it bypasses the request
/// queue so the chaos harness can observe saturation while every worker
/// is busy.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe through the full queue/worker path.
    Ping,
    /// One shortest-path query over the physical graph.
    SpQuery { from: u32, to: u32 },
    /// A batch of shortest-path queries; the deadline is checked between
    /// pairs (the analysis-loop safepoint).
    SpBatch { pairs: Vec<(u32, u32)> },
    /// Hazard-region exposure (§4.4) over an axis-aligned bounding box.
    RiskExposure { west: f64, south: f64, east: f64, north: f64 },
    /// Country-presence footprint (§4.5, Table 2).
    Footprint { top_n: u16 },
    /// Test op: hold a worker for `ms`, checking the deadline every
    /// millisecond.
    Sleep { ms: u32 },
    /// Test op: panic inside the analysis (exercises containment).
    Panic,
    /// Control op: server stats, answered inline by the reader.
    Stats,
}

impl Request {
    /// Stable opcode.
    pub fn op(&self) -> u8 {
        match self {
            Request::Ping => 0x01,
            Request::SpQuery { .. } => 0x02,
            Request::SpBatch { .. } => 0x03,
            Request::RiskExposure { .. } => 0x04,
            Request::Footprint { .. } => 0x05,
            Request::Sleep { .. } => 0x06,
            Request::Panic => 0x07,
            Request::Stats => 0x08,
        }
    }

    /// Metric label for this request kind (`serve.requests{kind}`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::SpQuery { .. } => "sp_query",
            Request::SpBatch { .. } => "sp_batch",
            Request::RiskExposure { .. } => "risk",
            Request::Footprint { .. } => "footprint",
            Request::Sleep { .. } => "sleep",
            Request::Panic => "panic",
            Request::Stats => "stats",
        }
    }

    /// Serializes the payload (everything after the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping | Request::Panic | Request::Stats => {}
            Request::SpQuery { from, to } => {
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&to.to_le_bytes());
            }
            Request::SpBatch { pairs } => {
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(a, b) in pairs {
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
            Request::RiskExposure { west, south, east, north } => {
                for v in [west, south, east, north] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Request::Footprint { top_n } => out.extend_from_slice(&top_n.to_le_bytes()),
            Request::Sleep { ms } => out.extend_from_slice(&ms.to_le_bytes()),
        }
        out
    }

    /// Decodes a request payload for `op`. Rejects trailing bytes: a
    /// frame that decodes but is longer than its opcode allows is a
    /// desynchronization signal, not padding.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cur::new(payload);
        let req = match op {
            0x01 => Request::Ping,
            0x02 => Request::SpQuery { from: c.u32()?, to: c.u32()? },
            0x03 => {
                let n = c.u32()? as usize;
                // Bound before allocating: the count must be consistent
                // with the bytes actually present.
                if payload.len().saturating_sub(4) != n * 8 {
                    return Err(ProtoError::BadValue {
                        what: "sp_batch pair count disagrees with payload length",
                    });
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((c.u32()?, c.u32()?));
                }
                Request::SpBatch { pairs }
            }
            0x04 => Request::RiskExposure {
                west: c.f64()?,
                south: c.f64()?,
                east: c.f64()?,
                north: c.f64()?,
            },
            0x05 => Request::Footprint { top_n: c.u16()? },
            0x06 => Request::Sleep { ms: c.u32()? },
            0x07 => Request::Panic,
            0x08 => Request::Stats,
            other => return Err(ProtoError::UnknownOpcode { op: other }),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A typed response. Exactly one is produced for every admitted request,
/// and exactly one `Error` for every refused or failed one — the chaos
/// ledger's conservation law.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Pong,
    /// A route exists: hop count and length.
    Path { hops: u32, km: f64 },
    /// No route between the endpoints (a result, not an error).
    NoRoute,
    /// Batch summary: routed pairs, unreachable pairs, total km routed.
    Batch { routed: u32, unreachable: u32, total_km: f64 },
    Risk { paths: u32, cables: u32, metros: u32, ases: u32 },
    Footprint { rows: u32 },
    Slept,
    Stats {
        n_metros: u32,
        queue_depth: u32,
        queue_capacity: u32,
        busy_workers: u32,
        draining: bool,
    },
    Error(ServeError),
}

impl Response {
    /// Stable response tag.
    pub fn tag(&self) -> u8 {
        match self {
            Response::Pong => 0x81,
            Response::Path { .. } => 0x82,
            Response::NoRoute => 0x83,
            Response::Batch { .. } => 0x84,
            Response::Risk { .. } => 0x85,
            Response::Footprint { .. } => 0x86,
            Response::Slept => 0x87,
            Response::Stats { .. } => 0x88,
            Response::Error(_) => TAG_ERROR,
        }
    }

    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong | Response::NoRoute | Response::Slept => {}
            Response::Path { hops, km } => {
                out.extend_from_slice(&hops.to_le_bytes());
                out.extend_from_slice(&km.to_bits().to_le_bytes());
            }
            Response::Batch { routed, unreachable, total_km } => {
                out.extend_from_slice(&routed.to_le_bytes());
                out.extend_from_slice(&unreachable.to_le_bytes());
                out.extend_from_slice(&total_km.to_bits().to_le_bytes());
            }
            Response::Risk { paths, cables, metros, ases } => {
                for v in [paths, cables, metros, ases] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Footprint { rows } => out.extend_from_slice(&rows.to_le_bytes()),
            Response::Stats { n_metros, queue_depth, queue_capacity, busy_workers, draining } => {
                for v in [n_metros, queue_depth, queue_capacity, busy_workers] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.push(*draining as u8);
            }
            Response::Error(e) => {
                out.push(e.code());
                let (aux, detail): (u64, &str) = match e {
                    ServeError::BadRequest { detail } => (0, detail),
                    ServeError::Timeout { budget_ms } => (*budget_ms, ""),
                    ServeError::Overloaded { queue_depth } => (*queue_depth as u64, ""),
                    ServeError::Internal { detail } => (0, detail),
                    ServeError::ShuttingDown => (0, ""),
                };
                out.extend_from_slice(&aux.to_le_bytes());
                out.extend_from_slice(&(detail.len() as u32).to_le_bytes());
                out.extend_from_slice(detail.as_bytes());
            }
        }
        out
    }

    pub fn decode(tag: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cur::new(payload);
        let resp = match tag {
            0x81 => Response::Pong,
            0x82 => Response::Path { hops: c.u32()?, km: c.f64()? },
            0x83 => Response::NoRoute,
            0x84 => Response::Batch {
                routed: c.u32()?,
                unreachable: c.u32()?,
                total_km: c.f64()?,
            },
            0x85 => Response::Risk {
                paths: c.u32()?,
                cables: c.u32()?,
                metros: c.u32()?,
                ases: c.u32()?,
            },
            0x86 => Response::Footprint { rows: c.u32()? },
            0x87 => Response::Slept,
            0x88 => Response::Stats {
                n_metros: c.u32()?,
                queue_depth: c.u32()?,
                queue_capacity: c.u32()?,
                busy_workers: c.u32()?,
                draining: c.u8()? != 0,
            },
            TAG_ERROR => {
                let code = c.u8()?;
                let aux = c.u64()?;
                let len = c.u32()? as usize;
                let detail = String::from_utf8_lossy(c.bytes(len)?).into_owned();
                Response::Error(match code {
                    1 => ServeError::BadRequest { detail },
                    2 => ServeError::Timeout { budget_ms: aux },
                    3 => ServeError::Overloaded { queue_depth: aux as u32 },
                    4 => ServeError::Internal { detail },
                    5 => ServeError::ShuttingDown,
                    _ => return Err(ProtoError::BadValue { what: "unknown error code" }),
                })
            }
            other => return Err(ProtoError::UnknownOpcode { op: other }),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// A decode-level failure: the bytes did not form a valid frame or
/// payload. The server maps each to a [`ServeError::BadRequest`] with the
/// `Display` text as detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream is not speaking this protocol (or is desynchronized).
    BadMagic { got: u32 },
    /// Claimed payload length exceeds the configured cap.
    FrameTooLarge { len: u32, max: u32 },
    /// Payload ended before the opcode's fields did.
    Truncated { what: &'static str },
    /// Opcode/tag outside the protocol.
    UnknownOpcode { op: u8 },
    /// Payload longer than the opcode's fields.
    TrailingBytes { extra: usize },
    /// A field decoded but its value is inconsistent.
    BadValue { what: &'static str },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic { got } => write!(f, "bad frame magic 0x{got:08x}"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Truncated { what } => write!(f, "truncated {what}"),
            ProtoError::UnknownOpcode { op } => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            ProtoError::BadValue { what } => f.write_str(what),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One frame off the wire, not yet decoded past the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub id: u64,
    pub deadline_ms: u32,
    pub op: u8,
    pub payload: Vec<u8>,
}

/// Why [`read_frame`] stopped.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly between frames.
    CleanEof,
    /// The read timeout fired *between* frames: the peer is idle, not
    /// misbehaving. Callers typically retry (it doubles as a periodic
    /// drain-flag check).
    IdleTimeout,
    /// The bytes violated the protocol (magic/size); connection must
    /// close after one typed error.
    Proto(ProtoError),
    /// Transport failure — includes read timeouts *inside* a frame (a
    /// stalled peer mid-frame: the slow-loris case).
    Io(std::io::Error),
}

impl FrameError {
    /// Whether this is a read timeout (slow-loris / stalled peer).
    pub fn is_stall(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Writes one frame. The payload is assembled first so the header's
/// `len` is always consistent, then written in a single `write_all` —
/// the writer side is never a source of torn frames.
pub fn write_frame(
    w: &mut impl Write,
    id: u64,
    deadline_ms: u32,
    op: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.push(op);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, distinguishing a clean EOF *between* frames (normal
/// hangup) from a truncation *inside* one (a protocol violation).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: EOF here is a clean close and a timeout is
    // mere idleness — only *inside* a frame do they become protocol or
    // stall errors.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::CleanEof),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(FrameError::IdleTimeout)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    header[0] = first[0];
    if let Err(e) = r.read_exact(&mut header[1..]) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Proto(ProtoError::Truncated { what: "frame header" })
        } else {
            FrameError::Io(e)
        });
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::Proto(ProtoError::BadMagic { got: magic }));
    }
    let id = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let deadline_ms = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let op = header[16];
    let len = u32::from_le_bytes(header[17..21].try_into().unwrap());
    if len > max_frame {
        return Err(FrameError::Proto(ProtoError::FrameTooLarge { len, max: max_frame }));
    }
    let mut payload = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Proto(ProtoError::Truncated { what: "frame payload" })
        } else {
            FrameError::Io(e)
        });
    }
    Ok(Frame { id, deadline_ms, op, payload })
}

/// Little-endian field cursor over a payload slice.
struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, off: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or(ProtoError::Truncated { what: "payload field" })?;
        let s = &self.b[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.off == self.b.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes { extra: self.b.len() - self.off })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = req.encode_payload();
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, 250, req.op(), &payload).unwrap();
        let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame.id, 7);
        assert_eq!(frame.deadline_ms, 250);
        assert_eq!(Request::decode(frame.op, &frame.payload).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::SpQuery { from: 3, to: 900 });
        roundtrip_request(Request::SpBatch { pairs: vec![(0, 1), (5, 2), (7, 7)] });
        roundtrip_request(Request::RiskExposure {
            west: -98.0,
            south: 27.0,
            east: -88.0,
            north: 31.5,
        });
        roundtrip_request(Request::Footprint { top_n: 11 });
        roundtrip_request(Request::Sleep { ms: 40 });
        roundtrip_request(Request::Panic);
        roundtrip_request(Request::Stats);
    }

    #[test]
    fn responses_roundtrip() {
        let all = [
            Response::Pong,
            Response::Path { hops: 4, km: 1234.5 },
            Response::NoRoute,
            Response::Batch { routed: 10, unreachable: 2, total_km: 99.25 },
            Response::Risk { paths: 1, cables: 2, metros: 3, ases: 4 },
            Response::Footprint { rows: 11 },
            Response::Slept,
            Response::Stats {
                n_metros: 40,
                queue_depth: 3,
                queue_capacity: 8,
                busy_workers: 2,
                draining: true,
            },
            Response::Error(ServeError::BadRequest { detail: "bad\nfield".into() }),
            Response::Error(ServeError::Timeout { budget_ms: 250 }),
            Response::Error(ServeError::Overloaded { queue_depth: 8 }),
            Response::Error(ServeError::Internal { detail: "panicked".into() }),
            Response::Error(ServeError::ShuttingDown),
        ];
        for resp in all {
            let payload = resp.encode_payload();
            assert_eq!(Response::decode(resp.tag(), &payload).unwrap(), resp);
        }
    }

    #[test]
    fn bad_magic_oversize_truncation_and_trailing_are_typed() {
        // Garbage magic.
        let mut wire = vec![0xDE, 0xAD, 0xBE, 0xEF];
        wire.extend_from_slice(&[0u8; HEADER_LEN - 4]);
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::BadMagic { got })) => {
                assert_eq!(got, 0xEFBEADDE)
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }

        // Oversized claimed length: refused before allocation.
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 0, 0x01, &[]).unwrap();
        wire[17..21].copy_from_slice(&(DEFAULT_MAX_FRAME + 1).to_le_bytes());
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::FrameTooLarge { len, .. })) => {
                assert_eq!(len, DEFAULT_MAX_FRAME + 1)
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }

        // Header truncated mid-way.
        let wire = MAGIC.to_le_bytes();
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::Truncated { what })) => {
                assert_eq!(what, "frame header")
            }
            other => panic!("expected Truncated header, got {other:?}"),
        }

        // Payload shorter than claimed.
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 0, 0x02, &[0u8; 8]).unwrap();
        wire.truncate(wire.len() - 3);
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::Truncated { what })) => {
                assert_eq!(what, "frame payload")
            }
            other => panic!("expected Truncated payload, got {other:?}"),
        }

        // Clean EOF between frames is not an error class.
        match read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::CleanEof) => {}
            other => panic!("expected CleanEof, got {other:?}"),
        }

        // Trailing payload bytes are a desync signal.
        let mut payload = Request::SpQuery { from: 1, to: 2 }.encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode(0x02, &payload),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );

        // Unknown opcode.
        assert_eq!(Request::decode(0x7F, &[]), Err(ProtoError::UnknownOpcode { op: 0x7F }));

        // Batch count inconsistent with its bytes (never over-allocates).
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Request::decode(0x03, &payload),
            Err(ProtoError::BadValue { .. })
        ));
    }
}
