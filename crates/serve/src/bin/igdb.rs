//! `igdb` — the command-line face of the toolkit.
//!
//! The paper ships iGDB as "a system designed to automate the process of
//! collecting Internet topology and measurement data from public sources,
//! organize the collected data into a database, and enable visualization
//! and analysis". This binary covers that loop:
//!
//! ```text
//! igdb build --scale medium --out ./igdb-db        # collect + load + save
//! igdb tables --db ./igdb-db                       # inventory
//! igdb query  --db ./igdb-db --table asn_loc --where asn=64174 --limit 10
//! igdb metro  --db ./igdb-db --lon -94.58 --lat 39.1   # spatial join
//! igdb export --db ./igdb-db --out map.geojson     # the Figure 5 layers
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use std::time::Duration;

use igdb_core::{BuildError, BuildPolicy, Igdb};
use igdb_db::{Database, Predicate, Query, Value};
use igdb_geo::{GeoPoint, NearestSiteIndex};
use igdb_fault::ServeError;
use igdb_serve::{
    loadgen_session, run_loadgen, Client, Introspection, Listener, LoadgenConfig, Request,
    Response, Server, ServerAddr, ServerConfig,
};
use igdb_synth::faults::FaultClass;
use igdb_synth::{emit_snapshots, generate_delta, inject_faults, DeltaClass, World, WorldConfig};

/// Typed CLI failure: every exit path renders through this, so file-IO
/// errors carry the path and action instead of a bare `io::Error` string.
enum CliError {
    /// Bad arguments or a domain-level complaint.
    Usage(String),
    /// The pipeline refused the input (or caught an internal accounting
    /// bug).
    Build(BuildError),
    /// A file operation failed; `path` and `action` say which one.
    Io {
        path: PathBuf,
        action: &'static str,
        source: std::io::Error,
    },
    /// `metrics diff` found divergences (the delta table is already on
    /// stdout). Reserved exit code 2 so CI can tell "regression" from
    /// "broken invocation".
    Diverged { divergences: usize },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Build(e) => write!(f, "build failed: {e}"),
            CliError::Io {
                path,
                action,
                source,
            } => write!(f, "cannot {action} {}: {source}", path.display()),
            CliError::Diverged { divergences } => write!(
                f,
                "metrics diverged from baseline ({divergences} divergence{})",
                if *divergences == 1 { "" } else { "s" }
            ),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_string())
    }
}

impl From<BuildError> for CliError {
    fn from(e: BuildError) -> Self {
        CliError::Build(e)
    }
}

/// Wraps a file operation with path/action provenance.
fn io_ctx<T>(
    r: Result<T, std::io::Error>,
    action: &'static str,
    path: &Path,
) -> Result<T, CliError> {
    r.map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        action,
        source,
    })
}

fn main() -> ExitCode {
    // Batch pipeline: keep peak RSS at the live set, not allocator history.
    igdb_core::igdb_obs::use_mmap_for_large_allocs(128 * 1024);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd {
        "build" => cmd_build(&args[1..]),
        "tables" => cmd_tables(&args[1..]).map_err(CliError::from),
        "query" => cmd_query(&args[1..]).map_err(CliError::from),
        "metro" => cmd_metro(&args[1..]).map_err(CliError::from),
        "export" => cmd_export(&args[1..]).map_err(CliError::from),
        "metrics" => cmd_metrics(&args[1..]),
        "queries" => cmd_queries(&args[1..]),
        "delta" => cmd_delta(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "loadgen" => cmd_loadgen(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e @ CliError::Diverged { .. }) => {
            eprintln!("igdb: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("igdb: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: igdb <command> [options]

commands:
  build   --out DIR [--scale tiny|medium|large|planet] [--date YYYY-MM-DD] [--mesh N]
          [--policy strict|lenient] [--drop-above FRAC] [--report [FILE]]
          [--corrupt SEED] [--metrics FILE.jsonl] [--trace]
          generate source snapshots, run the pipeline, save the database;
          --report prints per-source ingestion health (or writes it to
          FILE), --corrupt injects seeded faults into every source (a
          fault-tolerance demo), --metrics writes pipeline counters and
          spans as JSON-lines, --trace prints the span tree to stderr
  tables  --db DIR
          list relations and row counts
  metrics --in FILE.jsonl [--profile]
          render a saved --metrics JSON-lines stream as a table;
          --profile appends the flame-style span profile (per-span total
          and self time, call counts, critical path)
  metrics diff BASELINE.jsonl CURRENT.jsonl [--perf-tolerance PCT]
          regression gate: counters must match exactly and the span tree
          structurally (timing ignored); perf counters and histograms are
          compared only when --perf-tolerance gives a relative band.
          Exits 2 with a per-metric delta table on divergence
  queries --out FILE.jsonl [--scale tiny|medium|large|planet] [--date YYYY-MM-DD]
          [--mesh N] [--deterministic]
          build a database and serve the fixed synthetic query mix (all
          five analyses), writing serving telemetry as JSON-lines;
          --deterministic redacts timing (the committed-baseline format)
  delta   --out FILE.jsonl [--scale tiny|medium|large|planet] [--date YYYY-MM-DD]
          [--mesh N] [--seed N]
          build a database, derive a seeded churn delta from its sources,
          and apply it incrementally, writing the apply's deterministic
          counter/span stream as JSON-lines (the committed-baseline
          format gated by `metrics diff` in CI)
  serve   (--listen HOST:PORT | --unix PATH) [--scale tiny|medium|large|planet]
          [--date YYYY-MM-DD] [--mesh N] [--workers N] [--queue N]
          [--deadline-ms N] [--metrics FILE.jsonl]
          [--churn-ms N [--churn-seed N]]
          [--slow-ms N] [--slow-log FILE.jsonl] [--trace-ring N]
          build a database and serve it over the binary protocol with
          per-request deadlines, bounded-queue backpressure, and panic
          containment; runs until stdin closes, then drains gracefully
          (finishes in-flight work, rejects new requests typed) and
          flushes metrics. --churn-ms applies a seeded source delta
          every N ms and publishes it as a new epoch while serving —
          in-flight requests finish on the epoch they started on.
          --slow-ms sends every request at/over the threshold to the
          flight recorder's slow-query log; --slow-log appends those
          span trees as JSON-lines readable by `igdb metrics --in`;
          --trace-ring sizes the in-memory ring of completed traces
  top     --addr HOST:PORT|unix:PATH [--interval SECS] [--once] [--counters]
          poll a live server's versioned Introspect op and render the
          flight recorder: ledger totals, per-client rows (requests,
          ok/err by kind, bytes, queue-wait quantiles), pinned-epoch
          distribution and epoch.lag; --once prints one snapshot and
          exits, --counters appends the deterministic counter stream
  loadgen [--addr HOST:PORT|unix:PATH] [--requests N] [--conns N]
          [--seed N] [--qps Q] [--deadline-ms N] [--scale tiny|medium|large|planet]
          [--mesh N] [--workers N] [--queue N] [--out FILE.jsonl]
          [--deterministic]
          replay a seeded query mix and report throughput and latency
          quantiles (p50/p99); --qps>0 paces an open loop (measures
          shedding under saturation), otherwise a deterministic closed
          loop. Without --addr an in-process server is started and the
          merged server+client telemetry is written to --out
          (--deterministic gives the committed-baseline format)
  query   --db DIR --table NAME [--where col=value ...] [--select a,b,c]
          [--limit N] [--order col[:desc]]
  metro   --db DIR --lon X --lat Y
          standardize a coordinate (Thiessen spatial join)
  export  --db DIR --out FILE.geojson
          export the physical map layers (Figure 5)";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flags(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 1;
        }
        i += 1;
    }
    out
}

/// Shared `--scale` parser; every subcommand accepts the same tiers.
fn parse_scale(scale: &str) -> Result<WorldConfig, String> {
    match scale {
        "tiny" => Ok(WorldConfig::tiny()),
        "medium" => Ok(WorldConfig::medium()),
        "large" => Ok(WorldConfig::large()),
        "planet" => Ok(WorldConfig::planet()),
        other => Err(format!("unknown --scale '{other}' (tiny|medium|large|planet)")),
    }
}

fn require(args: &[String], name: &str) -> Result<String, String> {
    flag(args, name).ok_or_else(|| format!("missing required option {name}"))
}

fn cmd_build(args: &[String]) -> Result<(), CliError> {
    let out = PathBuf::from(require(args, "--out")?);
    let scale = flag(args, "--scale").unwrap_or_else(|| "tiny".into());
    let date = flag(args, "--date").unwrap_or_else(|| "2022-05-03".into());
    let mesh: usize = flag(args, "--mesh")
        .map(|m| m.parse().map_err(|e| format!("bad --mesh: {e}")))
        .transpose()?
        .unwrap_or(500);
    let config = parse_scale(&scale)?;
    let policy = match flag(args, "--policy").as_deref() {
        None | Some("lenient") => BuildPolicy::lenient(),
        Some("strict") => BuildPolicy::strict(),
        Some(other) => {
            return Err(format!("unknown --policy '{other}' (strict|lenient)").into())
        }
    };
    let policy = match flag(args, "--drop-above") {
        Some(frac) => {
            let frac: f64 = frac.parse().map_err(|e| format!("bad --drop-above: {e}"))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err("--drop-above wants a fraction in [0, 1]".into());
            }
            policy.with_drop_above(frac)
        }
        None => policy,
    };
    // --report takes an optional FILE operand: bare prints to stdout.
    let report_dest: Option<Option<PathBuf>> =
        args.iter().position(|a| a == "--report").map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(PathBuf::from)
        });
    let metrics_path = flag(args, "--metrics").map(PathBuf::from);
    let want_trace = args.iter().any(|a| a == "--trace");

    // Open output destinations *before* paying for the build, so an
    // unwritable --metrics/--report path fails fast with a typed error.
    use std::io::Write as _;
    let mut metrics_file = match &metrics_path {
        Some(p) => Some(io_ctx(std::fs::File::create(p), "create metrics file", p)?),
        None => None,
    };
    let mut report_file = match &report_dest {
        Some(Some(p)) => Some(io_ctx(std::fs::File::create(p), "create report file", p)?),
        _ => None,
    };

    eprintln!("generating world ({scale})…");
    let world = World::generate(config);
    eprintln!("emitting snapshots for {date}…");
    let mut snaps = emit_snapshots(&world, &date, mesh);
    // The world is only needed to emit sources; at planet scale keeping its
    // routing tables alive through the build costs more RSS than the build.
    drop(world);
    // Return the generator's freed pages before the build stacks its own
    // working set on top of them (keeps peak RSS ≈ live data).
    igdb_core::igdb_obs::trim_heap();
    if let Some(seed) = flag(args, "--corrupt") {
        let seed: u64 = seed.parse().map_err(|e| format!("bad --corrupt: {e}"))?;
        let ledger = inject_faults(&mut snaps, seed, &FaultClass::ALL_RECORD_CLASSES);
        eprintln!("injected {} faults (seed {seed})…", ledger.len());
    }
    eprintln!("building database…");
    let registry = igdb_obs::Registry::new();
    let (igdb, report) = {
        let _g = registry.install();
        // Build-and-save never diffs or re-queries raw snapshots, so the
        // scratch build can hand each source back mid-pipeline.
        Igdb::try_build_scratch(snaps, &policy)?
    };
    match &report_dest {
        Some(None) => println!("{report}"),
        Some(Some(p)) => {
            let f = report_file.as_mut().expect("opened above");
            io_ctx(write!(f, "{report}"), "write report file", p)?;
        }
        None if !report.is_clean() => eprintln!(
            "warning: {} records quarantined, {} sources dropped (rerun with --report)",
            report.total_quarantined(),
            report.dropped_sources().len()
        ),
        None => {}
    }
    if let Some(f) = &mut metrics_file {
        let p = metrics_path.as_ref().expect("path implies file");
        io_ctx(
            f.write_all(registry.json_lines(igdb_obs::JsonMode::Full).as_bytes()),
            "write metrics file",
            p,
        )?;
        eprintln!("wrote metrics to {}", p.display());
    }
    if want_trace {
        eprint!("{}", render_spans(&registry));
    }
    if let Some(p) = flag(args, "--counters").map(PathBuf::from) {
        // The deterministic counter stream only (no perf-class metrics):
        // byte-diffable across worker counts and shortest-path modes.
        io_ctx(
            std::fs::write(&p, registry.counter_snapshot()),
            "write counters file",
            &p,
        )?;
        eprintln!("wrote counter stream to {}", p.display());
    }
    igdb.db.save_dir(&out).map_err(|e| e.to_string())?;
    eprintln!("saved {} relations to {}", igdb.db.table_names().len(), out.display());
    if args.iter().any(|a| a == "--fingerprint") {
        println!("fingerprint {:016x}", fingerprint_hash(&igdb.db.fingerprint()));
    }
    Ok(())
}

/// FNV-1a 64 over the canonical database fingerprint: a short,
/// platform-stable digest CI can compare across worker counts without
/// shipping the multi-megabyte fingerprint itself.
fn fingerprint_hash(fp: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in fp.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The span tree, indented by depth, durations in ms.
fn render_spans(reg: &igdb_obs::Registry) -> String {
    let mut out = String::new();
    for s in reg.spans() {
        let dur = s
            .dur_us
            .map(|d| format!("{:.3} ms", d as f64 / 1000.0))
            .unwrap_or_else(|| "(open)".to_string());
        out.push_str(&format!("{}{} {}\n", "  ".repeat(s.depth), s.name, dur));
    }
    out
}

/// Reads and parses a JSON-lines metrics stream; parse errors carry the
/// path and the offending line number (the parser prefixes `line N:`).
fn load_metrics(path: &Path) -> Result<igdb_obs::Registry, CliError> {
    let doc = io_ctx(std::fs::read_to_string(path), "read metrics file", path)?;
    igdb_obs::Registry::from_json_lines(&doc)
        .map_err(|e| CliError::Usage(format!("malformed metrics file {}: {e}", path.display())))
}

fn cmd_metrics(args: &[String]) -> Result<(), CliError> {
    if args.first().map(String::as_str) == Some("diff") {
        return cmd_metrics_diff(&args[1..]);
    }
    let input = PathBuf::from(require(args, "--in")?);
    let reg = load_metrics(&input)?;
    print!("{}", reg.render_table());
    if args.iter().any(|a| a == "--profile") {
        print!("{}", reg.profile().render_table());
    }
    Ok(())
}

/// `igdb metrics diff BASELINE.jsonl CURRENT.jsonl [--perf-tolerance PCT]`
/// — the regression gate. Exit 0 when clean, exit 2 with a per-metric
/// delta table on divergence.
fn cmd_metrics_diff(args: &[String]) -> Result<(), CliError> {
    // Positional operands, skipping the value of --perf-tolerance.
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--perf-tolerance" {
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") {
            files.push(PathBuf::from(&args[i]));
        }
        i += 1;
    }
    let [baseline, current] = files.as_slice() else {
        return Err("metrics diff wants exactly two files: BASELINE.jsonl CURRENT.jsonl".into());
    };
    let tolerance = flag(args, "--perf-tolerance")
        .map(|t| t.parse::<f64>().map_err(|e| format!("bad --perf-tolerance: {e}")))
        .transpose()?;
    if let Some(t) = tolerance {
        if !(t >= 0.0) {
            return Err("--perf-tolerance wants a percentage >= 0".into());
        }
    }
    let base = load_metrics(baseline)?;
    let cur = load_metrics(current)?;
    let report = igdb_obs::diff_registries(&base, &cur, tolerance);
    print!("{}", report.render_table());
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::Diverged { divergences: report.rows.len() })
    }
}

/// `igdb queries` — build a database at the given scale and serve the
/// fixed synthetic query mix, writing serving telemetry as JSON-lines.
/// The build runs *outside* the registry so the stream holds only the
/// serving-path telemetry the metrics gate compares.
fn cmd_queries(args: &[String]) -> Result<(), CliError> {
    let out = PathBuf::from(require(args, "--out")?);
    let scale = flag(args, "--scale").unwrap_or_else(|| "tiny".into());
    let date = flag(args, "--date").unwrap_or_else(|| "2022-05-03".into());
    let mesh: usize = flag(args, "--mesh")
        .map(|m| m.parse().map_err(|e| format!("bad --mesh: {e}")))
        .transpose()?
        .unwrap_or(500);
    let config = parse_scale(&scale)?;
    let mode = if args.iter().any(|a| a == "--deterministic") {
        igdb_obs::JsonMode::Deterministic
    } else {
        igdb_obs::JsonMode::Full
    };
    use std::io::Write as _;
    let mut out_file = io_ctx(std::fs::File::create(&out), "create metrics file", &out)?;

    eprintln!("generating world ({scale})…");
    let world = World::generate(config);
    eprintln!("emitting snapshots for {date}…");
    let snaps = emit_snapshots(&world, &date, mesh);
    eprintln!("building database…");
    let igdb = Igdb::build(&snaps);
    eprintln!("serving query mix…");
    let registry = igdb_obs::Registry::new();
    let summary = {
        let _g = registry.install();
        igdb_core::run_query_mix(&world, &igdb)
    };
    eprintln!(
        "served: {} physpath reports, {} intertubes links covered, {} rocketfuel edges, {} paths at risk, {} footprint rows",
        summary.physpath_reports,
        summary.intertubes_covered,
        summary.rocketfuel_mapped,
        summary.risk_paths,
        summary.footprint_rows
    );
    let mut doc = registry.json_lines(mode);
    if mode == igdb_obs::JsonMode::Full {
        // The profile section is derived from the span lines; the parser
        // skips it, so the stream still round-trips and diffs.
        doc.push_str(&registry.profile().json_lines());
    }
    io_ctx(out_file.write_all(doc.as_bytes()), "write metrics file", &out)?;
    eprintln!("wrote serving telemetry to {}", out.display());
    Ok(())
}

/// `igdb delta` — the delta-ingestion determinism baseline. Builds a base
/// database (outside the registry), derives a seeded churn delta spanning
/// every delta class except the catalogue rebuilds, and applies it
/// incrementally; only the *apply* lands in the stream, so the committed
/// golden pins exactly the incremental path's counters and span shape.
/// CI regenerates the stream at 1 and 4 workers in both shortest-path
/// modes and gates it with `metrics diff`.
fn cmd_delta(args: &[String]) -> Result<(), CliError> {
    let out = PathBuf::from(require(args, "--out")?);
    let scale = flag(args, "--scale").unwrap_or_else(|| "tiny".into());
    let date = flag(args, "--date").unwrap_or_else(|| "2022-05-03".into());
    let mesh: usize = flag(args, "--mesh")
        .map(|m| m.parse().map_err(|e| format!("bad --mesh: {e}")))
        .transpose()?
        .unwrap_or(400);
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(7);
    let config = parse_scale(&scale)?;
    use std::io::Write as _;
    let mut out_file = io_ctx(std::fs::File::create(&out), "create metrics file", &out)?;

    eprintln!("generating world ({scale})…");
    let world = World::generate(config);
    let snaps = emit_snapshots(&world, &date, mesh);
    eprintln!("building base database…");
    let (base, _) = Igdb::try_build(&snaps, &BuildPolicy::lenient())?;
    let classes = [
        DeltaClass::AtlasChurn,
        DeltaClass::AtlasPrune,
        DeltaClass::FacilityChurn,
        DeltaClass::TracerouteChurn,
        DeltaClass::LogicalChurn,
        DeltaClass::RoadChurn,
    ];
    let (churned, ops) = generate_delta(base.source_snapshots(), seed, &classes);
    eprintln!("applying delta ({} ops, seed {seed})…", ops.len());
    let registry = igdb_obs::Registry::new();
    let (next, _, delta) = {
        let _g = registry.install();
        base.apply_delta(&churned, &BuildPolicy::lenient())?
    };
    eprintln!(
        "applied: +{} −{} records, first dirty stage {:?}, {} rows",
        delta.records_added(),
        delta.records_removed(),
        delta.first_dirty,
        next.db
            .table_names()
            .iter()
            .map(|t| next.db.row_count(t).unwrap_or(0))
            .sum::<usize>()
    );
    io_ctx(
        out_file.write_all(
            registry.json_lines(igdb_obs::JsonMode::Deterministic).as_bytes(),
        ),
        "write metrics file",
        &out,
    )?;
    eprintln!("wrote delta-apply telemetry to {}", out.display());
    Ok(())
}

/// Builds a synthetic-world database from the shared `--scale`,
/// `--date`, and `--mesh` flags (the `serve`/`loadgen` ingestion path).
fn synth_igdb(args: &[String]) -> Result<Igdb, CliError> {
    let scale = flag(args, "--scale").unwrap_or_else(|| "tiny".into());
    let date = flag(args, "--date").unwrap_or_else(|| "2022-05-03".into());
    let mesh: usize = flag(args, "--mesh")
        .map(|m| m.parse().map_err(|e| format!("bad --mesh: {e}")))
        .transpose()?
        .unwrap_or(500);
    let config = parse_scale(&scale)?;
    eprintln!("generating world ({scale})…");
    let world = World::generate(config);
    eprintln!("emitting snapshots for {date}…");
    let snaps = emit_snapshots(&world, &date, mesh);
    eprintln!("building database…");
    Ok(Igdb::build(&snaps))
}

/// Parses the serving knobs shared by `serve` and in-process `loadgen`.
fn server_config(args: &[String], enable_test_ops: bool) -> Result<ServerConfig, CliError> {
    let mut cfg = ServerConfig { enable_test_ops, ..ServerConfig::default() };
    if let Some(w) = flag(args, "--workers") {
        cfg.workers = w.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if let Some(q) = flag(args, "--queue") {
        cfg.queue_capacity = q.parse().map_err(|e| format!("bad --queue: {e}"))?;
        if cfg.queue_capacity == 0 {
            return Err("--queue wants a capacity >= 1".into());
        }
    }
    if let Some(d) = flag(args, "--deadline-ms") {
        let ms: u64 = d.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
        cfg.default_deadline = Duration::from_millis(ms.max(1));
    }
    if let Some(s) = flag(args, "--slow-ms") {
        cfg.slow_ms = s.parse().map_err(|e| format!("bad --slow-ms: {e}"))?;
    }
    cfg.slow_log = flag(args, "--slow-log").map(PathBuf::from);
    if let Some(r) = flag(args, "--trace-ring") {
        cfg.trace_ring = r.parse().map_err(|e| format!("bad --trace-ring: {e}"))?;
    }
    Ok(cfg)
}

/// `igdb serve` — build a database and serve it until stdin closes, then
/// drain gracefully and flush metrics.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let listener = match (flag(args, "--listen"), flag(args, "--unix")) {
        (Some(addr), None) => {
            io_ctx(Listener::bind_tcp(&addr), "bind tcp listener", Path::new(&addr))?
        }
        (None, Some(path)) => {
            let p = PathBuf::from(path);
            io_ctx(Listener::bind_unix(&p), "bind unix listener", &p)?
        }
        _ => return Err("serve wants exactly one of --listen ADDR or --unix PATH".into()),
    };
    let cfg = server_config(args, false)?;
    let metrics_path = flag(args, "--metrics").map(PathBuf::from);
    // Fail fast on an unwritable metrics path, before paying for the build.
    use std::io::Write as _;
    let mut metrics_file = match &metrics_path {
        Some(p) => Some(io_ctx(std::fs::File::create(p), "create metrics file", p)?),
        None => None,
    };
    let igdb = synth_igdb(args)?;
    let reg = igdb_obs::Registry::new();
    let server = io_ctx(
        Server::start(std::sync::Arc::new(igdb), listener, cfg, reg.clone()),
        "start server",
        Path::new("<listener>"),
    )?;
    eprintln!("serving on {} — close stdin (ctrl-d) to drain", server.addr());
    // Optional live churn: a single writer thread periodically derives a
    // seeded delta from the current epoch's sources, applies it
    // incrementally, and publishes the result. The swap is one pointer:
    // requests in flight keep answering from the epoch they pinned.
    let churn_ms: Option<u64> = flag(args, "--churn-ms")
        .map(|v| v.parse().map_err(|e| format!("bad --churn-ms: {e}")))
        .transpose()?;
    let churn_seed: u64 = flag(args, "--churn-seed")
        .map(|v| v.parse().map_err(|e| format!("bad --churn-seed: {e}")))
        .transpose()?
        .unwrap_or(7);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn = churn_ms.map(|ms| {
        let epochs = server.epochs();
        let reg = server.registry();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::Builder::new()
            .name("igdb-churn".into())
            .spawn(move || {
                use std::sync::atomic::Ordering;
                let _g = reg.install();
                // The apply's spans are serial-only shapes; this writer
                // runs beside the serving threads, so route its spans
                // into a sink trace (discarded) and let the
                // deterministic counters flow to the registry.
                let sink = igdb_obs::TraceContext::sink();
                let _t = sink.install();
                let classes = [
                    DeltaClass::AtlasChurn,
                    DeltaClass::TracerouteChurn,
                    DeltaClass::LogicalChurn,
                    DeltaClass::FacilityChurn,
                ];
                let mut round = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let mut slept = 0;
                    while slept < ms && !stop.load(Ordering::SeqCst) {
                        let step = (ms - slept).min(25);
                        std::thread::sleep(Duration::from_millis(step));
                        slept += step;
                    }
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let cur = epochs.current();
                    let class = classes[(round as usize) % classes.len()];
                    let (churned, ops) = generate_delta(
                        cur.igdb.source_snapshots(),
                        churn_seed.wrapping_add(round),
                        &[class],
                    );
                    match cur.igdb.apply_delta(&churned, &BuildPolicy::lenient()) {
                        Ok((next, _, delta)) => {
                            let n = epochs.publish(next);
                            eprintln!(
                                "epoch {n}: applied {class:?} ({} ops, +{} −{} records)",
                                ops.len(),
                                delta.records_added(),
                                delta.records_removed()
                            );
                        }
                        Err(e) => eprintln!("churn apply failed (epoch kept): {e}"),
                    }
                    round += 1;
                }
            })
            .expect("spawn churn thread")
    });
    // Block until the operator closes stdin; every byte before EOF is
    // ignored, so `igdb serve … < /dev/null` drains immediately.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(std::io::Read::read(&mut stdin, &mut sink), Ok(n) if n > 0) {}
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = churn {
        let _ = h.join();
    }
    eprintln!("draining…");
    let report = server.drain();
    eprintln!(
        "drained: {} served, {} errors, {} rejects",
        report.served, report.errors, report.rejects
    );
    if let Some(f) = &mut metrics_file {
        let p = metrics_path.as_ref().expect("path implies file");
        io_ctx(
            f.write_all(reg.json_lines(igdb_obs::JsonMode::Full).as_bytes()),
            "write metrics file",
            p,
        )?;
        eprintln!("wrote metrics to {}", p.display());
    }
    Ok(())
}

/// `igdb loadgen` — replay a seeded query mix against a server (an
/// in-process one unless `--addr` points elsewhere) and report sustained
/// throughput plus latency quantiles.
fn cmd_loadgen(args: &[String]) -> Result<(), CliError> {
    let mut cfg = LoadgenConfig::default();
    if let Some(r) = flag(args, "--requests") {
        cfg.requests = r.parse().map_err(|e| format!("bad --requests: {e}"))?;
    }
    if let Some(c) = flag(args, "--conns") {
        let conns: usize = c.parse().map_err(|e| format!("bad --conns: {e}"))?;
        if conns == 0 {
            return Err("--conns wants at least 1".into());
        }
        cfg.conns = conns;
    }
    if let Some(s) = flag(args, "--seed") {
        cfg.seed = s.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    if let Some(q) = flag(args, "--qps") {
        cfg.qps = q.parse().map_err(|e| format!("bad --qps: {e}"))?;
        if !(cfg.qps >= 0.0) {
            return Err("--qps wants a rate >= 0".into());
        }
    }
    if let Some(d) = flag(args, "--deadline-ms") {
        cfg.deadline_ms = d.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
    }
    let out = flag(args, "--out").map(PathBuf::from);
    let mode = if args.iter().any(|a| a == "--deterministic") {
        igdb_obs::JsonMode::Deterministic
    } else {
        igdb_obs::JsonMode::Full
    };
    use std::io::Write as _;
    let mut out_file = match &out {
        Some(p) => Some(io_ctx(std::fs::File::create(p), "create metrics file", p)?),
        None => None,
    };

    let (summary, reg) = match flag(args, "--addr") {
        Some(addr) => {
            // Remote mode: the mix needs the metro-id bound, which the
            // server's inline Stats op reports.
            let addr = parse_addr(&addr)?;
            let reg = igdb_obs::Registry::new();
            let mut probe = io_ctx(
                Client::connect(&addr, cfg.io_timeout),
                "connect to server",
                Path::new("<addr>"),
            )?;
            let n_metros = match probe.call(&Request::Stats, 0) {
                Ok(Response::Stats { n_metros, .. }) => n_metros as usize,
                other => return Err(format!("server stats probe failed: {other:?}").into()),
            };
            drop(probe);
            let summary = run_loadgen(&addr, n_metros, &cfg, &reg);
            (summary, reg)
        }
        None => {
            // In-process mode: server + client share one registry so the
            // stream carries both sides (the metrics-gate format).
            let igdb = synth_igdb(args)?;
            let server_cfg = ServerConfig {
                // Closed-loop baselines must never time out on their own.
                default_deadline: Duration::from_secs(30),
                ..server_config(args, false)?
            };
            let socket = std::env::temp_dir()
                .join(format!("igdb-loadgen-{}.sock", std::process::id()));
            let (summary, report, reg) = io_ctx(
                loadgen_session(std::sync::Arc::new(igdb), &socket, server_cfg, &cfg),
                "run loadgen session",
                &socket,
            )?;
            eprintln!(
                "server drained: {} served, {} errors, {} rejects",
                report.served, report.errors, report.rejects
            );
            (summary, reg)
        }
    };
    println!("{}", summary.render());
    if let Some(f) = &mut out_file {
        let p = out.as_ref().expect("path implies file");
        io_ctx(f.write_all(reg.json_lines(mode).as_bytes()), "write metrics file", p)?;
        eprintln!("wrote telemetry to {}", p.display());
    }
    Ok(())
}

/// Parses `--addr`: `unix:PATH` or a `HOST:PORT` socket address.
fn parse_addr(raw: &str) -> Result<ServerAddr, CliError> {
    if let Some(path) = raw.strip_prefix("unix:") {
        return Ok(ServerAddr::Unix(PathBuf::from(path)));
    }
    use std::net::ToSocketAddrs as _;
    let mut addrs = raw
        .to_socket_addrs()
        .map_err(|e| format!("bad --addr '{raw}': {e}"))?;
    addrs
        .next()
        .map(ServerAddr::Tcp)
        .ok_or_else(|| "bad --addr: resolved to nothing".into())
}

/// `igdb top` — poll a live server's versioned `Introspect` op and render
/// the flight recorder: ledger, per-client table, epoch-pin distribution.
/// Read-only: the op is answered inline by the reader and records only a
/// perf-class control tally, so watching never perturbs the deterministic
/// counter stream.
fn cmd_top(args: &[String]) -> Result<(), CliError> {
    let addr = flag(args, "--addr")
        .ok_or("top wants --addr HOST:PORT or --addr unix:PATH")?;
    let addr = parse_addr(&addr)?;
    let once = args.iter().any(|a| a == "--once");
    let show_counters = args.iter().any(|a| a == "--counters");
    let interval: f64 = flag(args, "--interval")
        .map(|v| v.parse().map_err(|e| format!("bad --interval: {e}")))
        .transpose()?
        .unwrap_or(2.0);
    if !(interval > 0.0) {
        return Err("--interval wants seconds > 0".into());
    }
    let mut client = io_ctx(
        Client::connect(&addr, Duration::from_secs(5)),
        "connect to server",
        Path::new("<addr>"),
    )?;
    loop {
        let intro = match client.call(&Request::Introspect, 0) {
            Ok(Response::Introspect(i)) => i,
            other => return Err(format!("introspect failed: {other:?}").into()),
        };
        println!("{}", render_top(&intro, show_counters));
        if once {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// Renders one introspection snapshot as the `igdb top` text view.
fn render_top(i: &Introspection, show_counters: bool) -> String {
    use std::fmt::Write as _;
    let r = &i.recorder;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "igdb top — epoch {}  uptime {:.1}s  workers {}/{} busy  queue {}/{}{}",
        i.epoch,
        i.uptime_us as f64 / 1e6,
        i.busy_workers,
        i.workers,
        i.queue_depth,
        i.queue_capacity,
        if i.draining { "  DRAINING" } else { "" }
    );
    let _ = writeln!(
        out,
        "requests {}  ok {}  err {}  live {}  bytes in/out {}/{}",
        r.requests,
        r.ok,
        r.err_total(),
        r.live,
        r.bytes_in,
        r.bytes_out
    );
    let named = |row: &[u64; 5]| -> String {
        let mut s = String::new();
        for (n, &v) in ServeError::NAMES.iter().zip(row.iter()) {
            if v > 0 {
                let _ = write!(s, " {n}={v}");
            }
        }
        if s.is_empty() {
            s.push_str(" none");
        }
        s
    };
    let _ = writeln!(out, "errors:{}  rejects:{}", named(&r.err), named(&r.rejected));
    let _ = write!(
        out,
        "ring {}/{}  slow {}",
        r.ring_len, r.ring_cap, r.slow_count
    );
    if r.slow_ms > 0 {
        let _ = write!(out, " (>= {} ms)", r.slow_ms);
    }
    let _ = writeln!(out);
    if !r.epoch_pins.is_empty() || r.pins_evicted > 0 {
        let _ = write!(out, "epoch pins:");
        for &(e, n) in &r.epoch_pins {
            let _ = write!(out, " {e}:{n}");
        }
        if r.pins_evicted > 0 {
            let _ = write!(out, " (+{} on evicted epochs)", r.pins_evicted);
        }
        if r.epoch_lag.count > 0 {
            let _ = write!(
                out,
                "  lag p50/p99/max {}/{}/{} us ({} samples)",
                r.epoch_lag.p50_us, r.epoch_lag.p99_us, r.epoch_lag.max_us, r.epoch_lag.count
            );
        }
        let _ = writeln!(out);
    }
    if !r.clients.is_empty() {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10}  {}",
            "conn", "requests", "ok", "err", "rej", "bytes-in", "bytes-out", "wait p50/p99/max us"
        );
        for c in &r.clients {
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10}  {}/{}/{}",
                c.conn,
                c.requests,
                c.ok,
                c.err.iter().sum::<u64>(),
                c.rejected.iter().sum::<u64>(),
                c.bytes_in,
                c.bytes_out,
                c.queue_wait.p50_us,
                c.queue_wait.p99_us,
                c.queue_wait.max_us
            );
        }
    }
    if show_counters && !i.counters.is_empty() {
        let _ = writeln!(out, "deterministic counters:");
        for line in i.counters.lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

fn open_db(args: &[String]) -> Result<Database, String> {
    let dir = require(args, "--db")?;
    Database::load_dir(Path::new(&dir)).map_err(|e| format!("cannot open {dir}: {e}"))
}

fn cmd_tables(args: &[String]) -> Result<(), String> {
    let db = open_db(args)?;
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for name in db.table_names() {
        // Ignore broken pipes (e.g. `igdb tables | head`).
        if writeln!(out, "{name:<16} {:>8} rows", db.row_count(&name).unwrap_or(0)).is_err() {
            break;
        }
    }
    Ok(())
}

/// Parses `col=value` into a typed equality predicate against the table's
/// schema.
fn parse_where(db: &Database, table: &str, clause: &str) -> Result<Predicate, String> {
    let (col, raw) = clause
        .split_once('=')
        .ok_or_else(|| format!("--where wants col=value, got '{clause}'"))?;
    let value = db
        .with_table(table, |t| -> Result<Value, String> {
            let idx = t
                .schema()
                .index_of(col)
                .map_err(|e| e.to_string())?;
            let ty = t.schema().columns()[idx].ty;
            Ok(match ty {
                igdb_db::ColumnType::Int => {
                    Value::Int(raw.parse::<i64>().map_err(|e| format!("bad int: {e}"))?)
                }
                igdb_db::ColumnType::Float => {
                    Value::Float(raw.parse::<f64>().map_err(|e| format!("bad float: {e}"))?)
                }
                igdb_db::ColumnType::Bool => {
                    Value::Bool(raw.parse::<bool>().map_err(|e| format!("bad bool: {e}"))?)
                }
                _ => Value::text(raw),
            })
        })
        .map_err(|e| e.to_string())??;
    Ok(Predicate::Eq(col.to_string(), value))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let db = open_db(args)?;
    let table = require(args, "--table")?;
    if !db.has_table(&table) {
        return Err(format!("no such table '{table}'"));
    }
    let mut predicate = Predicate::True;
    for clause in flags(args, "--where") {
        predicate = predicate.and(parse_where(&db, &table, &clause)?);
    }
    let limit: usize = flag(args, "--limit")
        .map(|l| l.parse().map_err(|e| format!("bad --limit: {e}")))
        .transpose()?
        .unwrap_or(25);
    let select: Option<Vec<String>> =
        flag(args, "--select").map(|s| s.split(',').map(str::to_string).collect());
    let order = flag(args, "--order");

    db.with_table(&table, |t| -> Result<(), String> {
        let mut q = Query::new(t).filter(predicate.clone()).limit(limit);
        if let Some(o) = &order {
            // "--order col" ascends; "--order col:desc" descends.
            let (col, asc) = match o.split_once(':') {
                Some((c, dir)) => (c.to_string(), dir != "desc"),
                None => (o.clone(), true),
            };
            q = q.order_by(col, asc);
        }
        let names: Vec<String> = match &select {
            Some(cols) => {
                q = q.select(cols.iter().map(String::as_str).collect());
                cols.clone()
            }
            None => t
                .schema()
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        };
        println!("{}", names.join("\t"));
        for row in q.rows().map_err(|e| e.to_string())? {
            let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("{}", rendered.join("\t"));
        }
        Ok(())
    })
    .map_err(|e| e.to_string())?
}

fn cmd_metro(args: &[String]) -> Result<(), String> {
    let db = open_db(args)?;
    let lon: f64 = require(args, "--lon")?
        .parse()
        .map_err(|e| format!("bad --lon: {e}"))?;
    let lat: f64 = require(args, "--lat")?
        .parse()
        .map_err(|e| format!("bad --lat: {e}"))?;
    // Rebuild the nearest-site index from city_points.
    let (sites, labels): (Vec<GeoPoint>, Vec<String>) = db
        .with_table("city_points", |t| {
            let mut sites = Vec::new();
            let mut labels = Vec::new();
            for (_, row) in t.iter() {
                let lat = row[4].as_float().unwrap_or(0.0);
                let lon = row[5].as_float().unwrap_or(0.0);
                sites.push(GeoPoint::new(lon, lat));
                let city = row[1].as_text().unwrap_or("");
                let state = row[2].as_text().unwrap_or("");
                let cc = row[3].as_text().unwrap_or("");
                labels.push(if state.is_empty() {
                    format!("{city}-{cc}")
                } else {
                    format!("{city}-{state}-{cc}")
                });
            }
            (sites, labels)
        })
        .map_err(|e| e.to_string())?;
    let index = NearestSiteIndex::new(sites);
    match index.nearest(&GeoPoint::new(lon, lat)) {
        Some((id, km)) => {
            println!("{} ({km:.1} km from the city point)", labels[id]);
            Ok(())
        }
        None => Err("database has no city points".into()),
    }
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let db = open_db(args)?;
    let out = PathBuf::from(require(args, "--out")?);
    // Re-extract the three layers straight from the relations (same logic
    // as analysis::export, but over a loaded database).
    let mut features: Vec<String> = Vec::new();
    let mut push_geoms = |table: &str, col: usize, layer: &str| -> Result<usize, String> {
        db.with_table(table, |t| {
            let mut n = 0;
            for (_, row) in t.iter() {
                if let Some(wkt) = row[col].as_text() {
                    if let Ok(geom) = igdb_geo::parse_wkt(wkt) {
                        features.push(feature_json(layer, &geom));
                        n += 1;
                    }
                }
            }
            n
        })
        .map_err(|e| e.to_string())
    };
    let paths = push_geoms("phys_conn", 7, "row_paths")?;
    let cables = push_geoms("sub_cables", 4, "cables")?;
    let nodes = db
        .with_table("phys_nodes", |t| {
            let mut n = 0;
            for (_, row) in t.iter() {
                if let (Some(lat), Some(lon)) = (row[6].as_float(), row[7].as_float()) {
                    features.push(feature_json(
                        "nodes",
                        &igdb_geo::Geometry::Point(GeoPoint::new(lon, lat)),
                    ));
                    n += 1;
                }
            }
            n
        })
        .map_err(|e| e.to_string())?;
    let doc = format!(
        "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
        features.join(",")
    );
    std::fs::write(&out, doc).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({nodes} nodes, {paths} paths, {cables} cables)",
        out.display()
    );
    Ok(())
}

fn feature_json(layer: &str, geom: &igdb_geo::Geometry) -> String {
    use igdb_geo::Geometry as G;
    let coords = |p: &GeoPoint| format!("[{},{}]", p.lon, p.lat);
    let geometry = match geom {
        G::Point(p) => format!("{{\"type\":\"Point\",\"coordinates\":{}}}", coords(p)),
        G::LineString(ls) => format!(
            "{{\"type\":\"LineString\",\"coordinates\":[{}]}}",
            ls.0.iter().map(|p| coords(p)).collect::<Vec<_>>().join(",")
        ),
        G::MultiLineString(mls) => format!(
            "{{\"type\":\"MultiLineString\",\"coordinates\":[{}]}}",
            mls.0
                .iter()
                .map(|ls| format!(
                    "[{}]",
                    ls.0.iter().map(|p| coords(p)).collect::<Vec<_>>().join(",")
                ))
                .collect::<Vec<_>>()
                .join(",")
        ),
        other => {
            let wkt = igdb_geo::to_wkt(other);
            format!("{{\"type\":\"GeometryCollection\",\"note\":{wkt:?},\"geometries\":[]}}")
        }
    };
    format!(
        "{{\"type\":\"Feature\",\"properties\":{{\"layer\":\"{layer}\"}},\"geometry\":{geometry}}}"
    )
}
