//! Autonomous systems and their business-relationship graph.

use std::collections::HashMap;
use std::fmt;

/// An AS number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// The Gao–Rexford relationship between two adjacent ASes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsRelationship {
    /// First AS is a customer of the second (pays for transit).
    CustomerOf,
    /// Settlement-free peers.
    Peer,
    /// First AS is a provider of the second.
    ProviderOf,
}

impl AsRelationship {
    /// The relationship as seen from the other endpoint.
    pub fn reversed(&self) -> Self {
        match self {
            AsRelationship::CustomerOf => AsRelationship::ProviderOf,
            AsRelationship::Peer => AsRelationship::Peer,
            AsRelationship::ProviderOf => AsRelationship::CustomerOf,
        }
    }
}

/// Coarse role of an AS in the routing ecosystem, used by the synthetic
/// topology generator and useful for analyses (e.g. picking transit ASes
/// for the Table 3 / Figure 7 experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Global transit-free backbone (peers with all other tier-1s).
    Tier1,
    /// Regional transit provider.
    Tier2,
    /// Stub: access/content/enterprise network that buys all transit.
    Stub,
}

/// An AS graph with typed edges.
///
/// Edges are stored per-AS as adjacency lists annotated with the
/// relationship *from this AS's point of view*; the reverse entry is kept
/// in sync by [`AsGraph::add_edge`].
#[derive(Debug)]
pub struct AsGraph {
    /// ASN → tier.
    tiers: HashMap<Asn, Tier>,
    /// ASN → (neighbor, relationship from the keyed AS's perspective).
    adj: HashMap<Asn, Vec<(Asn, AsRelationship)>>,
}

impl Default for AsGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl AsGraph {
    pub fn new() -> Self {
        Self {
            tiers: HashMap::new(),
            adj: HashMap::new(),
        }
    }

    /// Registers an AS with its tier. Idempotent (tier may be updated).
    pub fn add_as(&mut self, asn: Asn, tier: Tier) {
        self.tiers.insert(asn, tier);
        self.adj.entry(asn).or_default();
    }

    /// Adds the edge `a —rel→ b` (e.g. `rel = CustomerOf` means `a` buys
    /// transit from `b`), keeping both adjacency lists in sync. Duplicate
    /// edges are ignored.
    pub fn add_edge(&mut self, a: Asn, b: Asn, rel: AsRelationship) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default();
        self.adj.entry(b).or_default();
        let fwd = self.adj.get_mut(&a).unwrap();
        if fwd.iter().any(|(n, _)| *n == b) {
            return;
        }
        fwd.push((b, rel));
        self.adj.get_mut(&b).unwrap().push((a, rel.reversed()));
    }

    pub fn contains(&self, asn: Asn) -> bool {
        self.adj.contains_key(&asn)
    }

    pub fn tier(&self, asn: Asn) -> Option<Tier> {
        self.tiers.get(&asn).copied()
    }

    /// All registered ASNs, sorted for determinism.
    pub fn asns(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.adj.keys().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.adj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbours with relationships from `asn`'s perspective.
    pub fn neighbors(&self, asn: Asn) -> &[(Asn, AsRelationship)] {
        self.adj.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Neighbours that are customers of `asn`.
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        self.filtered(asn, AsRelationship::ProviderOf)
    }

    /// Neighbours that are providers of `asn`.
    pub fn providers(&self, asn: Asn) -> Vec<Asn> {
        self.filtered(asn, AsRelationship::CustomerOf)
    }

    /// Settlement-free peers of `asn`.
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.filtered(asn, AsRelationship::Peer)
    }

    fn filtered(&self, asn: Asn, rel: AsRelationship) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .neighbors(asn)
            .iter()
            .filter(|(_, r)| *r == rel)
            .map(|(n, _)| *n)
            .collect();
        v.sort_unstable();
        v
    }

    /// The relationship from `a` to `b`, if adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<AsRelationship> {
        self.neighbors(a).iter().find(|(n, _)| *n == b).map(|(_, r)| *r)
    }
}

/// True if `path` (origin last) is valley-free under the graph's
/// relationships: once a path goes "down" (provider→customer) or "across"
/// (peer), it may never go "up" or "across" again. Unknown adjacencies
/// make the path invalid.
pub fn is_valley_free(graph: &AsGraph, path: &[Asn]) -> bool {
    if path.len() < 2 {
        return true;
    }
    // Follow the announcement in propagation order: it starts at the
    // origin (path's last element) and travels toward the observer
    // (path's first element).
    #[derive(PartialEq)]
    enum Phase {
        Up,
        Down,
    }
    let mut phase = Phase::Up;
    for w in path.windows(2).rev() {
        // This step: w[1] (origin side) announces to w[0].
        let rel = match graph.relationship(w[1], w[0]) {
            Some(r) => r,
            None => return false,
        };
        match rel {
            // w[1] is a customer of w[0]: the announcement travelled up,
            // which is only legal before any peer/provider step.
            AsRelationship::CustomerOf => {
                if phase != Phase::Up {
                    return false;
                }
            }
            // At most one peer crossing, at the apex; afterwards only down.
            AsRelationship::Peer => {
                if phase != Phase::Up {
                    return false;
                }
                phase = Phase::Down;
            }
            // Provider → customer: always exportable, and locks the path
            // into the downhill phase.
            AsRelationship::ProviderOf => {
                phase = Phase::Down;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed hierarchy:
    ///
    /// ```text
    ///    1 ===== 2        (tier-1 peers)
    ///   / \     / \
    ///  10  11  12  13     (tier-2 customers; 11 -- 12 peer)
    ///  |    \  /    |
    /// 100    101   102    (stubs; 101 multihomed to 11 and 12)
    /// ```
    fn sample() -> AsGraph {
        let mut g = AsGraph::new();
        for (asn, tier) in [
            (1, Tier::Tier1),
            (2, Tier::Tier1),
            (10, Tier::Tier2),
            (11, Tier::Tier2),
            (12, Tier::Tier2),
            (13, Tier::Tier2),
            (100, Tier::Stub),
            (101, Tier::Stub),
            (102, Tier::Stub),
        ] {
            g.add_as(Asn(asn), tier);
        }
        g.add_edge(Asn(1), Asn(2), AsRelationship::Peer);
        for (c, p) in [(10, 1), (11, 1), (12, 2), (13, 2)] {
            g.add_edge(Asn(c), Asn(p), AsRelationship::CustomerOf);
        }
        g.add_edge(Asn(11), Asn(12), AsRelationship::Peer);
        for (c, p) in [(100, 10), (101, 11), (101, 12), (102, 13)] {
            g.add_edge(Asn(c), Asn(p), AsRelationship::CustomerOf);
        }
        g
    }

    #[test]
    fn edges_symmetric_with_reversed_rel() {
        let g = sample();
        assert_eq!(g.relationship(Asn(10), Asn(1)), Some(AsRelationship::CustomerOf));
        assert_eq!(g.relationship(Asn(1), Asn(10)), Some(AsRelationship::ProviderOf));
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(AsRelationship::Peer));
        assert_eq!(g.relationship(Asn(2), Asn(1)), Some(AsRelationship::Peer));
        assert_eq!(g.relationship(Asn(1), Asn(101)), None);
    }

    #[test]
    fn customer_provider_peer_views() {
        let g = sample();
        assert_eq!(g.customers(Asn(1)), vec![Asn(10), Asn(11)]);
        assert_eq!(g.providers(Asn(101)), vec![Asn(11), Asn(12)]);
        assert_eq!(g.peers(Asn(11)), vec![Asn(12)]);
        assert!(g.customers(Asn(100)).is_empty());
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = sample();
        let edges_before = g.edge_count();
        g.add_edge(Asn(10), Asn(1), AsRelationship::CustomerOf);
        g.add_edge(Asn(1), Asn(1), AsRelationship::Peer);
        assert_eq!(g.edge_count(), edges_before);
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.len(), 9);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.tier(Asn(1)), Some(Tier::Tier1));
        assert_eq!(g.tier(Asn(101)), Some(Tier::Stub));
    }

    #[test]
    fn valley_free_accepts_valid_paths() {
        let g = sample();
        // Observer 100, origin 102: 100←10←1←2←13←102 (up, up, across, down, down
        // read origin-side; as stored path [100,10,1,2,13,102]).
        assert!(is_valley_free(&g, &[Asn(100), Asn(10), Asn(1), Asn(2), Asn(13), Asn(102)]));
        // Pure uphill: [1, 10, 100] means 100 announced up through 10 to 1.
        assert!(is_valley_free(&g, &[Asn(1), Asn(10), Asn(100)]));
        // Peer step then down: [11, 12, 101].
        assert!(is_valley_free(&g, &[Asn(11), Asn(12), Asn(101)]));
    }

    #[test]
    fn valley_free_rejects_valleys_and_unknown_edges() {
        let g = sample();
        // 11 heard 101's route from its peer 12 and must not export it to
        // its provider 1 (peer route leaked upward).
        assert!(!is_valley_free(&g, &[Asn(10), Asn(1), Asn(11), Asn(12), Asn(101)]));
        // Peer crossing followed by another upward step (2 heard from peer
        // 1 a route 1 had heard from customer... the step 11→... wait:
        // here 12 announces to 11 across a peer link, then 11 announces
        // upward to 1 — the same leak one AS earlier in the path.
        assert!(!is_valley_free(&g, &[Asn(2), Asn(1), Asn(11), Asn(12), Asn(101)]));
        // A legal across-at-the-apex path for contrast: up, up, across, down.
        assert!(is_valley_free(&g, &[Asn(11), Asn(1), Asn(2), Asn(12), Asn(101)]));
        // Unknown adjacency.
        assert!(!is_valley_free(&g, &[Asn(100), Asn(102)]));
    }

    #[test]
    fn valley_free_trivial_paths() {
        let g = sample();
        assert!(is_valley_free(&g, &[]));
        assert!(is_valley_free(&g, &[Asn(1)]));
    }
}
