//! IPv4 addresses and CIDR prefixes.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a host-order `u32` newtype.
///
/// We use our own type rather than `std::net::Ipv4Addr` because the trie,
/// allocator and traceroute simulator all operate on the raw integer, and
/// the newtype keeps bit-twiddling explicit and checked in one place.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip4(pub u32);

impl Ip4 {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The bit at position `i` counted from the most significant (bit 0 is
    /// the top bit). Used by the trie.
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.0 >> (31 - i)) & 1 == 1
    }
}

impl fmt::Display for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing an address or prefix from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIpError(pub String);

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad IPv4 value: {}", self.0)
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ip4 {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseIpError(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            if p.is_empty() || (p.len() > 1 && p.starts_with('0')) {
                return Err(ParseIpError(s.to_string()));
            }
            octets[i] = p.parse::<u8>().map_err(|_| ParseIpError(s.to_string()))?;
        }
        Ok(Ip4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// A CIDR prefix. The network address is always masked (host bits zero), so
/// two equal prefixes compare equal regardless of how they were built.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    network: u32,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, masking host bits. `len` is clamped to 32.
    pub fn new(addr: Ip4, len: u8) -> Self {
        let len = len.min(32);
        Self {
            network: addr.0 & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    pub fn network(&self) -> Ip4 {
        Ip4(self.network)
    }

    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered (saturates at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len as u32)
        }
    }

    pub fn contains(&self, ip: Ip4) -> bool {
        ip.0 & Self::mask(self.len) == self.network
    }

    /// True if `other` is fully inside `self` (including equality).
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.network())
    }

    /// The `i`-th address inside the prefix; `None` past the end.
    pub fn nth(&self, i: u32) -> Option<Ip4> {
        if self.len == 0 || i < self.size() {
            self.network.checked_add(i).map(Ip4)
        } else {
            None
        }
    }

    /// Splits into the two child prefixes of length `len+1`; `None` at /32.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let lo = Prefix::new(Ip4(self.network), child_len);
        let hi = Prefix::new(Ip4(self.network | (1 << (31 - self.len as u32))), child_len);
        Some((lo, hi))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| ParseIpError(s.to_string()))?;
        let ip: Ip4 = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| ParseIpError(s.to_string()))?;
        if len > 32 {
            return Err(ParseIpError(s.to_string()));
        }
        Ok(Prefix::new(ip, len))
    }
}

/// Sequentially allocates disjoint prefixes of a given length out of a
/// parent block — how `igdb-synth` assigns address space to synthetic ASes.
pub struct PrefixAllocator {
    parent: Prefix,
    next: u32,
}

impl PrefixAllocator {
    pub fn new(parent: Prefix) -> Self {
        Self {
            parent,
            next: parent.network().0,
        }
    }

    /// The next free sub-prefix of length `len`, or `None` when the parent
    /// block is exhausted. `len` must be ≥ the parent length.
    pub fn alloc(&mut self, len: u8) -> Option<Prefix> {
        if len < self.parent.len() || len > 32 {
            return None;
        }
        let size = 1u32 << (32 - len as u32);
        // Align upward.
        let aligned = self.next.checked_add(size - 1)? & !(size - 1);
        let end_exclusive = (self.parent.network().0 as u64) + self.parent.size() as u64;
        if (aligned as u64) + (size as u64) > end_exclusive {
            return None;
        }
        self.next = aligned.checked_add(size)?;
        Some(Prefix::new(Ip4(aligned), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_parse_and_display_round_trip() {
        for s in ["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.0.2.1"] {
            let ip: Ip4 = s.parse().unwrap();
            assert_eq!(ip.to_string(), s);
        }
    }

    #[test]
    fn ip_parse_rejects_malformed() {
        for s in ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "", "1..2.3"] {
            assert!(s.parse::<Ip4>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn ip_bits_msb_first() {
        let ip = Ip4::new(0b1000_0000, 0, 0, 1);
        assert!(ip.bit(0));
        assert!(!ip.bit(1));
        assert!(ip.bit(31));
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 24);
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(p, "10.1.2.0/24".parse().unwrap());
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains("10.255.0.1".parse().unwrap()));
        assert!(!p.contains("11.0.0.0".parse().unwrap()));
        let q: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(p.covers(&p));
    }

    #[test]
    fn prefix_zero_len_contains_everything() {
        let p: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(p.contains("255.255.255.255".parse().unwrap()));
        assert!(p.contains("0.0.0.0".parse().unwrap()));
        assert_eq!(p.size(), u32::MAX);
    }

    #[test]
    fn prefix_nth_and_bounds() {
        let p: Prefix = "192.0.2.0/30".parse().unwrap();
        assert_eq!(p.nth(0).unwrap().to_string(), "192.0.2.0");
        assert_eq!(p.nth(3).unwrap().to_string(), "192.0.2.3");
        assert!(p.nth(4).is_none());
    }

    #[test]
    fn prefix_split() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        let p32: Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(p32.split().is_none());
    }

    #[test]
    fn prefix_parse_rejects_bad_len() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn allocator_disjoint_and_exhausts() {
        let parent: Prefix = "10.0.0.0/22".parse().unwrap();
        let mut alloc = PrefixAllocator::new(parent);
        let mut got = Vec::new();
        while let Some(p) = alloc.alloc(24) {
            got.push(p);
        }
        assert_eq!(got.len(), 4);
        for (i, a) in got.iter().enumerate() {
            assert!(parent.covers(a));
            for b in &got[i + 1..] {
                assert!(!a.covers(b) && !b.covers(a), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn allocator_mixed_sizes_align() {
        let mut alloc = PrefixAllocator::new("10.0.0.0/16".parse().unwrap());
        let a = alloc.alloc(26).unwrap(); // 10.0.0.0/26
        let b = alloc.alloc(24).unwrap(); // must skip to the next /24 boundary
        assert_eq!(a.to_string(), "10.0.0.0/26");
        assert_eq!(b.to_string(), "10.0.1.0/24");
        assert!(!a.covers(&b) && !b.covers(&a));
    }

    #[test]
    fn allocator_rejects_larger_than_parent() {
        let mut alloc = PrefixAllocator::new("10.0.0.0/16".parse().unwrap());
        assert!(alloc.alloc(8).is_none());
    }
}
