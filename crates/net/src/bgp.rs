//! Valley-free (Gao–Rexford) BGP route propagation.
//!
//! iGDB's `asn_conn` relation is built from "the aggregation of all the
//! RouteViews and RIPE RIS BGP announcements" (paper §2). To simulate those
//! announcements we implement the standard Gao–Rexford model:
//!
//! * **Preferences** — customer routes over peer routes over provider
//!   routes, then shortest AS path, then lowest next-hop ASN.
//! * **Export rules** — customer-learned (and self-originated) routes go to
//!   everyone; peer- and provider-learned routes go to customers only.
//!
//! Propagation for one origin runs in three phases that encode exactly
//! those rules: customer routes flow *up* provider links (BFS), cross *at
//! most one* peer link, then provider routes flow *down* customer links
//! (Dijkstra over the already-routed set). The result is, per AS, its best
//! path to the origin — or no path if the origin is unreachable.

use std::collections::{BinaryHeap, HashMap};

use crate::asn::{AsGraph, Asn};

/// How an AS learned its best route to the origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKind {
    /// This AS is the origin.
    Origin,
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider (least preferred).
    Provider,
}

/// A selected route: how it was learned and the full AS path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    pub kind: RouteKind,
    /// AS path, `path[0]` = the route's owner, `path.last()` = origin.
    pub path: Vec<Asn>,
}

/// Reusable propagation engine: pre-indexes the graph once so thousands of
/// per-origin propagations (one per announced prefix) stay cheap.
pub struct Propagator {
    asns: Vec<Asn>,
    index: HashMap<Asn, u32>,
    customers: Vec<Vec<u32>>,
    peers: Vec<Vec<u32>>,
    providers: Vec<Vec<u32>>,
}

/// Result of propagating one origin: per-AS selected route, stored
/// compactly as (kind, next hop, length); full paths are reconstructed on
/// demand by walking next hops.
pub struct RouteTable<'p> {
    propagator: &'p Propagator,
    origin: u32,
    kind: Vec<Option<RouteKind>>,
    next: Vec<u32>,
    len: Vec<u32>,
}

const NO_NEXT: u32 = u32::MAX;

impl Propagator {
    pub fn new(graph: &AsGraph) -> Self {
        let asns = graph.asns();
        let index: HashMap<Asn, u32> = asns
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        let n = asns.len();
        let mut customers = vec![Vec::new(); n];
        let mut peers = vec![Vec::new(); n];
        let mut providers = vec![Vec::new(); n];
        for (i, &a) in asns.iter().enumerate() {
            for c in graph.customers(a) {
                customers[i].push(index[&c]);
            }
            for p in graph.peers(a) {
                peers[i].push(index[&p]);
            }
            for p in graph.providers(a) {
                providers[i].push(index[&p]);
            }
        }
        Self {
            asns,
            index,
            customers,
            peers,
            providers,
        }
    }

    pub fn len(&self) -> usize {
        self.asns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Runs the three-phase Gao–Rexford propagation from `origin`.
    ///
    /// # Panics
    /// Panics if `origin` is not in the graph.
    pub fn propagate(&self, origin: Asn) -> RouteTable<'_> {
        let o = *self
            .index
            .get(&origin)
            .unwrap_or_else(|| panic!("{origin} not in graph"));
        let n = self.asns.len();
        let mut kind: Vec<Option<RouteKind>> = vec![None; n];
        let mut next: Vec<u32> = vec![NO_NEXT; n];
        let mut len: Vec<u32> = vec![0; n];
        kind[o as usize] = Some(RouteKind::Origin);

        // Phase 1 — customer routes travel up provider links, level
        // (path-length) synchronous BFS with lowest-next-hop tie-break.
        let mut level = vec![o];
        while !level.is_empty() {
            // target -> best next hop (by ASN) at this level
            let mut adopt: HashMap<u32, u32> = HashMap::new();
            for &x in &level {
                for &p in &self.providers[x as usize] {
                    if kind[p as usize].is_some() {
                        continue;
                    }
                    let e = adopt.entry(p).or_insert(x);
                    if self.asns[x as usize] < self.asns[*e as usize] {
                        *e = x;
                    }
                }
            }
            let mut next_level: Vec<u32> = adopt.keys().copied().collect();
            next_level.sort_unstable();
            for (&p, &x) in &adopt {
                kind[p as usize] = Some(RouteKind::Customer);
                next[p as usize] = x;
                len[p as usize] = len[x as usize] + 1;
            }
            level = next_level;
        }

        // Phase 2 — one peer crossing. Every AS holding a customer/origin
        // route offers it to its peers; peers without a route adopt the
        // best offer (shortest, then lowest next-hop ASN).
        let mut offers: HashMap<u32, (u32, u32)> = HashMap::new(); // target -> (len, next)
        for x in 0..n as u32 {
            if !matches!(
                kind[x as usize],
                Some(RouteKind::Origin) | Some(RouteKind::Customer)
            ) {
                continue;
            }
            for &q in &self.peers[x as usize] {
                if kind[q as usize].is_some() {
                    continue;
                }
                let cand = (len[x as usize] + 1, x);
                let e = offers.entry(q).or_insert(cand);
                if (cand.0, self.asns[cand.1 as usize]) < (e.0, self.asns[e.1 as usize]) {
                    *e = cand;
                }
            }
        }
        for (&q, &(l, x)) in &offers {
            kind[q as usize] = Some(RouteKind::Peer);
            next[q as usize] = x;
            len[q as usize] = l;
        }

        // Phase 3 — provider routes travel down customer links. Dijkstra
        // (unit weights) from every routed AS simultaneously; tie-break on
        // lowest next-hop ASN, then lowest target ASN, for determinism.
        #[derive(PartialEq, Eq)]
        struct Entry {
            len: u32,
            next_asn: u32,
            target: u32,
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // BinaryHeap is a max-heap: reverse for min-first.
                (other.len, other.next_asn, other.target).cmp(&(
                    self.len,
                    self.next_asn,
                    self.target,
                ))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        let mut via: HashMap<(u32, u32), ()> = HashMap::new(); // (target, next) pushed
        for x in 0..n as u32 {
            if kind[x as usize].is_none() {
                continue;
            }
            for &c in &self.customers[x as usize] {
                if kind[c as usize].is_none() && via.insert((c, x), ()).is_none() {
                    heap.push(Entry {
                        len: len[x as usize] + 1,
                        next_asn: self.asns[x as usize].0,
                        target: c,
                    });
                }
            }
        }
        while let Some(Entry {
            len: l,
            next_asn,
            target,
        }) = heap.pop()
        {
            if kind[target as usize].is_some() {
                continue;
            }
            kind[target as usize] = Some(RouteKind::Provider);
            next[target as usize] = self.index[&Asn(next_asn)];
            len[target as usize] = l;
            for &c in &self.customers[target as usize] {
                if kind[c as usize].is_none() && via.insert((c, target), ()).is_none() {
                    heap.push(Entry {
                        len: l + 1,
                        next_asn: self.asns[target as usize].0,
                        target: c,
                    });
                }
            }
        }

        RouteTable {
            propagator: self,
            origin: o,
            kind,
            next,
            len,
        }
    }
}

impl RouteTable<'_> {
    pub fn origin(&self) -> Asn {
        self.propagator.asns[self.origin as usize]
    }

    /// Whether `from` has any route to the origin.
    pub fn has_route(&self, from: Asn) -> bool {
        self.propagator
            .index
            .get(&from)
            .map_or(false, |&i| self.kind[i as usize].is_some())
    }

    /// The selected route from `from` to the origin.
    pub fn route(&self, from: Asn) -> Option<Route> {
        let &i = self.propagator.index.get(&from)?;
        let kind = self.kind[i as usize]?;
        let mut path = Vec::with_capacity(self.len[i as usize] as usize + 1);
        let mut cur = i;
        loop {
            path.push(self.propagator.asns[cur as usize]);
            if cur == self.origin {
                break;
            }
            cur = self.next[cur as usize];
            debug_assert_ne!(cur, NO_NEXT, "routed AS must have a next hop");
        }
        Some(Route { kind, path })
    }

    /// Number of ASes with a route to the origin (including the origin).
    pub fn reachable_count(&self) -> usize {
        self.kind.iter().filter(|k| k.is_some()).count()
    }
}

/// One-shot convenience for tests and small tasks; production callers use
/// [`Propagator`] to amortize graph indexing.
pub fn propagate_routes(graph: &AsGraph, origin: Asn) -> Vec<(Asn, Route)> {
    let prop = Propagator::new(graph);
    let table = prop.propagate(origin);
    graph
        .asns()
        .into_iter()
        .filter_map(|a| table.route(a).map(|r| (a, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::{is_valley_free, AsRelationship, Tier};

    /// Same topology as `asn::tests::sample`.
    fn sample() -> AsGraph {
        let mut g = AsGraph::new();
        for (asn, tier) in [
            (1, Tier::Tier1),
            (2, Tier::Tier1),
            (10, Tier::Tier2),
            (11, Tier::Tier2),
            (12, Tier::Tier2),
            (13, Tier::Tier2),
            (100, Tier::Stub),
            (101, Tier::Stub),
            (102, Tier::Stub),
        ] {
            g.add_as(Asn(asn), tier);
        }
        g.add_edge(Asn(1), Asn(2), AsRelationship::Peer);
        for (c, p) in [(10, 1), (11, 1), (12, 2), (13, 2)] {
            g.add_edge(Asn(c), Asn(p), AsRelationship::CustomerOf);
        }
        g.add_edge(Asn(11), Asn(12), AsRelationship::Peer);
        for (c, p) in [(100, 10), (101, 11), (101, 12), (102, 13)] {
            g.add_edge(Asn(c), Asn(p), AsRelationship::CustomerOf);
        }
        g
    }

    #[test]
    fn origin_has_origin_route() {
        let g = sample();
        let routes: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(102)).into_iter().collect();
        let r = &routes[&Asn(102)];
        assert_eq!(r.kind, RouteKind::Origin);
        assert_eq!(r.path, vec![Asn(102)]);
    }

    #[test]
    fn all_ases_reach_stub_origin() {
        let g = sample();
        let routes = propagate_routes(&g, Asn(102));
        assert_eq!(routes.len(), 9, "everyone should reach AS102");
    }

    #[test]
    fn all_paths_are_valley_free() {
        let g = sample();
        for origin in [102u32, 100, 101, 1, 12] {
            for (_, r) in propagate_routes(&g, Asn(origin)) {
                assert!(
                    is_valley_free(&g, &r.path),
                    "path {:?} to {origin} not valley-free",
                    r.path
                );
            }
        }
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        let g = sample();
        // From 11 to origin 101: 101 is a customer of 11, so the direct
        // customer route wins over anything via peer 12.
        let routes: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(101)).into_iter().collect();
        let r = &routes[&Asn(11)];
        assert_eq!(r.kind, RouteKind::Customer);
        assert_eq!(r.path, vec![Asn(11), Asn(101)]);
    }

    #[test]
    fn peer_route_taken_when_no_customer_route() {
        let g = sample();
        // From 11 to origin 102: 102 sits under 13 under 2. 11 has no
        // customer path; its peer 12 has no customer path to 102 either
        // (102 is not in 12's customer cone), so 11 must use its provider
        // 1 (1 peers with 2). Check kind is Provider and path valley-free.
        let routes: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(102)).into_iter().collect();
        let r = &routes[&Asn(11)];
        assert_eq!(r.kind, RouteKind::Provider);
        assert_eq!(r.path, vec![Asn(11), Asn(1), Asn(2), Asn(13), Asn(102)]);

        // From 12 to origin 101: 101 IS a customer of 12 → customer route;
        // but from 10 to 101 there is no customer/peer option: 10's only
        // route is via provider 1, then down? 1 can reach 101 via customer
        // 11. So 10's path: 10, 1, 11, 101 (provider route).
        let routes2: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(101)).into_iter().collect();
        let r10 = &routes2[&Asn(10)];
        assert_eq!(r10.kind, RouteKind::Provider);
        assert_eq!(r10.path, vec![Asn(10), Asn(1), Asn(11), Asn(101)]);
    }

    #[test]
    fn peer_kind_assigned_at_apex() {
        let g = sample();
        // From 1 to origin 102: 1 has no customer path to 102; its peer 2
        // has a customer path (2→13→102). So 1's route kind is Peer.
        let routes: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(102)).into_iter().collect();
        let r = &routes[&Asn(1)];
        assert_eq!(r.kind, RouteKind::Peer);
        assert_eq!(r.path, vec![Asn(1), Asn(2), Asn(13), Asn(102)]);
    }

    #[test]
    fn multihomed_stub_tie_breaks_deterministically() {
        let g = sample();
        // 101 is a customer of both 11 and 12. From origin 101, AS 1
        // reaches it via customer 11 (path len 2); AS 2 via customer 12.
        let routes: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(101)).into_iter().collect();
        assert_eq!(routes[&Asn(1)].path, vec![Asn(1), Asn(11), Asn(101)]);
        assert_eq!(routes[&Asn(2)].path, vec![Asn(2), Asn(12), Asn(101)]);
    }

    #[test]
    fn disconnected_as_unreachable() {
        let mut g = sample();
        g.add_as(Asn(999), Tier::Stub); // island
        let routes: std::collections::HashMap<Asn, Route> =
            propagate_routes(&g, Asn(102)).into_iter().collect();
        assert!(!routes.contains_key(&Asn(999)));
        // And propagating FROM the island reaches only itself.
        let from_island = propagate_routes(&g, Asn(999));
        assert_eq!(from_island.len(), 1);
    }

    #[test]
    fn propagator_reuse_matches_one_shot() {
        let g = sample();
        let prop = Propagator::new(&g);
        for origin in [100u32, 101, 102] {
            let table = prop.propagate(Asn(origin));
            let one_shot: std::collections::HashMap<Asn, Route> =
                propagate_routes(&g, Asn(origin)).into_iter().collect();
            for asn in g.asns() {
                assert_eq!(table.route(asn), one_shot.get(&asn).cloned());
            }
            assert_eq!(table.reachable_count(), one_shot.len());
        }
    }

    #[test]
    #[should_panic(expected = "not in graph")]
    fn propagate_unknown_origin_panics() {
        let g = sample();
        Propagator::new(&g).propagate(Asn(424242));
    }
}
