//! `igdb-net` — the logical-layer substrate of iGDB.
//!
//! The paper's logical topology comes from two machineries this crate
//! rebuilds from scratch:
//!
//! * **Addressing** ([`ip`], [`trie`]) — IPv4 addresses and prefixes, plus
//!   a binary radix trie for longest-prefix matching. This is the substrate
//!   under the bdrmapIT-style IP→AS mapping of §3.2 step (1).
//! * **Inter-domain routing** ([`asn`], [`bgp`], [`collector`]) — an AS
//!   graph with Gao–Rexford business relationships, valley-free route
//!   propagation, and route collectors that observe AS paths the way
//!   RouteViews / RIPE RIS do. CAIDA's AS Rank — the paper's source for the
//!   `asn_conn` relation — is "the aggregation of all the RouteViews and
//!   RIPE RIS BGP announcements" (§2); [`collector`] performs exactly that
//!   aggregation over simulated announcements, including customer-cone
//!   ranking.

pub mod asn;
pub mod bgp;
pub mod collector;
pub mod ip;
pub mod trie;

pub use asn::{AsGraph, AsRelationship, Asn, Tier};
pub use bgp::{propagate_routes, Propagator, Route, RouteKind, RouteTable};
pub use collector::{aggregate_paths, customer_cones, CollectedPaths};
pub use ip::{Ip4, ParseIpError, Prefix};
pub use trie::PrefixTrie;
