//! Binary radix trie for longest-prefix matching.
//!
//! IP→AS mapping (paper §3.2, step 1) requires, for every traceroute hop,
//! finding the most specific announced prefix covering the address — the
//! operation routers perform on every packet and bdrmapIT performs on every
//! hop. This trie stores `(Prefix, T)` pairs and answers longest-prefix
//! queries in at most 32 node steps.

use crate::ip::{Ip4, Prefix};

/// A node in the binary trie, stored in the arena. Children index 0
/// follows a 0 bit; [`NONE`] marks an absent child.
struct Node<T> {
    children: [u32; 2],
    /// Payload if a prefix terminates at this node.
    value: Option<T>,
}

const NONE: u32 = u32::MAX;

impl<T> Node<T> {
    fn new() -> Self {
        Self {
            children: [NONE, NONE],
            value: None,
        }
    }
}

/// Longest-prefix-match table.
///
/// Nodes live in one flat arena indexed by `u32` rather than one `Box`
/// per node: a populated RIB allocates hundreds of thousands of nodes,
/// and the boxed layout cost two pointers plus allocator overhead per
/// node while scattering lookups across the heap. The arena form is one
/// allocation, 16 bytes per node for `T = Asn`, and walks sequentially
/// allocated (therefore cache-adjacent) insertion paths. Node 0 is the
/// root and always present.
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if the exact prefix
    /// was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut at = 0usize;
        let net = prefix.network();
        for i in 0..prefix.len() {
            let b = net.bit(i) as usize;
            let mut next = self.nodes[at].children[b];
            if next == NONE {
                next = u32::try_from(self.nodes.len()).expect("trie arena overflow");
                self.nodes.push(Node::new());
                self.nodes[at].children[b] = next;
            }
            at = next as usize;
        }
        let old = self.nodes[at].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value of the exact prefix, if stored.
    pub fn get_exact(&self, prefix: &Prefix) -> Option<&T> {
        let mut at = 0usize;
        let net = prefix.network();
        for i in 0..prefix.len() {
            let b = net.bit(i) as usize;
            let next = self.nodes[at].children[b];
            if next == NONE {
                return None;
            }
            at = next as usize;
        }
        self.nodes[at].value.as_ref()
    }

    /// Longest-prefix match for an address: the most specific stored
    /// prefix containing `ip`, with its value.
    pub fn lookup(&self, ip: Ip4) -> Option<(Prefix, &T)> {
        let mut at = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = ip.bit(i) as usize;
            let next = self.nodes[at].children[b];
            if next == NONE {
                break;
            }
            at = next as usize;
            if let Some(v) = self.nodes[at].value.as_ref() {
                best = Some((i + 1, v));
            }
        }
        best.map(|(len, v)| (Prefix::new(ip, len), v))
    }

    /// All stored `(prefix, value)` pairs in trie (lexicographic bit)
    /// order.
    pub fn iter(&self) -> Vec<(Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        // Max depth is 33 (root + 32 bits), so recursion is bounded.
        fn walk<'a, T>(
            nodes: &'a [Node<T>],
            at: usize,
            bits: u32,
            depth: u8,
            out: &mut Vec<(Prefix, &'a T)>,
        ) {
            if let Some(v) = nodes[at].value.as_ref() {
                out.push((Prefix::new(Ip4(bits), depth), v));
            }
            for (b, &child) in nodes[at].children.iter().enumerate() {
                if child != NONE {
                    let nb = if b == 1 && depth < 32 {
                        bits | (1 << (31 - depth as u32))
                    } else {
                        bits
                    };
                    walk(nodes, child as usize, nb, depth + 1, out);
                }
            }
        }
        walk(&self.nodes, 0, 0, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ip4 {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_exact_get() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 100), None);
        assert_eq!(t.insert(p("10.1.0.0/16"), 200), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_exact(&p("10.0.0.0/8")), Some(&100));
        assert_eq!(t.get_exact(&p("10.1.0.0/16")), Some(&200));
        assert_eq!(t.get_exact(&p("10.2.0.0/16")), None);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_exact(&p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "coarse");
        t.insert(p("10.1.0.0/16"), "mid");
        t.insert(p("10.1.2.0/24"), "fine");
        let (pre, v) = t.lookup(ip("10.1.2.3")).unwrap();
        assert_eq!(*v, "fine");
        assert_eq!(pre, p("10.1.2.0/24"));
        assert_eq!(*t.lookup(ip("10.1.9.1")).unwrap().1, "mid");
        assert_eq!(*t.lookup(ip("10.9.9.9")).unwrap().1, "coarse");
        assert!(t.lookup(ip("11.0.0.1")).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("192.0.2.0/24"), "doc");
        assert_eq!(*t.lookup(ip("8.8.8.8")).unwrap().1, "default");
        assert_eq!(*t.lookup(ip("192.0.2.55")).unwrap().1, "doc");
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.1/32"), 1);
        assert!(t.lookup(ip("192.0.2.1")).is_some());
        assert!(t.lookup(ip("192.0.2.2")).is_none());
    }

    #[test]
    fn lookup_matches_linear_scan_on_many_prefixes() {
        // Build ~300 deterministic prefixes and compare trie LPM with a
        // brute-force longest-match scan.
        let mut prefixes = Vec::new();
        let mut x: u32 = 0x12345678;
        for i in 0..300u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let len = 8 + (x % 17) as u8; // /8../24
            let addr = Ip4(x ^ i.wrapping_mul(2654435761));
            prefixes.push((Prefix::new(addr, len), i));
        }
        let mut t = PrefixTrie::new();
        let mut dedup = std::collections::HashMap::new();
        for (pre, v) in &prefixes {
            t.insert(*pre, *v);
            dedup.insert(*pre, *v); // later insert wins, same as trie
        }
        for k in 0..200u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let probe = Ip4(x ^ k.wrapping_mul(40503));
            let got = t.lookup(probe).map(|(pre, v)| (pre, *v));
            let want = dedup
                .iter()
                .filter(|(pre, _)| pre.contains(probe))
                .max_by_key(|(pre, _)| pre.len())
                .map(|(pre, v)| (*pre, *v));
            match (got, want) {
                (None, None) => {}
                (Some((gp, gv)), Some((wp, wv))) => {
                    assert_eq!(gp.len(), wp.len(), "probe {probe}");
                    // Same length implies same prefix (both contain probe).
                    assert_eq!(gv, wv, "probe {probe}");
                }
                other => panic!("probe {probe}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn iter_returns_all_inserted() {
        let mut t = PrefixTrie::new();
        let ps = [p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.0.2.0/24"), p("0.0.0.0/0")];
        for (i, pre) in ps.iter().enumerate() {
            t.insert(*pre, i);
        }
        let got: std::collections::HashSet<Prefix> =
            t.iter().into_iter().map(|(pre, _)| pre).collect();
        assert_eq!(got.len(), 4);
        for pre in &ps {
            assert!(got.contains(pre), "{pre} missing from iter");
        }
    }

    #[test]
    fn iter_reconstructs_prefix_bits_correctly() {
        let mut t = PrefixTrie::new();
        t.insert(p("128.0.0.0/1"), 0);
        t.insert(p("255.255.255.255/32"), 1);
        let items = t.iter();
        let strs: Vec<String> = items.iter().map(|(pre, _)| pre.to_string()).collect();
        assert!(strs.contains(&"128.0.0.0/1".to_string()), "{strs:?}");
        assert!(strs.contains(&"255.255.255.255/32".to_string()), "{strs:?}");
    }
}
