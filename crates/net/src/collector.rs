//! Route collectors and AS-graph aggregation (the AS Rank pipeline).
//!
//! CAIDA AS Rank, the paper's source for `asn_conn`, aggregates BGP paths
//! observed at RouteViews and RIPE RIS collector peers into "a graph with
//! undirected edges between two ASes if two ASes were adjacent in an
//! observed AS Path" (§2). This module does the same over simulated
//! announcements: pick vantage ASes (collector peers), record the AS path
//! each vantage selects toward every origin, and aggregate adjacent pairs.
//! It also computes customer cones, AS Rank's ranking metric.

use std::collections::{BTreeSet, HashMap};

use crate::asn::{AsGraph, AsRelationship, Asn};
use crate::bgp::Propagator;

/// The paths observed at a set of vantage points.
pub struct CollectedPaths {
    /// Each observed AS path, vantage first, origin last.
    pub paths: Vec<Vec<Asn>>,
}

impl CollectedPaths {
    /// Simulates collection: for every origin AS, each vantage records its
    /// best path. Paths of length 1 (vantage == origin) are kept — real
    /// collectors see those too as locally-originated prefixes.
    pub fn collect(graph: &AsGraph, vantages: &[Asn], origins: &[Asn]) -> Self {
        let prop = Propagator::new(graph);
        let mut paths = Vec::new();
        for &origin in origins {
            if !graph.contains(origin) {
                continue;
            }
            let table = prop.propagate(origin);
            for &v in vantages {
                if let Some(route) = table.route(v) {
                    paths.push(route.path);
                }
            }
        }
        Self { paths }
    }

    /// Number of observed paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Aggregates observed paths into the undirected adjacency set: one edge
/// per AS pair that appeared adjacent in any path, normalized `(low,
/// high)`, sorted.
pub fn aggregate_paths(paths: &[Vec<Asn>]) -> Vec<(Asn, Asn)> {
    let mut edges: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    for path in paths {
        for w in path.windows(2) {
            let (a, b) = if w[0] <= w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
            if a != b {
                edges.insert((a, b));
            }
        }
    }
    edges.into_iter().collect()
}


/// Infers business relationships from observed AS paths (Gao's classic
/// algorithm, the machinery behind CAIDA's AS-relationship dataset that
/// accompanies AS Rank).
///
/// For every path, the highest-degree AS on it is taken as the "top
/// provider"; edges before it point uphill (customer→provider) and edges
/// after it point downhill. Votes are tallied over all paths:
///
/// * one-sided transit votes → customer/provider,
/// * materially split votes → peer.
///
/// Returns, for each observed pair `(a, b)` with `a < b`, the relationship
/// *from `a`'s perspective*.
pub fn infer_relationships(paths: &[Vec<Asn>]) -> HashMap<(Asn, Asn), AsRelationship> {
    use std::collections::hash_map::Entry;
    // Degree over the observed adjacency graph.
    let mut degree: HashMap<Asn, usize> = HashMap::new();
    for &(a, b) in &aggregate_paths(paths) {
        *degree.entry(a).or_default() += 1;
        *degree.entry(b).or_default() += 1;
    }
    // Votes: (low, high) → (low_is_customer, high_is_customer).
    let mut votes: HashMap<(Asn, Asn), (usize, usize)> = HashMap::new();
    for path in paths {
        if path.len() < 2 {
            continue;
        }
        // Index of the top provider (max degree, leftmost on ties).
        let top = path
            .iter()
            .enumerate()
            .max_by_key(|(i, asn)| (degree.get(asn).copied().unwrap_or(0), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for (i, w) in path.windows(2).enumerate() {
            let (x, y) = (w[0], w[1]);
            if x == y {
                continue;
            }
            let key = (x.min(y), x.max(y));
            let entry = votes.entry(key).or_default();
            // Paths are observer-first: hops left of `top` climb toward
            // it, so the RIGHT element of the window (closer to top) is
            // the provider; right of `top`, the LEFT element is.
            let customer = if i < top { x } else { y };
            if customer == key.0 {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }
    let mut out = HashMap::new();
    for (pair, (low_cust, high_cust)) in votes {
        let rel = if low_cust > 0 && high_cust > 0 {
            // Disagreement: transit seen in both directions → peer-like.
            let (maj, min) = if low_cust >= high_cust {
                (low_cust, high_cust)
            } else {
                (high_cust, low_cust)
            };
            if maj >= 3 * min {
                if low_cust >= high_cust {
                    AsRelationship::CustomerOf
                } else {
                    AsRelationship::ProviderOf
                }
            } else {
                AsRelationship::Peer
            }
        } else if low_cust > 0 {
            AsRelationship::CustomerOf
        } else {
            AsRelationship::ProviderOf
        };
        match out.entry(pair) {
            Entry::Vacant(e) => {
                e.insert(rel);
            }
            Entry::Occupied(_) => unreachable!("one vote bucket per pair"),
        }
    }
    out
}

/// Customer cone sizes: for each AS, the number of distinct ASes reachable
/// by only following provider→customer edges, *including itself* (CAIDA's
/// definition). Computed by DFS with memoized visited sets per query —
/// cycle-safe even if the relationship data is dirty.
pub fn customer_cones(graph: &AsGraph) -> HashMap<Asn, usize> {
    let mut cones = HashMap::new();
    for asn in graph.asns() {
        let mut visited: BTreeSet<Asn> = BTreeSet::new();
        let mut stack = vec![asn];
        while let Some(x) = stack.pop() {
            if !visited.insert(x) {
                continue;
            }
            for c in graph.customers(x) {
                if !visited.contains(&c) {
                    stack.push(c);
                }
            }
        }
        cones.insert(asn, visited.len());
    }
    cones
}

/// ASes ranked by descending customer cone (ties broken by ascending
/// ASN) — the AS Rank ordering.
pub fn rank_by_cone(graph: &AsGraph) -> Vec<(Asn, usize)> {
    let cones = customer_cones(graph);
    let mut v: Vec<(Asn, usize)> = cones.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::{AsRelationship, Tier};

    fn sample() -> AsGraph {
        let mut g = AsGraph::new();
        for (asn, tier) in [
            (1, Tier::Tier1),
            (2, Tier::Tier1),
            (10, Tier::Tier2),
            (11, Tier::Tier2),
            (12, Tier::Tier2),
            (13, Tier::Tier2),
            (100, Tier::Stub),
            (101, Tier::Stub),
            (102, Tier::Stub),
        ] {
            g.add_as(Asn(asn), tier);
        }
        g.add_edge(Asn(1), Asn(2), AsRelationship::Peer);
        for (c, p) in [(10, 1), (11, 1), (12, 2), (13, 2)] {
            g.add_edge(Asn(c), Asn(p), AsRelationship::CustomerOf);
        }
        g.add_edge(Asn(11), Asn(12), AsRelationship::Peer);
        for (c, p) in [(100, 10), (101, 11), (101, 12), (102, 13)] {
            g.add_edge(Asn(c), Asn(p), AsRelationship::CustomerOf);
        }
        g
    }

    #[test]
    fn collection_produces_paths_for_each_vantage_origin_pair() {
        let g = sample();
        let all = g.asns();
        let collected = CollectedPaths::collect(&g, &[Asn(100), Asn(102)], &all);
        // Fully connected topology: every (origin, vantage) pair yields a path.
        assert_eq!(collected.len(), all.len() * 2);
        // Every path starts at a vantage and ends at an origin.
        for p in &collected.paths {
            assert!(matches!(p[0], Asn(100) | Asn(102)));
        }
    }

    #[test]
    fn aggregation_yields_subset_of_true_edges() {
        let g = sample();
        let all = g.asns();
        let collected = CollectedPaths::collect(&g, &all, &all);
        let edges = aggregate_paths(&collected.paths);
        // Observed adjacencies must be real adjacencies.
        for &(a, b) in &edges {
            assert!(
                g.relationship(a, b).is_some(),
                "observed edge {a}-{b} not in graph"
            );
            assert!(a < b, "edges must be normalized");
        }
        // With all-AS vantage coverage we should see most of the graph; at
        // minimum every customer-provider edge is traversed by someone.
        assert!(edges.len() >= 8, "only {} edges observed", edges.len());
    }

    #[test]
    fn sparse_vantages_see_fewer_edges() {
        let g = sample();
        let all = g.asns();
        let dense = aggregate_paths(&CollectedPaths::collect(&g, &all, &all).paths);
        let sparse = aggregate_paths(&CollectedPaths::collect(&g, &[Asn(100)], &all).paths);
        assert!(sparse.len() <= dense.len());
        for e in &sparse {
            assert!(dense.contains(e));
        }
    }

    #[test]
    fn aggregate_dedupes_and_normalizes() {
        let paths = vec![
            vec![Asn(3), Asn(2), Asn(1)],
            vec![Asn(1), Asn(2), Asn(3)],
            vec![Asn(2), Asn(2)], // self-adjacency ignored
        ];
        let edges = aggregate_paths(&paths);
        assert_eq!(edges, vec![(Asn(1), Asn(2)), (Asn(2), Asn(3))]);
    }

    #[test]
    fn customer_cones_match_hierarchy() {
        let g = sample();
        let cones = customer_cones(&g);
        assert_eq!(cones[&Asn(100)], 1, "stubs have cone 1 (self)");
        assert_eq!(cones[&Asn(10)], 2); // self + 100
        assert_eq!(cones[&Asn(11)], 2); // self + 101
        assert_eq!(cones[&Asn(1)], 5); // 1, 10, 11, 100, 101
        assert_eq!(cones[&Asn(2)], 5); // 2, 12, 13, 101, 102
    }

    #[test]
    fn cone_handles_relationship_cycles() {
        // Dirty data: a customer cycle must not hang or double-count.
        let mut g = AsGraph::new();
        for a in [1, 2, 3] {
            g.add_as(Asn(a), Tier::Tier2);
        }
        g.add_edge(Asn(2), Asn(1), AsRelationship::CustomerOf);
        g.add_edge(Asn(3), Asn(2), AsRelationship::CustomerOf);
        g.add_edge(Asn(1), Asn(3), AsRelationship::CustomerOf);
        let cones = customer_cones(&g);
        assert_eq!(cones[&Asn(1)], 3);
        assert_eq!(cones[&Asn(2)], 3);
        assert_eq!(cones[&Asn(3)], 3);
    }

    #[test]
    fn rank_orders_by_cone_then_asn() {
        let g = sample();
        let ranked = rank_by_cone(&g);
        assert_eq!(ranked[0], (Asn(1), 5));
        assert_eq!(ranked[1], (Asn(2), 5));
        let cone_values: Vec<usize> = ranked.iter().map(|r| r.1).collect();
        let mut sorted = cone_values.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(cone_values, sorted);
    }

    #[test]
    fn relationship_inference_mostly_matches_ground_truth() {
        let g = sample();
        let all = g.asns();
        let collected = CollectedPaths::collect(&g, &all, &all);
        let inferred = infer_relationships(&collected.paths);
        assert!(!inferred.is_empty());
        let mut checked = 0;
        let mut correct = 0;
        for (&(a, b), &rel) in &inferred {
            let truth = g.relationship(a, b).expect("observed pairs are real edges");
            checked += 1;
            if truth == rel {
                correct += 1;
            }
        }
        // Gao's heuristic is not exact (esp. peer vs sibling), but must
        // recover the bulk of the hierarchy.
        assert!(
            correct * 10 >= checked * 7,
            "only {correct}/{checked} relationships recovered"
        );
        // The unambiguous stub-provider edges must all be right.
        for (c, p) in [(100u32, 10u32), (102, 13)] {
            let key = (Asn(c.min(p)), Asn(c.max(p)));
            let rel = inferred.get(&key).copied().expect("edge observed");
            let want = g.relationship(key.0, key.1).unwrap();
            assert_eq!(rel, want, "stub edge {key:?}");
        }
    }

    #[test]
    fn relationship_inference_empty_paths() {
        assert!(infer_relationships(&[]).is_empty());
        assert!(infer_relationships(&[vec![Asn(1)]]).is_empty());
    }

    #[test]
    fn collect_skips_unknown_origins() {
        let g = sample();
        let collected = CollectedPaths::collect(&g, &[Asn(1)], &[Asn(9999)]);
        assert!(collected.is_empty());
    }
}
