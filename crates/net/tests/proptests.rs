//! Property-based tests for the logical-layer substrate.

use proptest::prelude::*;

use igdb_net::asn::is_valley_free;
use igdb_net::{AsGraph, AsRelationship, Asn, Ip4, Prefix, PrefixTrie, Propagator, RouteKind, Tier};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ip4(addr), len))
}

proptest! {
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_own_network_and_children(p in arb_prefix()) {
        prop_assert!(p.contains(p.network()));
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.covers(&lo));
            prop_assert!(p.covers(&hi));
            prop_assert!(!lo.covers(&hi));
            prop_assert!(!hi.covers(&lo));
        }
    }

    #[test]
    fn trie_lpm_matches_linear_scan(
        entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 1..80),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie = PrefixTrie::new();
        let mut map: std::collections::HashMap<Prefix, u32> = std::collections::HashMap::new();
        for &(p, v) in &entries {
            trie.insert(p, v);
            map.insert(p, v);
        }
        for &raw in &probes {
            let ip = Ip4(raw);
            let got = trie.lookup(ip).map(|(pre, &v)| (pre.len(), v));
            let want = map
                .iter()
                .filter(|(pre, _)| pre.contains(ip))
                .max_by_key(|(pre, _)| pre.len())
                .map(|(pre, &v)| (pre.len(), v));
            // Compare lengths always; values only when unambiguous (two
            // different prefixes cannot share a length AND contain the
            // same ip, so length equality implies the same prefix).
            prop_assert_eq!(got.map(|g| g.0), want.map(|w| w.0));
            prop_assert_eq!(got.map(|g| g.1), want.map(|w| w.1));
        }
    }

    #[test]
    fn trie_iter_returns_exactly_inserted(
        entries in proptest::collection::vec(arb_prefix(), 1..60),
    ) {
        let mut trie = PrefixTrie::new();
        let mut set = std::collections::HashSet::new();
        for &p in &entries {
            trie.insert(p, ());
            set.insert(p);
        }
        let got: std::collections::HashSet<Prefix> =
            trie.iter().into_iter().map(|(p, _)| p).collect();
        prop_assert_eq!(got, set);
    }
}

/// Builds a random but well-formed AS hierarchy: node 0.. are added in
/// order; every non-first node picks a provider among earlier nodes, and
/// random peer edges connect nodes at similar depth.
fn arb_as_graph() -> impl Strategy<Value = AsGraph> {
    (
        2usize..40,
        proptest::collection::vec(any::<u32>(), 0..60),
        any::<u64>(),
    )
        .prop_map(|(n, peer_seed, salt)| {
            let mut g = AsGraph::new();
            for i in 0..n {
                g.add_as(Asn(i as u32 + 1), if i == 0 { Tier::Tier1 } else { Tier::Stub });
                if i > 0 {
                    let provider = (salt
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i as u64)
                        % i as u64) as u32
                        + 1;
                    g.add_edge(
                        Asn(i as u32 + 1),
                        Asn(provider),
                        AsRelationship::CustomerOf,
                    );
                }
            }
            for (k, raw) in peer_seed.iter().enumerate() {
                let a = (raw % n as u32) + 1;
                let b = ((raw.wrapping_mul(31).wrapping_add(k as u32)) % n as u32) + 1;
                if a != b && g.relationship(Asn(a), Asn(b)).is_none() {
                    g.add_edge(Asn(a), Asn(b), AsRelationship::Peer);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn propagated_routes_always_valley_free(g in arb_as_graph(), origin_raw in any::<u32>()) {
        let asns = g.asns();
        let origin = asns[(origin_raw as usize) % asns.len()];
        let prop = Propagator::new(&g);
        let table = prop.propagate(origin);
        for asn in &asns {
            if let Some(route) = table.route(*asn) {
                prop_assert!(
                    is_valley_free(&g, &route.path),
                    "path {:?} to {origin} violates valley-free",
                    route.path
                );
                prop_assert_eq!(*route.path.first().unwrap(), *asn);
                prop_assert_eq!(*route.path.last().unwrap(), origin);
            }
        }
    }

    #[test]
    fn provider_chains_guarantee_reachability(g in arb_as_graph(), origin_raw in any::<u32>()) {
        // Every AS has a provider chain to AS1 by construction, so every
        // AS can reach every origin (up to the apex, then down).
        let asns = g.asns();
        let origin = asns[(origin_raw as usize) % asns.len()];
        let prop = Propagator::new(&g);
        let table = prop.propagate(origin);
        prop_assert_eq!(table.reachable_count(), asns.len());
    }

    #[test]
    fn route_kind_matches_first_step(g in arb_as_graph(), origin_raw in any::<u32>()) {
        // A route's kind must agree with the relationship toward its next
        // hop: Customer ⇔ next hop is a customer, etc.
        let asns = g.asns();
        let origin = asns[(origin_raw as usize) % asns.len()];
        let prop = Propagator::new(&g);
        let table = prop.propagate(origin);
        for asn in &asns {
            let Some(route) = table.route(*asn) else { continue };
            if route.path.len() < 2 {
                prop_assert_eq!(route.kind, RouteKind::Origin);
                continue;
            }
            let next = route.path[1];
            let rel = g.relationship(*asn, next).expect("adjacent");
            let expected = match rel {
                AsRelationship::ProviderOf => RouteKind::Customer,
                AsRelationship::Peer => RouteKind::Peer,
                AsRelationship::CustomerOf => RouteKind::Provider,
            };
            prop_assert_eq!(route.kind, expected, "AS {} toward {}", asn, next);
        }
    }
}
