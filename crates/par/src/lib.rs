//! Std-only scoped fork-join parallelism for the iGDB pipeline.
//!
//! The build pipeline has several embarrassingly parallel hot loops (spatial
//! joins against the metro Voronoi index, per-site cell construction,
//! per-trace physical-path reports). rayon is unavailable in this build
//! environment, so this crate provides the small slice of it the pipeline
//! needs on top of `std::thread::scope`:
//!
//! * [`par_map`] — order-preserving parallel map over a slice. Workers pull
//!   indices from a shared atomic counter (self-balancing for skewed item
//!   costs) and write results into pre-allocated slots, so the output order
//!   is identical to the input order regardless of worker count.
//! * [`par_chunks`] — parallel map over disjoint chunks of a slice, for
//!   callers that want to amortize per-worker state (e.g. a reusable
//!   shortest-path workspace) across many items.
//!
//! # Determinism contract
//!
//! Both entry points return results in input order, so a caller that
//! computes in parallel and then *applies* results serially (the pattern
//! used throughout `igdb-core`) produces byte-identical output whether run
//! with 1 thread or 64. The worker count never affects values, only wall
//! clock.
//!
//! # Worker count
//!
//! `available_parallelism()`, overridable via the `IGDB_THREADS` environment
//! variable, overridable again per-scope with [`with_threads`] (which is
//! thread-local and therefore race-free under `cargo test`'s parallel test
//! runner).
//!
//! # Observability
//!
//! When an `igdb-obs` registry is current on the calling thread, the pool
//! re-installs it inside every worker, so instrumentation in the mapped
//! closure lands in the caller's registry. The pool itself records:
//!
//! * counters (worker-count invariant): `par.invocations{map|chunks}`,
//!   `par.items{map|chunks}` — items submitted per entry point. Inside a
//!   [`quiet`] scope these demote to perf counters, for lazily-triggered
//!   loops whose very occurrence depends on cache warmth;
//! * perf counters (scheduling-dependent): `par.tasks{workerN}` — work
//!   units executed by each worker, `par.steals` — work units executed by
//!   spawned workers rather than the calling thread.

use std::cell::Cell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with this thread's parallel-loop submission accounting demoted
/// from deterministic counters to perf counters.
///
/// Use this around parallel work that is *lazily triggered* — e.g. a
/// contraction hierarchy built through a `OnceLock` on first query — where
/// whether the loop runs at all depends on cache warmth, not on the input
/// data. Such ticks cannot belong to the deterministic counter stream (a
/// delta apply reusing a warm cache would legitimately skip them), but the
/// cost is still worth tracking, so they land as perf counters instead.
pub fn quiet<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            QUIET.with(|q| q.set(prev));
        }
    }
    let prev = QUIET.with(|q| q.replace(true));
    let _restore = Restore(prev);
    f()
}

/// Submission accounting for a pool entry point: deterministic counters
/// normally, perf counters inside a [`quiet`] scope.
fn submit_accounting(label: &'static str, items: u64) {
    if QUIET.with(|q| q.get()) {
        igdb_obs::perf("par.invocations", label, 1);
        igdb_obs::perf("par.items", label, items);
    } else {
        igdb_obs::counter("par.invocations", label, 1);
        igdb_obs::counter("par.items", label, items);
    }
}

/// Number of worker threads parallel loops will use, from (in priority
/// order): the innermost active [`with_threads`] scope, `IGDB_THREADS`,
/// `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("IGDB_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with the calling thread's parallel loops pinned to `n` workers.
///
/// The override is thread-local and restored on exit (including unwind), so
/// concurrent tests can pin different counts without racing on the process
/// environment. Note it applies to loops *started by this thread*; worker
/// threads spawned inside inherit the count via the loop itself, not the
/// thread-local.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|o| o.set(prev));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Shared output buffer of write-once slots. Safety argument: the atomic
/// work index hands each slot index to exactly one worker, and the scope
/// join happens-before the buffer is read back.
struct Slots<T>(*mut MaybeUninit<T>);
unsafe impl<T: Send> Send for Slots<T> {}
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// Caller contract: each index in `[0, len)` is written at most once,
    /// and only by the worker that claimed it.
    unsafe fn write(&self, idx: usize, value: T) {
        unsafe { (*self.0.add(idx)).write(value) };
    }
}

/// Order-preserving parallel map: `par_map(items, f)` is observably
/// equivalent to `items.iter().map(f).collect()`, computed on
/// [`num_threads`] workers with work-stealing.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    submit_accounting("map", items.len() as u64);
    par_map_inner(items, f)
}

/// [`par_map`] minus the item accounting: `par_chunks` funnels through this
/// so its chunk descriptors are not double-counted as submitted items.
fn par_map_inner<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        igdb_obs::perf("par.tasks", "worker0", items.len() as u64);
        return items.iter().map(f).collect();
    }

    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(items.len());
    // SAFETY: MaybeUninit needs no initialization; every slot is written
    // exactly once below before being read.
    unsafe { out.set_len(items.len()) };
    let slots = Slots(out.as_mut_ptr());
    let next = AtomicUsize::new(0);

    // Spawned threads do not inherit thread-locals: capture the caller's
    // current registry and re-install it inside each worker so closure
    // instrumentation aggregates into the right place.
    let reg = igdb_obs::current();
    std::thread::scope(|scope| {
        let run = |worker: usize| {
            let slots = &slots;
            let next = &next;
            let f = &f;
            let reg = reg.clone();
            move || {
                let _installed = reg.as_ref().map(|r| r.install());
                let mut tasks = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    // SAFETY: fetch_add hands out each i exactly once.
                    unsafe { slots.write(i, r) };
                    tasks += 1;
                }
                if let Some(reg) = &reg {
                    reg.perf_add("par.tasks", format!("worker{worker}"), tasks);
                    if worker > 0 {
                        reg.perf_add("par.steals", "", tasks);
                    }
                }
            }
        };
        let handles: Vec<_> = (1..workers).map(|w| scope.spawn(run(w))).collect();
        run(0)();
        // Propagate worker panics instead of reading half-written output.
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });

    // SAFETY: the loop above wrote every index < items.len(), and the scope
    // join synchronized those writes with this thread.
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut R, out.len(), out.capacity())
    }
}

/// Order-preserving parallel map with reusable per-worker state:
/// `init` runs once per worker (inside that worker) to build scratch
/// state, and `f(&mut state, item)` maps each item through it. Items are
/// split into contiguous chunks like [`par_chunks`], so the output order —
/// and, for a pure `f`, every output value — is identical at any worker
/// count; only how the scratch is shared across items varies.
///
/// Use this when per-item work needs a mutable scratch (e.g. a search
/// workspace) that is expensive to build per item but cannot be shared
/// across threads.
pub fn par_map_with<T, S, R, FS, F>(items: &[T], init: FS, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    submit_accounting("map_with", items.len() as u64);
    let workers = num_threads().min(items.len().max(1));
    if workers <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        igdb_obs::perf("par.tasks", "worker0", items.len() as u64);
        let mut state = init();
        return items.iter().map(|t| f(&mut state, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    par_map_inner(&chunks, |c| {
        let mut state = init();
        c.iter().map(|t| f(&mut state, t)).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Parallel map over disjoint chunks: the slice is split into
/// `num_threads()` near-equal contiguous chunks and `f(chunk_index, chunk)`
/// runs on each concurrently. Returns per-chunk results in chunk order;
/// concatenating them preserves input order.
///
/// Use this instead of [`par_map`] when per-item work benefits from reusable
/// per-worker state — `f` can allocate one workspace and drive every item in
/// its chunk through it.
pub fn par_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    submit_accounting("chunks", items.len() as u64);
    let workers = num_threads().min(items.len().max(1));
    if workers <= 1 {
        return if items.is_empty() {
            Vec::new()
        } else {
            igdb_obs::perf("par.tasks", "worker0", 1);
            vec![f(0, items)]
        };
    }
    let chunk = items.len().div_ceil(workers);
    let chunks: Vec<(usize, &[T])> = items.chunks(chunk).enumerate().collect();
    par_map_inner(&chunks, |(i, c)| f(*i, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = with_threads(threads, || par_map(&items, |x| x * 3 + 1));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_under_skewed_cost() {
        let items: Vec<usize> = (0..64).collect();
        let out = with_threads(4, || {
            par_map(&items, |&i| {
                // Make early items slow so late items finish first.
                if i < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                i * 2
            })
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..256).collect();
        with_threads(4, || {
            par_map(&items, |&x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
                x
            })
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn par_map_with_matches_serial_and_reuses_state() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for threads in [1, 2, 5] {
            let out = with_threads(threads, || {
                par_map_with(
                    &items,
                    || Vec::<u64>::new(),
                    |scratch, &x| {
                        // Scratch persists across the items of one worker.
                        scratch.push(x);
                        assert!(!scratch.is_empty());
                        x * 7
                    },
                )
            });
            assert_eq!(out, serial, "threads={threads}");
        }
        let empty: Vec<u64> = vec![];
        assert!(par_map_with(&empty, || (), |_, x| *x).is_empty());
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1, 2, 5] {
            let chunks = with_threads(threads, || {
                par_chunks(&items, |_idx, c| c.to_vec())
            });
            let flat: Vec<u32> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_indices_are_sequential() {
        let items: Vec<u32> = (0..40).collect();
        let idxs = with_threads(4, || par_chunks(&items, |idx, _c| idx));
        let expect: Vec<usize> = (0..idxs.len()).collect();
        assert_eq!(idxs, expect);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), None);
        with_threads(2, || {
            assert_eq!(num_threads(), 2);
            with_threads(5, || assert_eq!(num_threads(), 5));
            assert_eq!(num_threads(), 2);
        });
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), None);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let r = std::panic::catch_unwind(|| with_threads(3, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), None);
    }

    #[test]
    fn par_map_propagates_worker_panic() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&x| {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    if x == 13 {
                        panic!("worker panic");
                    }
                    x
                })
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        with_threads(0, || {
            assert_eq!(num_threads(), 1);
            // Serial fallback still computes everything in order.
            let items: Vec<u32> = (0..17).collect();
            assert_eq!(
                par_map(&items, |x| x + 1),
                items.iter().map(|x| x + 1).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<u32> = (0..3).collect();
        let out = with_threads(64, || par_map(&items, |x| x * 10));
        assert_eq!(out, vec![0, 10, 20]);
        let chunks = with_threads(64, || par_chunks(&items, |_i, c| c.to_vec()));
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn par_map_nests_inside_par_map() {
        // Inner loops run serially (workers have no thread-local override),
        // but the values must still be correct.
        let items: Vec<u32> = (0..16).collect();
        let out = with_threads(4, || {
            par_map(&items, |&x| {
                let inner: Vec<u32> = (0..4).collect();
                par_map(&inner, |&y| x * 10 + y).iter().sum::<u32>()
            })
        });
        let expect: Vec<u32> = items.iter().map(|x| x * 40 + 6).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_chunks_propagates_worker_panic() {
        let items: Vec<u32> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_chunks(&items, |idx, _c| {
                    if idx == 2 {
                        panic!("chunk panic");
                    }
                    idx
                })
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn obs_registry_propagates_into_workers() {
        let reg = igdb_obs::Registry::new();
        let items: Vec<u64> = (0..500).collect();
        let _g = reg.install();
        let out = with_threads(4, || par_map(&items, |&x| {
            igdb_obs::counter("work.seen", "", 1);
            x
        }));
        assert_eq!(out.len(), 500);
        // Closure counters land in the caller's registry even from spawned
        // workers, and data-derived counts are worker-count invariant.
        assert_eq!(reg.counter_value("work.seen", ""), 500);
        assert_eq!(reg.counter_value("par.items", "map"), 500);
        assert_eq!(reg.counter_value("par.invocations", "map"), 1);
    }

    #[test]
    fn obs_tasks_sum_to_items_and_counters_are_thread_invariant() {
        let items: Vec<u64> = (0..300).collect();
        let mut snapshots = Vec::new();
        for threads in [1, 2, 4] {
            let reg = igdb_obs::Registry::new();
            {
                let _g = reg.install();
                with_threads(threads, || {
                    par_map(&items, |&x| x + 1);
                    par_chunks(&items, |_i, c| c.len());
                });
            }
            // Perf: every par_map item is executed by exactly one worker.
            let total_tasks: u64 = (0..64)
                .map(|w| reg.perf_value("par.tasks", &format!("worker{w}")))
                .sum();
            // par_map executes 300 item tasks; par_chunks executes one task
            // per chunk (<= threads of them).
            assert!(total_tasks >= 300 + 1, "threads={threads}: {total_tasks}");
            assert!(
                total_tasks <= 300 + threads as u64,
                "threads={threads}: {total_tasks}"
            );
            snapshots.push(reg.counter_snapshot());
        }
        // Counter contract: the deterministic snapshot is byte-identical
        // across worker counts.
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[1], snapshots[2]);
    }

    #[test]
    fn drop_safety_types_work() {
        // Results with heap allocations survive the MaybeUninit round-trip.
        let items: Vec<usize> = (0..200).collect();
        let out = with_threads(4, || par_map(&items, |&i| vec![i; i % 7]));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 7);
            assert!(v.iter().all(|&x| x == i));
        }
    }
}
