//! Serving-latency quantiles for the `phys_routing_mesh_medium` workload:
//! the same interleaved pair stream the Criterion group times, but run
//! under an installed registry so the `spath.query_us{dijkstra|ch}`
//! histograms capture per-query latency, reported as p50/p90/p99
//! (EXPERIMENTS.md records a captured run).
//!
//! ```text
//! cargo run --release -p igdb-bench --bin serving_quantiles [--scale medium]
//! ```

use igdb_bench::{fixture, Scale};
use igdb_core::analysis::physpath::PhysGraph;
use igdb_core::igdb_obs;
use igdb_core::{with_mode, SpMode, SpWorkspace};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let graph = PhysGraph::from_igdb(&f.igdb);

    // Evenly spaced connected metros, as in the Criterion group: an
    // interleaved stream (source changes every query) that resume
    // amortization can't help.
    let connected: Vec<usize> =
        (0..graph.engine().node_count()).filter(|&m| graph.degree(m) > 0).collect();
    let k = connected.len().min(48);
    let stride = connected.len() / k.max(1);
    let nodes: Vec<usize> = (0..k).map(|i| connected[i * stride]).collect();
    println!(
        "== serving latency quantiles (scale: {scale:?}, {} metros, {} probe nodes) ==",
        graph.engine().node_count(),
        nodes.len()
    );
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "mode", "queries", "p50 µs", "p90 µs", "p99 µs", "mean µs"
    );

    // CH preprocessing outside the timed region, as a serving deployment
    // would pay it: once at startup.
    graph.engine().prepare_ch();
    let reg = igdb_obs::Registry::new();
    {
        let _g = reg.install();
        for mode in [SpMode::Dijkstra, SpMode::Ch] {
            let mut ws = SpWorkspace::new();
            with_mode(mode, || {
                for &t in &nodes {
                    for &s in &nodes {
                        if s != t {
                            let _ = graph.engine().shortest_path_with(&mut ws, s, t);
                        }
                    }
                }
            });
        }
    }
    for mode in [SpMode::Dijkstra, SpMode::Ch] {
        let h = reg
            .histogram("spath.query_us", mode.label())
            .expect("latency histogram recorded");
        println!(
            "{:<28} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            mode.label(),
            h.count,
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.mean()
        );
    }
}
