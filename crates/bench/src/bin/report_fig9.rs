//! Figures 1 & 9 — Madrid → Berlin fusion: the paper's motivating
//! theoretical picture (Figure 1: 4 ASes, 10 cities, 6 countries) against
//! the realized measurement (3 ASes, 5 cities, 3 countries).

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::fusion::fuse;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let trace = f
        .world
        .traceroute_between(f.world.scenarios.anchor_madrid, f.world.scenarios.anchor_berlin)
        .expect("scenario traceroute");
    let r = fuse(&f.igdb, &trace.responding_ips());
    println!("{}", header(&format!("Figures 1 & 9 (scale: {scale:?})")));
    println!("(Figure 1 theorized 4 ASes / 10 cities / 6 countries; the measurement collapses that)");
    println!("{}", compare_row("ASes on the path", "3 (was 4)", r.ases.len()));
    println!("{}", compare_row("Cities on the path", "5 (was 10)", r.metros.len()));
    println!("{}", compare_row("Countries on the path", "3 (was 6)", r.countries.len()));
    println!(
        "{}",
        compare_row("Hops geolocated (Hoiho + CBG)", "7 + 4", format!(
            "{} (+{} CBG)",
            r.hops_geolocated, r.hops_geolocated_by_cbg
        ))
    );
    println!(
        "path cities: {}",
        r.metros.iter().map(|&m| f.igdb.metros.metro(m).label()).collect::<Vec<_>>().join(" -> ")
    );
    println!("AS spatial extents (metros / countries):");
    for (asn, metros, countries) in &r.as_extents {
        println!("  {asn}: {metros} metros, {countries} countries");
    }
    for (asn, hull) in &r.as_extent_hulls {
        if let Some(wkt) = hull {
            println!("  {asn} extent polygon: {}…", &wkt[..wkt.len().min(72)]);
        }
    }
}
