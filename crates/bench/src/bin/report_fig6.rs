//! Figure 6 — metro footprints and overlap of two US access ISPs.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::footprint::org_overlap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let r = org_overlap(&f.igdb, "Spectra Holdings", "CoastCable");
    println!("{}", header(&format!("Figure 6 (scale: {scale:?})")));
    println!("{}", compare_row("Charter-like ASNs", "4", r.asns_a.len()));
    println!("{}", compare_row("Cox-like ASNs", "1", r.asns_b.len()));
    println!("{}", compare_row("Charter-like metros (green)", "71", r.metros_a.len()));
    println!("{}", compare_row("Cox-like metros (orange)", "30", r.metros_b.len()));
    println!("{}", compare_row("Overlapping metros (red)", "10", r.shared.len()));
    println!("shared metros:");
    for &m in &r.shared {
        println!("  {}", f.igdb.metros.metro(m).label());
    }
}
