//! Table 1 — "Select database characteristics": the headline row counts of
//! the assembled database, next to the paper's published values.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_db::Query;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let db = &f.igdb.db;

    let distinct = |table: &str, col: &str| -> usize {
        db.with_table(table, |t| {
            Query::new(t).select(vec![col]).distinct().count().unwrap()
        })
        .unwrap()
    };
    // Organizations are WHOIS org entities (the ASRank source), matching
    // how CAIDA counts them; other sources' spellings are aliases.
    let org_entities = db
        .with_table("asn_org", |t| {
            igdb_db::Query::new(t)
                .filter(igdb_db::Predicate::Eq(
                    "source".into(),
                    igdb_db::Value::text("asrank"),
                ))
                .select(vec!["organization"])
                .distinct()
                .count()
                .unwrap()
        })
        .unwrap();
    println!("{}", header(&format!("Table 1 (scale: {scale:?})")));
    println!("{}", compare_row("Number of ASes", "102,216", distinct("asn_name", "asn")));
    println!(
        "{}",
        compare_row("Number of organizations", "81,879", org_entities)
    );
    println!(
        "{}",
        compare_row("Number of physical nodes", "29,220", db.row_count("phys_nodes").unwrap())
    );
    println!(
        "{}",
        compare_row("Number of countries with nodes", "210", distinct("phys_nodes", "country"))
    );
    println!(
        "{}",
        compare_row("Number of inferred physical paths", "8,323", db.row_count("phys_conn").unwrap())
    );
    println!(
        "{}",
        compare_row("Number of submarine cables", "511", db.row_count("sub_cables").unwrap())
    );
    println!(
        "{}",
        compare_row("City locations (7,342 in §2)", "7,342", db.row_count("city_points").unwrap())
    );
    println!(
        "{}",
        compare_row("Links between ASNs (420,913 in §1)", "420,913", db.row_count("asn_conn").unwrap())
    );
}
