//! Figure 4 — InterTubes long-haul links vs iGDB shortest-path routes.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::intertubes::compare;
use igdb_synth::intertubes::intertubes_recreation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let links = intertubes_recreation(&f.world.cities, &f.world.row);
    let report = compare(&f.igdb, &links);
    println!("{}", header(&format!("Figure 4 (scale: {scale:?})")));
    println!(
        "{}",
        compare_row("Long-haul links within 25 mi of iGDB", "most", format!("{}/{}", report.covered, report.verdicts.len()))
    );
    println!(
        "{}",
        compare_row("Links NOT approximated", "≥1 (pipeline)", report.missed)
    );
    println!(
        "{}",
        compare_row("iGDB alternate corridors (purple)", "many", report.alternate_paths)
    );
    for v in report.verdicts.iter().filter(|v| !v.covered) {
        println!(
            "  missed: {} — {} (coverage {:.0}%{})",
            f.igdb.metros.metro(v.from_city).label(),
            f.igdb.metros.metro(v.to_city).label(),
            v.coverage * 100.0,
            if v.off_road { ", follows a pipeline right-of-way" } else { "" }
        );
    }
}
