//! Figure 5 — the world physical map (nodes, right-of-way paths, cables),
//! exported as GeoJSON for any GIS.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::export::export_physical_map;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let map = export_physical_map(&f.igdb);
    println!("{}", header(&format!("Figure 5 (scale: {scale:?})")));
    println!("{}", compare_row("Node layer (orange points)", "29,220", map.node_points.len()));
    println!("{}", compare_row("ROW path layer (green lines)", "8,323", map.row_paths.len()));
    println!("{}", compare_row("Cable layer (purple lines)", "511", map.cable_paths.len()));
    let out = std::path::Path::new("target/fig5_map.geojson");
    std::fs::create_dir_all(out.parent().unwrap()).ok();
    std::fs::write(out, map.to_geojson()).expect("write geojson");
    println!("GeoJSON written to {}", out.display());
}
