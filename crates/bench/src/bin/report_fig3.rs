//! Figure 3 — the Thiessen tessellation of the world around urban areas.

use igdb_bench::{compare_row, fixture, header, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let polys = f.igdb.metros.polygons();
    let nonempty = polys.iter().filter(|p| !p.exterior.is_empty()).count();
    let area: f64 = polys.iter().map(|p| p.signed_area_deg2().abs()).sum();
    let world_area = 360.0 * 180.0;
    let avg_vertices: f64 = polys
        .iter()
        .filter(|p| !p.exterior.is_empty())
        .map(|p| p.exterior.len() as f64)
        .sum::<f64>()
        / nonempty.max(1) as f64;
    println!("{}", header(&format!("Figure 3 (scale: {scale:?})")));
    println!("{}", compare_row("Thiessen polygons", "7,342", nonempty));
    println!(
        "{}",
        compare_row("Coverage of world bbox", "100%", format!("{:.2}%", 100.0 * area / world_area))
    );
    println!("{}", compare_row("Mean vertices per cell", "~6", format!("{avg_vertices:.1}")));
    // Print one sample cell as WKT, as the map layer would consume it.
    if let Some(p) = polys.iter().find(|p| !p.exterior.is_empty()) {
        let wkt = igdb_geo::to_wkt(&igdb_geo::Geometry::Polygon(p.clone()));
        println!("sample cell: {}…", &wkt[..wkt.len().min(96)]);
    }
}
