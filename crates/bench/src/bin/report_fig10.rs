//! Figure 10 — physical node density per Thiessen cell (map + CDF).

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::density::node_density;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let r = node_density(&f.igdb);
    println!("{}", header(&format!("Figure 10 (scale: {scale:?})")));
    println!("{}", compare_row("Total Thiessen cells", "7,342", r.total_cells));
    println!("{}", compare_row("Cells with ≥1 physical node", "3,130", r.occupied_cells));
    println!(
        "{}",
        compare_row("Occupied cells under 10 nodes", "most", format!("{:.0}%", 100.0 * r.under_ten_frac))
    );
    println!("CDF (nodes → fraction of occupied cells ≤ nodes):");
    let step = (r.cdf.len() / 10).max(1);
    for (i, (n, frac)) in r.cdf.iter().enumerate() {
        if i % step == 0 || i + 1 == r.cdf.len() {
            println!("  {n:>5} -> {:.3}", frac);
        }
    }
    println!("densest cells:");
    for &(m, n) in r.per_cell.iter().take(5) {
        println!("  {:<28} {n}", f.igdb.metros.metro(m).label());
    }
}
