//! Table 2 — "ASes with physical presence in the most countries".

use igdb_bench::{fixture, Scale};
use igdb_core::analysis::footprint::top_by_countries;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    println!("== Table 2 (scale: {scale:?}) ==");
    println!(
        "(paper's top entries: CLOUDFLARENET 52, HURRICANE 50, MICROSOFT-CORP 50, COGENT-174 45 …)"
    );
    println!("{:<10} {:<24} {:<36} {:>9}", "ASNumber", "ASName", "Organization", "Countries");
    println!("{}", "-".repeat(82));
    for row in top_by_countries(&f.igdb, 11) {
        println!(
            "{:<10} {:<24} {:<36} {:>9}",
            row.asn.0, row.as_name, row.organization, row.countries
        );
    }
}
