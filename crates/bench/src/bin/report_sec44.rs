//! §4.4 — belief-propagation geolocation: new tuples, consistency, and the
//! rDNS resolution funnel.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::beliefprop::{
    consistency_check, missing_locations, propagate, BeliefPropParams,
};
use igdb_core::LocationSource;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let params = BeliefPropParams::default();
    let bp = propagate(&f.igdb, &params);
    let cons = consistency_check(&f.igdb, &params);

    let total = f.igdb.ip_info.len() as f64;
    let resolved = f.igdb.ip_info.values().filter(|i| i.fqdn.is_some()).count() as f64;
    let hinted = f
        .igdb
        .ip_info
        .values()
        .filter(|i| i.geo_source == Some(LocationSource::Hoiho))
        .count() as f64;

    println!("{}", header(&format!("Section 4.4 (scale: {scale:?})")));
    println!("{}", compare_row("Observed IPs without rDNS", "36%", format!("{:.0}%", 100.0 * (1.0 - resolved / total))));
    println!("{}", compare_row("Resolving IPs without geohints", "86%", format!("{:.0}%", 100.0 * (1.0 - hinted / resolved.max(1.0)))));
    println!("{}", compare_row("New (city, AS) tuples", "2,231", bp.new_tuples.len()));
    println!("{}", compare_row("Metros gaining entries", "124", bp.new_metros));
    println!("{}", compare_row("ASes gaining entries", "240", bp.new_ases));
    println!("{}", compare_row("ASes gaining first location", "177", bp.ases_gaining_first_location));
    println!("{}", compare_row("BP vs Hoiho/IXP agreement", "86%", format!("{:.0}% ({}/{})", 100.0 * cons.agreement(), cons.agreeing, cons.comparable)));
    let missing = missing_locations(&f.igdb, f.world.scenarios.globetrans);
    println!("{}", compare_row("Missing metros for the AS174-like", ">104", missing.len()));
}
