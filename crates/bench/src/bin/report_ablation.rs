//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! * the §4.4 latency threshold (the paper: "different latency boundaries
//!   could be chosen to be more or less restrictive"),
//! * the Figure 4 corridor width (the paper fixes 25 miles),
//! * the right-of-way detour factor (how much longer inferred fiber paths
//!   are than geodesics — the cost of refusing straight lines).

use igdb_bench::{fixture, Scale};
use igdb_core::analysis::beliefprop::{propagate, BeliefPropParams};
use igdb_core::analysis::intertubes;
use igdb_synth::intertubes::intertubes_recreation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);

    println!("== Ablation 1: belief-propagation latency threshold (scale: {scale:?}) ==");
    println!("{:>12} {:>14} {:>12} {:>10}", "threshold", "new addresses", "new tuples", "exact-acc");
    for threshold in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let params = BeliefPropParams {
            metro_threshold_ms: threshold,
            ..Default::default()
        };
        let report = propagate(&f.igdb, &params);
        // Score against ground truth (possible only because the world is
        // synthetic — the ablation the paper could not run).
        let mut checked = 0;
        let mut exact = 0;
        for (&ip, &metro) in &report.assignments {
            if let Some(truth) = f.world.truth_city_of_ip(ip) {
                checked += 1;
                if truth == metro {
                    exact += 1;
                }
            }
        }
        let acc = if checked > 0 {
            format!("{:.0}%", 100.0 * exact as f64 / checked as f64)
        } else {
            "n/a".to_string()
        };
        println!(
            "{:>10} ms {:>14} {:>12} {:>10}",
            threshold,
            report.assignments.len(),
            report.new_tuples.len(),
            acc
        );
    }
    println!("(looser thresholds locate more addresses at lower precision — the paper's §4.4 trade-off)");

    println!("\n== Ablation 2: InterTubes corridor width ==");
    let links = intertubes_recreation(&f.world.cities, &f.world.row);
    println!("{:>12} {:>10} {:>8} {:>12}", "width", "covered", "missed", "alternates");
    for miles in [5.0, 10.0, 25.0, 50.0, 100.0] {
        let report = intertubes::compare_with_width(&f.igdb, &links, miles * igdb_geo::KM_PER_MILE);
        println!(
            "{:>9} mi {:>10} {:>8} {:>12}",
            miles,
            report.covered,
            report.missed,
            report.alternate_paths
        );
    }
    println!("(wider corridors cover more links but blur the alternate-corridor signal)");

    println!("\n== Ablation 3: right-of-way detour factor ==");
    // Distribution of path_km / geodesic_km over all inferred paths.
    let mut stretches: Vec<f64> = f
        .igdb
        .phys_pairs
        .iter()
        .filter_map(|&(a, b, km)| {
            let gc = igdb_geo::haversine_km(
                &f.igdb.metros.metro(a).loc,
                &f.igdb.metros.metro(b).loc,
            );
            (gc > 1.0).then_some(km / gc)
        })
        .collect();
    stretches.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let pct = |p: f64| stretches[(p * (stretches.len() - 1) as f64) as usize];
    println!("paths: {}", stretches.len());
    println!("stretch p10 {:.2}  p50 {:.2}  p90 {:.2}  max {:.2}", pct(0.1), pct(0.5), pct(0.9), pct(1.0));
    println!("(straight-line baselines would sit at 1.00 — the Figure 8 overstatement)");
}
