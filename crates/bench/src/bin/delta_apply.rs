//! Delta apply vs full rebuild — the wall-clock case for incremental
//! ingestion (DESIGN.md §16).
//!
//! Builds a base database, derives small churn deltas (a handful of
//! records each — well under 1 % of the medium scenario), then times
//! `Igdb::apply_delta` against a from-scratch `Igdb::try_build` of the
//! same churned snapshot set. Both paths produce byte-identical databases
//! (pinned by `tests/delta_determinism.rs`); this bin measures what the
//! identity costs, one row per churn mix:
//!
//! * **feed churn** (atlas + logical) — the fast path: the clean prefix is
//!   copied, the traceroute and IP-resolution stages are shared on
//!   narrowed inputs, and routing reuses warm corridors.
//! * **+ traceroute churn** — new measurements re-train bdrmap and
//!   re-resolve every observed address, so IP resolution re-runs.
//! * **road churn** — right-of-way edits invalidate the road graph and
//!   its memoized corridors: the floor case, close to a full rebuild.
//!
//! While the first apply runs, a reader thread pinned to the old epoch
//! keeps answering queries, and the bin verifies every one of those reads
//! completed against epoch 0 — the publication protocol's whole point.
//!
//! ```text
//! cargo run --release -p igdb-bench --bin delta_apply -- \
//!     [--scale tiny|medium|paper] [--seed N] [--reps N] [--metrics FILE]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use igdb_bench::Scale;
use igdb_core::{BuildPolicy, EpochHandle, Igdb};
use igdb_synth::{emit_snapshots, generate_delta, DeltaClass, World, WorldConfig};

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args[i + 1].parse().expect("numeric flag"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = flag(&args, "--seed").unwrap_or(7);
    let reps = flag(&args, "--reps").unwrap_or(3) as usize;
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).expect("--metrics needs a path").clone());

    let cfg = scale.config();
    eprintln!("generating world ({scale:?})…");
    let world = World::generate(cfg);
    let snaps = emit_snapshots(&world, "2022-05-03", scale.mesh_pairs());

    eprintln!("building base database…");
    let policy = BuildPolicy::lenient();
    let (base, _) = Igdb::try_build(&snaps, &policy).expect("base build");
    let base = Arc::new(base);

    let mixes: [(&str, &[DeltaClass]); 3] = [
        (
            "feed churn (atlas+logical)",
            &[DeltaClass::AtlasChurn, DeltaClass::LogicalChurn],
        ),
        (
            "+ traceroute churn",
            &[
                DeltaClass::AtlasChurn,
                DeltaClass::TracerouteChurn,
                DeltaClass::LogicalChurn,
            ],
        ),
        ("road churn", &[DeltaClass::RoadChurn]),
    ];

    // Reader pinned to the old epoch: queries the world it pinned at
    // request start for its whole lifetime, concurrent with the first
    // mix's apply.
    let epochs = Arc::new(EpochHandle::new_shared(Arc::clone(&base)));
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let old_epoch_reads = Arc::new(AtomicU64::new(0));
    let reader = {
        let (epochs, stop, reads, old_epoch_reads) = (
            Arc::clone(&epochs),
            Arc::clone(&stop),
            Arc::clone(&reads),
            Arc::clone(&old_epoch_reads),
        );
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let epoch = epochs.current();
                let rows = epoch.igdb.db.row_count("phys_conn").expect("phys_conn");
                assert!(rows > 0, "a pinned epoch always answers in full");
                reads.fetch_add(1, Ordering::Relaxed);
                if epoch.number == 0 {
                    old_epoch_reads.fetch_add(1, Ordering::Relaxed);
                }
                // A realistic request cadence, not a spin: the point is
                // that reads land during the apply, not to starve it.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    };

    println!("== delta apply vs full rebuild ({scale:?}, seed {seed}, best of {reps}) ==");
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>9}",
        "mix", "ops", "rebuild ms", "apply ms", "speedup"
    );
    for (mi, (name, classes)) in mixes.iter().enumerate() {
        let (churned, ops) = generate_delta(&snaps, seed, classes);

        let mut apply_ms = f64::MAX;
        let mut next = None;
        for rep in 0..reps {
            let reg = igdb_core::igdb_obs::Registry::new();
            let t = Instant::now();
            let (igdb, _, _) = {
                let _g = reg.install();
                base.apply_delta(&churned, &policy).expect("apply")
            };
            apply_ms = apply_ms.min(t.elapsed().as_secs_f64() * 1e3);
            if mi == 0 && rep == 0 {
                if let Some(path) = &metrics_out {
                    std::fs::write(path, reg.json_lines(igdb_core::igdb_obs::JsonMode::Full))
                        .expect("write metrics");
                }
            }
            next = Some(igdb);
        }
        if mi == 0 {
            // The first mix is the serving story: publish the new world
            // and release the reader once its apply window is over.
            let published = epochs.publish(next.take().expect("reps >= 1"));
            stop.store(true, Ordering::Relaxed);
            eprintln!(
                "  epoch {published} published; {} of {} reads pinned epoch 0",
                old_epoch_reads.load(Ordering::Relaxed),
                reads.load(Ordering::Relaxed),
            );
        }

        let mut rebuild_ms = f64::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            let _ = Igdb::try_build(&churned, &policy).expect("rebuild");
            rebuild_ms = rebuild_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        println!(
            "{:<28} {:>6} {:>12.1} {:>12.1} {:>8.1}x",
            name,
            ops.len(),
            rebuild_ms,
            apply_ms,
            rebuild_ms / apply_ms
        );
    }
    reader.join().expect("reader thread");
    println!(
        "old-epoch reads   {:>10} of {} completed during the first apply",
        old_epoch_reads.load(Ordering::Relaxed),
        reads.load(Ordering::Relaxed),
    );
    assert!(
        old_epoch_reads.load(Ordering::Relaxed) > 0,
        "the apply window must have served reads from the pinned old epoch"
    );
}
