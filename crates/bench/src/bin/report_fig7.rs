//! Figure 7 — Kansas City → Atlanta: logical path, hidden hops, shortest
//! practical physical path and distance cost.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::physpath::physical_path_report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let trace = f
        .world
        .traceroute_between(f.world.scenarios.anchor_kansas_city, f.world.scenarios.anchor_atlanta)
        .expect("scenario traceroute");
    let report = physical_path_report(&f.igdb, &trace.responding_ips()).expect("report");
    let label = |m: &usize| f.igdb.metros.metro(*m).name.clone();
    println!("{}", header(&format!("Figure 7 (scale: {scale:?})")));
    println!(
        "observed (blue):  {}",
        report.observed_metros.iter().map(|m| label(m)).collect::<Vec<_>>().join(" -> ")
    );
    let hidden: Vec<String> = report
        .legs
        .iter()
        .flat_map(|l| l.hidden_candidates.iter().map(|m| label(m)))
        .collect();
    println!("hidden candidates (green): {}", hidden.join(", "));
    println!(
        "practical (orange): {}",
        report.practical_path.iter().map(|m| label(m)).collect::<Vec<_>>().join(" -> ")
    );
    println!("{}", compare_row("Inferred physical path length", "2,518 km", format!("{:.0} km", report.inferred_km)));
    println!("{}", compare_row("Shortest practical path length", "1,282 km", format!("{:.0} km", report.practical_km)));
    println!("{}", compare_row("Distance cost", "1.96", format!("{:.2}", report.distance_cost)));
}
