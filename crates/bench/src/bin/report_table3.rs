//! Table 3 — "Missing locations in Internet Atlas and PeeringDB" for the
//! Cogent-like transit AS, recovered from reverse-DNS hostnames.

use igdb_bench::{fixture, Scale};
use igdb_core::analysis::beliefprop::missing_locations;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let asn = f.world.scenarios.globetrans;
    let missing = missing_locations(&f.igdb, asn);
    println!("== Table 3 (scale: {scale:?}) ==");
    println!("(paper: >104 missing cities for AS174; sample rows below mirror its format)");
    println!("AS under study: {asn} ({} missing metros recovered)", missing.len());
    println!("{:<28} {}", "Metro", "Reverse Hostname");
    println!("{}", "-".repeat(78));
    for (metro, host) in missing.iter().take(12) {
        println!("{:<28} {}", f.igdb.metros.metro(*metro).label(), host);
    }
}
