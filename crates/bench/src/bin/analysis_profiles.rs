//! §4 analysis profiles as JSONL — the driver behind the profile-driven
//! speed pass (DESIGN.md §14) and the CI `profile-gate` job.
//!
//! Builds a fixture, then runs the fixed serving query mix (all five §4
//! analyses) plus the §4.4 belief-propagation pass under an installed
//! registry, and reports `Registry::profile()` (per-span calls / total /
//! self time and the critical path). The deterministic counter stream can
//! be written out and diffed against the committed baseline
//! (`tests/golden/analysis_profiles.jsonl`) with `igdb metrics diff` — any
//! delta at any worker count or SP mode is a real behaviour change.
//!
//! ```text
//! cargo run --release -p igdb-bench --bin analysis_profiles -- \
//!     [--scale tiny|medium|paper] [--out FILE.jsonl] [--deterministic]
//! ```

use std::io::Write as _;

use igdb_bench::{fixture, Scale};
use igdb_core::analysis::beliefprop::{consistency_check, propagate, BeliefPropParams};
use igdb_core::igdb_obs;
use igdb_core::serving::run_query_mix;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    let deterministic = args.iter().any(|a| a == "--deterministic");

    // The fixture build stays outside the registry: the profile covers the
    // repeated-query regime (the paper's value is in re-querying a built
    // database), and the build's own counters are already gated by
    // `tests/golden/observability.jsonl`.
    let f = fixture(scale);

    let reg = igdb_obs::Registry::new();
    {
        let _g = reg.install();
        let summary = run_query_mix(&f.world, &f.igdb);
        let params = BeliefPropParams::default();
        let bp = propagate(&f.igdb, &params);
        let cons = consistency_check(&f.igdb, &params);
        igdb_obs::counter("beliefprop.assignments", "", bp.assignments.len() as u64);
        igdb_obs::counter("beliefprop.new_tuples", "", bp.new_tuples.len() as u64);
        igdb_obs::counter("beliefprop.comparable", "", cons.comparable as u64);
        eprintln!(
            "scale {scale:?}: physpath {} / intertubes {} / rocketfuel {} / risk {} / footprint {} / bp {} addrs, {} tuples, consistency {:.2}",
            summary.physpath_reports,
            summary.intertubes_covered,
            summary.rocketfuel_mapped,
            summary.risk_paths,
            summary.footprint_rows,
            bp.assignments.len(),
            bp.new_tuples.len(),
            cons.agreement(),
        );
    }

    println!("{}", reg.profile().render_table());

    if let Some(path) = out {
        let mode = if deterministic {
            igdb_obs::JsonMode::Deterministic
        } else {
            igdb_obs::JsonMode::Full
        };
        let mut file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        file.write_all(reg.json_lines(mode).as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {} stream to {path}", if deterministic { "deterministic" } else { "full" });
    }
}
