//! Scaling curve: build time, peak RSS (VmHWM), and query-latency
//! quantiles vs world size — the evidence row behind ROADMAP item 3's
//! planet tier (EXPERIMENTS.md records a captured run).
//!
//! One tier per process so peak-RSS numbers aren't contaminated by earlier
//! tiers (the allocator rarely returns freed pages to the OS):
//!
//! ```text
//! cargo run --release -p igdb-bench --bin scaling_curve -- --scale medium
//! ```
//!
//! `--phases` additionally prints the per-phase resident-set walk
//! (world gen → snapshot emit → build → index), which is how the layout
//! work's wins were attributed.

use igdb_bench::Scale;
use igdb_core::analysis::physpath::PhysGraph;
use igdb_core::igdb_obs;
use igdb_core::{with_mode, BuildPolicy, Igdb, SpMode, SpWorkspace};
use igdb_synth::{emit_snapshots, World};
use std::time::Instant;

fn rss() -> u64 {
    igdb_obs::current_rss_kb().unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let phases = args.iter().any(|a| a == "--phases");
    let cfg = scale.config();
    let n_cities = cfg.n_cities;
    let n_ases = cfg.as_counts.tier1 + cfg.as_counts.tier2 + cfg.as_counts.stub + cfg.as_counts.content;

    let t_total = Instant::now();
    let t0 = Instant::now();
    let world = World::generate(cfg);
    let gen_ms = t0.elapsed().as_millis();
    let rss_world = rss();

    let t0 = Instant::now();
    let snaps = emit_snapshots(&world, "2022-05-03", scale.mesh_pairs());
    let emit_ms = t0.elapsed().as_millis();
    let rss_snaps = rss();
    let n_records = snaps.atlas_nodes.len()
        + snaps.atlas_links.len()
        + snaps.rdns.len()
        + snaps.ripe_traceroutes.iter().map(|t| t.hops.len()).sum::<usize>()
        + snaps.natural_earth.len()
        + snaps.roads.len()
        + snaps.bgp_prefixes.len();
    drop(world);

    let reg = igdb_obs::Registry::new();
    let t0 = Instant::now();
    let igdb = {
        let _g = reg.install();
        let (igdb, report) = Igdb::try_build_scratch(snaps, &BuildPolicy::strict())
            .expect("synthetic snapshots build cleanly");
        assert!(report.is_clean());
        igdb
    };
    let build_ms = t0.elapsed().as_millis();
    let rss_build = rss();

    // Query quantiles over the interleaved pair stream (the serving_quantiles
    // workload), in both SP modes.
    let graph = PhysGraph::from_igdb(&igdb);
    let connected: Vec<usize> =
        (0..graph.engine().node_count()).filter(|&m| graph.degree(m) > 0).collect();
    let k = connected.len().min(48);
    let stride = connected.len() / k.max(1);
    let nodes: Vec<usize> = (0..k).map(|i| connected[i * stride]).collect();
    graph.engine().prepare_ch();
    {
        let _g = reg.install();
        for mode in [SpMode::Dijkstra, SpMode::Ch] {
            let mut ws = SpWorkspace::new();
            with_mode(mode, || {
                for &t in &nodes {
                    for &s in &nodes {
                        if s != t {
                            let _ = graph.engine().shortest_path_with(&mut ws, s, t);
                        }
                    }
                }
            });
        }
        igdb_obs::record_peak_rss("scaling_curve");
    }
    let peak = igdb_obs::peak_rss_kb().unwrap_or(0);
    let total_ms = t_total.elapsed().as_millis();

    if phases {
        println!("== phase RSS walk (scale {scale:?}) ==");
        println!("{:<22} {:>10} {:>10}", "phase", "ms", "rss KB");
        println!("{:<22} {:>10} {:>10}", "world_gen", gen_ms, rss_world);
        println!("{:<22} {:>10} {:>10}", "emit_snapshots", emit_ms, rss_snaps);
        println!("{:<22} {:>10} {:>10}", "build", build_ms, rss_build);
        println!("{:<22} {:>10} {:>10}", "peak (VmHWM)", total_ms, peak);
        println!();
    }

    // The markdown row EXPERIMENTS.md's scaling-curve table is built from.
    print!(
        "| {scale:?} | {n_cities} | {n_ases} | {n_records} | {} | {build_ms} | {:.1} |",
        igdb.db.table_names().iter().map(|t| igdb.db.row_count(t).unwrap_or(0)).sum::<usize>(),
        peak as f64 / 1024.0,
    );
    for mode in [SpMode::Dijkstra, SpMode::Ch] {
        let h = reg
            .histogram("spath.query_us", mode.label())
            .expect("latency histogram recorded");
        print!(
            " {:.1} / {:.1} / {:.1} |",
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99)
        );
    }
    println!();
}
