//! Figure 8 — the Rocketfuel map remapped onto right-of-way corridors.

use igdb_bench::{compare_row, fixture, header, Scale};
use igdb_core::analysis::rocketfuel::remap;
use igdb_synth::intertubes::rocketfuel_recreation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let f = fixture(scale);
    let map = rocketfuel_recreation(&f.world);
    let r = remap(&f.igdb, &map);
    println!("{}", header(&format!("Figure 8 (scale: {scale:?})")));
    println!("{}", compare_row("Rocketfuel metros", "n/a", r.metros));
    println!("{}", compare_row("Logical (straight-line) edges", "many", r.logical_edges));
    println!("{}", compare_row("Edges mapped onto phys corridors", "most", r.mapped_edges));
    println!("{}", compare_row("Distinct corridor segments", "fewer", r.distinct_corridor_segments));
    println!("{}", compare_row("Collapse factor (edges/segment)", "> 1", format!("{:.2}", r.collapse_factor)));
}
