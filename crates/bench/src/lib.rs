//! `igdb-bench` — the evaluation harness.
//!
//! One report binary per table and figure of the paper (see `src/bin/`),
//! plus Criterion benchmarks (`benches/`) timing each pipeline stage. The
//! binaries print the same rows/series the paper reports, side by side with
//! the paper's published values where absolute numbers exist; EXPERIMENTS.md
//! records a captured run.
//!
//! All reports share one world fixture per scale, built lazily and cached
//! for the process lifetime, so running several reports in one shell stays
//! cheap.

use std::sync::OnceLock;

use igdb_core::Igdb;
use igdb_synth::{emit_snapshots, SnapshotSet, World, WorldConfig};

/// Fixture scale selection (CLI flag `--scale tiny|medium|paper`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Medium,
    Paper,
    Large,
    Planet,
}

impl Scale {
    pub fn parse(args: &[String]) -> Scale {
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("tiny") => Scale::Tiny,
                Some("medium") => Scale::Medium,
                Some("paper") => Scale::Paper,
                Some("large") => Scale::Large,
                Some("planet") => Scale::Planet,
                other => panic!("unknown --scale {other:?} (tiny|medium|paper|large|planet)"),
            },
            None => Scale::Medium,
        }
    }

    pub fn config(&self) -> WorldConfig {
        match self {
            Scale::Tiny => WorldConfig::tiny(),
            Scale::Medium => WorldConfig::medium(),
            Scale::Paper => WorldConfig::paper(),
            Scale::Large => WorldConfig::large(),
            Scale::Planet => WorldConfig::planet(),
        }
    }

    /// Traceroute mesh cap per scale (full mesh is quadratic in anchors).
    pub fn mesh_pairs(&self) -> usize {
        match self {
            Scale::Tiny => 500,
            Scale::Medium => 2500,
            Scale::Paper => 4000,
            Scale::Large => 4000,
            Scale::Planet => 4000,
        }
    }
}

/// A fully built fixture: the world, its snapshots, and the iGDB database.
pub struct Fixture {
    pub world: World,
    pub snaps: SnapshotSet,
    pub igdb: Igdb,
}

impl Fixture {
    pub fn build(scale: Scale) -> Fixture {
        let world = World::generate(scale.config());
        let snaps = emit_snapshots(&world, "2022-05-03", scale.mesh_pairs());
        let igdb = Igdb::build(&snaps);
        Fixture { world, snaps, igdb }
    }
}

static TINY: OnceLock<Fixture> = OnceLock::new();
static MEDIUM: OnceLock<Fixture> = OnceLock::new();
static PAPER: OnceLock<Fixture> = OnceLock::new();
static LARGE: OnceLock<Fixture> = OnceLock::new();
static PLANET: OnceLock<Fixture> = OnceLock::new();

/// Process-cached fixture for a scale.
pub fn fixture(scale: Scale) -> &'static Fixture {
    let cell = match scale {
        Scale::Tiny => &TINY,
        Scale::Medium => &MEDIUM,
        Scale::Paper => &PAPER,
        Scale::Large => &LARGE,
        Scale::Planet => &PLANET,
    };
    cell.get_or_init(|| Fixture::build(scale))
}

/// Renders a two-column "paper vs measured" comparison row.
pub fn compare_row(label: &str, paper: &str, measured: impl std::fmt::Display) -> String {
    format!("{label:<44} {paper:>16} {measured:>16}")
}

/// Report header with the standard three columns.
pub fn header(title: &str) -> String {
    format!(
        "== {title} ==\n{}\n{}",
        compare_row("metric", "paper", "measured"),
        "-".repeat(78)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |s: &str| vec!["--scale".to_string(), s.to_string()];
        assert_eq!(Scale::parse(&args("tiny")), Scale::Tiny);
        assert_eq!(Scale::parse(&args("medium")), Scale::Medium);
        assert_eq!(Scale::parse(&args("paper")), Scale::Paper);
        assert_eq!(Scale::parse(&[]), Scale::Medium);
    }

    #[test]
    fn tiny_fixture_builds_once_and_caches() {
        let a = fixture(Scale::Tiny) as *const _;
        let b = fixture(Scale::Tiny) as *const _;
        assert_eq!(a, b);
        assert!(fixture(Scale::Tiny).igdb.db.row_count("phys_nodes").unwrap() > 0);
    }
}
