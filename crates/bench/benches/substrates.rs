//! Substrate micro-benchmarks: the building blocks every experiment leans
//! on (spatial join, LPM trie, BGP propagation, regex engine, right-of-way
//! Dijkstra, relational queries). These are the ablation knobs DESIGN.md
//! calls out — e.g. R-tree-backed nearest-site vs linear scan.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use igdb_bench::{fixture, Scale};
use igdb_geo::{haversine_km, GeoPoint, NearestSiteIndex};
use igdb_net::{Ip4, Prefix, PrefixTrie, Propagator};

fn bench_spatial_join(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let sites: Vec<GeoPoint> = f.igdb.metros.metros().iter().map(|m| m.loc).collect();
    let index = NearestSiteIndex::new(sites.clone());
    let probes: Vec<GeoPoint> = (0..1000)
        .map(|i| GeoPoint::new((i as f64 * 0.7).rem_euclid(360.0) - 180.0, (i as f64 * 0.37).rem_euclid(160.0) - 80.0))
        .collect();
    let mut g = c.benchmark_group("spatial_join");
    g.bench_function("rtree_nearest_1000", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(index.nearest(p));
            }
        })
    });
    // Ablation baseline: linear scan.
    g.bench_function("linear_nearest_1000", |b| {
        b.iter(|| {
            for p in &probes {
                let best = sites
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        haversine_km(p, a.1)
                            .partial_cmp(&haversine_km(p, b.1))
                            .unwrap()
                    })
                    .map(|(i, _)| i);
                black_box(best);
            }
        })
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let rib: Vec<(Prefix, igdb_net::Asn)> = f
        .snaps
        .bgp_prefixes
        .iter()
        .map(|r| (r.prefix, r.origin))
        .collect();
    let mut trie = PrefixTrie::new();
    for &(p, a) in &rib {
        trie.insert(p, a);
    }
    let probes: Vec<Ip4> = (0..10_000u32).map(|i| Ip4(i.wrapping_mul(2654435761))).collect();
    let mut g = c.benchmark_group("lpm");
    g.bench_function("trie_lookup_10k", |b| {
        b.iter(|| {
            for &ip in &probes {
                black_box(trie.lookup(ip));
            }
        })
    });
    // Ablation baseline: linear longest-match scan.
    g.bench_function("linear_lookup_1k", |b| {
        b.iter(|| {
            for &ip in probes.iter().take(1000) {
                let best = rib
                    .iter()
                    .filter(|(p, _)| p.contains(ip))
                    .max_by_key(|(p, _)| p.len());
                black_box(best);
            }
        })
    });
    g.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let prop = Propagator::new(&f.world.eco.graph);
    let origins: Vec<igdb_net::Asn> = f.world.eco.graph.asns().into_iter().take(20).collect();
    let mut g = c.benchmark_group("bgp");
    g.bench_function("propagate_20_origins", |b| {
        b.iter(|| {
            for &o in &origins {
                black_box(prop.propagate(o).reachable_count());
            }
        })
    });
    g.finish();
}

fn bench_regex(c: &mut Criterion) {
    let re = igdb_regex::Regex::new(
        r"\.rcr\d+\.([a-z]{3})\d{2}\.atlas\.heartland\.com$",
    )
    .unwrap();
    let f = fixture(Scale::Tiny);
    let hostnames: Vec<&igdb_db::Str> = f.igdb.rdns.values().take(2000).collect();
    c.bench_function("hoiho_regex_2k_hostnames", |b| {
        b.iter(|| {
            let mut hits = 0;
            for h in &hostnames {
                if re.captures(h).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_rightofway(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let kc = f.igdb.metros.by_name("Kansas City").unwrap();
    let atl = f.igdb.metros.by_name("Atlanta").unwrap();
    let mad = f.igdb.metros.by_name("Madrid").unwrap();
    let ber = f.igdb.metros.by_name("Berlin").unwrap();
    c.bench_function("row_shortest_path_2routes", |b| {
        b.iter(|| {
            black_box(f.igdb.roads.shortest_path(kc, atl));
            black_box(f.igdb.roads.shortest_path(mad, ber));
        })
    });
}

fn bench_db_query(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let mut g = c.benchmark_group("db");
    g.bench_function("indexed_asn_lookup", |b| {
        let asn = igdb_db::Value::from(f.world.scenarios.globetrans.0);
        b.iter(|| {
            f.igdb
                .db
                .with_table("asn_loc", |t| black_box(t.lookup("asn", &asn).unwrap().len()))
                .unwrap()
        })
    });
    g.bench_function("group_by_density", |b| {
        b.iter(|| {
            f.igdb
                .db
                .with_table("phys_nodes", |t| {
                    igdb_db::Query::new(t)
                        .group_by(vec!["metro_id"], vec![igdb_db::Aggregate::Count])
                        .unwrap()
                        .len()
                })
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_spatial_join,
    bench_trie,
    bench_bgp,
    bench_regex,
    bench_rightofway,
    bench_db_query,
);
criterion_main!(substrates);
