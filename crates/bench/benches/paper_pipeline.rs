//! Criterion benchmarks — one group per paper table/figure, timing the
//! code path that regenerates it, plus the end-to-end build stages.
//!
//! All analysis benchmarks run against the process-cached `tiny` fixture
//! (per-iteration work is the analysis itself, not world generation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use igdb_bench::{fixture, Scale};
use igdb_core::analysis;
use igdb_core::{with_mode, Igdb, SpMode};
use igdb_synth::{emit_snapshots, World, WorldConfig};

fn bench_build(c: &mut Criterion) {
    // Table 1: the end-to-end pipeline (world → snapshots → database).
    let mut g = c.benchmark_group("table1_build");
    g.sample_size(10);
    let world = World::generate(WorldConfig::tiny());
    let snaps = emit_snapshots(&world, "2022-05-03", 300);
    g.bench_function("igdb_build_tiny", |b| {
        b.iter(|| black_box(Igdb::build(&snaps)))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    c.bench_function("table2_top_by_countries", |b| {
        b.iter(|| black_box(analysis::footprint::top_by_countries(&f.igdb, 11)))
    });
}

fn bench_table3(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    c.bench_function("table3_missing_locations", |b| {
        b.iter(|| {
            black_box(analysis::beliefprop::missing_locations(
                &f.igdb,
                f.world.scenarios.globetrans,
            ))
        })
    });
}

fn bench_fig3_voronoi(c: &mut Criterion) {
    // Figure 3: the Thiessen tessellation itself.
    let f = fixture(Scale::Tiny);
    let sites: Vec<igdb_geo::GeoPoint> =
        f.igdb.metros.metros().iter().map(|m| m.loc).collect();
    let mut g = c.benchmark_group("fig3_voronoi");
    g.sample_size(10);
    g.bench_function("voronoi_700_cities", |b| {
        b.iter(|| {
            black_box(igdb_geo::voronoi_cells(
                &sites,
                &igdb_geo::BoundingBox::WORLD,
            ))
        })
    });
    g.finish();
}

fn bench_fig4_intertubes(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let links = igdb_synth::intertubes::intertubes_recreation(&f.world.cities, &f.world.row);
    let mut g = c.benchmark_group("fig4_intertubes");
    g.sample_size(10);
    g.bench_function("corridor_comparison", |b| {
        b.iter(|| black_box(analysis::intertubes::compare(&f.igdb, &links)))
    });
    g.finish();
}

fn bench_fig5_export(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    c.bench_function("fig5_export_map", |b| {
        b.iter(|| black_box(analysis::export::export_physical_map(&f.igdb)))
    });
}

fn bench_fig6_overlap(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    c.bench_function("fig6_org_overlap", |b| {
        b.iter(|| {
            black_box(analysis::footprint::org_overlap(
                &f.igdb,
                "Spectra Holdings",
                "CoastCable",
            ))
        })
    });
}

fn bench_fig7_physpath(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let trace = f
        .world
        .traceroute_between(
            f.world.scenarios.anchor_kansas_city,
            f.world.scenarios.anchor_atlanta,
        )
        .expect("scenario traceroute")
        .responding_ips();
    let graph = analysis::physpath::PhysGraph::from_igdb(&f.igdb);
    c.bench_function("fig7_physical_path_report", |b| {
        b.iter(|| {
            black_box(analysis::physpath::physical_path_report_with(
                &f.igdb, &graph, &trace,
            ))
        })
    });
}

fn bench_phys_routing_mesh(c: &mut Criterion) {
    // The §4.2 analysis over the whole traceroute corpus: thousands of
    // shortest-path queries against one immutable physical graph. The
    // 1-thread row isolates the engine win (workspace reuse + resumable
    // per-source search); the all-threads row adds the parallel fan-out.
    let f = fixture(Scale::Tiny);
    let graph = analysis::physpath::PhysGraph::from_igdb(&f.igdb);
    let traces: Vec<Vec<igdb_net::Ip4>> = f
        .igdb
        .traces()
        .iter()
        .map(|t| t.hops.iter().filter_map(|h| h.ip).collect())
        .collect();
    let mut g = c.benchmark_group("phys_routing_mesh");
    g.sample_size(10);
    g.bench_function("reports_1_thread", |b| {
        b.iter(|| {
            igdb_par::with_threads(1, || {
                black_box(analysis::physpath::physical_path_reports_with(
                    &f.igdb, &graph, &traces,
                ))
            })
        })
    });
    g.bench_function("reports_all_threads", |b| {
        b.iter(|| {
            black_box(analysis::physpath::physical_path_reports_with(
                &f.igdb, &graph, &traces,
            ))
        })
    });
    // Engine-level rows over one deterministic query stream (all ordered
    // pairs of the first k metros, grouped by source). The fresh-workspace
    // row reallocates per query — the pre-engine cost model — while the
    // reused row settles each source once and resumes for later targets.
    // The graph sits above [`igdb_core::CH_AUTO_THRESHOLD`], so each row
    // pins its query mode explicitly; the CH row runs `prepare_ch` outside
    // the timed region (preprocessing is a build-time cost).
    let k = graph.engine().node_count().min(40);
    g.bench_function("sp_queries_fresh_workspace", |b| {
        b.iter(|| {
            with_mode(SpMode::Dijkstra, || {
                let mut total = 0.0;
                for s in 0..k {
                    for t in 0..k {
                        if s == t {
                            continue;
                        }
                        let mut ws = igdb_core::SpWorkspace::new();
                        if let Some((_, d)) = graph.shortest_path_with(&mut ws, s, t) {
                            total += d;
                        }
                    }
                }
                black_box(total)
            })
        })
    });
    g.bench_function("sp_queries_reused_workspace", |b| {
        let mut ws = igdb_core::SpWorkspace::new();
        b.iter(|| {
            with_mode(SpMode::Dijkstra, || {
                black_box(all_ordered_pairs(graph.engine(), &mut ws, k))
            })
        })
    });
    graph.engine().prepare_ch();
    g.bench_function("ch_queries", |b| {
        let mut ws = igdb_core::SpWorkspace::new();
        b.iter(|| {
            with_mode(SpMode::Ch, || {
                black_box(all_ordered_pairs(graph.engine(), &mut ws, k))
            })
        })
    });
    g.finish();
}

/// The shared engine-row query stream: every ordered pair of the first `k`
/// nodes, grouped by source (the layout the resumable search amortizes).
fn all_ordered_pairs(
    engine: &igdb_core::ShortestPathEngine,
    ws: &mut igdb_core::SpWorkspace,
    k: usize,
) -> f64 {
    let mut total = 0.0;
    for s in 0..k {
        for t in 0..k {
            if s == t {
                continue;
            }
            if let Some((_, d)) = engine.shortest_path_with(ws, s, t) {
                total += d;
            }
        }
    }
    total
}

fn bench_phys_routing_mesh_medium(c: &mut Criterion) {
    // The CH payoff case: the medium physical graph (2,000 metros) under
    // the access pattern corridor queries actually arrive in — the source
    // changes (nearly) every query, as in the routing loop's pair-sorted
    // stream and a traceroute's consecutive legs. Resume amortization has
    // nothing to reuse, so Dijkstra re-settles a large region per query;
    // the bidirectional CH query touches a few hundred upward edges.
    let f = fixture(Scale::Medium);
    let graph = analysis::physpath::PhysGraph::from_igdb(&f.igdb);
    // Evenly spaced connected metros (degree-0 metros answer instantly and
    // would only dilute the comparison).
    let connected: Vec<usize> =
        (0..graph.engine().node_count()).filter(|&m| graph.degree(m) > 0).collect();
    let k = connected.len().min(48);
    let stride = connected.len() / k.max(1);
    let nodes: Vec<usize> = (0..k).map(|i| connected[i * stride]).collect();
    let mut g = c.benchmark_group("phys_routing_mesh_medium");
    g.sample_size(10);
    g.bench_function("sp_queries_reused_workspace", |b| {
        let mut ws = igdb_core::SpWorkspace::new();
        b.iter(|| {
            with_mode(SpMode::Dijkstra, || {
                black_box(interleaved_pairs(graph.engine(), &mut ws, &nodes))
            })
        })
    });
    graph.engine().prepare_ch();
    g.bench_function("ch_queries", |b| {
        let mut ws = igdb_core::SpWorkspace::new();
        b.iter(|| {
            with_mode(SpMode::Ch, || {
                black_box(interleaved_pairs(graph.engine(), &mut ws, &nodes))
            })
        })
    });
    g.bench_function("ch_distances_from_batched", |b| {
        let mut ws = igdb_core::SpWorkspace::new();
        b.iter(|| {
            with_mode(SpMode::Ch, || {
                let mut total = 0.0;
                for &s in &nodes {
                    for d in graph.engine().distances_from(&mut ws, s, &nodes).into_iter().flatten() {
                        total += d;
                    }
                }
                black_box(total)
            })
        })
    });
    g.finish();
}

/// Query stream whose source changes every query (target-major iteration):
/// the resumable search can never amortize, matching pair-at-a-time
/// corridor lookups.
fn interleaved_pairs(
    engine: &igdb_core::ShortestPathEngine,
    ws: &mut igdb_core::SpWorkspace,
    nodes: &[usize],
) -> f64 {
    let mut total = 0.0;
    for &t in nodes {
        for &s in nodes {
            if s == t {
                continue;
            }
            if let Some((_, d)) = engine.shortest_path_with(ws, s, t) {
                total += d;
            }
        }
    }
    total
}

fn bench_fig8_rocketfuel(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let map = igdb_synth::intertubes::rocketfuel_recreation(&f.world);
    c.bench_function("fig8_rocketfuel_remap", |b| {
        b.iter(|| black_box(analysis::rocketfuel::remap(&f.igdb, &map)))
    });
}

fn bench_fig9_fusion(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let trace = f
        .world
        .traceroute_between(f.world.scenarios.anchor_madrid, f.world.scenarios.anchor_berlin)
        .expect("scenario traceroute")
        .responding_ips();
    c.bench_function("fig9_fusion", |b| {
        b.iter(|| black_box(analysis::fusion::fuse(&f.igdb, &trace)))
    });
}

fn bench_fig10_density(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    c.bench_function("fig10_node_density", |b| {
        b.iter(|| black_box(analysis::density::node_density(&f.igdb)))
    });
}

fn bench_sec44_beliefprop(c: &mut Criterion) {
    let f = fixture(Scale::Tiny);
    let params = analysis::beliefprop::BeliefPropParams::default();
    let mut g = c.benchmark_group("sec44_beliefprop");
    g.sample_size(20);
    g.bench_function("propagate", |b| {
        b.iter(|| black_box(analysis::beliefprop::propagate(&f.igdb, &params)))
    });
    g.bench_function("consistency_check", |b| {
        b.iter(|| black_box(analysis::beliefprop::consistency_check(&f.igdb, &params)))
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_build,
    bench_table2,
    bench_table3,
    bench_fig3_voronoi,
    bench_fig4_intertubes,
    bench_fig5_export,
    bench_fig6_overlap,
    bench_fig7_physpath,
    bench_phys_routing_mesh,
    bench_phys_routing_mesh_medium,
    bench_fig8_rocketfuel,
    bench_fig9_fusion,
    bench_fig10_density,
    bench_sec44_beliefprop,
);
criterion_main!(paper);
