//! Deterministic fault injection for emitted snapshots.
//!
//! The ingestion layer's robustness claims are only testable if we can
//! corrupt a snapshot the way real feeds break — NaN and out-of-range
//! coordinates, dangling foreign keys, duplicate identifiers, truncated
//! parallel arrays, empty feeds — *reproducibly*. [`inject_faults`] takes
//! a seed and a list of [`FaultClass`]es, mutates the snapshot in place,
//! and returns a ledger of exactly what was broken where, in
//! [`igdb_fault::SourceId`] vocabulary, so a property test can demand that
//! the build's quarantine accounts for every entry.
//!
//! Guarantees:
//! * Same seed + same classes ⇒ identical corruption (the only RNG is a
//!   seeded `StdRng`; classes are applied in the order given).
//! * Each record-level class corrupts 1–3 distinct records of its source;
//!   a class whose source has no corruptible records (e.g. emptied by a
//!   preceding [`FaultClass::EmptySource`]) is skipped *without* a ledger
//!   entry, so the ledger never over-claims.
//! * Duplicate-id classes copy record 0's id into a later record, and no
//!   other class touches record 0 of those sources — the *later* record is
//!   the invalid one, matching the validator's first-wins rule.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;

use igdb_fault::SourceId;

use crate::sources::SnapshotSet;

/// One way a snapshot can be broken.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// NaN latitude on a Natural Earth place — exercises the metro-id
    /// remap, since every later metro shifts down one slot.
    NanMetroCoord,
    /// NaN latitude on an Internet Atlas node.
    NanAtlasCoord,
    /// Out-of-range longitude on a PeeringDB facility.
    RangeFacilityCoord,
    /// NaN longitude on a RIPE anchor.
    NanAnchorCoord,
    /// Out-of-range latitude on a cable landing point.
    RangeLandingCoord,
    /// netfac row pointing at a facility id that does not exist.
    DanglingNetfacFacility,
    /// netix row pointing at a network id that does not exist.
    DanglingNetixNetwork,
    /// Atlas link naming a node that does not exist.
    DanglingAtlasLink,
    /// Traceroute claiming a source anchor that does not exist.
    DanglingTraceAnchor,
    /// Road segment with an endpoint beyond the place catalogue.
    DanglingRoadEndpoint,
    /// Geocode entry pointing beyond the place catalogue.
    DanglingGeoCode,
    /// A later facility reusing facility 0's id.
    DuplicateFacilityId,
    /// A later network reusing network 0's id.
    DuplicateNetworkId,
    /// A later anchor reusing anchor 0's id.
    DuplicateAnchorId,
    /// A later cable reusing cable 0's id.
    DuplicateCableId,
    /// PCH member ASN / member org parallel arrays out of step.
    TruncatedPchMembers,
    /// Traceroute with its hop list torn off entirely.
    TruncatedTraceHops,
    /// A hop with a negative RTT.
    NegativeRtt,
    /// Road segment with a NaN length.
    GarbledRoadLength,
    /// The whole source is missing from the snapshot.
    EmptySource(SourceId),
}

impl FaultClass {
    /// Every record-level class (everything except [`FaultClass::EmptySource`]).
    pub const ALL_RECORD_CLASSES: [FaultClass; 19] = [
        FaultClass::NanMetroCoord,
        FaultClass::NanAtlasCoord,
        FaultClass::RangeFacilityCoord,
        FaultClass::NanAnchorCoord,
        FaultClass::RangeLandingCoord,
        FaultClass::DanglingNetfacFacility,
        FaultClass::DanglingNetixNetwork,
        FaultClass::DanglingAtlasLink,
        FaultClass::DanglingTraceAnchor,
        FaultClass::DanglingRoadEndpoint,
        FaultClass::DanglingGeoCode,
        FaultClass::DuplicateFacilityId,
        FaultClass::DuplicateNetworkId,
        FaultClass::DuplicateAnchorId,
        FaultClass::DuplicateCableId,
        FaultClass::TruncatedPchMembers,
        FaultClass::TruncatedTraceHops,
        FaultClass::NegativeRtt,
        FaultClass::GarbledRoadLength,
    ];

    /// The source this class corrupts.
    pub fn source(&self) -> SourceId {
        match self {
            FaultClass::NanMetroCoord => SourceId::NaturalEarth,
            FaultClass::NanAtlasCoord => SourceId::AtlasNodes,
            FaultClass::RangeFacilityCoord | FaultClass::DuplicateFacilityId => {
                SourceId::PdbFacilities
            }
            FaultClass::NanAnchorCoord | FaultClass::DuplicateAnchorId => SourceId::RipeAnchors,
            FaultClass::RangeLandingCoord | FaultClass::DuplicateCableId => SourceId::Telegeo,
            FaultClass::DanglingNetfacFacility => SourceId::PdbNetfac,
            FaultClass::DanglingNetixNetwork => SourceId::PdbNetix,
            FaultClass::DanglingAtlasLink => SourceId::AtlasLinks,
            FaultClass::DanglingTraceAnchor
            | FaultClass::TruncatedTraceHops
            | FaultClass::NegativeRtt => SourceId::RipeTraceroutes,
            FaultClass::DanglingRoadEndpoint | FaultClass::GarbledRoadLength => SourceId::Roads,
            FaultClass::DanglingGeoCode => SourceId::GeoCodes,
            FaultClass::DuplicateNetworkId => SourceId::PdbNetworks,
            FaultClass::TruncatedPchMembers => SourceId::PchIxps,
            FaultClass::EmptySource(s) => *s,
        }
    }
}

/// One ledger entry: what was broken, where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    pub class: FaultClass,
    pub source: SourceId,
    /// Record index within the source; `None` for whole-source faults.
    pub index: Option<usize>,
}

/// Picks 1–3 distinct indices in `lo..len`, sorted. Empty when the range
/// has no room.
fn pick_indices(rng: &mut StdRng, lo: usize, len: usize) -> Vec<usize> {
    if len <= lo {
        return Vec::new();
    }
    let n = rng.gen_range(1..=3usize).min(len - lo);
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    while picked.len() < n {
        picked.insert(rng.gen_range(lo..len));
    }
    picked.into_iter().collect()
}

/// Applies the given fault classes to `snaps` in order, driven by `seed`.
/// Returns the ledger of injected faults. [`FaultClass::EmptySource`]
/// entries are applied before record-level classes so index selection sees
/// the final vector lengths.
pub fn inject_faults(
    snaps: &mut SnapshotSet,
    seed: u64,
    classes: &[FaultClass],
) -> Vec<InjectedFault> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ledger: Vec<InjectedFault> = Vec::new();

    for class in classes {
        let FaultClass::EmptySource(source) = class else {
            continue;
        };
        match source {
            SourceId::NaturalEarth => snaps.natural_earth.clear(),
            SourceId::Roads => snaps.roads.clear(),
            SourceId::GeoCodes => snaps.geo_codes.clear(),
            SourceId::AtlasNodes => snaps.atlas_nodes.clear(),
            SourceId::AtlasLinks => snaps.atlas_links.clear(),
            SourceId::PdbFacilities => snaps.pdb_facilities.clear(),
            SourceId::PdbNetworks => snaps.pdb_networks.clear(),
            SourceId::PdbNetfac => snaps.pdb_netfac.clear(),
            SourceId::PdbIx => snaps.pdb_ix.clear(),
            SourceId::PdbNetix => snaps.pdb_netix.clear(),
            SourceId::PchIxps => snaps.pch_ixps.clear(),
            SourceId::HeExchanges => snaps.he_exchanges.clear(),
            SourceId::EuroIx => snaps.euroix.clear(),
            SourceId::Rdns => snaps.rdns.clear(),
            SourceId::AsRankEntries => snaps.asrank_entries.clear(),
            SourceId::AsRankLinks => snaps.asrank_links.clear(),
            SourceId::RipeAnchors => snaps.ripe_anchors.clear(),
            SourceId::RipeTraceroutes => snaps.ripe_traceroutes.clear(),
            SourceId::Telegeo => snaps.telegeo.clear(),
            SourceId::BgpPrefixes => snaps.bgp_prefixes.clear(),
            SourceId::AnycastPrefixes => snaps.anycast_prefixes.clear(),
            SourceId::HoihoRules => snaps.hoiho_rules.clear(),
        }
        ledger.push(InjectedFault {
            class: *class,
            source: *source,
            index: None,
        });
    }

    for &class in classes {
        let source = class.source();
        let hit = |ledger: &mut Vec<InjectedFault>, index: usize| {
            ledger.push(InjectedFault {
                class,
                source,
                index: Some(index),
            });
        };
        match class {
            FaultClass::EmptySource(_) => {}
            FaultClass::NanMetroCoord => {
                for i in pick_indices(&mut rng, 0, snaps.natural_earth.len()) {
                    snaps.natural_earth[i].loc.lat = f64::NAN;
                    hit(&mut ledger, i);
                }
            }
            FaultClass::NanAtlasCoord => {
                for i in pick_indices(&mut rng, 0, snaps.atlas_nodes.len()) {
                    snaps.atlas_nodes[i].loc.lat = f64::NAN;
                    hit(&mut ledger, i);
                }
            }
            FaultClass::RangeFacilityCoord => {
                // Record 0 is reserved for DuplicateFacilityId's id donor.
                for i in pick_indices(&mut rng, 1, snaps.pdb_facilities.len()) {
                    snaps.pdb_facilities[i].loc.lon = 180.0 + rng.gen_range(1.0..360.0);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::NanAnchorCoord => {
                for i in pick_indices(&mut rng, 1, snaps.ripe_anchors.len()) {
                    snaps.ripe_anchors[i].loc.lon = f64::NAN;
                    hit(&mut ledger, i);
                }
            }
            FaultClass::RangeLandingCoord => {
                for i in pick_indices(&mut rng, 1, snaps.telegeo.len()) {
                    let n_landings = snaps.telegeo[i].landings.len();
                    if n_landings == 0 {
                        continue;
                    }
                    let k = rng.gen_range(0..n_landings);
                    snaps.telegeo[i].landings[k].2.lat = 90.0 + rng.gen_range(1.0..90.0);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DanglingNetfacFacility => {
                for i in pick_indices(&mut rng, 0, snaps.pdb_netfac.len()) {
                    snaps.pdb_netfac[i].fac_id = 9_000_000 + rng.gen_range(0..1000u32);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DanglingNetixNetwork => {
                for i in pick_indices(&mut rng, 0, snaps.pdb_netix.len()) {
                    snaps.pdb_netix[i].net_id = 9_000_000 + rng.gen_range(0..1000u32);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DanglingAtlasLink => {
                for i in pick_indices(&mut rng, 0, snaps.atlas_links.len()) {
                    snaps.atlas_links[i].from_node = format!("ghost-pop-{seed}-{i}").into();
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DanglingTraceAnchor => {
                for i in pick_indices(&mut rng, 0, snaps.ripe_traceroutes.len()) {
                    snaps.ripe_traceroutes[i].src_anchor = 9_000_000 + rng.gen_range(0..1000u32);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DanglingRoadEndpoint => {
                let beyond = snaps.natural_earth.len();
                for i in pick_indices(&mut rng, 0, snaps.roads.len()) {
                    snaps.roads[i].a = beyond + rng.gen_range(0..1000usize);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DanglingGeoCode => {
                let beyond = snaps.natural_earth.len();
                for i in pick_indices(&mut rng, 0, snaps.geo_codes.len()) {
                    snaps.geo_codes[i].1 = beyond + rng.gen_range(0..1000usize);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::DuplicateFacilityId => {
                let donor = snaps.pdb_facilities.first().map(|f| f.fac_id);
                if let Some(id) = donor {
                    for i in pick_indices(&mut rng, 1, snaps.pdb_facilities.len()) {
                        snaps.pdb_facilities[i].fac_id = id;
                        hit(&mut ledger, i);
                    }
                }
            }
            FaultClass::DuplicateNetworkId => {
                let donor = snaps.pdb_networks.first().map(|n| n.net_id);
                if let Some(id) = donor {
                    for i in pick_indices(&mut rng, 1, snaps.pdb_networks.len()) {
                        snaps.pdb_networks[i].net_id = id;
                        hit(&mut ledger, i);
                    }
                }
            }
            FaultClass::DuplicateAnchorId => {
                let donor = snaps.ripe_anchors.first().map(|a| a.id);
                if let Some(id) = donor {
                    for i in pick_indices(&mut rng, 1, snaps.ripe_anchors.len()) {
                        snaps.ripe_anchors[i].id = id;
                        hit(&mut ledger, i);
                    }
                }
            }
            FaultClass::DuplicateCableId => {
                let donor = snaps.telegeo.first().map(|c| c.cable_id);
                if let Some(id) = donor {
                    for i in pick_indices(&mut rng, 1, snaps.telegeo.len()) {
                        snaps.telegeo[i].cable_id = id;
                        hit(&mut ledger, i);
                    }
                }
            }
            FaultClass::TruncatedPchMembers => {
                for i in pick_indices(&mut rng, 0, snaps.pch_ixps.len()) {
                    let x = &mut snaps.pch_ixps[i];
                    if x.member_orgs.pop().is_none() && x.member_asns.pop().is_none() {
                        continue; // both empty: lengths still match
                    }
                    hit(&mut ledger, i);
                }
            }
            FaultClass::TruncatedTraceHops => {
                for i in pick_indices(&mut rng, 0, snaps.ripe_traceroutes.len()) {
                    snaps.ripe_traceroutes[i].hops.clear();
                    hit(&mut ledger, i);
                }
            }
            FaultClass::NegativeRtt => {
                let candidates: Vec<usize> = snaps
                    .ripe_traceroutes
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.hops.is_empty())
                    .map(|(i, _)| i)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let n = rng.gen_range(1..=3usize).min(candidates.len());
                let mut picked: BTreeSet<usize> = BTreeSet::new();
                while picked.len() < n {
                    picked.insert(candidates[rng.gen_range(0..candidates.len())]);
                }
                for i in picked {
                    let hops = &mut snaps.ripe_traceroutes[i].hops;
                    let k = rng.gen_range(0..hops.len());
                    hops[k].rtt_ms = -1.0 - rng.gen_range(0.0..100.0);
                    hit(&mut ledger, i);
                }
            }
            FaultClass::GarbledRoadLength => {
                for i in pick_indices(&mut rng, 0, snaps.roads.len()) {
                    snaps.roads[i].length_km = f64::NAN;
                    hit(&mut ledger, i);
                }
            }
        }
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emit_snapshots, World, WorldConfig};

    fn snaps() -> SnapshotSet {
        let world = World::generate(WorldConfig::tiny());
        emit_snapshots(&world, "2022-05-03", 40)
    }

    #[test]
    fn same_seed_same_faults() {
        let classes = FaultClass::ALL_RECORD_CLASSES;
        let mut a = snaps();
        let mut b = snaps();
        let la = inject_faults(&mut a, 7, &classes);
        let lb = inject_faults(&mut b, 7, &classes);
        assert_eq!(la, lb);
        assert!(!la.is_empty());
        // Spot-check actual corruption equality, not just the ledger.
        for (x, y) in a.roads.iter().zip(b.roads.iter()) {
            assert_eq!(x.a, y.a);
            assert!(x.length_km == y.length_km || (x.length_km.is_nan() && y.length_km.is_nan()));
        }
        let mut c = snaps();
        let lc = inject_faults(&mut c, 8, &classes);
        assert_ne!(la, lc, "different seeds must differ somewhere");
    }

    #[test]
    fn ledger_matches_corruption() {
        let mut s = snaps();
        let before_traces = s.ripe_traceroutes.len();
        let ledger = inject_faults(&mut s, 42, &FaultClass::ALL_RECORD_CLASSES);
        assert_eq!(s.ripe_traceroutes.len(), before_traces, "faults mutate, never resize");
        for f in &ledger {
            assert_eq!(f.source, f.class.source());
            let i = f.index.expect("record classes carry an index");
            match f.class {
                FaultClass::NanMetroCoord => assert!(s.natural_earth[i].loc.lat.is_nan()),
                FaultClass::DanglingRoadEndpoint => assert!(s.roads[i].a >= s.natural_earth.len()),
                FaultClass::TruncatedTraceHops => assert!(s.ripe_traceroutes[i].hops.is_empty()),
                FaultClass::DuplicateFacilityId => {
                    assert_eq!(s.pdb_facilities[i].fac_id, s.pdb_facilities[0].fac_id);
                    assert!(i > 0);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn empty_source_applies_before_record_classes() {
        let mut s = snaps();
        let ledger = inject_faults(
            &mut s,
            3,
            &[
                FaultClass::NanAnchorCoord,
                FaultClass::EmptySource(SourceId::RipeAnchors),
            ],
        );
        assert!(s.ripe_anchors.is_empty());
        // The record-level class had nothing to corrupt, so the ledger
        // holds only the whole-source entry.
        assert_eq!(
            ledger,
            vec![InjectedFault {
                class: FaultClass::EmptySource(SourceId::RipeAnchors),
                source: SourceId::RipeAnchors,
                index: None,
            }]
        );
    }
}
