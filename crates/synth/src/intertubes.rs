//! Recreations of the two published map datasets the paper compares
//! against: the InterTubes US long-haul fiber map (Figure 4) and the
//! Rocketfuel AS7018 map (Figure 8).

use igdb_geo::{great_circle_arc, GeoPoint};

use crate::cities::City;
use crate::rightofway::RowNetwork;
use crate::world::World;

/// One long-haul link from the recreated InterTubes map.
#[derive(Clone, Debug)]
pub struct LongHaulLink {
    pub from_city: usize,
    pub to_city: usize,
    /// The link's actual geometry.
    pub path: Vec<GeoPoint>,
    /// True for the deliberately non-road link (the Atlanta–Houston
    /// pipeline analogue the paper could not approximate).
    pub off_road: bool,
}

/// A representative subset of the InterTubes corridor structure, shared
/// with the scenario backbone network (InterTubes itself was compiled from
/// Internet Atlas data, so the corridors legitimately appear in both).
pub const US_CORRIDORS: &[(&str, &str)] = &[
    ("New York", "Philadelphia"),
    ("Philadelphia", "Washington"),
    ("Washington", "Atlanta"),
    ("New York", "Boston"),
    ("New York", "Chicago"),
    ("Chicago", "Minneapolis"),
    ("Chicago", "St Louis"),
    ("St Louis", "Kansas City"),
    ("Kansas City", "Denver"),
    ("Denver", "Salt Lake City"),
    ("Salt Lake City", "Sacramento"),
    ("Sacramento", "San Francisco"),
    ("Los Angeles", "Phoenix"),
    ("Phoenix", "El Paso"),
    ("El Paso", "San Antonio"),
    ("San Antonio", "Houston"),
    ("Houston", "Dallas"),
    ("Dallas", "Atlanta"),
    ("Atlanta", "Miami"),
    ("Seattle", "Portland"),
    ("Portland", "Sacramento"),
    ("Chicago", "Cleveland"),
    ("Cleveland", "Pittsburgh"),
    ("Pittsburgh", "Philadelphia"),
    ("Kansas City", "Dallas"),
    ("Nashville", "Atlanta"),
    ("St Louis", "Nashville"),
    ("Los Angeles", "San Diego"),
    ("San Diego", "Phoenix"),
    ("Denver", "Albuquerque"),
    ("Albuquerque", "El Paso"),
    ("Seattle", "Spokane"),
    ("Spokane", "Billings"),
    ("Billings", "Minneapolis"),
];

/// Recreates an InterTubes-style US long-haul map: real long-haul links
/// follow road rights-of-way between major US metros, except one that
/// follows a gas pipeline (straight geodesic), reproducing the documented
/// Figure 4 miss.
pub fn intertubes_recreation(cities: &[City], row: &RowNetwork) -> Vec<LongHaulLink> {
    let id = |name: &str| -> usize {
        cities
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("city {name} missing"))
            .id
    };
    let corridors = US_CORRIDORS;
    let mut links: Vec<LongHaulLink> = corridors
        .iter()
        .filter_map(|&(a, b)| {
            let (ca, cb) = (id(a), id(b));
            let (city_path, _) = row.shortest_path(ca, cb)?;
            Some(LongHaulLink {
                from_city: ca,
                to_city: cb,
                path: row.path_geometry(&city_path),
                off_road: false,
            })
        })
        .collect();
    // The pipeline link: Atlanta–Houston directly, not along any road.
    let (atl, hou) = (id("Atlanta"), id("Houston"));
    links.push(LongHaulLink {
        from_city: atl,
        to_city: hou,
        path: great_circle_arc(&cities[atl].loc, &cities[hou].loc, 16),
        off_road: true,
    });
    links
}

/// One edge of the recreated Rocketfuel map: straight-line logical
/// connectivity between metros (how Rocketfuel drew AS7018).
#[derive(Clone, Debug)]
pub struct RocketfuelEdge {
    pub from_city: usize,
    pub to_city: usize,
}

/// A Rocketfuel-style map for a large synthetic US transit AS: its metro
/// nodes plus straight-line edges, *including* redundant diagonal pairs
/// that in physical reality collapse onto shared corridors — the
/// overstated path diversity Figure 8 corrects.
pub struct RocketfuelMap {
    pub asn: igdb_net::Asn,
    pub metros: Vec<usize>,
    pub edges: Vec<RocketfuelEdge>,
}

/// Builds the map from the world's Figure 7 transit ASes (their combined
/// US footprint plays the role of AT&T's).
pub fn rocketfuel_recreation(world: &World) -> RocketfuelMap {
    let heart = world
        .eco
        .get(world.scenarios.heartland)
        .expect("scenario AS");
    let east = world.eco.get(world.scenarios.eastcore).expect("scenario AS");
    let gulf = world.eco.get(world.scenarios.gulfeast).expect("scenario AS");
    let mut metros: Vec<usize> = heart
        .footprint
        .iter()
        .chain(&east.footprint)
        .chain(&gulf.footprint)
        .copied()
        .collect();
    metros.sort_unstable();
    metros.dedup();
    // Logical edges: every physical edge of the three ASes, plus inferred
    // traceroute shortcuts between non-adjacent metros (what Rocketfuel's
    // alias resolution produced).
    let mut edges: Vec<RocketfuelEdge> = heart
        .internal_edges
        .iter()
        .chain(&east.internal_edges)
        .chain(&gulf.internal_edges)
        .map(|e| RocketfuelEdge {
            from_city: e.a,
            to_city: e.b,
        })
        .collect();
    // Shortcut edges: metro pairs two physical hops apart appear directly
    // connected when the middle hop is invisible (MPLS or non-responding).
    let phys: std::collections::HashSet<(usize, usize)> = edges
        .iter()
        .map(|e| (e.from_city.min(e.to_city), e.from_city.max(e.to_city)))
        .collect();
    let mut adj: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for &(a, b) in &phys {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    let mut shortcuts = Vec::new();
    for (&m, nbs) in &adj {
        for i in 0..nbs.len() {
            for j in i + 1..nbs.len() {
                let (a, b) = (nbs[i].min(nbs[j]), nbs[i].max(nbs[j]));
                if !phys.contains(&(a, b)) {
                    shortcuts.push(RocketfuelEdge {
                        from_city: a,
                        to_city: b,
                    });
                    let _ = m;
                }
            }
        }
    }
    shortcuts.sort_by_key(|e| (e.from_city, e.to_city));
    shortcuts.dedup_by_key(|e| (e.from_city, e.to_city));
    edges.extend(shortcuts);
    RocketfuelMap {
        asn: world.scenarios.heartland,
        metros,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    #[test]
    fn intertubes_links_built_with_single_off_road() {
        let w = World::generate(WorldConfig::tiny());
        let links = intertubes_recreation(&w.cities, &w.row);
        assert!(links.len() >= 30, "got {}", links.len());
        assert_eq!(links.iter().filter(|l| l.off_road).count(), 1);
        for l in links.iter().filter(|l| !l.off_road) {
            assert!(l.path.len() >= 2);
        }
    }

    #[test]
    fn off_road_link_is_atlanta_houston_geodesic() {
        let w = World::generate(WorldConfig::tiny());
        let links = intertubes_recreation(&w.cities, &w.row);
        let off = links.iter().find(|l| l.off_road).unwrap();
        let names: Vec<&str> = [off.from_city, off.to_city]
            .iter()
            .map(|&c| w.cities[c].name.as_str())
            .collect();
        assert!(names.contains(&"Atlanta") && names.contains(&"Houston"));
        // Geodesic ≈ great-circle length, far below any road detour.
        let gc = igdb_geo::haversine_km(
            &w.cities[off.from_city].loc,
            &w.cities[off.to_city].loc,
        );
        let plen = igdb_geo::polyline_length_km(&off.path);
        assert!((plen - gc).abs() < gc * 0.01);
    }

    #[test]
    fn rocketfuel_map_overstates_diversity() {
        let w = World::generate(WorldConfig::tiny());
        let map = rocketfuel_recreation(&w);
        assert!(map.metros.len() >= 10);
        // The logical map must contain more edges than the physical edges
        // of the underlying ASes (the added shortcuts).
        let phys_edges: usize = [w.scenarios.heartland, w.scenarios.eastcore, w.scenarios.gulfeast]
            .iter()
            .map(|&a| w.eco.get(a).unwrap().internal_edges.len())
            .sum();
        assert!(map.edges.len() > phys_edges, "{} vs {phys_edges}", map.edges.len());
    }
}
