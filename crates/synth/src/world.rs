//! World orchestration: cities → roads → ASes → routers → addresses →
//! anchors → measurements.
//!
//! `World::generate` assembles the complete synthetic Internet that stands
//! in for the paper's external data universe. Everything downstream —
//! source snapshots, the iGDB build, every figure and table — derives from
//! this one deterministic object.

use std::collections::{HashMap, HashSet};

use igdb_geo::{haversine_km, GeoPoint};
use igdb_measure::{trace_route, Anchor, RouterId, RouterNet, Traceroute};
use igdb_net::ip::PrefixAllocator;
use igdb_net::{Asn, Ip4, Prefix, PrefixTrie, Propagator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ases::{build_ecosystem, AsClass, AsCounts, AsEcosystem};
use crate::cables::{build_cables, Cable};
use crate::cities::{build_cities, City};
use crate::naming::{hoiho_rules, hostname_for, GeoCodebook, HoihoRule};
use crate::rightofway::RowNetwork;
use crate::scenarios::{self, Scenarios};

/// World size and behaviour knobs.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    pub seed: u64,
    /// Total urban areas (paper: 7,342).
    pub n_cities: usize,
    pub as_counts: AsCounts,
    /// IXPs, placed in the most-populated cities.
    pub n_ixps: usize,
    /// RIPE-Atlas-style anchors (on top of the four scenario anchors).
    pub n_anchors: usize,
    /// Submarine cable systems (paper: 511).
    pub n_cables: usize,
    /// Fraction of routers that never answer traceroute probes.
    pub unresponsive_frac: f64,
}

impl WorldConfig {
    /// Unit-test scale: real cities only, a handful of ASes. Builds in
    /// tens of milliseconds.
    pub fn tiny() -> Self {
        Self {
            seed: 42,
            n_cities: 700,
            as_counts: AsCounts {
                tier1: 4,
                tier2: 18,
                stub: 90,
                content: 5,
            },
            n_ixps: 15,
            n_anchors: 30,
            n_cables: 40,
            unresponsive_frac: 0.08,
        }
    }

    /// Default working scale for examples and benches: statistically
    /// faithful, builds in a few seconds.
    pub fn medium() -> Self {
        Self {
            seed: 42,
            n_cities: 2000,
            as_counts: AsCounts {
                tier1: 9,
                tier2: 70,
                stub: 700,
                content: 12,
            },
            n_ixps: 60,
            n_anchors: 48,
            n_cables: 150,
            unresponsive_frac: 0.08,
        }
    }

    /// Paper scale: 7,342 urban areas, ~102k ASNs, 511 cables. Building the
    /// logical side stays fast, but anchor meshes and full BGP collection
    /// are sampled (see `igdb-bench`'s Table 1 report for details).
    pub fn paper() -> Self {
        Self {
            seed: 42,
            n_cities: 7342,
            as_counts: AsCounts {
                tier1: 12,
                tier2: 500,
                stub: 101_631,
                content: 60,
            },
            n_ixps: 250,
            n_anchors: 120,
            n_cables: 511,
            unresponsive_frac: 0.08,
        }
    }

    /// Planet-scale CI tier: ~20K metros and >10⁵ ASes — well past paper
    /// scale on the physical side, sized so a sharded build still fits a
    /// CI runner. The scale-smoke job builds this at 1 and 4 workers and
    /// diffs fingerprints.
    pub fn large() -> Self {
        Self {
            seed: 42,
            n_cities: 20_000,
            as_counts: AsCounts {
                tier1: 14,
                tier2: 650,
                stub: 110_000,
                content: 80,
            },
            n_ixps: 300,
            n_anchors: 140,
            n_cables: 600,
            unresponsive_frac: 0.08,
        }
    }

    /// The largest tier: ~40K metros, ~1.6×10⁵ ASes, ~10⁶-record sources.
    /// Exercised locally by the `scaling_curve` bench; the memory-layout
    /// work (interning, flat tables, sharded build) exists so this fits.
    pub fn planet() -> Self {
        Self {
            seed: 42,
            n_cities: 40_000,
            as_counts: AsCounts {
                tier1: 16,
                tier2: 900,
                stub: 160_000,
                content: 120,
            },
            n_ixps: 400,
            n_anchors: 160,
            n_cables: 700,
            unresponsive_frac: 0.08,
        }
    }
}

/// An Internet exchange point.
#[derive(Clone, Debug)]
pub struct Ixp {
    pub id: usize,
    pub name: String,
    pub city: usize,
    /// The IXP peering LAN prefix; addresses on it geolocate exactly.
    pub prefix: Prefix,
    pub members: Vec<IxpMember>,
}

/// An AS's presence at an IXP.
#[derive(Clone, Copy, Debug)]
pub struct IxpMember {
    pub asn: Asn,
    /// Remote peering: virtual presence without local infrastructure
    /// (paper §3.3's ambiguity flag).
    pub remote: bool,
}

/// Number of scenario anchors pinned before random anchor sampling.
pub const PINNED_ANCHORS: usize = 6;

/// The assembled synthetic world.
pub struct World {
    pub config: WorldConfig,
    pub cities: Vec<City>,
    pub row: RowNetwork,
    pub eco: AsEcosystem,
    pub scenarios: Scenarios,
    pub net: RouterNet,
    /// (ASN, city) → router.
    pub router_of: HashMap<(Asn, usize), RouterId>,
    /// Announced address block per AS (ground truth for IP→AS).
    pub prefix_of: HashMap<Asn, Prefix>,
    /// Ground-truth longest-prefix table of every announced block.
    pub origin_trie: PrefixTrie<Asn>,
    pub ixps: Vec<Ixp>,
    pub anchors: Vec<Anchor>,
    pub cables: Vec<Cable>,
    /// PTR records: interface address → hostname.
    pub hostnames: HashMap<Ip4, String>,
    pub codebook: GeoCodebook,
    pub hoiho: Vec<HoihoRule>,
    /// Anycast prefixes: one shared /24 per anycast operator, with
    /// interfaces spread across cities (paper §5's anycast hazard).
    pub anycast_prefixes: Vec<(Asn, Prefix)>,
}

impl World {
    /// Builds the whole world from a config. Deterministic in `config`.
    pub fn generate(config: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cities = build_cities(config.n_cities, &mut rng);
        let row = RowNetwork::build(&cities, &mut rng);
        let mut eco = build_ecosystem(&cities, config.as_counts, &mut rng);
        let scenarios = scenarios::install(&cities, &mut eco);
        let codebook = GeoCodebook::build(&cities);
        let hoiho = hoiho_rules(&eco.ases);

        // --- Address plan. ---
        // Big networks get a /16, stubs a /21, out of 0.0.0.0/2.
        let mut alloc = PrefixAllocator::new("0.0.0.0/2".parse().unwrap());
        let mut prefix_of = HashMap::new();
        let mut origin_trie = PrefixTrie::new();
        for a in &eco.ases {
            let len = match a.class {
                AsClass::Tier1 | AsClass::Tier2 | AsClass::Content => 16,
                AsClass::Stub => 21,
            };
            let p = alloc.alloc(len).expect("address space exhausted");
            prefix_of.insert(a.asn, p);
            origin_trie.insert(p, a.asn);
        }

        // --- Routers: one per (AS, footprint city). ---
        let mut net = RouterNet::new();
        let mut router_of = HashMap::new();
        for a in &eco.ases {
            for &cid in &a.footprint {
                let r = net.add_router(a.asn, cid, cities[cid].loc);
                router_of.insert((a.asn, cid), r);
            }
        }

        // Per-AS interface allocators.
        let mut iface_alloc: HashMap<Asn, PrefixAllocator> = prefix_of
            .iter()
            .map(|(&asn, &p)| {
                let mut a = PrefixAllocator::new(p);
                // Skip the first /24: reserved for anchors and loopbacks.
                a.alloc(24);
                (asn, a)
            })
            .collect();
        // Anycast operators (paper §5's anycast discussion): a few content
        // networks number many inter-AS interfaces across *different
        // cities* from one shared /24 — the prefix a geolocation database
        // must annotate rather than pin to one place.
        let mut anycast_prefixes: Vec<(Asn, Prefix)> = Vec::new();
        let mut anycast_counter: HashMap<Asn, u32> = HashMap::new();
        {
            let mut content_asns: Vec<Asn> = eco
                .ases
                .iter()
                .filter(|a| a.class == AsClass::Content)
                .map(|a| a.asn)
                .collect();
            content_asns.truncate(3);
            for asn in content_asns {
                if let Some(p) = iface_alloc.get_mut(&asn).and_then(|a| a.alloc(24)) {
                    anycast_prefixes.push((asn, p));
                    anycast_counter.insert(asn, 0);
                }
            }
        }
        let anycast_lookup: HashMap<Asn, Prefix> =
            anycast_prefixes.iter().copied().collect();
        let mut link_subnet = |asn: Asn| -> (Ip4, Ip4) {
            // Anycast operators burn their shared /24 first (up to 30
            // /30s), then fall back to ordinary space.
            if let (Some(p), Some(count)) =
                (anycast_lookup.get(&asn), anycast_counter.get_mut(&asn))
            {
                if *count < 30 {
                    let base = p.network().0 + *count * 4;
                    *count += 1;
                    return (Ip4(base + 1), Ip4(base + 2));
                }
            }
            let p = iface_alloc
                .get_mut(&asn)
                .and_then(|a| a.alloc(30))
                .unwrap_or_else(|| panic!("interface space exhausted for {asn}"));
            (p.nth(1).unwrap(), p.nth(2).unwrap())
        };

        // --- Internal links along each AS's physical edges. ---
        for a in &eco.ases {
            for e in &a.internal_edges {
                let (ra, rb) = (router_of[&(a.asn, e.a)], router_of[&(a.asn, e.b)]);
                let (length_km, submarine) = match row.shortest_path(e.a, e.b) {
                    Some((_, km)) if !e.submarine => (km, false),
                    _ => (
                        haversine_km(&cities[e.a].loc, &cities[e.b].loc) * 1.3,
                        true,
                    ),
                };
                let _ = submarine;
                let (ip_a, ip_b) = link_subnet(a.asn);
                net.add_link(
                    ra,
                    rb,
                    ip_a,
                    ip_b,
                    igdb_measure::propagation_delay_ms(length_km),
                    length_km,
                );
            }
        }

        // --- Inter-AS links: in shared cities, else closest city pair. ---
        // Track which routers host a border link (MPLS never hides those).
        let mut border_routers: HashSet<RouterId> = HashSet::new();
        let as_edges: Vec<(Asn, Asn)> = {
            let mut v = Vec::new();
            for a in eco.graph.asns() {
                for &(b, _) in eco.graph.neighbors(a) {
                    if a < b {
                        v.push((a, b));
                    }
                }
            }
            v
        };
        for (a, b) in as_edges {
            let fa = &eco.get(a).expect("AS in graph").footprint;
            let fb = &eco.get(b).expect("AS in graph").footprint;
            let shared: Vec<usize> = {
                let sb: HashSet<usize> = fb.iter().copied().collect();
                let mut s: Vec<usize> = fa.iter().copied().filter(|c| sb.contains(c)).collect();
                // Interconnect in the largest shared metros first.
                s.sort_by_key(|&c| std::cmp::Reverse(cities[c].population));
                s
            };
            let owner = if rng.gen_bool(0.5) { a } else { b };
            if shared.is_empty() {
                // Backhaul link between the closest pair of PoP cities.
                let mut best = (f64::INFINITY, fa[0], fb[0]);
                for &ca in fa {
                    for &cb in fb {
                        let d = haversine_km(&cities[ca].loc, &cities[cb].loc);
                        if d < best.0 {
                            best = (d, ca, cb);
                        }
                    }
                }
                let (ra, rb) = (router_of[&(a, best.1)], router_of[&(b, best.2)]);
                let (ip_a, ip_b) = link_subnet(owner);
                let km = best.0 * 1.2;
                net.add_link(ra, rb, ip_a, ip_b, igdb_measure::propagation_delay_ms(km), km);
                border_routers.insert(ra);
                border_routers.insert(rb);
            } else {
                for &cid in shared.iter().take(2) {
                    let (ra, rb) = (router_of[&(a, cid)], router_of[&(b, cid)]);
                    let (ip_a, ip_b) = link_subnet(owner);
                    // Metro-internal cross-connect.
                    let km = rng.gen_range(1.0..40.0);
                    net.add_link(ra, rb, ip_a, ip_b, igdb_measure::propagation_delay_ms(km) + 0.05, km);
                    border_routers.insert(ra);
                    border_routers.insert(rb);
                }
            }
        }

        // --- IXPs in the biggest cities. ---
        let mut by_pop: Vec<usize> = (0..cities.len()).collect();
        by_pop.sort_by_key(|&c| std::cmp::Reverse(cities[c].population));
        let mut ixp_alloc = PrefixAllocator::new("192.0.0.0/10".parse().unwrap());
        let mut ixps = Vec::new();
        for (k, &cid) in by_pop.iter().take(config.n_ixps).enumerate() {
            let prefix = ixp_alloc.alloc(24).expect("IXP prefix space exhausted");
            let mut members = Vec::new();
            for a in &eco.ases {
                let local = a.footprint.contains(&cid);
                let p_join = match (a.class, local) {
                    (AsClass::Tier1, true) => 0.9,
                    (AsClass::Content, true) => 0.9,
                    (AsClass::Tier2, true) => 0.6,
                    (AsClass::Stub, true) => 0.25,
                    // Remote peering: rare, and only for nearby-region ASes.
                    (AsClass::Tier2, false) | (AsClass::Stub, false) => 0.005,
                    _ => 0.0,
                };
                if p_join > 0.0 && rng.gen_bool(p_join) {
                    members.push(IxpMember {
                        asn: a.asn,
                        remote: !local,
                    });
                }
            }
            ixps.push(Ixp {
                id: k,
                name: format!("{}-IX", cities[cid].name.replace(' ', "")),
                city: cid,
                prefix,
                members,
            });
        }
        // Route-server peering: IXPs make bilateral/multilateral peering
        // cheap, so co-located members pick up peer edges they would never
        // provision privately (the "peering at peerings" fabric that
        // dominates real AS-link counts). Bounded sampling keeps the
        // fabric realistic at every scale. Scenario ASes are excluded so
        // the named experiments keep their hand-built routing.
        for ixp in &ixps {
            let locals: Vec<Asn> = ixp
                .members
                .iter()
                .filter(|m| !m.remote && !(64_100..=65_100).contains(&m.asn.0))
                .map(|m| m.asn)
                .collect();
            if locals.len() < 2 {
                continue;
            }
            let attempts = (locals.len() * 2).min(800);
            for _ in 0..attempts {
                let a = locals[rng.gen_range(0..locals.len())];
                let b = locals[rng.gen_range(0..locals.len())];
                if a != b && eco.graph.relationship(a, b).is_none() {
                    eco.graph.add_edge(a, b, igdb_net::AsRelationship::Peer);
                }
            }
        }

        // Re-address peer links at IXP cities from the IXP LAN, so some
        // traceroute hops carry IXP addresses (the §4.4 ground-truth class).
        // We add a *parallel* IXP-LAN link between local members that
        // already peer; the LAN has lower delay so routing prefers it.
        for ixp in &ixps {
            let local_members: Vec<Asn> = ixp
                .members
                .iter()
                .filter(|m| !m.remote)
                .map(|m| m.asn)
                .collect();
            let mut lan_host = 1u32;
            for i in 0..local_members.len() {
                for j in i + 1..local_members.len() {
                    let (a, b) = (local_members[i], local_members[j]);
                    if eco.graph.relationship(a, b) != Some(igdb_net::AsRelationship::Peer) {
                        continue;
                    }
                    let (Some(&ra), Some(&rb)) =
                        (router_of.get(&(a, ixp.city)), router_of.get(&(b, ixp.city)))
                    else {
                        continue;
                    };
                    if lan_host + 2 >= ixp.prefix.size() {
                        break;
                    }
                    let ip_a = ixp.prefix.nth(lan_host).unwrap();
                    let ip_b = ixp.prefix.nth(lan_host + 1).unwrap();
                    lan_host += 2;
                    net.add_link(ra, rb, ip_a, ip_b, 0.05, 1.0);
                    border_routers.insert(ra);
                    border_routers.insert(rb);
                }
            }
        }

        // --- MPLS interiors and unresponsive routers. ---
        for a in &eco.ases {
            if !a.mpls {
                continue;
            }
            for &cid in &a.footprint {
                let r = router_of[&(a.asn, cid)];
                if !border_routers.contains(&r) {
                    net.set_mpls_hidden(r, true);
                }
            }
        }
        for r in 0..net.router_count() {
            let asn = net.router(RouterId(r as u32)).asn;
            // Scenario networks (reserved 64100–65100) stay responsive so
            // the named experiments observe their headline hops.
            if (64_100..=65_100).contains(&asn.0) {
                continue;
            }
            if rng.gen_bool(config.unresponsive_frac) {
                net.set_responds(RouterId(r as u32), false);
            }
        }

        // --- Anchors: the four scenario anchors plus random (AS, city). ---
        let mut anchors = Vec::new();
        let mut anchor_serial = 6000u32;
        let add_anchor = |anchors: &mut Vec<Anchor>,
                              asn: Asn,
                              cid: usize,
                              serial: &mut u32,
                              prefix_of: &HashMap<Asn, Prefix>| {
            let router = router_of[&(asn, cid)];
            // Anchor address from the AS's reserved first /24.
            let ip = prefix_of[&asn]
                .nth(10 + (*serial - 6000))
                .expect("anchor address");
            anchors.push(Anchor {
                id: *serial,
                ip,
                asn,
                city: cid,
                loc: cities[cid].loc,
                router,
            });
            *serial += 1;
        };
        for (asn, cid) in [
            scenarios.anchor_kansas_city,
            scenarios.anchor_atlanta,
            scenarios.anchor_madrid,
            scenarios.anchor_berlin,
            scenarios.anchor_globetrans_a,
            scenarios.anchor_globetrans_b,
        ] {
            add_anchor(&mut anchors, asn, cid, &mut anchor_serial, &prefix_of);
        }
        // Random anchors hosted by stubs and content networks.
        let candidates: Vec<(Asn, usize)> = eco
            .ases
            .iter()
            .filter(|a| matches!(a.class, AsClass::Stub | AsClass::Content))
            .flat_map(|a| a.footprint.iter().map(move |&c| (a.asn, c)))
            .collect();
        let mut used: HashSet<(Asn, usize)> = anchors.iter().map(|a| (a.asn, a.city)).collect();
        let mut guard = 0;
        while anchors.len() < PINNED_ANCHORS + config.n_anchors && guard < config.n_anchors * 50 + 100 {
            guard += 1;
            let pick = candidates[rng.gen_range(0..candidates.len())];
            if used.insert(pick) {
                add_anchor(&mut anchors, pick.0, pick.1, &mut anchor_serial, &prefix_of);
            }
        }

        // --- rDNS hostnames for every link interface. ---
        let mut hostnames = HashMap::new();
        let mut serial_of: HashMap<RouterId, u32> = HashMap::new();
        for link in net.links() {
            for (r, ip) in [(link.a, link.a_ip), (link.b, link.b_ip)] {
                let router = net.router(r);
                let a = eco.get(router.asn).expect("router AS exists");
                let serial = serial_of.entry(r).or_insert(0);
                *serial += 1;
                if let Some(h) =
                    hostname_for(a, &cities[router.city], &codebook, ip, *serial)
                {
                    hostnames.insert(ip, h);
                }
            }
        }

        // --- Submarine cables (owners drawn from transit orgs). ---
        let owner_pool: Vec<String> = eco
            .ases
            .iter()
            .filter(|a| matches!(a.class, AsClass::Tier1 | AsClass::Tier2))
            .map(|a| a.names.asrank_org.clone())
            .collect();
        let cables = build_cables(&cities, &owner_pool, config.n_cables, &mut rng);

        World {
            config,
            cities,
            row,
            eco,
            scenarios,
            net,
            router_of,
            prefix_of,
            origin_trie,
            ixps,
            anchors,
            cables,
            hostnames,
            codebook,
            hoiho,
            anycast_prefixes,
        }
    }

    /// A BGP propagation engine over the world's AS graph.
    pub fn propagator(&self) -> Propagator {
        Propagator::new(&self.eco.graph)
    }

    /// Ground truth: the router (and thus AS + city) *operating* an
    /// interface address. Note this can differ from the address block's
    /// owner — the §3.3 border-ownership pitfall.
    pub fn truth_router_of_ip(&self, ip: Ip4) -> Option<RouterId> {
        self.net.owner_of(ip)
    }

    /// Ground truth: city of the router operating `ip` (interfaces), or of
    /// the anchor bound to `ip`.
    pub fn truth_city_of_ip(&self, ip: Ip4) -> Option<usize> {
        if let Some(r) = self.net.owner_of(ip) {
            return Some(self.net.router(r).city);
        }
        self.anchors.iter().find(|a| a.ip == ip).map(|a| a.city)
    }

    /// Ground truth: the AS operating `ip`.
    pub fn truth_asn_of_ip(&self, ip: Ip4) -> Option<Asn> {
        if let Some(r) = self.net.owner_of(ip) {
            return Some(self.net.router(r).asn);
        }
        self.anchors.iter().find(|a| a.ip == ip).map(|a| a.asn)
    }

    /// The IXP whose LAN contains `ip`, if any.
    pub fn ixp_of_ip(&self, ip: Ip4) -> Option<&Ixp> {
        self.ixps.iter().find(|x| x.prefix.contains(ip))
    }

    /// Runs the anchor mesh: traceroutes between up to `max_pairs` ordered
    /// anchor pairs (propagating BGP once per destination AS).
    pub fn anchor_mesh(&self, max_pairs: usize) -> Vec<(u32, u32, Traceroute)> {
        let prop = self.propagator();
        let mut tables: HashMap<Asn, igdb_net::bgp::RouteTable<'_>> = HashMap::new();
        let mut out = Vec::new();
        'outer: for dst in &self.anchors {
            let table = tables
                .entry(dst.asn)
                .or_insert_with(|| prop.propagate(dst.asn));
            for src in &self.anchors {
                if src.id == dst.id {
                    continue;
                }
                if out.len() >= max_pairs {
                    break 'outer;
                }
                let Some(route) = table.route(src.asn) else {
                    continue;
                };
                if let Some(tr) = trace_route(&self.net, src.router, dst.router, Some(&route.path))
                {
                    out.push((src.id, dst.id, tr));
                }
            }
        }
        out
    }

    /// The traceroute between two specific anchors (by scenario handle).
    pub fn traceroute_between(&self, src: (Asn, usize), dst: (Asn, usize)) -> Option<Traceroute> {
        let s = self.anchors.iter().find(|a| (a.asn, a.city) == src)?;
        let d = self.anchors.iter().find(|a| (a.asn, a.city) == dst)?;
        let prop = self.propagator();
        let table = prop.propagate(d.asn);
        let route = table.route(s.asn)?;
        trace_route(&self.net, s.router, d.router, Some(&route.path))
    }

    /// Convenience: city centre location.
    pub fn city_loc(&self, city: usize) -> GeoPoint {
        self.cities[city].loc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.net.router_count(), b.net.router_count());
        assert_eq!(a.net.link_count(), b.net.link_count());
        assert_eq!(a.anchors.len(), b.anchors.len());
        assert_eq!(a.hostnames.len(), b.hostnames.len());
        assert_eq!(
            a.anchors.iter().map(|x| x.ip).collect::<Vec<_>>(),
            b.anchors.iter().map(|x| x.ip).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_as_has_routers_and_prefix() {
        let w = tiny();
        for a in &w.eco.ases {
            assert!(w.prefix_of.contains_key(&a.asn));
            for &c in &a.footprint {
                assert!(w.router_of.contains_key(&(a.asn, c)), "{} city {c}", a.asn);
            }
        }
    }

    #[test]
    fn prefixes_disjoint_and_trie_consistent() {
        let w = tiny();
        let ps: Vec<(Asn, Prefix)> = w.prefix_of.iter().map(|(&a, &p)| (a, p)).collect();
        for (i, (_, a)) in ps.iter().enumerate() {
            for (_, b) in &ps[i + 1..] {
                assert!(!a.covers(b) && !b.covers(a), "{a} overlaps {b}");
            }
        }
        for (asn, p) in &ps {
            let (_, got) = w.origin_trie.lookup(p.nth(5).unwrap()).unwrap();
            assert_eq!(got, asn);
        }
    }

    #[test]
    fn scenario_anchors_exist() {
        let w = tiny();
        for handle in [
            w.scenarios.anchor_kansas_city,
            w.scenarios.anchor_atlanta,
            w.scenarios.anchor_madrid,
            w.scenarios.anchor_berlin,
        ] {
            assert!(
                w.anchors.iter().any(|a| (a.asn, a.city) == handle),
                "missing anchor {handle:?}"
            );
        }
        assert_eq!(w.anchors.len(), PINNED_ANCHORS + w.config.n_anchors);
    }

    #[test]
    fn fig7_traceroute_hides_tulsa_or_okc() {
        let w = tiny();
        let tr = w
            .traceroute_between(w.scenarios.anchor_kansas_city, w.scenarios.anchor_atlanta)
            .expect("KC→Atlanta traceroute must exist");
        // Ground truth passes through Tulsa or Oklahoma City…
        let truth_cities: Vec<usize> = tr
            .truth_path
            .iter()
            .map(|&r| w.net.router(r).city)
            .collect();
        let tulsa = w.cities.iter().find(|c| c.name == "Tulsa").unwrap().id;
        let okc = w
            .cities
            .iter()
            .find(|c| c.name == "Oklahoma City")
            .unwrap()
            .id;
        assert!(
            truth_cities.contains(&tulsa) || truth_cities.contains(&okc),
            "truth path avoids the Midwest corridor: {truth_cities:?}"
        );
        // …but no *observed* hop is there (MPLS hides the interior).
        let observed_cities: Vec<usize> = tr
            .hops
            .iter()
            .filter(|h| h.ip.is_some())
            .map(|h| w.net.router(h.truth_router).city)
            .collect();
        assert!(
            !observed_cities.contains(&tulsa) && !observed_cities.contains(&okc),
            "MPLS interior leaked into observed hops: {observed_cities:?}"
        );
        // Dallas and Houston are observed.
        let dallas = w.cities.iter().find(|c| c.name == "Dallas").unwrap().id;
        let houston = w.cities.iter().find(|c| c.name == "Houston").unwrap().id;
        assert!(observed_cities.contains(&dallas), "{observed_cities:?}");
        assert!(observed_cities.contains(&houston), "{observed_cities:?}");
    }

    #[test]
    fn fig9_traceroute_spans_three_countries() {
        let w = tiny();
        let tr = w
            .traceroute_between(w.scenarios.anchor_madrid, w.scenarios.anchor_berlin)
            .expect("Madrid→Berlin traceroute must exist");
        let countries: HashSet<&str> = tr
            .truth_path
            .iter()
            .map(|&r| w.cities[w.net.router(r).city].country.as_str())
            .collect();
        assert!(countries.contains("ES"));
        assert!(countries.contains("DE"));
        assert!(countries.contains("FR"));
    }

    #[test]
    fn mesh_produces_traceroutes_with_rdns_coverage() {
        let w = tiny();
        let mesh = w.anchor_mesh(200);
        assert!(mesh.len() >= 100, "got {}", mesh.len());
        let mut ips = 0;
        let mut resolved = 0;
        for (_, _, tr) in &mesh {
            for ip in tr.responding_ips() {
                ips += 1;
                if w.hostnames.contains_key(&ip) {
                    resolved += 1;
                }
            }
        }
        assert!(ips > 300, "too few observed addresses: {ips}");
        let frac = resolved as f64 / ips as f64;
        assert!(
            (0.3..0.95).contains(&frac),
            "rDNS resolve rate {frac} out of the plausible band"
        );
    }

    #[test]
    fn ixps_have_local_members_and_lan_addresses_resolve() {
        let w = tiny();
        assert_eq!(w.ixps.len(), w.config.n_ixps);
        let mut lan_links = 0;
        for ixp in &w.ixps {
            assert!(ixp.members.iter().any(|m| !m.remote) || ixp.members.is_empty());
            for link in w.net.links() {
                if ixp.prefix.contains(link.a_ip) {
                    lan_links += 1;
                    assert_eq!(w.ixp_of_ip(link.a_ip).unwrap().id, ixp.id);
                }
            }
        }
        assert!(lan_links > 0, "no IXP LAN links were created");
    }

    #[test]
    fn truth_lookups_cover_interfaces_and_anchors() {
        let w = tiny();
        let link = &w.net.links()[0];
        assert_eq!(w.truth_router_of_ip(link.a_ip), Some(link.a));
        let anchor = &w.anchors[0];
        assert_eq!(w.truth_asn_of_ip(anchor.ip), Some(anchor.asn));
        assert_eq!(w.truth_city_of_ip(anchor.ip), Some(anchor.city));
    }

    #[test]
    fn anycast_prefixes_span_multiple_cities() {
        // The §5 hazard must actually exist: interfaces of one anycast
        // /24 sit in several different cities.
        let w = tiny();
        assert!(!w.anycast_prefixes.is_empty());
        for &(asn, prefix) in &w.anycast_prefixes {
            let mut cities_seen = std::collections::HashSet::new();
            for link in w.net.links() {
                for (r, ip) in [(link.a, link.a_ip), (link.b, link.b_ip)] {
                    if prefix.contains(ip) {
                        cities_seen.insert(w.net.router(r).city);
                    }
                }
            }
            assert!(
                cities_seen.len() >= 2,
                "{asn}'s anycast {prefix} spans only {cities_seen:?}"
            );
        }
    }

    #[test]
    fn border_interfaces_can_carry_neighbor_address_space() {
        // The §3.3 pitfall must actually occur: some interface is operated
        // by AS X but numbered from AS Y's block.
        let w = tiny();
        let mut mismatches = 0;
        for link in w.net.links() {
            for (r, ip) in [(link.a, link.a_ip), (link.b, link.b_ip)] {
                let operator = w.net.router(r).asn;
                if let Some((_, &block_owner)) = w.origin_trie.lookup(ip) {
                    if block_owner != operator {
                        mismatches += 1;
                    }
                }
            }
        }
        assert!(mismatches > 50, "only {mismatches} borrowed interfaces");
    }
}
