//! Synthetic submarine cable systems (the Telegeography substitute).
//!
//! "Submarine cables are conduits for international data transfer … we
//! collected data from an alternate, openly available source,
//! Telegeography. The data we imported includes the consortium of companies
//! overseeing each cable, the cable segment physical paths, and their
//! associated landing points" (paper §2). We generate cable systems between
//! coastal cities — mostly intercontinental, some coastal-hugging regional
//! systems — with multi-segment great-circle paths and named landing
//! points.

use igdb_geo::{great_circle_arc, haversine_km, polyline_length_km, GeoPoint};
use rand::rngs::StdRng;
use rand::Rng;

use crate::cities::{continent_of, City};

/// A cable landing site.
#[derive(Clone, Debug)]
pub struct LandingPoint {
    /// City the landing station serves.
    pub city: usize,
    /// Telegeography-style name, e.g. "Marseille Landing Station".
    pub name: String,
    pub loc: GeoPoint,
}

/// One cable system.
#[derive(Clone, Debug)]
pub struct Cable {
    pub id: usize,
    pub name: String,
    /// Consortium member organizations.
    pub owners: Vec<String>,
    /// Landing points in chain order.
    pub landings: Vec<LandingPoint>,
    /// One polyline per consecutive landing pair.
    pub segments: Vec<Vec<GeoPoint>>,
}

impl Cable {
    pub fn total_length_km(&self) -> f64 {
        self.segments.iter().map(|s| polyline_length_km(s)).sum()
    }
}

const CABLE_ADJECTIVES: &[&str] = &[
    "Express", "Connect", "Gateway", "Bridge", "Link", "Crossing", "Light", "Wave", "Reach",
];
const OCEAN_NAMES: &[&str] = &[
    "Atlantic", "Pacific", "Meridian", "Austral", "Boreal", "Equatorial", "Azure", "Coral",
    "Polar",
];

/// Generates `count` cable systems over the coastal cities. `owner_pool`
/// supplies consortium member names (AS organizations).
pub fn build_cables(
    cities: &[City],
    owner_pool: &[String],
    count: usize,
    rng: &mut StdRng,
) -> Vec<Cable> {
    let coastal: Vec<&City> = cities.iter().filter(|c| c.coastal).collect();
    if coastal.len() < 2 {
        return Vec::new();
    }
    let mut cables = Vec::with_capacity(count);
    let mut used_pairs = std::collections::HashSet::new();
    let mut guard = 0;
    while cables.len() < count && guard < count * 60 + 100 {
        guard += 1;
        let a = coastal[rng.gen_range(0..coastal.len())];
        let b = coastal[rng.gen_range(0..coastal.len())];
        if a.id == b.id {
            continue;
        }
        // ~75% of systems must cross continents; the rest hug a coast.
        let cross = continent_of(&a.country) != continent_of(&b.country);
        if !cross && rng.gen_bool(0.75) {
            continue;
        }
        let gc = haversine_km(&a.loc, &b.loc);
        if gc < 150.0 || gc > 16_000.0 {
            continue;
        }
        let key = (a.id.min(b.id), a.id.max(b.id));
        if !used_pairs.insert(key) {
            continue;
        }
        // Optional intermediate landing (branching systems).
        let mut chain = vec![a.id];
        if gc > 4000.0 && rng.gen_bool(0.45) {
            // Pick a coastal city roughly between the two endpoints.
            let mid = igdb_geo::geodesy::intermediate_point(&a.loc, &b.loc, 0.5);
            if let Some(via) = coastal
                .iter()
                .filter(|c| c.id != a.id && c.id != b.id)
                .min_by(|x, y| {
                    haversine_km(&x.loc, &mid)
                        .partial_cmp(&haversine_km(&y.loc, &mid))
                        .unwrap()
                })
            {
                if haversine_km(&via.loc, &mid) < gc * 0.35 {
                    chain.push(via.id);
                }
            }
        }
        chain.push(b.id);

        let landings: Vec<LandingPoint> = chain
            .iter()
            .map(|&cid| LandingPoint {
                city: cid,
                name: format!("{} Landing Station", cities[cid].name),
                loc: cities[cid].loc,
            })
            .collect();
        let segments: Vec<Vec<GeoPoint>> = chain
            .windows(2)
            .map(|w| {
                let (p, q) = (&cities[w[0]].loc, &cities[w[1]].loc);
                let n = ((haversine_km(p, q) / 400.0).ceil() as usize).clamp(2, 48);
                great_circle_arc(p, q, n)
            })
            .collect();
        let n_owners = rng.gen_range(1..=4.min(owner_pool.len().max(1)));
        let mut owners = Vec::new();
        for _ in 0..n_owners {
            if owner_pool.is_empty() {
                break;
            }
            let o = owner_pool[rng.gen_range(0..owner_pool.len())].clone();
            if !owners.contains(&o) {
                owners.push(o);
            }
        }
        let id = cables.len();
        cables.push(Cable {
            id,
            name: format!(
                "{} {} {}",
                OCEAN_NAMES[rng.gen_range(0..OCEAN_NAMES.len())],
                CABLE_ADJECTIVES[rng.gen_range(0..CABLE_ADJECTIVES.len())],
                id + 1
            ),
            owners,
            landings,
            segments,
        });
    }
    cables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::build_cities;
    use rand::SeedableRng;

    fn cables() -> (Vec<City>, Vec<Cable>) {
        let mut rng = StdRng::seed_from_u64(21);
        let cities = build_cities(400, &mut rng);
        let owners: Vec<String> = (0..20).map(|i| format!("Owner {i}")).collect();
        let cs = build_cables(&cities, &owners, 60, &mut rng);
        (cities, cs)
    }

    #[test]
    fn requested_count_reached() {
        let (_, cs) = cables();
        assert_eq!(cs.len(), 60);
    }

    #[test]
    fn landings_are_coastal_cities() {
        let (cities, cs) = cables();
        for c in &cs {
            assert!(c.landings.len() >= 2);
            for lp in &c.landings {
                assert!(cities[lp.city].coastal, "{}: {}", c.name, lp.name);
                assert!(lp.name.ends_with("Landing Station"));
            }
        }
    }

    #[test]
    fn segments_connect_landings_in_order() {
        let (_, cs) = cables();
        for c in &cs {
            assert_eq!(c.segments.len(), c.landings.len() - 1);
            for (seg, w) in c.segments.iter().zip(c.landings.windows(2)) {
                assert!(haversine_km(&seg[0], &w[0].loc) < 1.0);
                assert!(haversine_km(seg.last().unwrap(), &w[1].loc) < 1.0);
            }
        }
    }

    #[test]
    fn lengths_reasonable_and_mostly_intercontinental() {
        let (cities, cs) = cables();
        let mut cross = 0;
        for c in &cs {
            let len = c.total_length_km();
            assert!(len > 100.0 && len < 40_000.0, "{}: {len}", c.name);
            let a = &cities[c.landings[0].city];
            let b = &cities[c.landings.last().unwrap().city];
            if continent_of(&a.country) != continent_of(&b.country) {
                cross += 1;
            }
        }
        assert!(cross * 2 > cs.len(), "most cables should cross continents: {cross}/{}", cs.len());
    }

    #[test]
    fn owners_nonempty_unique() {
        let (_, cs) = cables();
        for c in &cs {
            assert!(!c.owners.is_empty());
            let set: std::collections::HashSet<&String> = c.owners.iter().collect();
            assert_eq!(set.len(), c.owners.len());
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(5);
            let cities = build_cities(300, &mut rng);
            let owners = vec!["A".to_string(), "B".to_string()];
            build_cables(&cities, &owners, 25, &mut rng)
                .iter()
                .map(|c| (c.name.clone(), c.landings.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
