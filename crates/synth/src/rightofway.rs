//! The synthetic right-of-way (road/rail) network.
//!
//! Paper §3.1: long-haul fiber "follows rights-of-way along existing
//! networks such as roadways, rail, and power lines", so iGDB approximates
//! unknown cable paths as shortest paths along a transportation graph. Our
//! synthetic transportation graph is the Delaunay triangulation of the
//! urban areas with over-long edges removed (roads connect neighbouring
//! cities, not across oceans), each edge carrying a gently jittered
//! polyline so paths look like roads rather than geodesics.

use igdb_geo::{
    delaunay::triangulate, destination, haversine_km, initial_bearing_deg, intermediate_point,
    polyline_length_km, GeoPoint,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::cities::City;

/// Roads meander: ratio of road length to great-circle distance.
pub const ROAD_CURVATURE: f64 = 1.15;

/// Maximum single road segment between adjacent cities, km. Longer Delaunay
/// edges (across oceans or empty interiors) are discarded.
pub const MAX_SEGMENT_KM: f64 = 1500.0;

/// One road/rail segment between two cities.
#[derive(Clone, Debug)]
pub struct RowEdge {
    pub a: usize,
    pub b: usize,
    /// Road length in km (great-circle × curvature).
    pub length_km: f64,
    /// The polyline geometry the road follows (a → b).
    pub path: Vec<GeoPoint>,
}

/// The right-of-way graph over the city set.
pub struct RowNetwork {
    pub edges: Vec<RowEdge>,
    /// city -> [(neighbor city, edge index)]
    adj: Vec<Vec<(usize, usize)>>,
}

impl RowNetwork {
    /// Builds the network from the city catalogue.
    pub fn build(cities: &[City], rng: &mut StdRng) -> Self {
        let sites: Vec<GeoPoint> = cities.iter().map(|c| c.loc).collect();
        let tri = triangulate(&sites);
        let mut edges = Vec::new();
        let mut adj = vec![Vec::new(); cities.len()];
        let mut seen = std::collections::HashSet::new();
        for (a, nbs) in tri.neighbors.iter().enumerate() {
            for &b in nbs {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if !seen.insert((lo, hi)) {
                    continue;
                }
                let gc = haversine_km(&sites[lo], &sites[hi]);
                if gc > MAX_SEGMENT_KM || gc < 1e-9 {
                    continue;
                }
                let path = jittered_path(&sites[lo], &sites[hi], rng);
                let length_km = polyline_length_km(&path);
                let idx = edges.len();
                edges.push(RowEdge {
                    a: lo,
                    b: hi,
                    length_km,
                    path,
                });
                adj[lo].push((hi, idx));
                adj[hi].push((lo, idx));
            }
        }
        Self { edges, adj }
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn neighbors(&self, city: usize) -> &[(usize, usize)] {
        &self.adj[city]
    }

    /// Dijkstra shortest path between two cities along the road network.
    /// Returns `(city sequence, total km)`, or `None` if disconnected
    /// (e.g. across an ocean).
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<(Vec<usize>, f64)> {
        if from == to {
            return Some((vec![from], 0.0));
        }
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[from] = 0.0;
        heap.push((std::cmp::Reverse(ordered(0.0)), from));
        while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
            let d = unordered(d);
            if d > dist[u] {
                continue;
            }
            if u == to {
                break;
            }
            for &(v, e) in &self.adj[u] {
                let nd = d + self.edges[e].length_km;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push((std::cmp::Reverse(ordered(nd)), v));
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some((path, dist[to]))
    }

    /// Concatenated road geometry for a city sequence (vertices deduped at
    /// junctions). Panics if consecutive cities are not adjacent.
    pub fn path_geometry(&self, city_path: &[usize]) -> Vec<GeoPoint> {
        let mut out: Vec<GeoPoint> = Vec::new();
        for w in city_path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let &(_, e) = self.adj[u]
                .iter()
                .find(|(nb, _)| *nb == v)
                .unwrap_or_else(|| panic!("cities {u} and {v} not road-adjacent"));
            let edge = &self.edges[e];
            let mut seg = edge.path.clone();
            if edge.a != u {
                seg.reverse();
            }
            if !out.is_empty() {
                seg.remove(0); // junction vertex already present
            }
            out.extend(seg);
        }
        out
    }
}

/// Sortable f64 bits (values are non-negative distances).
fn ordered(v: f64) -> u64 {
    v.to_bits()
}
fn unordered(v: u64) -> f64 {
    f64::from_bits(v)
}

/// A road-like polyline: the great circle sampled at ~100 km intervals
/// with small perpendicular jitter, scaled so total length ≈ great circle
/// × [`ROAD_CURVATURE`].
fn jittered_path(a: &GeoPoint, b: &GeoPoint, rng: &mut StdRng) -> Vec<GeoPoint> {
    let gc = haversine_km(a, b);
    let n_seg = ((gc / 100.0).ceil() as usize).clamp(1, 12);
    let mut pts = Vec::with_capacity(n_seg + 1);
    pts.push(*a);
    for i in 1..n_seg {
        let f = i as f64 / n_seg as f64;
        let on_line = intermediate_point(a, b, f);
        // Perpendicular offset: up to ~6% of the leg length each way.
        let bearing = initial_bearing_deg(a, b);
        let side = if rng.gen_bool(0.5) { 90.0 } else { 270.0 };
        let off_km = rng.gen_range(0.0..(gc * 0.06).max(1.0)).min(60.0);
        pts.push(destination(&on_line, (bearing + side) % 360.0, off_km));
    }
    pts.push(*b);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::build_cities;
    use rand::SeedableRng;

    fn small_world() -> (Vec<City>, RowNetwork) {
        let mut rng = StdRng::seed_from_u64(11);
        let cities = build_cities(crate::cities::REAL_CITIES.len(), &mut rng);
        let net = RowNetwork::build(&cities, &mut rng);
        (cities, net)
    }

    #[test]
    fn network_has_edges_and_respects_max_length() {
        let (_, net) = small_world();
        assert!(net.edge_count() > 300, "got {}", net.edge_count());
        for e in &net.edges {
            assert!(e.length_km <= MAX_SEGMENT_KM * ROAD_CURVATURE * 1.3);
            assert!(e.length_km > 0.0);
            assert!(e.path.len() >= 2);
        }
    }

    #[test]
    fn edge_lengths_exceed_great_circle() {
        let (cities, net) = small_world();
        for e in net.edges.iter().take(200) {
            let gc = haversine_km(&cities[e.a].loc, &cities[e.b].loc);
            assert!(
                e.length_km >= gc * 0.999,
                "road shorter than geodesic: {} vs {gc}",
                e.length_km
            );
        }
    }

    #[test]
    fn us_interior_is_connected() {
        let (cities, net) = small_world();
        let find = |name: &str| cities.iter().find(|c| c.name == name).unwrap().id;
        let (path, km) = net
            .shortest_path(find("Kansas City"), find("Atlanta"))
            .expect("KC and Atlanta must be road-connected");
        assert!(path.len() >= 2);
        // Great circle KC–Atlanta ≈ 1,100 km; road path should be between
        // 1.0× and 2.0× that.
        assert!(km > 1000.0 && km < 2300.0, "got {km}");
    }

    #[test]
    fn europe_interior_is_connected() {
        let (cities, net) = small_world();
        let find = |name: &str| cities.iter().find(|c| c.name == name).unwrap().id;
        let (path, km) = net
            .shortest_path(find("Madrid"), find("Berlin"))
            .expect("Madrid and Berlin must be road-connected");
        assert!(km > 1800.0 && km < 3500.0, "got {km}");
        assert!(path.len() >= 3);
    }

    #[test]
    fn oceans_disconnect_continents() {
        let (cities, net) = small_world();
        let find = |name: &str| cities.iter().find(|c| c.name == name).unwrap().id;
        assert!(
            net.shortest_path(find("New York"), find("London")).is_none(),
            "no road across the Atlantic"
        );
        assert!(net.shortest_path(find("Sydney"), find("Tokyo")).is_none());
    }

    #[test]
    fn shortest_path_is_optimal_vs_bellman_ford() {
        let (cities, net) = small_world();
        let find = |name: &str| cities.iter().find(|c| c.name == name).unwrap().id;
        let (src, dst) = (find("Seattle"), find("Miami"));
        let (_, dij) = net.shortest_path(src, dst).unwrap();
        // Bellman–Ford reference.
        let n = cities.len();
        let mut dist = vec![f64::INFINITY; n];
        dist[src] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for e in &net.edges {
                if dist[e.a] + e.length_km < dist[e.b] {
                    dist[e.b] = dist[e.a] + e.length_km;
                    changed = true;
                }
                if dist[e.b] + e.length_km < dist[e.a] {
                    dist[e.a] = dist[e.b] + e.length_km;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        assert!((dij - dist[dst]).abs() < 1e-6, "dijkstra {dij} vs bf {}", dist[dst]);
    }

    #[test]
    fn path_geometry_concatenates() {
        let (cities, net) = small_world();
        let find = |name: &str| cities.iter().find(|c| c.name == name).unwrap().id;
        let (path, km) = net.shortest_path(find("Dallas"), find("Houston")).unwrap();
        let geom = net.path_geometry(&path);
        assert!(geom.len() >= 2);
        let geom_km = polyline_length_km(&geom);
        assert!((geom_km - km).abs() < 1.0, "geometry {geom_km} vs dist {km}");
        // Endpoints are the city locations.
        assert!(haversine_km(&geom[0], &cities[find("Dallas")].loc) < 1.0);
        assert!(haversine_km(geom.last().unwrap(), &cities[find("Houston")].loc) < 1.0);
    }

    #[test]
    fn trivial_same_city_path() {
        let (_, net) = small_world();
        let (p, km) = net.shortest_path(3, 3).unwrap();
        assert_eq!(p, vec![3]);
        assert_eq!(km, 0.0);
    }
}
