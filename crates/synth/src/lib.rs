//! `igdb-synth` — the deterministic synthetic Internet.
//!
//! The iGDB paper is a data-integration system over nine external sources
//! (Internet Atlas, Telegeography, PeeringDB, PCH, Hurricane Electric,
//! EuroIX, Rapid7 rDNS, CAIDA AS Rank, RIPE Atlas). None of them is
//! reachable or redistributable in this environment, so this crate builds a
//! self-consistent synthetic world with the same statistical shape and
//! renders it *as each source would publish it* — each with its own slice
//! of the truth, naming conventions and blind spots. Because the world's
//! ground truth is retained, every iGDB inference (name standardization,
//! right-of-way paths, hidden-hop recovery, belief-propagation geolocation)
//! can be *scored*, which the real paper could not do.
//!
//! Structure:
//! * [`cities`] — ~250 embedded real cities + procedural towns (the
//!   Natural Earth substitute).
//! * [`rightofway`] — the road/rail graph fiber follows (Delaunay over
//!   cities, ocean edges removed).
//! * [`ases`] — tiered AS ecosystem with Gao–Rexford relationships and
//!   per-source name inconsistencies.
//! * [`scenarios`] — hand-built networks realizing the paper's named
//!   situations (Figures 6, 7, 9; Table 3).
//! * [`world`] — routers, addressing, IXPs, anchors, MPLS, rDNS.
//! * [`cables`] — submarine cable systems (Telegeography substitute).
//! * [`sources`] — per-source snapshot records (what iGDB ingests).
//! * [`intertubes`] — the InterTubes and Rocketfuel map recreations
//!   (Figures 4 and 8).

pub mod ases;
pub mod cables;
pub mod cities;
pub mod deltas;
pub mod faults;
pub mod intertubes;
pub mod naming;
pub mod rightofway;
pub mod scenarios;
pub mod sources;
pub mod world;

pub use ases::{AsClass, AsCounts, AsEcosystem, RdnsStyle, SynthAs};
pub use cables::Cable;
pub use cities::{City, Continent, REAL_CITIES};
pub use deltas::{generate_delta, DeltaClass, DeltaKind, DeltaOp};
pub use faults::{inject_faults, FaultClass, InjectedFault};
pub use naming::{GeoCodebook, HoihoRule, TokenKind};
pub use rightofway::RowNetwork;
pub use scenarios::Scenarios;
pub use sources::{emit_snapshots, SnapshotSet};
pub use world::{Ixp, World, WorldConfig};
