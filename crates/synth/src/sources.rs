//! Per-source snapshot emission.
//!
//! iGDB ingests timestamped snapshots from nine public sources (paper §2).
//! This module renders the synthetic world *as those sources would publish
//! it* — each with its own slice of the truth, its own naming conventions,
//! and its own blind spots:
//!
//! * Internet Atlas sees only documented networks' declared PoPs and edges,
//!   with messy free-text city labels.
//! * PeeringDB lists facilities, networks and presence records; IXP LANs.
//! * PCH/HE/EuroIX describe IXPs from three more angles.
//! * Rapid7 rDNS dumps PTR records.
//! * AS Rank publishes the collector-observed AS graph with WHOIS names.
//! * RIPE Atlas exposes anchors and their traceroute meshes.
//!
//! Records are plain structs; `igdb-core`'s ingest layer turns them into
//! relations. A `SnapshotSet` carries them all plus the `as_of_date`.

use igdb_net::{Asn, Ip4, Prefix};
use igdb_geo::GeoPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ases::AsClass;
use igdb_db::Str;

use crate::world::World;

/// One Internet Atlas PoP entry.
#[derive(Clone, Debug, PartialEq)]
pub struct AtlasNode {
    /// Owning network's name as Atlas records it (search-derived).
    pub network: Str,
    /// Node label, e.g. "Veralink Kansas City PoP 2".
    pub node_name: Str,
    /// Free-text city label with inconsistent formatting.
    pub city_label: Str,
    pub country: Str,
    pub loc: GeoPoint,
}

/// Right-of-way class of a documented link (paper §5: "a new column to
/// explicitly annotate the type of link or right-of-way network used").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkType {
    /// Fiber along roads/rail — iGDB infers the path.
    Roadway,
    /// Line-of-sight microwave — the physical path IS the straight line
    /// ("the physical paths (which would be straight lines from node to
    /// node) could be added", §5).
    Microwave,
}

/// One Internet Atlas PoP-to-PoP connection (no path geometry — the paper
/// stresses exact paths are withheld for security).
#[derive(Clone, Debug, PartialEq)]
pub struct AtlasLink {
    pub network: Str,
    pub from_node: Str,
    pub to_node: Str,
    pub link_type: LinkType,
}

/// One PeeringDB facility.
#[derive(Clone, Debug, PartialEq)]
pub struct PdbFacility {
    pub fac_id: u32,
    pub name: String,
    pub city_label: String,
    pub country: String,
    pub loc: GeoPoint,
}

/// One PeeringDB network record.
#[derive(Clone, Debug, PartialEq)]
pub struct PdbNetwork {
    pub net_id: u32,
    pub asn: Asn,
    pub as_name: String,
    pub org: String,
}

/// AS presence at a facility (netfac).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdbNetFac {
    pub net_id: u32,
    pub fac_id: u32,
}

/// One PeeringDB IXP with its peering LAN.
#[derive(Clone, Debug, PartialEq)]
pub struct PdbIx {
    pub ix_id: u32,
    pub name: String,
    pub city_label: String,
    pub country: String,
    pub prefix: Prefix,
}

/// AS membership at an IXP (netixlan).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdbNetIx {
    pub net_id: u32,
    pub ix_id: u32,
}

/// PCH IXP directory entry.
#[derive(Clone, Debug, PartialEq)]
pub struct PchIxp {
    pub name: String,
    pub city_label: String,
    pub country: String,
    pub member_asns: Vec<Asn>,
    /// PCH's organization name for each member (its own spelling).
    pub member_orgs: Vec<String>,
}

/// Hurricane Electric exchange report row.
#[derive(Clone, Debug, PartialEq)]
pub struct HeExchange {
    pub name: String,
    pub participant_count: usize,
}

/// EuroIX IXP feed entry (European IXPs only).
#[derive(Clone, Debug, PartialEq)]
pub struct EuroIxEntry {
    pub ix_name: String,
    pub country: String,
    pub member_asns: Vec<Asn>,
}

/// A Rapid7-style PTR record.
#[derive(Clone, Debug, PartialEq)]
pub struct RdnsRecord {
    pub ip: Ip4,
    pub hostname: Str,
}

/// AS Rank per-AS row.
#[derive(Clone, Debug, PartialEq)]
pub struct AsRankEntry {
    pub asn: Asn,
    pub as_name: String,
    pub org: String,
    pub cone: usize,
}

/// RIPE anchor registration.
#[derive(Clone, Debug, PartialEq)]
pub struct RipeAnchorRecord {
    pub id: u32,
    pub ip: Ip4,
    pub asn: Asn,
    pub city_label: String,
    pub country: String,
    pub loc: GeoPoint,
}

/// One hop of a published traceroute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RipeHop {
    pub ttl: u8,
    pub ip: Option<Ip4>,
    pub rtt_ms: f64,
}

/// One anchor-mesh traceroute.
#[derive(Clone, Debug, PartialEq)]
pub struct RipeTraceroute {
    pub src_anchor: u32,
    pub dst_anchor: u32,
    pub hops: Vec<RipeHop>,
}

/// Natural-Earth-style populated place (the standardization input).
#[derive(Clone, Debug, PartialEq)]
pub struct NaturalEarthPlace {
    pub name: String,
    pub state: String,
    pub country: String,
    pub loc: GeoPoint,
    pub population: u32,
}

/// One segment of the public transportation (right-of-way) dataset.
/// Endpoint indexes refer to the `natural_earth` list.
#[derive(Clone, Debug, PartialEq)]
pub struct RoadSegment {
    pub a: usize,
    pub b: usize,
    pub length_km: f64,
    pub path: Vec<GeoPoint>,
}

/// Telegeography-style cable record.
#[derive(Clone, Debug, PartialEq)]
pub struct TelegeoCableRecord {
    pub cable_id: usize,
    pub name: String,
    pub owners: Vec<String>,
    /// (landing name, city label, location) in chain order.
    pub landings: Vec<(String, String, GeoPoint)>,
    pub segments: Vec<Vec<GeoPoint>>,
}

/// BGP RIB entry: announced prefix and its origin AS (what RouteViews/RIS
/// dumps provide and bdrmapIT consumes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BgpPrefixRecord {
    pub prefix: Prefix,
    pub origin: Asn,
}

/// All snapshots for one `as_of_date`.
#[derive(Clone)]
pub struct SnapshotSet {
    pub as_of_date: String,
    pub atlas_nodes: Vec<AtlasNode>,
    pub atlas_links: Vec<AtlasLink>,
    pub pdb_facilities: Vec<PdbFacility>,
    pub pdb_networks: Vec<PdbNetwork>,
    pub pdb_netfac: Vec<PdbNetFac>,
    pub pdb_ix: Vec<PdbIx>,
    pub pdb_netix: Vec<PdbNetIx>,
    pub pch_ixps: Vec<PchIxp>,
    pub he_exchanges: Vec<HeExchange>,
    pub euroix: Vec<EuroIxEntry>,
    pub rdns: Vec<RdnsRecord>,
    pub asrank_entries: Vec<AsRankEntry>,
    pub asrank_links: Vec<(Asn, Asn)>,
    pub ripe_anchors: Vec<RipeAnchorRecord>,
    pub ripe_traceroutes: Vec<RipeTraceroute>,
    /// Natural Earth populated places (standardization source, §3.1).
    pub natural_earth: Vec<NaturalEarthPlace>,
    /// Public road/rail rights-of-way (the GIS transportation layer).
    pub roads: Vec<RoadSegment>,
    /// Telegeography submarine cables.
    pub telegeo: Vec<TelegeoCableRecord>,
    /// BGP RIB prefix→origin entries.
    pub bgp_prefixes: Vec<BgpPrefixRecord>,
    /// Known anycast prefixes (the public list the paper's §5 would
    /// annotate from).
    pub anycast_prefixes: Vec<Prefix>,
    /// The Hoiho rule file (regex + token semantics).
    pub hoiho_rules: Vec<crate::naming::HoihoRule>,
    /// Public geocode dictionary (IATA-style code → city index in
    /// `natural_earth`).
    pub geo_codes: Vec<(String, usize)>,
}

impl SnapshotSet {
    /// An empty set for `as_of_date` — a placeholder for callers that
    /// swap a real set in immediately (see `Igdb::try_build_owned`).
    pub fn empty(as_of_date: impl Into<String>) -> Self {
        SnapshotSet {
            as_of_date: as_of_date.into(),
            atlas_nodes: Vec::new(),
            atlas_links: Vec::new(),
            pdb_facilities: Vec::new(),
            pdb_networks: Vec::new(),
            pdb_netfac: Vec::new(),
            pdb_ix: Vec::new(),
            pdb_netix: Vec::new(),
            pch_ixps: Vec::new(),
            he_exchanges: Vec::new(),
            euroix: Vec::new(),
            rdns: Vec::new(),
            asrank_entries: Vec::new(),
            asrank_links: Vec::new(),
            ripe_anchors: Vec::new(),
            ripe_traceroutes: Vec::new(),
            natural_earth: Vec::new(),
            roads: Vec::new(),
            telegeo: Vec::new(),
            bgp_prefixes: Vec::new(),
            anycast_prefixes: Vec::new(),
            hoiho_rules: Vec::new(),
            geo_codes: Vec::new(),
        }
    }

    /// Releases the over-allocation left by push-based emission. Sets are
    /// long-lived (a build retains its input as the delta baseline), so
    /// growth slack — up to 2x on the big vectors — is worth returning.
    pub fn shrink_to_fit(&mut self) {
        self.atlas_nodes.shrink_to_fit();
        self.atlas_links.shrink_to_fit();
        self.pdb_facilities.shrink_to_fit();
        self.pdb_networks.shrink_to_fit();
        self.pdb_netfac.shrink_to_fit();
        self.pdb_ix.shrink_to_fit();
        self.pdb_netix.shrink_to_fit();
        self.pch_ixps.shrink_to_fit();
        self.he_exchanges.shrink_to_fit();
        self.euroix.shrink_to_fit();
        self.rdns.shrink_to_fit();
        self.asrank_entries.shrink_to_fit();
        self.asrank_links.shrink_to_fit();
        self.ripe_anchors.shrink_to_fit();
        self.ripe_traceroutes.shrink_to_fit();
        self.natural_earth.shrink_to_fit();
        self.roads.shrink_to_fit();
        self.telegeo.shrink_to_fit();
        self.bgp_prefixes.shrink_to_fit();
        self.anycast_prefixes.shrink_to_fit();
        self.hoiho_rules.shrink_to_fit();
        self.geo_codes.shrink_to_fit();
    }
}

/// Renders a city label the way sloppy human-entered datasets do.
fn messy_label(world: &World, city: usize, style: u8) -> String {
    let c = &world.cities[city];
    match style % 4 {
        0 => c.name.clone(),
        1 => c.name.to_ascii_uppercase(),
        2 => format!("{}, {}", c.name, if c.state.is_empty() { &c.country } else { &c.state }),
        _ => world.codebook.code(city).to_ascii_uppercase(),
    }
}

/// Emits every source snapshot from the world.
///
/// `mesh_pairs` caps the traceroute mesh size (the full mesh is quadratic
/// in anchors). `as_of_date` stamps every derived relation.
pub fn emit_snapshots(world: &World, as_of_date: &str, mesh_pairs: usize) -> SnapshotSet {
    emit_snapshots_churned(world, as_of_date, mesh_pairs, 0.0)
}

/// Like [`emit_snapshots`] but with *dataset churn*: a `churn` fraction of
/// Internet Atlas nodes drop out of the published snapshot (sources decay
/// and refresh between collection dates — the reason iGDB keeps
/// per-snapshot `as_of_date` rows). Churn is keyed by the date string so
/// two snapshots of the same world at different dates genuinely differ.
pub fn emit_snapshots_churned(
    world: &World,
    as_of_date: &str,
    mesh_pairs: usize,
    churn: f64,
) -> SnapshotSet {
    let date_salt = as_of_date
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(world.config.seed ^ 0x5eed_50a9 ^ date_salt.wrapping_mul((churn > 0.0) as u64));

    // --- Internet Atlas: documented networks, declared PoPs/edges. ---
    let mut atlas_nodes = Vec::new();
    let mut atlas_links = Vec::new();
    for a in world.eco.ases.iter().filter(|a| a.in_atlas) {
        let declared: std::collections::HashSet<usize> =
            a.declared_footprint.iter().copied().collect();
        let node_name =
            |cid: usize| format!("{} {} PoP", a.names.brand, world.cities[cid].name);
        for &cid in &a.declared_footprint {
            if churn > 0.0 && rng.gen_bool(churn) {
                continue; // this PoP fell out of the source between dates
            }
            atlas_nodes.push(AtlasNode {
                network: a.names.brand.clone().into(),
                node_name: node_name(cid).into(),
                city_label: messy_label(world, cid, rng.gen()).into(),
                country: world.cities[cid].country.clone().into(),
                loc: jitter(world.cities[cid].loc, 0.05, &mut rng),
            });
        }
        // A sliver of documented networks run line-of-sight microwave
        // (latency-arbitrage style); their links skip road rights-of-way.
        let microwave_operator = a.class == crate::ases::AsClass::Tier2 && rng.gen_bool(0.04);
        for e in &a.internal_edges {
            if declared.contains(&e.a) && declared.contains(&e.b) && !e.submarine {
                let short_enough = igdb_geo::haversine_km(
                    &world.cities[e.a].loc,
                    &world.cities[e.b].loc,
                ) < 1500.0;
                atlas_links.push(AtlasLink {
                    network: a.names.brand.clone().into(),
                    from_node: node_name(e.a).into(),
                    to_node: node_name(e.b).into(),
                    link_type: if microwave_operator && short_enough {
                        LinkType::Microwave
                    } else {
                        LinkType::Roadway
                    },
                });
            }
        }
    }

    // --- PeeringDB. ---
    let mut pdb_facilities = Vec::new();
    let mut fac_of_city: std::collections::HashMap<usize, Vec<u32>> =
        std::collections::HashMap::new();
    let mut fac_id = 0u32;
    // Facilities exist in cities where anyone declares presence.
    let mut cities_with_presence: Vec<usize> = world
        .eco
        .ases
        .iter()
        .flat_map(|a| a.declared_footprint.iter().copied())
        .collect::<std::collections::BTreeSet<usize>>()
        .into_iter()
        .collect();
    cities_with_presence.sort_unstable();
    for cid in cities_with_presence {
        let n_fac = 1
            + (world.cities[cid].population > 800) as u32
            + (world.cities[cid].population > 3000) as u32
            + (world.cities[cid].population > 8000) as u32;
        for k in 0..n_fac {
            pdb_facilities.push(PdbFacility {
                fac_id,
                name: format!("{} DC{}", world.cities[cid].name, k + 1),
                city_label: messy_label(world, cid, rng.gen()),
                country: world.cities[cid].country.clone(),
                loc: jitter(world.cities[cid].loc, 0.08, &mut rng),
            });
            fac_of_city.entry(cid).or_default().push(fac_id);
            fac_id += 1;
        }
    }
    let mut pdb_networks = Vec::new();
    let mut pdb_netfac = Vec::new();
    for (i, a) in world.eco.ases.iter().enumerate() {
        // PeeringDB coverage: most transit/content, many stubs.
        // Scenario ASes (reserved 64100–65100 range) always register, so
        // the named experiments have deterministic declared footprints.
        let scenario = (64_100..=65_100).contains(&a.asn.0);
        let joins = match a.class {
            AsClass::Tier1 | AsClass::Tier2 | AsClass::Content => true,
            AsClass::Stub => scenario || rng.gen_bool(0.55),
        };
        if !joins {
            continue;
        }
        let net_id = i as u32 + 1;
        pdb_networks.push(PdbNetwork {
            net_id,
            asn: a.asn,
            as_name: a.names.peeringdb_as_name.clone(),
            org: a.names.peeringdb_org.clone(),
        });
        for &cid in &a.declared_footprint {
            if let Some(fs) = fac_of_city.get(&cid) {
                let f = fs[rng.gen_range(0..fs.len())];
                pdb_netfac.push(PdbNetFac { net_id, fac_id: f });
            }
        }
    }
    let net_id_of_asn: std::collections::HashMap<Asn, u32> = pdb_networks
        .iter()
        .map(|n| (n.asn, n.net_id))
        .collect();
    let mut pdb_ix = Vec::new();
    let mut pdb_netix = Vec::new();
    for ixp in &world.ixps {
        pdb_ix.push(PdbIx {
            ix_id: ixp.id as u32,
            name: ixp.name.clone(),
            city_label: messy_label(world, ixp.city, rng.gen()),
            country: world.cities[ixp.city].country.clone(),
            prefix: ixp.prefix,
        });
        for m in &ixp.members {
            if let Some(&net_id) = net_id_of_asn.get(&m.asn) {
                pdb_netix.push(PdbNetIx {
                    net_id,
                    ix_id: ixp.id as u32,
                });
            }
        }
    }

    // --- PCH: IXP directory with PCH's own org spellings. ---
    let pch_ixps = world
        .ixps
        .iter()
        .map(|ixp| {
            let members: Vec<Asn> = ixp.members.iter().map(|m| m.asn).collect();
            let orgs = members
                .iter()
                .map(|&asn| {
                    world
                        .eco
                        .get(asn)
                        .map(|a| a.names.pch_org.clone())
                        .unwrap_or_default()
                })
                .collect();
            PchIxp {
                name: ixp.name.clone(),
                city_label: messy_label(world, ixp.city, rng.gen()),
                country: world.cities[ixp.city].country.clone(),
                member_asns: members,
                member_orgs: orgs,
            }
        })
        .collect();

    // --- Hurricane Electric & EuroIX. ---
    let he_exchanges = world
        .ixps
        .iter()
        .map(|ixp| HeExchange {
            name: ixp.name.clone(),
            participant_count: ixp.members.len(),
        })
        .collect();
    let euroix = world
        .ixps
        .iter()
        .filter(|ixp| {
            crate::cities::continent_of(&world.cities[ixp.city].country)
                == crate::cities::Continent::Europe
        })
        .map(|ixp| EuroIxEntry {
            ix_name: ixp.name.clone(),
            country: world.cities[ixp.city].country.clone(),
            member_asns: ixp.members.iter().map(|m| m.asn).collect(),
        })
        .collect();

    // --- Rapid7 rDNS. ---
    let rdns = {
        let mut v: Vec<RdnsRecord> = world
            .hostnames
            .iter()
            .map(|(&ip, h)| RdnsRecord {
                ip,
                hostname: h.clone().into(),
            })
            .collect();
        v.sort_by_key(|r| r.ip);
        v
    };

    // --- AS Rank: collector aggregation + cones + WHOIS names. ---
    let cones = igdb_net::collector::customer_cones(&world.eco.graph);
    let asrank_entries = world
        .eco
        .ases
        .iter()
        .map(|a| AsRankEntry {
            asn: a.asn,
            as_name: a.names.asrank_as_name.clone(),
            org: a.names.asrank_org.clone(),
            cone: cones.get(&a.asn).copied().unwrap_or(1),
        })
        .collect();
    let asrank_links = collect_as_links(world);

    // --- RIPE Atlas. ---
    let ripe_anchors = world
        .anchors
        .iter()
        .map(|a| RipeAnchorRecord {
            id: a.id,
            ip: a.ip,
            asn: a.asn,
            city_label: world.cities[a.city].name.clone(),
            country: world.cities[a.city].country.clone(),
            loc: a.loc,
        })
        .collect();
    let ripe_traceroutes = world
        .anchor_mesh(mesh_pairs)
        .into_iter()
        .map(|(src, dst, tr)| RipeTraceroute {
            src_anchor: src,
            dst_anchor: dst,
            hops: tr
                .hops
                .iter()
                .map(|h| RipeHop {
                    ttl: h.ttl,
                    ip: h.ip,
                    rtt_ms: h.rtt_ms,
                })
                .collect(),
        })
        .collect();

    // --- Public datasets: places, roads, cables, BGP RIBs, Hoiho. ---
    let natural_earth = world
        .cities
        .iter()
        .map(|c| NaturalEarthPlace {
            name: c.name.clone(),
            state: c.state.clone(),
            country: c.country.clone(),
            loc: c.loc,
            population: c.population,
        })
        .collect();
    let roads = world
        .row
        .edges
        .iter()
        .map(|e| RoadSegment {
            a: e.a,
            b: e.b,
            length_km: e.length_km,
            path: e.path.clone(),
        })
        .collect();
    let telegeo = world
        .cables
        .iter()
        .map(|c| TelegeoCableRecord {
            cable_id: c.id,
            name: c.name.clone(),
            owners: c.owners.clone(),
            landings: c
                .landings
                .iter()
                .map(|lp| {
                    (
                        lp.name.clone(),
                        world.cities[lp.city].name.clone(),
                        lp.loc,
                    )
                })
                .collect(),
            segments: c.segments.clone(),
        })
        .collect();
    let bgp_prefixes = {
        let mut v: Vec<BgpPrefixRecord> = world
            .prefix_of
            .iter()
            .map(|(&origin, &prefix)| BgpPrefixRecord { prefix, origin })
            .collect();
        v.sort_by_key(|r| (r.prefix, r.origin));
        v
    };
    let anycast_prefixes = world
        .anycast_prefixes
        .iter()
        .map(|&(_, p)| p)
        .collect();
    let geo_codes = (0..world.cities.len())
        .map(|cid| (world.codebook.code(cid).to_string(), cid))
        .collect();

    let mut set = SnapshotSet {
        as_of_date: as_of_date.to_string(),
        atlas_nodes,
        atlas_links,
        pdb_facilities,
        pdb_networks,
        pdb_netfac,
        pdb_ix,
        pdb_netix,
        pch_ixps,
        he_exchanges,
        euroix,
        rdns,
        asrank_entries,
        asrank_links,
        ripe_anchors,
        ripe_traceroutes,
        natural_earth,
        roads,
        telegeo,
        bgp_prefixes,
        anycast_prefixes,
        hoiho_rules: world.hoiho.clone(),
        geo_codes,
    };
    set.shrink_to_fit();
    set
}

/// The AS-adjacency set as route collectors observe it. For worlds up to a
/// few thousand ASes we run honest BGP collection from ~20 vantages over
/// every origin. Beyond that we use the Gao–Rexford visibility rule
/// (customer-provider edges are visible from anywhere; peer edges only
/// from inside either endpoint's customer cone), which matches honest
/// collection closely at a fraction of the cost — validated in tests.
pub fn collect_as_links(world: &World) -> Vec<(Asn, Asn)> {
    let graph = &world.eco.graph;
    let asns = graph.asns();
    if asns.len() <= 4000 {
        let vantages = pick_vantages(world, 20);
        let collected =
            igdb_net::collector::CollectedPaths::collect(graph, &vantages, &asns);
        igdb_net::collector::aggregate_paths(&collected.paths)
    } else {
        visible_edges_approximation(world, &pick_vantages(world, 20))
    }
}

/// ~20 vantage ASes the way RouteViews/RIS peers look: mostly large
/// transit networks plus a few stubs.
fn pick_vantages(world: &World, k: usize) -> Vec<Asn> {
    let mut v: Vec<Asn> = world
        .eco
        .ases
        .iter()
        .filter(|a| matches!(a.class, AsClass::Tier1 | AsClass::Tier2))
        .map(|a| a.asn)
        .take(k.saturating_sub(3))
        .collect();
    v.extend(
        world
            .eco
            .ases
            .iter()
            .filter(|a| a.class == AsClass::Stub)
            .map(|a| a.asn)
            .take(3),
    );
    v
}

/// The visibility approximation used at paper scale.
fn visible_edges_approximation(world: &World, vantages: &[Asn]) -> Vec<(Asn, Asn)> {
    let graph = &world.eco.graph;
    // Membership of each vantage's "upstream closure": v sees peer edge
    // (a,b) if v is inside cone(a) or cone(b). Equivalently: walk up from
    // each vantage along provider links, marking every AS whose cone
    // contains a vantage.
    let mut cone_has_vantage: std::collections::HashSet<Asn> = std::collections::HashSet::new();
    for &v in vantages {
        let mut stack = vec![v];
        let mut seen = std::collections::HashSet::new();
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            cone_has_vantage.insert(x);
            for p in graph.providers(x) {
                stack.push(p);
            }
        }
    }
    let mut edges = std::collections::BTreeSet::new();
    for a in graph.asns() {
        for &(b, rel) in graph.neighbors(a) {
            if a >= b {
                continue;
            }
            let visible = match rel {
                igdb_net::AsRelationship::CustomerOf | igdb_net::AsRelationship::ProviderOf => {
                    true
                }
                igdb_net::AsRelationship::Peer => {
                    cone_has_vantage.contains(&a) || cone_has_vantage.contains(&b)
                }
            };
            if visible {
                edges.insert((a, b));
            }
        }
    }
    edges.into_iter().collect()
}

fn jitter(p: GeoPoint, spread_deg: f64, rng: &mut StdRng) -> GeoPoint {
    GeoPoint::new(
        p.lon + rng.gen_range(-spread_deg..spread_deg),
        p.lat + rng.gen_range(-spread_deg..spread_deg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn snapshots() -> (World, SnapshotSet) {
        let world = World::generate(WorldConfig::tiny());
        let snaps = emit_snapshots(&world, "2022-05-03", 300);
        (world, snaps)
    }

    #[test]
    fn atlas_covers_documented_networks_only() {
        let (world, s) = snapshots();
        assert!(!s.atlas_nodes.is_empty());
        let atlas_networks: std::collections::HashSet<&str> =
            s.atlas_nodes.iter().map(|n| n.network.as_str()).collect();
        for a in &world.eco.ases {
            if a.in_atlas {
                assert!(
                    atlas_networks.contains(a.names.brand.as_str()),
                    "{} documented but missing",
                    a.names.brand
                );
            }
        }
        // Undocumented stubs must not appear.
        for a in world.eco.ases.iter().filter(|a| !a.in_atlas) {
            assert!(!atlas_networks.contains(a.names.brand.as_str()));
        }
    }

    #[test]
    fn atlas_links_reference_existing_nodes() {
        let (_, s) = snapshots();
        let names: std::collections::HashSet<&str> =
            s.atlas_nodes.iter().map(|n| n.node_name.as_str()).collect();
        assert!(!s.atlas_links.is_empty());
        for l in &s.atlas_links {
            assert!(names.contains(l.from_node.as_str()), "{l:?}");
            assert!(names.contains(l.to_node.as_str()), "{l:?}");
        }
    }

    #[test]
    fn peeringdb_netfac_references_valid_ids() {
        let (_, s) = snapshots();
        let net_ids: std::collections::HashSet<u32> =
            s.pdb_networks.iter().map(|n| n.net_id).collect();
        let fac_ids: std::collections::HashSet<u32> =
            s.pdb_facilities.iter().map(|f| f.fac_id).collect();
        assert!(!s.pdb_netfac.is_empty());
        for nf in &s.pdb_netfac {
            assert!(net_ids.contains(&nf.net_id));
            assert!(fac_ids.contains(&nf.fac_id));
        }
    }

    #[test]
    fn ixp_sources_agree_on_names() {
        let (world, s) = snapshots();
        assert_eq!(s.pdb_ix.len(), world.ixps.len());
        assert_eq!(s.pch_ixps.len(), world.ixps.len());
        assert_eq!(s.he_exchanges.len(), world.ixps.len());
        for ((p, h), x) in s.pdb_ix.iter().zip(&s.he_exchanges).zip(&s.pch_ixps) {
            assert_eq!(p.name, h.name);
            assert_eq!(p.name, x.name);
        }
        // EuroIX only lists European IXPs.
        assert!(s.euroix.len() < world.ixps.len());
    }

    #[test]
    fn rdns_records_match_world_hostnames() {
        let (world, s) = snapshots();
        assert_eq!(s.rdns.len(), world.hostnames.len());
        for r in s.rdns.iter().take(50) {
            assert_eq!(world.hostnames.get(&r.ip).map(String::as_str), Some(r.hostname.as_str()));
        }
    }

    #[test]
    fn asrank_links_subset_of_graph_and_substantial() {
        let (world, s) = snapshots();
        let total = world.eco.graph.edge_count();
        assert!(
            s.asrank_links.len() * 10 >= total * 8,
            "collectors saw {} of {total} edges",
            s.asrank_links.len()
        );
        for &(a, b) in &s.asrank_links {
            assert!(world.eco.graph.relationship(a, b).is_some());
            assert!(a < b);
        }
    }

    #[test]
    fn visibility_approximation_close_to_honest_collection() {
        let world = World::generate(WorldConfig::tiny());
        let honest = {
            let asns = world.eco.graph.asns();
            let vantages = pick_vantages(&world, 20);
            let collected = igdb_net::collector::CollectedPaths::collect(
                &world.eco.graph,
                &vantages,
                &asns,
            );
            igdb_net::collector::aggregate_paths(&collected.paths)
        };
        let approx = visible_edges_approximation(&world, &pick_vantages(&world, 20));
        let honest_set: std::collections::HashSet<_> = honest.iter().copied().collect();
        let approx_set: std::collections::HashSet<_> = approx.iter().copied().collect();
        // The approximation must cover everything honest collection saw…
        let missed = honest_set.difference(&approx_set).count();
        assert!(
            missed * 50 <= honest_set.len(),
            "approximation missed {missed}/{}",
            honest_set.len()
        );
        // …and not wildly overestimate.
        assert!(approx_set.len() <= honest_set.len() * 13 / 10 + 10);
    }

    #[test]
    fn ripe_traceroutes_have_hops() {
        let (_, s) = snapshots();
        assert!(s.ripe_traceroutes.len() >= 100);
        assert!(s
            .ripe_traceroutes
            .iter()
            .all(|t| !t.hops.is_empty() && t.src_anchor != t.dst_anchor));
    }

    #[test]
    fn snapshot_emission_deterministic() {
        let world = World::generate(WorldConfig::tiny());
        let a = emit_snapshots(&world, "2022-05-03", 100);
        let b = emit_snapshots(&world, "2022-05-03", 100);
        assert_eq!(a.atlas_nodes.len(), b.atlas_nodes.len());
        assert_eq!(a.pdb_netfac.len(), b.pdb_netfac.len());
        assert_eq!(a.asrank_links, b.asrank_links);
    }
}
