//! The urban-area catalogue: real anchor cities plus procedural towns.
//!
//! iGDB standardizes every node location against the 7,342 populated
//! places of the Natural Earth shapefile (paper §3.1). That shapefile is
//! not redistributable here, so we embed ~250 real major cities (with
//! approximate coordinates written from general knowledge — adequate for a
//! synthetic world) and generate deterministic procedural towns around them
//! until the configured urban-area count is reached. Real cities anchor the
//! experiments that name places (Kansas City→Atlanta in Figure 7,
//! Madrid→Berlin in Figures 1/9, the InterTubes corridors of Figure 4).

use igdb_geo::GeoPoint;
use rand::rngs::StdRng;
use rand::Rng;

/// One urban area.
#[derive(Clone, Debug)]
pub struct City {
    /// Stable index in the catalogue (iGDB's standard-metro id).
    pub id: usize,
    pub name: String,
    /// State/province code, empty when not applicable.
    pub state: String,
    /// ISO-3166 alpha-2 country code.
    pub country: String,
    pub loc: GeoPoint,
    /// Population in thousands (drives PoP placement probability).
    pub population: u32,
    /// Whether submarine cables can land here.
    pub coastal: bool,
    /// True for procedurally generated towns.
    pub synthetic: bool,
}

impl City {
    /// The `City-ST-CC` standard label iGDB uses after standardization.
    pub fn standard_label(&self) -> String {
        if self.state.is_empty() {
            format!("{}-{}", self.name, self.country)
        } else {
            format!("{}-{}-{}", self.name, self.state, self.country)
        }
    }
}

/// Continent grouping used for right-of-way connectivity and AS regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    NorthAmerica,
    SouthAmerica,
    Europe,
    Africa,
    Asia,
    Oceania,
}

/// Continent of a country code (countries in the embedded catalogue only).
pub fn continent_of(country: &str) -> Continent {
    use Continent::*;
    match country {
        "US" | "CA" | "MX" | "GT" | "SV" | "HN" | "NI" | "CR" | "PA" | "CU" | "JM" | "DO"
        | "PR" | "BZ" | "BS" | "HT" | "BB" | "TT" => NorthAmerica,
        "CO" | "VE" | "EC" | "PE" | "BO" | "CL" | "AR" | "UY" | "PY" | "BR" | "GY" | "SR" => SouthAmerica,
        "ES" | "PT" | "FR" | "DE" | "NL" | "BE" | "GB" | "IE" | "IT" | "CH" | "AT" | "CZ"
        | "PL" | "HU" | "RO" | "BG" | "GR" | "SE" | "NO" | "DK" | "FI" | "EE" | "LV" | "LT"
        | "UA" | "RU" | "TR" | "HR" | "RS" | "SK" | "SI" | "LU" | "IS" | "MT" | "CY" | "AL"
        | "MK" | "BA" | "MD" | "BY" | "ME" => Europe,
        "EG" | "NG" | "GH" | "CI" | "SN" | "MA" | "DZ" | "TN" | "LY" | "KE" | "ET" | "TZ"
        | "UG" | "RW" | "ZA" | "AO" | "CD" | "ZW" | "ZM" | "MZ" | "MG" | "SD" | "ML" | "BF"
        | "NE" | "TD" | "GN" | "SL" | "LR" | "TG" | "BJ" | "CF" | "GA" | "CG" | "CM" | "GQ"
        | "NA" | "BW" | "LS" | "MW" | "BI" | "DJ" | "ER" | "SO" | "MR" | "GM" | "GW" | "KM"
        | "SC" | "MU" | "CV" | "ST" => Africa,
        "JP" | "KR" | "CN" | "HK" | "TW" | "PH" | "TH" | "SG" | "MY" | "ID" | "VN" | "IN"
        | "PK" | "BD" | "LK" | "NP" | "AE" | "QA" | "SA" | "KW" | "IL" | "JO" | "LB" | "IQ"
        | "IR" | "UZ" | "KZ" | "MN" | "MM" | "KH" | "AM" | "GE" | "AZ" | "OM" | "BH" | "YE"
        | "AF" | "TM" | "KG" | "TJ" | "MV" | "BT" | "LA" | "BN" | "TL" => Asia,
        "AU" | "NZ" | "FJ" | "PG" | "SB" | "WS" | "VU" => Oceania,
        other => panic!("unknown country code '{other}' in city catalogue"),
    }
}

/// Row format: (name, state, country, lon, lat, pop_thousands, coastal).
type Row = (&'static str, &'static str, &'static str, f64, f64, u32, bool);

/// The embedded real-city catalogue. Coordinates are approximate city
/// centres; population figures are metro-scale and rounded.
#[rustfmt::skip]
pub const REAL_CITIES: &[Row] = &[
    // --- United States ---
    ("New York", "NY", "US", -74.006, 40.713, 19000, true),
    ("Los Angeles", "CA", "US", -118.244, 34.052, 13000, true),
    ("Chicago", "IL", "US", -87.630, 41.878, 9500, false),
    ("Houston", "TX", "US", -95.369, 29.760, 7000, true),
    ("Phoenix", "AZ", "US", -112.074, 33.448, 4900, false),
    ("Philadelphia", "PA", "US", -75.165, 39.953, 6100, false),
    ("San Antonio", "TX", "US", -98.494, 29.424, 2500, false),
    ("San Diego", "CA", "US", -117.161, 32.716, 3300, true),
    ("Dallas", "TX", "US", -96.797, 32.777, 7600, false),
    ("San Jose", "CA", "US", -121.889, 37.338, 2000, false),
    ("Austin", "TX", "US", -97.743, 30.267, 2300, false),
    ("Jacksonville", "FL", "US", -81.656, 30.332, 1600, true),
    ("Columbus", "OH", "US", -82.999, 39.961, 2100, false),
    ("Indianapolis", "IN", "US", -86.158, 39.768, 2100, false),
    ("Charlotte", "NC", "US", -80.843, 35.227, 2700, false),
    ("San Francisco", "CA", "US", -122.419, 37.775, 4700, true),
    ("Seattle", "WA", "US", -122.332, 47.606, 4000, true),
    ("Denver", "CO", "US", -104.990, 39.739, 3000, false),
    ("Washington", "DC", "US", -77.037, 38.907, 6300, false),
    ("Boston", "MA", "US", -71.059, 42.360, 4900, true),
    ("Nashville", "TN", "US", -86.781, 36.163, 2000, false),
    ("Detroit", "MI", "US", -83.046, 42.331, 4300, false),
    ("Portland", "OR", "US", -122.676, 45.523, 2500, false),
    ("Las Vegas", "NV", "US", -115.139, 36.172, 2300, false),
    ("Memphis", "TN", "US", -90.049, 35.150, 1300, false),
    ("Louisville", "KY", "US", -85.758, 38.253, 1300, false),
    ("Baltimore", "MD", "US", -76.612, 39.290, 2800, true),
    ("Milwaukee", "WI", "US", -87.907, 43.039, 1600, false),
    ("Albuquerque", "NM", "US", -106.651, 35.084, 900, false),
    ("Tucson", "AZ", "US", -110.975, 32.222, 1000, false),
    ("Sacramento", "CA", "US", -121.494, 38.582, 2400, false),
    ("Kansas City", "MO", "US", -94.579, 39.100, 2200, false),
    ("Atlanta", "GA", "US", -84.388, 33.749, 6100, false),
    ("Miami", "FL", "US", -80.192, 25.762, 6200, true),
    ("Tulsa", "OK", "US", -95.993, 36.154, 1000, false),
    ("Oklahoma City", "OK", "US", -97.517, 35.468, 1400, false),
    ("St Louis", "MO", "US", -90.199, 38.627, 2800, false),
    ("New Orleans", "LA", "US", -90.072, 29.951, 1300, true),
    ("Minneapolis", "MN", "US", -93.265, 44.978, 3700, false),
    ("Cleveland", "OH", "US", -81.694, 41.499, 2100, false),
    ("Pittsburgh", "PA", "US", -79.996, 40.441, 2300, false),
    ("Salt Lake City", "UT", "US", -111.891, 40.761, 1300, false),
    ("Orlando", "FL", "US", -81.379, 28.538, 2700, false),
    ("Tampa", "FL", "US", -82.457, 27.951, 3200, true),
    ("Cincinnati", "OH", "US", -84.512, 39.103, 2300, false),
    ("Raleigh", "NC", "US", -78.638, 35.779, 1400, false),
    ("Buffalo", "NY", "US", -78.878, 42.886, 1200, false),
    ("Richmond", "VA", "US", -77.436, 37.541, 1300, false),
    ("Birmingham", "AL", "US", -86.802, 33.521, 1100, false),
    ("Syracuse", "NY", "US", -76.148, 43.048, 660, false),
    ("El Paso", "TX", "US", -106.485, 31.759, 870, false),
    ("Omaha", "NE", "US", -95.935, 41.257, 970, false),
    ("Boise", "ID", "US", -116.202, 43.615, 760, false),
    ("Billings", "MT", "US", -108.501, 45.783, 180, false),
    ("Spokane", "WA", "US", -117.426, 47.659, 590, false),
    ("San Bernardino", "CA", "US", -117.290, 34.108, 2200, false),
    ("Irvine", "CA", "US", -117.826, 33.684, 310, false),
    ("Alexandria", "VA", "US", -77.047, 38.805, 160, false),
    ("Fresno", "CA", "US", -119.787, 36.737, 1000, false),
    ("Honolulu", "HI", "US", -157.858, 21.307, 1000, true),
    ("Anchorage", "AK", "US", -149.900, 61.218, 290, true),
    // --- Canada ---
    ("Toronto", "ON", "CA", -79.383, 43.653, 6200, false),
    ("Montreal", "QC", "CA", -73.568, 45.501, 4300, false),
    ("Vancouver", "BC", "CA", -123.121, 49.283, 2600, true),
    ("Calgary", "AB", "CA", -114.071, 51.045, 1500, false),
    ("Edmonton", "AB", "CA", -113.494, 53.546, 1400, false),
    ("Ottawa", "ON", "CA", -75.697, 45.421, 1400, false),
    ("Winnipeg", "MB", "CA", -97.139, 49.895, 830, false),
    ("Quebec City", "QC", "CA", -71.208, 46.814, 800, false),
    ("Halifax", "NS", "CA", -63.573, 44.649, 440, true),
    // --- Mexico & Central America & Caribbean ---
    ("Mexico City", "", "MX", -99.133, 19.433, 21800, false),
    ("Guadalajara", "", "MX", -103.350, 20.667, 5300, false),
    ("Monterrey", "", "MX", -100.316, 25.686, 5300, false),
    ("Tijuana", "", "MX", -117.038, 32.515, 2200, true),
    ("Guatemala City", "", "GT", -90.515, 14.634, 3000, false),
    ("San Salvador", "", "SV", -89.218, 13.699, 1100, false),
    ("Tegucigalpa", "", "HN", -87.192, 14.072, 1200, false),
    ("Managua", "", "NI", -86.251, 12.137, 1100, false),
    ("San Jose CR", "", "CR", -84.091, 9.928, 1400, false),
    ("Panama City", "", "PA", -79.520, 8.983, 1900, true),
    ("Havana", "", "CU", -82.366, 23.113, 2100, true),
    ("Kingston", "", "JM", -76.793, 17.971, 1200, true),
    ("Santo Domingo", "", "DO", -69.929, 18.486, 3300, true),
    ("San Juan", "", "PR", -66.106, 18.466, 2400, true),
    // --- South America ---
    ("Bogota", "", "CO", -74.072, 4.711, 10700, false),
    ("Medellin", "", "CO", -75.564, 6.244, 4000, false),
    ("Cali", "", "CO", -76.532, 3.452, 2800, false),
    ("Caracas", "", "VE", -66.904, 10.481, 2900, true),
    ("Quito", "", "EC", -78.468, -0.180, 2000, false),
    ("Guayaquil", "", "EC", -79.922, -2.170, 3000, true),
    ("Lima", "", "PE", -77.043, -12.046, 10700, true),
    ("La Paz", "", "BO", -68.134, -16.490, 1900, false),
    ("Santa Cruz", "", "BO", -63.181, -17.784, 1800, false),
    ("Santiago", "", "CL", -70.669, -33.449, 6800, false),
    ("Valparaiso", "", "CL", -71.628, -33.047, 1000, true),
    ("Buenos Aires", "", "AR", -58.382, -34.603, 15200, true),
    ("Cordoba", "", "AR", -64.188, -31.420, 1600, false),
    ("Rosario", "", "AR", -60.640, -32.947, 1300, false),
    ("Montevideo", "", "UY", -56.165, -34.902, 1800, true),
    ("Asuncion", "", "PY", -57.576, -25.264, 2300, false),
    ("Sao Paulo", "", "BR", -46.633, -23.551, 22400, false),
    ("Rio de Janeiro", "", "BR", -43.173, -22.907, 13500, true),
    ("Brasilia", "", "BR", -47.883, -15.794, 3100, false),
    ("Salvador", "", "BR", -38.502, -12.973, 2900, true),
    ("Fortaleza", "", "BR", -38.527, -3.732, 4100, true),
    ("Recife", "", "BR", -34.877, -8.054, 4100, true),
    ("Belo Horizonte", "", "BR", -43.938, -19.920, 6000, false),
    ("Porto Alegre", "", "BR", -51.230, -30.033, 4300, false),
    ("Curitiba", "", "BR", -49.273, -25.429, 3700, false),
    ("Manaus", "", "BR", -60.025, -3.119, 2200, false),
    // --- Europe ---
    ("Madrid", "", "ES", -3.704, 40.417, 6700, false),
    ("Barcelona", "", "ES", 2.173, 41.385, 5600, true),
    ("Valencia", "", "ES", -0.376, 39.470, 1600, true),
    ("Bilbao", "", "ES", -2.935, 43.263, 1000, true),
    ("Lisbon", "", "PT", -9.139, 38.722, 2900, true),
    ("Porto", "", "PT", -8.611, 41.150, 1700, true),
    ("Paris", "", "FR", 2.352, 48.857, 11000, false),
    ("Lyon", "", "FR", 4.835, 45.764, 2300, false),
    ("Marseille", "", "FR", 5.370, 43.296, 1900, true),
    ("Bordeaux", "", "FR", -0.579, 44.838, 1000, true),
    ("Toulouse", "", "FR", 1.444, 43.605, 1100, false),
    ("Berlin", "", "DE", 13.405, 52.520, 3700, false),
    ("Hamburg", "", "DE", 9.994, 53.551, 1900, true),
    ("Munich", "", "DE", 11.582, 48.136, 1600, false),
    ("Frankfurt", "", "DE", 8.682, 50.111, 800, false),
    ("Cologne", "", "DE", 6.960, 50.938, 1100, false),
    ("Dusseldorf", "", "DE", 6.773, 51.228, 650, false),
    ("Stuttgart", "", "DE", 9.182, 48.776, 640, false),
    ("Dresden", "", "DE", 13.738, 51.051, 560, false),
    ("Leipzig", "", "DE", 12.375, 51.340, 600, false),
    ("Amsterdam", "", "NL", 4.895, 52.370, 2500, true),
    ("Rotterdam", "", "NL", 4.479, 51.924, 1000, true),
    ("Brussels", "", "BE", 4.352, 50.847, 2100, false),
    ("Antwerp", "", "BE", 4.402, 51.220, 530, true),
    ("London", "", "GB", -0.128, 51.507, 14300, false),
    ("Manchester", "", "GB", -2.244, 53.480, 2800, false),
    ("Birmingham UK", "", "GB", -1.890, 52.486, 2900, false),
    ("Edinburgh", "", "GB", -3.188, 55.953, 540, true),
    ("Glasgow", "", "GB", -4.252, 55.864, 1700, true),
    ("Dublin", "", "IE", -6.260, 53.350, 1400, true),
    ("Rome", "", "IT", 12.496, 41.903, 4300, false),
    ("Milan", "", "IT", 9.190, 45.464, 3100, false),
    ("Turin", "", "IT", 7.686, 45.070, 1700, false),
    ("Naples", "", "IT", 14.268, 40.852, 3100, true),
    ("Zurich", "", "CH", 8.541, 47.376, 1400, false),
    ("Geneva", "", "CH", 6.143, 46.204, 600, false),
    ("Bern", "", "CH", 7.447, 46.948, 420, false),
    ("Vienna", "", "AT", 16.373, 48.208, 1900, false),
    ("Prague", "", "CZ", 14.438, 50.076, 1300, false),
    ("Warsaw", "", "PL", 21.012, 52.230, 1800, false),
    ("Katowice", "", "PL", 19.025, 50.264, 2000, false),
    ("Krakow", "", "PL", 19.945, 50.065, 770, false),
    ("Budapest", "", "HU", 19.040, 47.498, 1800, false),
    ("Bucharest", "", "RO", 26.104, 44.427, 1800, false),
    ("Sofia", "", "BG", 23.322, 42.698, 1300, false),
    ("Athens", "", "GR", 23.728, 37.984, 3200, true),
    ("Thessaloniki", "", "GR", 22.944, 40.640, 1000, true),
    ("Stockholm", "", "SE", 18.069, 59.329, 1600, true),
    ("Gothenburg", "", "SE", 11.975, 57.709, 600, true),
    ("Oslo", "", "NO", 10.752, 59.914, 1000, true),
    ("Copenhagen", "", "DK", 12.568, 55.676, 1300, true),
    ("Helsinki", "", "FI", 24.938, 60.170, 1300, true),
    ("Tallinn", "", "EE", 24.754, 59.437, 450, true),
    ("Riga", "", "LV", 24.105, 56.950, 630, true),
    ("Vilnius", "", "LT", 25.280, 54.687, 540, false),
    ("Kyiv", "", "UA", 30.523, 50.450, 3000, false),
    ("Moscow", "", "RU", 37.618, 55.756, 12600, false),
    ("St Petersburg", "", "RU", 30.336, 59.931, 5400, true),
    ("Istanbul", "", "TR", 28.979, 41.008, 15500, true),
    ("Ankara", "", "TR", 32.854, 39.920, 5700, false),
    ("Zagreb", "", "HR", 15.982, 45.815, 800, false),
    ("Belgrade", "", "RS", 20.448, 44.787, 1400, false),
    ("Bratislava", "", "SK", 17.107, 48.149, 430, false),
    ("Ljubljana", "", "SI", 14.506, 46.057, 290, false),
    ("Luxembourg", "", "LU", 6.130, 49.611, 130, false),
    // --- Africa ---
    ("Cairo", "", "EG", 31.236, 30.044, 21300, false),
    ("Alexandria EG", "", "EG", 29.919, 31.200, 5400, true),
    ("Lagos", "", "NG", 3.379, 6.524, 15400, true),
    ("Abuja", "", "NG", 7.399, 9.077, 3600, false),
    ("Accra", "", "GH", -0.187, 5.604, 2600, true),
    ("Abidjan", "", "CI", -4.008, 5.360, 5300, true),
    ("Dakar", "", "SN", -17.444, 14.693, 3100, true),
    ("Casablanca", "", "MA", -7.590, 33.573, 3800, true),
    ("Algiers", "", "DZ", 3.059, 36.754, 2800, true),
    ("Tunis", "", "TN", 10.165, 36.819, 2400, true),
    ("Tripoli", "", "LY", 13.191, 32.887, 1200, true),
    ("Nairobi", "", "KE", 36.817, -1.286, 5100, false),
    ("Mombasa", "", "KE", 39.668, -4.043, 1300, true),
    ("Addis Ababa", "", "ET", 38.747, 9.030, 5200, false),
    ("Dar es Salaam", "", "TZ", 39.284, -6.792, 7000, true),
    ("Kampala", "", "UG", 32.582, 0.347, 3700, false),
    ("Kigali", "", "RW", 30.059, -1.944, 1200, false),
    ("Johannesburg", "", "ZA", 28.047, -26.204, 6100, false),
    ("Cape Town", "", "ZA", 18.424, -33.925, 4800, true),
    ("Durban", "", "ZA", 31.022, -29.858, 3200, true),
    ("Luanda", "", "AO", 13.235, -8.838, 8900, true),
    ("Kinshasa", "", "CD", 15.267, -4.441, 16000, false),
    ("Harare", "", "ZW", 31.053, -17.830, 2100, false),
    ("Lusaka", "", "ZM", 28.283, -15.417, 3000, false),
    ("Maputo", "", "MZ", 32.589, -25.966, 1800, true),
    ("Antananarivo", "", "MG", 47.524, -18.880, 3600, false),
    ("Khartoum", "", "SD", 32.533, 15.500, 6300, false),
    // --- Asia & Middle East ---
    ("Tokyo", "", "JP", 139.692, 35.690, 37300, true),
    ("Osaka", "", "JP", 135.502, 34.694, 19100, true),
    ("Nagoya", "", "JP", 136.907, 35.181, 9500, true),
    ("Seoul", "", "KR", 126.978, 37.567, 25500, false),
    ("Busan", "", "KR", 129.075, 35.180, 3400, true),
    ("Beijing", "", "CN", 116.407, 39.904, 21500, false),
    ("Shanghai", "", "CN", 121.474, 31.230, 28500, true),
    ("Guangzhou", "", "CN", 113.264, 23.129, 18700, false),
    ("Shenzhen", "", "CN", 114.058, 22.543, 17500, true),
    ("Chengdu", "", "CN", 104.066, 30.573, 16300, false),
    ("Hong Kong", "", "HK", 114.169, 22.319, 7500, true),
    ("Taipei", "", "TW", 121.565, 25.033, 7000, true),
    ("Manila", "", "PH", 120.984, 14.599, 14200, true),
    ("Bangkok", "", "TH", 100.502, 13.756, 10700, true),
    ("Singapore", "", "SG", 103.820, 1.352, 5900, true),
    ("Kuala Lumpur", "", "MY", 101.687, 3.139, 8200, false),
    ("Jakarta", "", "ID", 106.845, -6.208, 10600, true),
    ("Hanoi", "", "VN", 105.834, 21.028, 8100, false),
    ("Ho Chi Minh City", "", "VN", 106.630, 10.823, 9300, true),
    ("Mumbai", "", "IN", 72.878, 19.076, 20700, true),
    ("Delhi", "", "IN", 77.209, 28.614, 31200, false),
    ("Bangalore", "", "IN", 77.595, 12.972, 12800, false),
    ("Chennai", "", "IN", 80.271, 13.083, 11200, true),
    ("Kolkata", "", "IN", 88.364, 22.573, 14900, true),
    ("Hyderabad", "", "IN", 78.487, 17.385, 10300, false),
    ("Karachi", "", "PK", 67.010, 24.861, 16500, true),
    ("Lahore", "", "PK", 74.329, 31.520, 13100, false),
    ("Dhaka", "", "BD", 90.412, 23.810, 22500, false),
    ("Colombo", "", "LK", 79.861, 6.927, 2500, true),
    ("Kathmandu", "", "NP", 85.324, 27.717, 1500, false),
    ("Dubai", "", "AE", 55.271, 25.205, 3500, true),
    ("Abu Dhabi", "", "AE", 54.367, 24.454, 1500, true),
    ("Doha", "", "QA", 51.531, 25.286, 2400, true),
    ("Riyadh", "", "SA", 46.675, 24.713, 7700, false),
    ("Jeddah", "", "SA", 39.173, 21.543, 4800, true),
    ("Kuwait City", "", "KW", 47.978, 29.376, 3100, true),
    ("Tel Aviv", "", "IL", 34.781, 32.085, 4400, true),
    ("Amman", "", "JO", 35.924, 31.955, 2200, false),
    ("Beirut", "", "LB", 35.501, 33.894, 2400, true),
    ("Baghdad", "", "IQ", 44.361, 33.315, 7500, false),
    ("Tehran", "", "IR", 51.389, 35.689, 9400, false),
    ("Tashkent", "", "UZ", 69.240, 41.300, 2600, false),
    ("Almaty", "", "KZ", 76.890, 43.238, 2100, false),
    ("Ulaanbaatar", "", "MN", 106.918, 47.919, 1600, false),
    ("Yangon", "", "MM", 96.156, 16.841, 5400, true),
    ("Phnom Penh", "", "KH", 104.892, 11.545, 2300, false),
    // --- Oceania ---
    ("Sydney", "", "AU", 151.209, -33.868, 5400, true),
    ("Melbourne", "", "AU", 144.963, -37.814, 5200, true),
    ("Brisbane", "", "AU", 153.026, -27.470, 2600, true),
    ("Perth", "", "AU", 115.861, -31.950, 2100, true),
    ("Adelaide", "", "AU", 138.601, -34.929, 1400, true),
    ("Canberra", "", "AU", 149.128, -35.282, 460, false),
    ("Auckland", "", "NZ", 174.764, -36.848, 1700, true),
    ("Wellington", "", "NZ", 174.777, -41.289, 420, true),
    ("Christchurch", "", "NZ", 172.636, -43.532, 400, true),
    ("Suva", "", "FJ", 178.442, -18.141, 190, true),
    // --- Additional capitals (coverage of smaller countries) ---
    ("Reykjavik", "", "IS", -21.895, 64.147, 230, true),
    ("Valletta", "", "MT", 14.514, 35.899, 400, true),
    ("Nicosia", "", "CY", 33.382, 35.185, 330, false),
    ("Tirana", "", "AL", 19.819, 41.328, 900, false),
    ("Skopje", "", "MK", 21.432, 41.998, 600, false),
    ("Sarajevo", "", "BA", 18.413, 43.856, 550, false),
    ("Chisinau", "", "MD", 28.864, 47.011, 700, false),
    ("Minsk", "", "BY", 27.567, 53.904, 2000, false),
    ("Podgorica", "", "ME", 19.263, 42.441, 190, false),
    ("Yerevan", "", "AM", 44.509, 40.177, 1100, false),
    ("Tbilisi", "", "GE", 44.793, 41.715, 1200, false),
    ("Baku", "", "AZ", 49.867, 40.409, 2300, true),
    ("Muscat", "", "OM", 58.406, 23.588, 1600, true),
    ("Manama", "", "BH", 50.586, 26.228, 700, true),
    ("Sanaa", "", "YE", 44.207, 15.369, 3000, false),
    ("Kabul", "", "AF", 69.178, 34.528, 4600, false),
    ("Ashgabat", "", "TM", 58.383, 37.950, 1000, false),
    ("Bishkek", "", "KG", 74.570, 42.875, 1100, false),
    ("Dushanbe", "", "TJ", 68.780, 38.560, 900, false),
    ("Male", "", "MV", 73.509, 4.175, 250, true),
    ("Thimphu", "", "BT", 89.636, 27.472, 110, false),
    ("Vientiane", "", "LA", 102.633, 17.975, 950, false),
    ("Bandar Seri Begawan", "", "BN", 114.940, 4.903, 240, true),
    ("Dili", "", "TL", 125.567, -8.556, 280, true),
    ("Port Moresby", "", "PG", 147.180, -9.443, 400, true),
    ("Honiara", "", "SB", 159.956, -9.446, 90, true),
    ("Apia", "", "WS", -171.766, -13.833, 40, true),
    ("Port Vila", "", "VU", 168.321, -17.734, 50, true),
    ("Bamako", "", "ML", -8.003, 12.639, 2800, false),
    ("Ouagadougou", "", "BF", -1.520, 12.371, 3000, false),
    ("Niamey", "", "NE", 2.113, 13.512, 1400, false),
    ("NDjamena", "", "TD", 15.044, 12.135, 1600, false),
    ("Conakry", "", "GN", -13.578, 9.641, 2000, true),
    ("Freetown", "", "SL", -13.234, 8.484, 1200, true),
    ("Monrovia", "", "LR", -10.801, 6.301, 1500, true),
    ("Lome", "", "TG", 1.222, 6.137, 1900, true),
    ("Cotonou", "", "BJ", 2.433, 6.366, 2400, true),
    ("Bangui", "", "CF", 18.555, 4.394, 900, false),
    ("Libreville", "", "GA", 9.454, 0.390, 850, true),
    ("Brazzaville", "", "CG", 15.266, -4.263, 2600, false),
    ("Yaounde", "", "CM", 11.518, 3.848, 4100, false),
    ("Malabo", "", "GQ", 8.780, 3.752, 300, true),
    ("Windhoek", "", "NA", 17.084, -22.560, 450, false),
    ("Gaborone", "", "BW", 25.908, -24.655, 270, false),
    ("Maseru", "", "LS", 27.480, -29.315, 330, false),
    ("Lilongwe", "", "MW", 33.787, -13.963, 1100, false),
    ("Bujumbura", "", "BI", 29.360, -3.382, 1100, false),
    ("Djibouti City", "", "DJ", 43.145, 11.572, 600, true),
    ("Asmara", "", "ER", 38.932, 15.322, 900, false),
    ("Mogadishu", "", "SO", 45.318, 2.047, 2600, true),
    ("Nouakchott", "", "MR", -15.978, 18.079, 1300, true),
    ("Banjul", "", "GM", -16.578, 13.454, 450, true),
    ("Bissau", "", "GW", -15.598, 11.861, 500, true),
    ("Moroni", "", "KM", 43.256, -11.699, 110, true),
    ("Victoria SC", "", "SC", 55.451, -4.620, 30, true),
    ("Port Louis", "", "MU", 57.504, -20.162, 150, true),
    ("Praia", "", "CV", -23.509, 14.933, 170, true),
    ("Sao Tome", "", "ST", 6.731, 0.336, 90, true),
    ("Belmopan", "", "BZ", -88.760, 17.251, 25, false),
    ("Nassau", "", "BS", -77.344, 25.047, 280, true),
    ("Port-au-Prince", "", "HT", -72.335, 18.547, 2900, true),
    ("Bridgetown", "", "BB", -59.616, 13.098, 110, true),
    ("Port of Spain", "", "TT", -61.517, 10.655, 550, true),
    ("Georgetown", "", "GY", -58.155, 6.801, 240, true),
    ("Paramaribo", "", "SR", -55.204, 5.852, 240, true),
    ("Ulan Ude", "", "RU", 107.584, 51.834, 440, false),
];

/// Builds the urban-area catalogue: all real cities first, then
/// deterministic procedural towns until `total` cities exist. Towns are
/// placed near a population-weighted real anchor city, inherit its country
/// and state, and are never coastal.
pub fn build_cities(total: usize, rng: &mut StdRng) -> Vec<City> {
    let mut cities: Vec<City> = REAL_CITIES
        .iter()
        .enumerate()
        .map(|(id, &(name, state, country, lon, lat, pop, coastal))| City {
            id,
            name: name.to_string(),
            state: state.to_string(),
            country: country.to_string(),
            loc: GeoPoint::new(lon, lat),
            population: pop,
            coastal,
            synthetic: false,
        })
        .collect();
    // Population-weighted anchor choice without external weighted-index
    // machinery: cumulative sums.
    let cum: Vec<u64> = cities
        .iter()
        .scan(0u64, |acc, c| {
            *acc += c.population as u64;
            Some(*acc)
        })
        .collect();
    let total_pop = *cum.last().unwrap();
    let mut used_coords: std::collections::HashSet<(u64, u64)> = cities
        .iter()
        .map(|c| (c.loc.lon.to_bits(), c.loc.lat.to_bits()))
        .collect();
    let mut town_serial = 0usize;
    while cities.len() < total {
        let pick = rng.gen_range(0..total_pop);
        let anchor_idx = cum.partition_point(|&s| s <= pick).min(REAL_CITIES.len() - 1);
        let anchor_loc = cities[anchor_idx].loc;
        let dlon = rng.gen_range(-2.5..2.5);
        let dlat = rng.gen_range(-2.0..2.0);
        let loc = GeoPoint::new(anchor_loc.lon + dlon, (anchor_loc.lat + dlat).clamp(-85.0, 85.0));
        if !used_coords.insert((loc.lon.to_bits(), loc.lat.to_bits())) {
            continue;
        }
        town_serial += 1;
        let id = cities.len();
        let (country, state) = (
            cities[anchor_idx].country.clone(),
            cities[anchor_idx].state.clone(),
        );
        cities.push(City {
            id,
            name: format!("{} Town {}", cities[anchor_idx].name, town_serial),
            state,
            country,
            loc,
            population: rng.gen_range(5..400),
            coastal: false,
            synthetic: true,
        });
    }
    cities.truncate(total.max(REAL_CITIES.len()));
    cities
}

/// Derives a 3-letter lowercase "airport style" code from a city name, the
/// kind ISPs embed in router hostnames. Deterministic; collisions across
/// cities are resolved by the caller (see `naming::GeoCodebook`).
pub fn base_geocode(name: &str) -> String {
    let letters: Vec<char> = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    match letters.len() {
        0 => "xxx".to_string(),
        1 => format!("{}xx", letters[0]),
        2 => format!("{}{}x", letters[0], letters[1]),
        _ => letters[..3].iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn catalogue_has_experiment_cities() {
        let names: std::collections::HashSet<&str> =
            REAL_CITIES.iter().map(|r| r.0).collect();
        // Figure 7 cities.
        for c in ["Kansas City", "Tulsa", "Oklahoma City", "Dallas", "Houston", "Atlanta", "St Louis", "Nashville"] {
            assert!(names.contains(c), "missing {c}");
        }
        // Figure 1/9 cities.
        for c in ["Madrid", "Paris", "Frankfurt", "Dusseldorf", "Berlin"] {
            assert!(names.contains(c), "missing {c}");
        }
    }

    #[test]
    fn catalogue_coordinates_valid_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &(name, _, country, lon, lat, pop, _) in REAL_CITIES {
            assert!((-180.0..=180.0).contains(&lon), "{name}");
            assert!((-90.0..=90.0).contains(&lat), "{name}");
            assert!(pop > 0, "{name}");
            assert!(seen.insert(name), "duplicate city name {name}");
            continent_of(country); // panics on unknown country
        }
        assert!(REAL_CITIES.len() >= 230, "catalogue too small: {}", REAL_CITIES.len());
    }

    #[test]
    fn build_cities_reaches_requested_total() {
        let mut rng = StdRng::seed_from_u64(7);
        let cities = build_cities(1000, &mut rng);
        assert_eq!(cities.len(), 1000);
        assert!(cities[..REAL_CITIES.len()].iter().all(|c| !c.synthetic));
        assert!(cities[REAL_CITIES.len()..].iter().all(|c| c.synthetic));
        // Ids are their indexes.
        for (i, c) in cities.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn build_cities_is_deterministic() {
        let a = build_cities(500, &mut StdRng::seed_from_u64(42));
        let b = build_cities(500, &mut StdRng::seed_from_u64(42));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.loc, y.loc);
        }
    }

    #[test]
    fn towns_inherit_country_of_anchor() {
        let mut rng = StdRng::seed_from_u64(9);
        let cities = build_cities(600, &mut rng);
        let countries: std::collections::HashSet<&str> =
            REAL_CITIES.iter().map(|r| r.2).collect();
        for t in cities.iter().filter(|c| c.synthetic) {
            assert!(countries.contains(t.country.as_str()));
            assert!(!t.coastal);
        }
    }

    #[test]
    fn standard_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let cities = build_cities(REAL_CITIES.len(), &mut rng);
        let kc = cities.iter().find(|c| c.name == "Kansas City").unwrap();
        assert_eq!(kc.standard_label(), "Kansas City-MO-US");
        let madrid = cities.iter().find(|c| c.name == "Madrid").unwrap();
        assert_eq!(madrid.standard_label(), "Madrid-ES");
    }

    #[test]
    fn geocodes_are_three_letters() {
        assert_eq!(base_geocode("Dresden"), "dre");
        assert_eq!(base_geocode("St Louis"), "stl");
        assert_eq!(base_geocode("A"), "axx");
        assert_eq!(base_geocode("42"), "xxx");
    }
}
