//! Hostname conventions and geocodes — the rDNS side of the world.
//!
//! Real ISPs encode location hints in router hostnames
//! (`be2695.rcr21.drs01.atlas.cogentco.com` → Dresden), and Hoiho ships the
//! regexes that extract them (paper §4.2). Here we build the synthetic
//! equivalent: a collision-free geocode per city (3 letters, spilling
//! to 4 at planet scale), per-AS hostname
//! conventions in three styles (geocode, city-name, opaque), and the
//! matching Hoiho-style rule set (regex strings consumed by `igdb-core`'s
//! rule engine, exactly like the downloadable Hoiho file).

use std::collections::HashMap;

use crate::ases::{RdnsStyle, SynthAs};
use crate::cities::{base_geocode, City};
use igdb_net::Ip4;

/// Bidirectional city ↔ 3-letter-code mapping with collision resolution.
pub struct GeoCodebook {
    code_of: Vec<String>,
    city_of: HashMap<String, usize>,
}

impl GeoCodebook {
    /// Assigns every city a unique code: the natural `base_geocode`, or the
    /// first free mutation of it. Worlds past the 26³ space (17,576 codes —
    /// enough for the paper's 7,342 urban areas, not for the large/planet
    /// tiers) spill the remaining cities into 4-letter codes; assignments
    /// inside the 3-letter space are unaffected, so smaller worlds emit
    /// byte-identical codebooks.
    pub fn build(cities: &[City]) -> Self {
        const SPACE3: usize = 26 * 26 * 26;
        let render3 = |n: usize| {
            format!(
                "{}{}{}",
                (b'a' + (n / 676) as u8) as char,
                (b'a' + (n / 26 % 26) as u8) as char,
                (b'a' + (n % 26) as u8) as char
            )
        };
        let mut code_of = Vec::with_capacity(cities.len());
        let mut city_of: HashMap<String, usize> = HashMap::new();
        // Count of assigned 3-letter codes: once the space is full, later
        // cities skip straight to the 4-letter spill instead of probing
        // all 17,576 occupied slots.
        let mut used3 = 0usize;
        for city in cities {
            let base = base_geocode(&city.name);
            // Treat the code as a base-26 number and probe upward (with
            // wraparound) until a free slot appears.
            let b = base.as_bytes();
            let mut n = (b[0] - b'a') as usize * 676
                + (b[1] - b'a') as usize * 26
                + (b[2] - b'a') as usize;
            let mut code = base.clone();
            if used3 >= SPACE3 {
                // Spill: probe the 26⁴ space from the same base position.
                // The Hoiho geocode rule captures `[a-z]{3,4}`, so spilled
                // codes stay resolvable.
                let mut m = n * 26;
                code = format!("{}{}", render3(m / 26), (b'a' + (m % 26) as u8) as char);
                while city_of.contains_key(&code) {
                    m = (m + 1) % (SPACE3 * 26);
                    code = format!("{}{}", render3(m / 26), (b'a' + (m % 26) as u8) as char);
                }
            } else {
                while city_of.contains_key(&code) {
                    n = (n + 1) % SPACE3;
                    code = render3(n);
                }
                used3 += 1;
            }
            city_of.insert(code.clone(), city.id);
            code_of.push(code);
        }
        Self { code_of, city_of }
    }

    pub fn code(&self, city: usize) -> &str {
        &self.code_of[city]
    }

    pub fn city(&self, code: &str) -> Option<usize> {
        self.city_of.get(code).copied()
    }

    pub fn len(&self) -> usize {
        self.code_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code_of.is_empty()
    }
}

/// Lowercase dash-slug of a city name ("Kansas City" → "kansas-city").
pub fn city_slug(name: &str) -> String {
    name.split_whitespace()
        .map(|w| w.to_ascii_lowercase())
        .collect::<Vec<_>>()
        .join("-")
}

/// DNS-safe lowercase domain stem of an AS brand.
pub fn brand_domain(brand: &str) -> String {
    brand
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Builds the PTR hostname for one router interface, or `None` when the
/// owning AS publishes no rDNS.
///
/// `iface_serial` differentiates interfaces on the same router.
pub fn hostname_for(
    a: &SynthAs,
    city: &City,
    codebook: &GeoCodebook,
    ip: Ip4,
    iface_serial: u32,
) -> Option<String> {
    let dom = brand_domain(&a.names.brand);
    match a.rdns_style {
        RdnsStyle::GeoCode => Some(format!(
            "be{}.rcr{}.{}{:02}.atlas.{}.com",
            1000 + iface_serial,
            10 + (iface_serial % 40),
            codebook.code(city.id),
            1 + (iface_serial % 4),
            dom
        )),
        RdnsStyle::CityName => Some(format!(
            "xe-{}.{}.{}.net",
            iface_serial % 8,
            city_slug(&city.name),
            dom
        )),
        RdnsStyle::Opaque => {
            let o = ip.octets();
            Some(format!("ip-{}-{}-{}-{}.{}.net", o[0], o[1], o[2], o[3], dom))
        }
        RdnsStyle::None => None,
    }
}

/// One Hoiho-style geolocation rule: a regex whose first capture group
/// yields a location token, plus how to interpret the token.
#[derive(Clone, Debug, PartialEq)]
pub struct HoihoRule {
    /// The regex source text (consumed by `igdb-regex`).
    pub pattern: String,
    /// How to map capture group 1 to a city.
    pub token_kind: TokenKind,
    /// Human-readable provenance, e.g. the domain the rule was learnt for.
    pub domain: String,
}

/// Interpretation of a rule's captured token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// 3-letter geocode, resolved through the codebook.
    GeoCode,
    /// City-name slug, resolved by slug comparison.
    CitySlug,
}

/// Emits the Hoiho rule set: one rule per AS whose hostname convention
/// encodes location. (Opaque and silent ASes produce no rule — exactly why
/// the paper finds only ~14% of resolving hostnames geolocatable.)
pub fn hoiho_rules(ases: &[SynthAs]) -> Vec<HoihoRule> {
    let mut rules = Vec::new();
    for a in ases {
        let dom = brand_domain(&a.names.brand);
        match a.rdns_style {
            RdnsStyle::GeoCode => rules.push(HoihoRule {
                pattern: format!(r"\.rcr\d+\.([a-z]{{3,4}})\d{{2}}\.atlas\.{dom}\.com$"),
                token_kind: TokenKind::GeoCode,
                domain: format!("{dom}.com"),
            }),
            RdnsStyle::CityName => rules.push(HoihoRule {
                pattern: format!(r"^xe-\d+\.([a-z0-9-]+)\.{dom}\.net$"),
                token_kind: TokenKind::CitySlug,
                domain: format!("{dom}.net"),
            }),
            RdnsStyle::Opaque | RdnsStyle::None => {}
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ases::{AsClass, AsNames, InternalEdge};
    use crate::cities::build_cities;
    use igdb_net::Asn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk_as(style: RdnsStyle) -> SynthAs {
        SynthAs {
            asn: Asn(64500),
            class: AsClass::Tier2,
            names: AsNames {
                brand: "Veralink".into(),
                asrank_as_name: "VERALINK-64500".into(),
                peeringdb_as_name: "as-veralink".into(),
                asrank_org: "Veralink Communications, LLC".into(),
                peeringdb_org: "Veralink - AS64500".into(),
                pch_org: "Veralink Networks B.V.".into(),
            },
            region: None,
            footprint: vec![0],
            declared_footprint: vec![0],
            internal_edges: Vec::<InternalEdge>::new(),
            rdns_style: style,
            mpls: false,
            in_atlas: true,
        }
    }

    #[test]
    fn codebook_codes_unique_and_reversible() {
        let mut rng = StdRng::seed_from_u64(3);
        let cities = build_cities(2000, &mut rng);
        let book = GeoCodebook::build(&cities);
        assert_eq!(book.len(), 2000);
        let mut seen = std::collections::HashSet::new();
        for c in &cities {
            let code = book.code(c.id);
            assert_eq!(code.len(), 3);
            assert!(code.chars().all(|ch| ch.is_ascii_lowercase()));
            assert!(seen.insert(code.to_string()), "duplicate code {code}");
            assert_eq!(book.city(code), Some(c.id), "code {code} not reversible");
        }
        assert_eq!(book.city("zz9"), None);
    }

    #[test]
    fn hostname_styles() {
        let mut rng = StdRng::seed_from_u64(3);
        let cities = build_cities(260, &mut rng);
        let book = GeoCodebook::build(&cities);
        let kc = cities.iter().find(|c| c.name == "Kansas City").unwrap();
        let ip: Ip4 = "10.1.2.3".parse().unwrap();

        let h = hostname_for(&mk_as(RdnsStyle::GeoCode), kc, &book, ip, 7).unwrap();
        assert!(h.contains(".atlas.veralink.com"), "{h}");
        assert!(h.contains(book.code(kc.id)), "{h}");

        let h2 = hostname_for(&mk_as(RdnsStyle::CityName), kc, &book, ip, 7).unwrap();
        assert!(h2.contains("kansas-city"), "{h2}");

        let h3 = hostname_for(&mk_as(RdnsStyle::Opaque), kc, &book, ip, 7).unwrap();
        assert!(h3.starts_with("ip-10-1-2-3."), "{h3}");

        assert!(hostname_for(&mk_as(RdnsStyle::None), kc, &book, ip, 7).is_none());
    }

    #[test]
    fn rules_match_generated_hostnames() {
        use igdb_regex::Regex;
        let mut rng = StdRng::seed_from_u64(3);
        let cities = build_cities(260, &mut rng);
        let book = GeoCodebook::build(&cities);
        let kc = cities.iter().find(|c| c.name == "Kansas City").unwrap();
        let ip: Ip4 = "10.1.2.3".parse().unwrap();

        let geo_as = mk_as(RdnsStyle::GeoCode);
        let city_as = mk_as(RdnsStyle::CityName);
        let rules = hoiho_rules(&[geo_as.clone(), city_as.clone(), mk_as(RdnsStyle::Opaque)]);
        assert_eq!(rules.len(), 2, "opaque AS must not emit a rule");

        let h = hostname_for(&geo_as, kc, &book, ip, 3).unwrap();
        let re = Regex::new(&rules[0].pattern).unwrap();
        let caps = re.captures(&h).expect("geo rule must match its own hostnames");
        assert_eq!(book.city(caps.group(1).unwrap()), Some(kc.id));

        let h2 = hostname_for(&city_as, kc, &book, ip, 3).unwrap();
        let re2 = Regex::new(&rules[1].pattern).unwrap();
        let caps2 = re2.captures(&h2).expect("slug rule must match");
        assert_eq!(caps2.group(1).unwrap(), "kansas-city");
    }

    #[test]
    fn slug_and_domain_sanitization() {
        assert_eq!(city_slug("Ho Chi Minh City"), "ho-chi-minh-city");
        assert_eq!(brand_domain("Véra Link9"), "vralink9");
    }
}
