//! Deterministic scenario networks for the paper's named experiments.
//!
//! The random ecosystem gives the right statistics, but several figures
//! describe *specific* situations: a Kansas City→Atlanta traceroute with an
//! MPLS-hidden hop in Tulsa/Oklahoma City (Figure 7), a Madrid→Berlin
//! traceroute through Paris/Frankfurt/Düsseldorf (Figures 1 and 9), two
//! overlapping US access ISPs (Figure 6), and a transit AS whose rDNS
//! reveals undeclared metros (Table 3). This module injects hand-built ASes
//! that realize those situations on top of the random world, in reserved
//! ASN ranges (64496–64999, the IANA documentation range, plus 65000+ for
//! scenario stubs).

use igdb_net::{AsRelationship, Asn};

use crate::ases::{AsClass, AsEcosystem, AsNames, InternalEdge, RdnsStyle, SynthAs};
use crate::cities::{City, Continent};

/// Handles to the injected scenario ASes, consumed by benches and tests.
#[derive(Clone, Debug)]
pub struct Scenarios {
    /// Fig 7: transit across the US Midwest (KC—Tulsa/OKC—Dallas), MPLS on.
    pub heartland: Asn,
    /// Fig 7: transit across the US Gulf/Southeast (Dallas—Houston—Atlanta).
    pub gulfeast: Asn,
    /// Fig 7: transit along the shorter inland corridor (KC—StL—Nashville—Atlanta).
    pub eastcore: Asn,
    /// Fig 7/9 anchor hosts: (stub ASN, city id).
    pub anchor_kansas_city: (Asn, usize),
    pub anchor_atlanta: (Asn, usize),
    /// Fig 9: pan-European transit (Madrid—Paris—Frankfurt…).
    pub paneu: Asn,
    /// Fig 9: German regional ISP (Frankfurt—Düsseldorf—Berlin…).
    pub germanet: Asn,
    pub anchor_madrid: (Asn, usize),
    pub anchor_berlin: (Asn, usize),
    /// Fig 6: the single-ASN access ISP ("Cox-like", 30 metros).
    pub coastcable: Asn,
    /// Fig 6: the four ASNs of the multi-ASN access ISP ("Charter-like",
    /// 71 metros split across them).
    pub spectra: [Asn; 4],
    /// Table 3: GeoCode-style transit with many undeclared metros.
    pub globetrans: Asn,
    /// Table 3 traffic sources: stubs single-homed behind GlobeTrans.
    pub anchor_globetrans_a: (Asn, usize),
    pub anchor_globetrans_b: (Asn, usize),
    /// Figure 4: the Atlas-documented US backbone whose edges realize the
    /// InterTubes corridors (InterTubes was compiled from Atlas data).
    pub continental: Asn,
}

fn city_id(cities: &[City], name: &str) -> usize {
    cities
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("city '{name}' missing from catalogue"))
        .id
}

fn names(brand: &str, asn: Asn) -> AsNames {
    AsNames {
        brand: brand.to_string(),
        asrank_as_name: format!("{}-{}", brand.to_ascii_uppercase(), asn.0),
        peeringdb_as_name: format!("as-{}", brand.to_ascii_lowercase()),
        asrank_org: format!("{brand} Communications, LLC"),
        peeringdb_org: format!("{brand} - AS{}", asn.0),
        pch_org: format!("{brand} Networks B.V."),
    }
}

fn chain_edges(path: &[usize]) -> Vec<InternalEdge> {
    path.windows(2)
        .map(|w| InternalEdge {
            a: w[0].min(w[1]),
            b: w[0].max(w[1]),
            submarine: false,
        })
        .collect()
}

/// Installs every scenario AS into the ecosystem. Call after
/// `build_ecosystem` and before router construction. Scenario providers are
/// tier-1s from the random ecosystem (the first two by ASN).
pub fn install(cities: &[City], eco: &mut AsEcosystem) -> Scenarios {
    let tier1s: Vec<Asn> = eco
        .ases
        .iter()
        .filter(|a| a.class == AsClass::Tier1)
        .map(|a| a.asn)
        .collect();
    assert!(tier1s.len() >= 2, "scenarios need at least two tier-1s");
    let c = |n: &str| city_id(cities, n);

    // ---------------- Figure 7: Kansas City → Atlanta ----------------
    // Heartland: KC—Tulsa—Dallas and KC—OKC—Dallas; MPLS hides Tulsa/OKC.
    let heartland = Asn(64511);
    {
        let footprint = vec![
            c("Kansas City"),
            c("Tulsa"),
            c("Oklahoma City"),
            c("Dallas"),
            c("Omaha"),
            c("Denver"),
        ];
        let mut edges = chain_edges(&[c("Kansas City"), c("Tulsa"), c("Dallas")]);
        edges.extend(chain_edges(&[c("Kansas City"), c("Oklahoma City"), c("Dallas")]));
        edges.extend(chain_edges(&[c("Kansas City"), c("Omaha"), c("Denver")]));
        let declared = footprint.clone();
        eco.register(SynthAs {
            asn: heartland,
            class: AsClass::Tier2,
            names: names("Heartland", heartland),
            region: Some(Continent::NorthAmerica),
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::GeoCode,
            mpls: true,
        in_atlas: true,
        });
        eco.graph
            .add_edge(heartland, tier1s[0], AsRelationship::CustomerOf);
    }

    // GulfEast: Dallas—Houston—Atlanta, no MPLS (Houston stays visible).
    let gulfeast = Asn(64512);
    {
        let footprint = vec![
            c("Dallas"),
            c("Houston"),
            c("Atlanta"),
            c("New Orleans"),
            c("Jacksonville"),
        ];
        let mut edges = chain_edges(&[c("Dallas"), c("Houston"), c("Atlanta")]);
        edges.extend(chain_edges(&[c("Houston"), c("New Orleans"), c("Jacksonville"), c("Atlanta")]));
        let declared = footprint.clone();
        eco.register(SynthAs {
            asn: gulfeast,
            class: AsClass::Tier2,
            names: names("GulfEast", gulfeast),
            region: Some(Continent::NorthAmerica),
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::GeoCode,
            mpls: false,
            in_atlas: true,
        });
        eco.graph
            .add_edge(gulfeast, tier1s[1], AsRelationship::CustomerOf);
        // Heartland and GulfEast peer in Dallas.
        eco.graph.add_edge(heartland, gulfeast, AsRelationship::Peer);
    }

    // EastCore: the shorter inland corridor whose phys paths make the
    // "shortest practical physical path" (KC—StL—Nashville—Atlanta).
    let eastcore = Asn(64513);
    {
        let footprint = vec![
            c("Kansas City"),
            c("St Louis"),
            c("Nashville"),
            c("Atlanta"),
            c("Memphis"),
            c("Chicago"),
        ];
        let mut edges = chain_edges(&[c("Kansas City"), c("St Louis"), c("Nashville"), c("Atlanta")]);
        edges.extend(chain_edges(&[c("St Louis"), c("Chicago")]));
        edges.extend(chain_edges(&[c("Nashville"), c("Memphis")]));
        let declared = footprint.clone();
        eco.register(SynthAs {
            asn: eastcore,
            class: AsClass::Tier2,
            names: names("EastCore", eastcore),
            region: Some(Continent::NorthAmerica),
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::CityName,
            mpls: false,
            in_atlas: true,
        });
        eco.graph
            .add_edge(eastcore, tier1s[0], AsRelationship::CustomerOf);
    }

    // Anchor stubs. The KC anchor buys from Heartland ONLY and the Atlanta
    // anchor from GulfEast ONLY, so the best path crosses the Dallas
    // peering — the Figure 7 detour (KC→Tulsa*→Dallas→Houston→Atlanta)
    // rather than the short inland corridor.
    let anchor_kc = Asn(65001);
    let anchor_atl = Asn(65002);
    for (asn, city, provider, brand) in [
        (anchor_kc, c("Kansas City"), heartland, "PrairieHost"),
        (anchor_atl, c("Atlanta"), gulfeast, "PeachServe"),
    ] {
        eco.register(SynthAs {
            asn,
            class: AsClass::Stub,
            names: names(brand, asn),
            region: Some(Continent::NorthAmerica),
            footprint: vec![city],
            declared_footprint: vec![city],
            internal_edges: Vec::new(),
            rdns_style: RdnsStyle::Opaque,
            mpls: false,
            in_atlas: false,
        });
        eco.graph.add_edge(asn, provider, AsRelationship::CustomerOf);
    }

    // ---------------- Figure 9: Madrid → Berlin ----------------
    let paneu = Asn(64521);
    {
        let footprint = vec![
            c("Madrid"),
            c("Paris"),
            c("Frankfurt"),
            c("Barcelona"),
            c("Lyon"),
            c("Milan"),
            c("Amsterdam"),
            c("London"),
        ];
        let mut edges = chain_edges(&[c("Madrid"), c("Paris"), c("Frankfurt")]);
        edges.extend(chain_edges(&[c("Madrid"), c("Barcelona"), c("Lyon"), c("Paris")]));
        edges.extend(chain_edges(&[c("Paris"), c("London")]));
        edges.extend(chain_edges(&[c("Frankfurt"), c("Amsterdam")]));
        edges.extend(chain_edges(&[c("Lyon"), c("Milan")]));
        let declared = footprint.clone();
        eco.register(SynthAs {
            asn: paneu,
            class: AsClass::Tier2,
            names: names("IberRhine", paneu),
            region: Some(Continent::Europe),
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::GeoCode,
            mpls: false,
            in_atlas: true,
        });
        eco.graph.add_edge(paneu, tier1s[0], AsRelationship::CustomerOf);
    }
    let germanet = Asn(64522);
    {
        let footprint = vec![
            c("Frankfurt"),
            c("Dusseldorf"),
            c("Berlin"),
            c("Hamburg"),
            c("Cologne"),
            c("Amsterdam"),
            c("Brussels"),
        ];
        let mut edges = chain_edges(&[c("Frankfurt"), c("Dusseldorf"), c("Berlin")]);
        edges.extend(chain_edges(&[c("Dusseldorf"), c("Cologne"), c("Frankfurt")]));
        edges.extend(chain_edges(&[c("Dusseldorf"), c("Amsterdam"), c("Brussels")]));
        edges.extend(chain_edges(&[c("Berlin"), c("Hamburg")]));
        let declared = footprint.clone();
        eco.register(SynthAs {
            asn: germanet,
            class: AsClass::Tier2,
            names: names("GermaNet", germanet),
            region: Some(Continent::Europe),
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::GeoCode,
            mpls: false,
            in_atlas: true,
        });
        eco.graph.add_edge(germanet, tier1s[1], AsRelationship::CustomerOf);
        eco.graph.add_edge(paneu, germanet, AsRelationship::Peer); // in Frankfurt
    }
    let anchor_mad = Asn(65003);
    let anchor_ber = Asn(65004);
    for (asn, city, provider, brand) in [
        (anchor_mad, c("Madrid"), paneu, "MesetaData"),
        (anchor_ber, c("Berlin"), germanet, "SpreeHost"),
    ] {
        eco.register(SynthAs {
            asn,
            class: AsClass::Stub,
            names: names(brand, asn),
            region: Some(Continent::Europe),
            footprint: vec![city],
            declared_footprint: vec![city],
            internal_edges: Vec::new(),
            rdns_style: RdnsStyle::Opaque,
            mpls: false,
            in_atlas: false,
        });
        eco.graph.add_edge(asn, provider, AsRelationship::CustomerOf);
    }

    // ---------------- Figure 6: overlapping US access ISPs ----------------
    // CoastCable (one ASN, 30 US metros) and Spectra (four ASNs, 71 US
    // metros total) with exactly 10 shared metros.
    let us_cities: Vec<usize> = cities
        .iter()
        .filter(|x| x.country == "US")
        .map(|x| x.id)
        .collect();
    assert!(us_cities.len() >= 101, "need ≥101 US urban areas for Figure 6");
    let shared: Vec<usize> = us_cities[..10].to_vec();
    let cox_only: Vec<usize> = us_cities[10..30].to_vec();
    let charter_only: Vec<usize> = us_cities[30..91].to_vec();

    let coastcable = Asn(64531);
    {
        let mut footprint = shared.clone();
        footprint.extend(&cox_only);
        footprint.sort_unstable();
        eco.register(SynthAs {
            asn: coastcable,
            class: AsClass::Stub,
            names: names("CoastCable", coastcable),
            region: Some(Continent::NorthAmerica),
            footprint: footprint.clone(),
            declared_footprint: footprint,
            internal_edges: Vec::new(),
            rdns_style: RdnsStyle::Opaque,
            mpls: false,
            in_atlas: false,
        });
        eco.graph
            .add_edge(coastcable, tier1s[0], AsRelationship::CustomerOf);
    }
    let spectra = [Asn(64541), Asn(64542), Asn(64543), Asn(64544)];
    {
        // Split 71 metros across the four ASNs: shared 10 on the first,
        // the rest split round-robin.
        let mut buckets: [Vec<usize>; 4] = Default::default();
        buckets[0].extend(&shared);
        for (i, &cid) in charter_only.iter().enumerate() {
            buckets[i % 4].push(cid);
        }
        for (k, asn) in spectra.into_iter().enumerate() {
            let mut footprint = buckets[k].clone();
            footprint.sort_unstable();
            let mut nm = names("Spectra", asn);
            // All four ASNs share one organization (the Figure 6 query
            // groups by organization, not ASN).
            nm.asrank_org = "Spectra Holdings Ltd".to_string();
            nm.pch_org = "Spectra Holdings Ltd".to_string();
            eco.register(SynthAs {
                asn,
                class: AsClass::Stub,
                names: nm,
                region: Some(Continent::NorthAmerica),
                footprint: footprint.clone(),
                declared_footprint: footprint,
                internal_edges: Vec::new(),
                rdns_style: RdnsStyle::None,
                mpls: false,
                in_atlas: false,
            });
            eco.graph
                .add_edge(asn, tier1s[1], AsRelationship::CustomerOf);
        }
    }

    // ---------------- Table 3: undeclared metros via rDNS ----------------
    // GlobeTrans declares only a third of its metros; its GeoCode hostnames
    // give the rest away.
    let globetrans = Asn(64174);
    {
        // A worldwide footprint biased toward real cities.
        let footprint: Vec<usize> = cities
            .iter()
            .filter(|x| !x.synthetic && x.population > 1500)
            .map(|x| x.id)
            .take(60)
            .collect();
        let declared: Vec<usize> = footprint.iter().copied().take(20).collect();
        let edges = {
            let mut e = Vec::new();
            for w in footprint.windows(2) {
                e.push(InternalEdge {
                    a: w[0].min(w[1]),
                    b: w[0].max(w[1]),
                    submarine: true, // conservatively let world.rs re-derive
                });
            }
            e
        };
        eco.register(SynthAs {
            asn: globetrans,
            class: AsClass::Tier2,
            names: names("GlobeTrans", globetrans),
            region: None,
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::GeoCode,
            mpls: false,
            in_atlas: true,
        });
        eco.graph
            .add_edge(globetrans, tier1s[0], AsRelationship::CustomerOf);
        eco.graph
            .add_edge(globetrans, tier1s[1], AsRelationship::CustomerOf);
    }

    // ---------------- Table 3 traffic + Figure 4 backbone ----------------
    // Two stubs single-homed behind GlobeTrans, pinned as anchors by
    // world.rs, so mesh traceroutes traverse its (mostly undeclared) chain.
    let gt_fp = eco.get(globetrans).expect("globetrans registered").footprint.clone();
    let gt_city_a = gt_fp[gt_fp.len() / 2];
    let gt_city_b = gt_fp[gt_fp.len() - 2];
    let anchor_gt_a = Asn(65005);
    let anchor_gt_b = Asn(65006);
    for (asn, city, brand) in [
        (anchor_gt_a, gt_city_a, "OrbitHost"),
        (anchor_gt_b, gt_city_b, "NimbusServe"),
    ] {
        eco.register(SynthAs {
            asn,
            class: AsClass::Stub,
            names: names(brand, asn),
            region: None,
            footprint: vec![city],
            declared_footprint: vec![city],
            internal_edges: Vec::new(),
            rdns_style: RdnsStyle::Opaque,
            mpls: false,
            in_atlas: false,
        });
        eco.graph.add_edge(asn, globetrans, AsRelationship::CustomerOf);
    }

    // ContinentalFiber: footprint and edges are exactly the InterTubes
    // corridor structure, fully declared in Internet Atlas.
    let continental = Asn(64600);
    {
        let mut footprint: Vec<usize> = Vec::new();
        let mut edges: Vec<InternalEdge> = Vec::new();
        for &(a, b) in crate::intertubes::US_CORRIDORS {
            let (ca, cb) = (c(a), c(b));
            for x in [ca, cb] {
                if !footprint.contains(&x) {
                    footprint.push(x);
                }
            }
            edges.push(InternalEdge {
                a: ca.min(cb),
                b: ca.max(cb),
                submarine: false,
            });
        }
        footprint.sort_unstable();
        let declared = footprint.clone();
        eco.register(SynthAs {
            asn: continental,
            class: AsClass::Tier2,
            names: names("ContinentalFiber", continental),
            region: Some(Continent::NorthAmerica),
            footprint,
            declared_footprint: declared,
            internal_edges: edges,
            rdns_style: RdnsStyle::GeoCode,
            mpls: false,
            in_atlas: true,
        });
        eco.graph
            .add_edge(continental, tier1s[0], AsRelationship::CustomerOf);
        eco.graph
            .add_edge(continental, tier1s[1], AsRelationship::CustomerOf);
    }

    Scenarios {
        heartland,
        gulfeast,
        eastcore,
        anchor_kansas_city: (anchor_kc, c("Kansas City")),
        anchor_atlanta: (anchor_atl, c("Atlanta")),
        paneu,
        germanet,
        anchor_madrid: (anchor_mad, c("Madrid")),
        anchor_berlin: (anchor_ber, c("Berlin")),
        coastcable,
        spectra,
        globetrans,
        anchor_globetrans_a: (anchor_gt_a, gt_city_a),
        anchor_globetrans_b: (anchor_gt_b, gt_city_b),
        continental,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ases::{build_ecosystem, AsCounts};
    use crate::cities::build_cities;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (Vec<City>, AsEcosystem, Scenarios) {
        let mut rng = StdRng::seed_from_u64(13);
        let cities = build_cities(700, &mut rng);
        let mut eco = build_ecosystem(
            &cities,
            AsCounts {
                tier1: 4,
                tier2: 10,
                stub: 30,
                content: 3,
            },
            &mut rng,
        );
        let sc = install(&cities, &mut eco);
        (cities, eco, sc)
    }

    #[test]
    fn scenario_ases_registered_with_relationships() {
        let (_, eco, sc) = world();
        for asn in [
            sc.heartland,
            sc.gulfeast,
            sc.eastcore,
            sc.paneu,
            sc.germanet,
            sc.coastcable,
            sc.globetrans,
        ] {
            assert!(eco.get(asn).is_some(), "{asn} not registered");
            assert!(
                !eco.graph.providers(asn).is_empty() || !eco.graph.peers(asn).is_empty(),
                "{asn} unconnected"
            );
        }
    }

    #[test]
    fn fig7_peering_in_dallas() {
        let (cities, eco, sc) = world();
        assert_eq!(
            eco.graph.relationship(sc.heartland, sc.gulfeast),
            Some(AsRelationship::Peer)
        );
        let dallas = city_id(&cities, "Dallas");
        assert!(eco.get(sc.heartland).unwrap().footprint.contains(&dallas));
        assert!(eco.get(sc.gulfeast).unwrap().footprint.contains(&dallas));
        assert!(eco.get(sc.heartland).unwrap().mpls);
        assert!(!eco.get(sc.gulfeast).unwrap().mpls);
    }

    #[test]
    fn fig6_overlap_is_exactly_ten() {
        let (_, eco, sc) = world();
        let cox: std::collections::HashSet<usize> = eco
            .get(sc.coastcable)
            .unwrap()
            .footprint
            .iter()
            .copied()
            .collect();
        let mut charter: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for asn in sc.spectra {
            charter.extend(eco.get(asn).unwrap().footprint.iter().copied());
        }
        assert_eq!(cox.len(), 30);
        assert_eq!(charter.len(), 71);
        assert_eq!(cox.intersection(&charter).count(), 10);
    }

    #[test]
    fn spectra_asns_share_one_org() {
        let (_, eco, sc) = world();
        let orgs: std::collections::HashSet<String> = sc
            .spectra
            .iter()
            .map(|&a| eco.get(a).unwrap().names.asrank_org.clone())
            .collect();
        assert_eq!(orgs.len(), 1);
    }

    #[test]
    fn table3_as_underdeclares() {
        let (_, eco, sc) = world();
        let gt = eco.get(sc.globetrans).unwrap();
        assert!(gt.declared_footprint.len() * 2 < gt.footprint.len());
        assert_eq!(gt.rdns_style, RdnsStyle::GeoCode);
    }

    #[test]
    fn fig9_chain_exists() {
        let (cities, eco, sc) = world();
        let pe = eco.get(sc.paneu).unwrap();
        let ge = eco.get(sc.germanet).unwrap();
        let ff = city_id(&cities, "Frankfurt");
        assert!(pe.footprint.contains(&ff));
        assert!(ge.footprint.contains(&ff));
        assert_eq!(
            eco.graph.relationship(sc.paneu, sc.germanet),
            Some(AsRelationship::Peer)
        );
    }
}
