//! Deterministic snapshot *deltas* — the churn feeds look like in the wild.
//!
//! Delta ingestion (ROADMAP item 2) is only testable if we can mutate a
//! snapshot the way real feeds churn — nodes appearing and decaying in the
//! Internet Atlas, facilities opening and closing in PeeringDB, traceroute
//! meshes refreshing, whole metros entering or leaving the standardization
//! catalogue — *reproducibly*. [`generate_delta`] takes a seed and a list
//! of [`DeltaClass`]es, derives a **new** snapshot set from a base one (the
//! base is untouched — an old epoch keeps reading it), and returns a ledger
//! of exactly what changed where, in [`igdb_fault::SourceId`] vocabulary,
//! so a property test can demand that diffing the two sets accounts for
//! every entry. The pattern deliberately mirrors `faults.rs`: seeded
//! `StdRng`, classes applied in the order given, never over-claiming.
//!
//! Guarantees:
//! * Same seed + same classes ⇒ identical delta.
//! * All record references stay internally consistent: removing an Atlas
//!   node drops its links, removing a facility drops its netfac rows, and
//!   removing a metro cascades through every index-based reference
//!   (`roads`, `geo_codes`) exactly the way the validator's remap expects.
//! * A class whose source has too few records to operate on is skipped
//!   *without* a ledger entry.

use rand::{rngs::StdRng, Rng, SeedableRng};

use igdb_fault::SourceId;
use igdb_geo::GeoPoint;

use crate::sources::{
    AtlasLink, AtlasNode, NaturalEarthPlace, PdbFacility, RipeTraceroute, SnapshotSet,
};

/// One flavor of feed churn.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaClass {
    /// No change at all — the apply path must still produce a new epoch
    /// byte-identical to a rebuild of the same inputs.
    Empty,
    /// Internet Atlas churn: PoPs decay out, new PoPs appear, one node's
    /// surveyed coordinates shift.
    AtlasChurn,
    /// Removal-only Atlas link decay — the case where cached corridors
    /// avoiding the touched metros remain provably canonical.
    AtlasPrune,
    /// PeeringDB facility churn: one opens, one closes (cascading its
    /// netfac presences), one is re-surveyed.
    FacilityChurn,
    /// RIPE mesh refresh: measurements age out, new pairs appear, RTTs
    /// jitter.
    TracerouteChurn,
    /// Logical-layer churn: AS Rank org renames, peering links appearing
    /// and disappearing.
    LogicalChurn,
    /// Right-of-way edits: segments close, one is re-measured.
    RoadChurn,
    /// New metros appended to the standardization catalogue (existing
    /// metro ids keep their slots — the R-tree-insert fast path).
    MetroAdd,
    /// A metro leaves the catalogue: every later index shifts down one,
    /// cascading through `roads` endpoints and `geo_codes` (the full
    /// FK-remap path; forces rebuilding from the metros stage).
    MetroRemove,
    /// A field bump on *every* populated place — the delta that touches
    /// every metro at once.
    EveryMetro,
}

impl DeltaClass {
    /// Every class, in a fixed order (for exhaustive property tests).
    pub const ALL: [DeltaClass; 10] = [
        DeltaClass::Empty,
        DeltaClass::AtlasChurn,
        DeltaClass::AtlasPrune,
        DeltaClass::FacilityChurn,
        DeltaClass::TracerouteChurn,
        DeltaClass::LogicalChurn,
        DeltaClass::RoadChurn,
        DeltaClass::MetroAdd,
        DeltaClass::MetroRemove,
        DeltaClass::EveryMetro,
    ];
}

/// What one ledger entry did to a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    Added,
    Removed,
    Mutated,
}

/// One ledger entry: what changed, where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaOp {
    pub class: DeltaClass,
    pub source: SourceId,
    pub kind: DeltaKind,
    /// Natural key or index of the touched record, for the accounting
    /// tests (`fac:17`, `metro:42`, `trace:3->9`, …).
    pub key: String,
}

fn op(
    ledger: &mut Vec<DeltaOp>,
    class: DeltaClass,
    source: SourceId,
    kind: DeltaKind,
    key: impl Into<String>,
) {
    ledger.push(DeltaOp {
        class,
        source,
        kind,
        key: key.into(),
    });
}

/// Picks 1–3 distinct indices in `0..len`, sorted descending (safe to
/// `Vec::remove` in order). Empty when the source has no records.
fn pick_desc(rng: &mut StdRng, len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let n = rng.gen_range(1..=3usize).min(len);
    let mut picked: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    while picked.len() < n {
        picked.insert(rng.gen_range(0..len));
    }
    picked.into_iter().rev().collect()
}

/// Derives a churned snapshot set from `base` by applying `classes` in
/// order, driven by `seed`. The base set is untouched. The returned ledger
/// records every change made. The `as_of_date` is preserved: a delta
/// models source-side churn/corrections within one collection epoch, so
/// the rebuild target for the determinism contract is simply a full build
/// of the returned set.
pub fn generate_delta(
    base: &SnapshotSet,
    seed: u64,
    classes: &[DeltaClass],
) -> (SnapshotSet, Vec<DeltaOp>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snaps = base.clone();
    let mut ledger: Vec<DeltaOp> = Vec::new();

    for &class in classes {
        match class {
            DeltaClass::Empty => {}
            DeltaClass::AtlasChurn => atlas_churn(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::AtlasPrune => atlas_prune(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::FacilityChurn => facility_churn(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::TracerouteChurn => traceroute_churn(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::LogicalChurn => logical_churn(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::RoadChurn => road_churn(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::MetroAdd => metro_add(&mut snaps, &mut rng, &mut ledger, seed),
            DeltaClass::MetroRemove => metro_remove(&mut snaps, &mut rng, &mut ledger),
            DeltaClass::EveryMetro => every_metro(&mut snaps, &mut ledger),
        }
    }
    (snaps, ledger)
}

fn atlas_churn(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    let class = DeltaClass::AtlasChurn;
    // Decay: remove nodes and their links.
    for i in pick_desc(rng, snaps.atlas_nodes.len()) {
        let gone = snaps.atlas_nodes.remove(i);
        let before = snaps.atlas_links.len();
        snaps
            .atlas_links
            .retain(|l| l.from_node != gone.node_name && l.to_node != gone.node_name);
        for _ in 0..before - snaps.atlas_links.len() {
            op(ledger, class, SourceId::AtlasLinks, DeltaKind::Removed, &gone.node_name);
        }
        op(ledger, class, SourceId::AtlasNodes, DeltaKind::Removed, &gone.node_name);
    }
    // Re-survey: shift one surviving node's coordinates slightly.
    if !snaps.atlas_nodes.is_empty() {
        let i = rng.gen_range(0..snaps.atlas_nodes.len());
        let n = &mut snaps.atlas_nodes[i];
        n.loc = GeoPoint::new(n.loc.lon + 0.02, n.loc.lat - 0.015);
        op(ledger, class, SourceId::AtlasNodes, DeltaKind::Mutated, &n.node_name);
    }
    // Growth: a new PoP near an existing one, linked to it.
    if let Some(anchor) = snaps.atlas_nodes.first().cloned() {
        let name = format!("{} delta-PoP {}", anchor.network, snaps.atlas_nodes.len());
        snaps.atlas_nodes.push(AtlasNode {
            network: anchor.network.clone(),
            node_name: name.clone().into(),
            city_label: anchor.city_label.clone(),
            country: anchor.country.clone(),
            loc: GeoPoint::new(anchor.loc.lon + 0.05, anchor.loc.lat + 0.05),
        });
        op(ledger, class, SourceId::AtlasNodes, DeltaKind::Added, &name);
        if let Some(template) = snaps.atlas_links.first() {
            snaps.atlas_links.push(AtlasLink {
                network: anchor.network,
                from_node: anchor.node_name,
                to_node: name.clone().into(),
                link_type: template.link_type,
            });
            op(ledger, class, SourceId::AtlasLinks, DeltaKind::Added, &name);
        }
    }
}

fn atlas_prune(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    for i in pick_desc(rng, snaps.atlas_links.len()) {
        let gone = snaps.atlas_links.remove(i);
        op(
            ledger,
            DeltaClass::AtlasPrune,
            SourceId::AtlasLinks,
            DeltaKind::Removed,
            format!("{}->{}", gone.from_node, gone.to_node),
        );
    }
}

fn facility_churn(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    let class = DeltaClass::FacilityChurn;
    // Closure: remove one facility and cascade its presences.
    if !snaps.pdb_facilities.is_empty() {
        let i = rng.gen_range(0..snaps.pdb_facilities.len());
        let gone = snaps.pdb_facilities.remove(i);
        let before = snaps.pdb_netfac.len();
        snaps.pdb_netfac.retain(|nf| nf.fac_id != gone.fac_id);
        for _ in 0..before - snaps.pdb_netfac.len() {
            op(ledger, class, SourceId::PdbNetfac, DeltaKind::Removed, format!("fac:{}", gone.fac_id));
        }
        op(ledger, class, SourceId::PdbFacilities, DeltaKind::Removed, format!("fac:{}", gone.fac_id));
    }
    // Re-survey.
    if !snaps.pdb_facilities.is_empty() {
        let i = rng.gen_range(0..snaps.pdb_facilities.len());
        let f = &mut snaps.pdb_facilities[i];
        f.loc = GeoPoint::new(f.loc.lon - 0.03, f.loc.lat + 0.01);
        op(ledger, class, SourceId::PdbFacilities, DeltaKind::Mutated, format!("fac:{}", f.fac_id));
    }
    // Opening: a new facility next to an existing one.
    if let Some(anchor) = snaps.pdb_facilities.first().cloned() {
        let new_id = snaps.pdb_facilities.iter().map(|f| f.fac_id).max().unwrap_or(0) + 1;
        snaps.pdb_facilities.push(PdbFacility {
            fac_id: new_id,
            name: format!("{} Annex", anchor.name),
            city_label: anchor.city_label,
            country: anchor.country,
            loc: GeoPoint::new(anchor.loc.lon + 0.01, anchor.loc.lat + 0.02),
        });
        op(ledger, class, SourceId::PdbFacilities, DeltaKind::Added, format!("fac:{new_id}"));
    }
}

fn traceroute_churn(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    let class = DeltaClass::TracerouteChurn;
    for i in pick_desc(rng, snaps.ripe_traceroutes.len()) {
        let gone = snaps.ripe_traceroutes.remove(i);
        op(
            ledger,
            class,
            SourceId::RipeTraceroutes,
            DeltaKind::Removed,
            format!("trace:{}->{}", gone.src_anchor, gone.dst_anchor),
        );
    }
    // RTT jitter on a surviving measurement.
    if !snaps.ripe_traceroutes.is_empty() {
        let i = rng.gen_range(0..snaps.ripe_traceroutes.len());
        let t = &mut snaps.ripe_traceroutes[i];
        for hop in &mut t.hops {
            hop.rtt_ms += 0.125;
        }
        op(
            ledger,
            class,
            SourceId::RipeTraceroutes,
            DeltaKind::Mutated,
            format!("trace:{}->{}", t.src_anchor, t.dst_anchor),
        );
    }
    // A fresh measurement: reverse of an existing one (anchors stay valid).
    if let Some(t) = snaps.ripe_traceroutes.first().cloned() {
        let rev = RipeTraceroute {
            src_anchor: t.dst_anchor,
            dst_anchor: t.src_anchor,
            hops: t.hops.iter().rev().copied().collect(),
        };
        let key = format!("trace:{}->{}", rev.src_anchor, rev.dst_anchor);
        snaps.ripe_traceroutes.push(rev);
        op(ledger, class, SourceId::RipeTraceroutes, DeltaKind::Added, key);
    }
}

fn logical_churn(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    let class = DeltaClass::LogicalChurn;
    // WHOIS org rename.
    if !snaps.asrank_entries.is_empty() {
        let i = rng.gen_range(0..snaps.asrank_entries.len());
        let e = &mut snaps.asrank_entries[i];
        e.org = format!("{} Holdings", e.org);
        op(ledger, class, SourceId::AsRankEntries, DeltaKind::Mutated, format!("as:{}", e.asn));
    }
    // A peering link disappears from the collectors…
    if !snaps.asrank_links.is_empty() {
        let i = rng.gen_range(0..snaps.asrank_links.len());
        let (a, b) = snaps.asrank_links.remove(i);
        op(ledger, class, SourceId::AsRankLinks, DeltaKind::Removed, format!("{a}-{b}"));
    }
    // …and a new one appears between known ASes.
    if snaps.asrank_entries.len() >= 2 {
        let a = snaps.asrank_entries[0].asn;
        let b = snaps.asrank_entries[snaps.asrank_entries.len() - 1].asn;
        if a != b && !snaps.asrank_links.iter().any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a)) {
            snaps.asrank_links.push((a, b));
            op(ledger, class, SourceId::AsRankLinks, DeltaKind::Added, format!("{a}-{b}"));
        }
    }
}

fn road_churn(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    let class = DeltaClass::RoadChurn;
    for i in pick_desc(rng, snaps.roads.len().saturating_sub(1)) {
        let gone = snaps.roads.remove(i);
        op(ledger, class, SourceId::Roads, DeltaKind::Removed, format!("road:{}-{}", gone.a, gone.b));
    }
    // Re-measured segment (stays positive).
    if !snaps.roads.is_empty() {
        let i = rng.gen_range(0..snaps.roads.len());
        let r = &mut snaps.roads[i];
        r.length_km *= 1.05;
        op(ledger, class, SourceId::Roads, DeltaKind::Mutated, format!("road:{}-{}", r.a, r.b));
    }
}

fn metro_add(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>, seed: u64) {
    let class = DeltaClass::MetroAdd;
    let Some(anchor) = snaps.natural_earth.first().cloned() else {
        return;
    };
    let n_new = rng.gen_range(1..=2usize);
    for k in 0..n_new {
        let id = snaps.natural_earth.len();
        let name = format!("Deltaville{seed}x{k}");
        snaps.natural_earth.push(NaturalEarthPlace {
            name: name.clone(),
            state: anchor.state.clone(),
            country: anchor.country.clone(),
            // Offset enough that the new site wins its own Thiessen cell
            // without stealing an existing metro's anchor points.
            loc: GeoPoint::new(anchor.loc.lon + 1.5 + k as f64 * 0.7, anchor.loc.lat - 1.1),
            population: 10_000 + k as u32,
        });
        op(ledger, class, SourceId::NaturalEarth, DeltaKind::Added, &name);
        snaps.geo_codes.push((format!("D{seed}{k}"), id));
        op(ledger, class, SourceId::GeoCodes, DeltaKind::Added, format!("D{seed}{k}"));
    }
}

fn metro_remove(snaps: &mut SnapshotSet, rng: &mut StdRng, ledger: &mut Vec<DeltaOp>) {
    let class = DeltaClass::MetroRemove;
    if snaps.natural_earth.len() < 3 {
        return;
    }
    let m = rng.gen_range(0..snaps.natural_earth.len());
    let gone = snaps.natural_earth.remove(m);
    op(ledger, class, SourceId::NaturalEarth, DeltaKind::Removed, &gone.name);
    // Cascade through index-based references, the same shape the
    // validator's metro-id remap handles: drop records touching `m`,
    // shift every index above it down one.
    let before = snaps.roads.len();
    snaps.roads.retain(|r| r.a != m && r.b != m);
    for _ in 0..before - snaps.roads.len() {
        op(ledger, class, SourceId::Roads, DeltaKind::Removed, format!("metro:{m}"));
    }
    for r in &mut snaps.roads {
        if r.a > m {
            r.a -= 1;
        }
        if r.b > m {
            r.b -= 1;
        }
    }
    let before = snaps.geo_codes.len();
    snaps.geo_codes.retain(|(_, idx)| *idx != m);
    for _ in 0..before - snaps.geo_codes.len() {
        op(ledger, class, SourceId::GeoCodes, DeltaKind::Removed, format!("metro:{m}"));
    }
    for (_, idx) in &mut snaps.geo_codes {
        if *idx > m {
            *idx -= 1;
        }
    }
}

fn every_metro(snaps: &mut SnapshotSet, ledger: &mut Vec<DeltaOp>) {
    for p in &mut snaps.natural_earth {
        p.population = p.population.saturating_add(1);
        op(
            ledger,
            DeltaClass::EveryMetro,
            SourceId::NaturalEarth,
            DeltaKind::Mutated,
            &p.name,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emit_snapshots, World, WorldConfig};

    fn snaps() -> SnapshotSet {
        let world = World::generate(WorldConfig::tiny());
        emit_snapshots(&world, "2022-05-03", 40)
    }

    #[test]
    fn same_seed_same_delta() {
        let base = snaps();
        let (a, la) = generate_delta(&base, 11, &DeltaClass::ALL);
        let (b, lb) = generate_delta(&base, 11, &DeltaClass::ALL);
        assert_eq!(la, lb);
        assert!(!la.is_empty());
        assert_eq!(a.natural_earth.len(), b.natural_earth.len());
        assert_eq!(a.atlas_nodes.len(), b.atlas_nodes.len());
        for (x, y) in a.roads.iter().zip(b.roads.iter()) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert_eq!(x.length_km, y.length_km);
        }
        let (_, lc) = generate_delta(&base, 12, &DeltaClass::ALL);
        assert_ne!(la, lc, "different seeds must differ somewhere");
    }

    #[test]
    fn base_set_is_untouched() {
        let base = snaps();
        let n_nodes = base.atlas_nodes.len();
        let n_metros = base.natural_earth.len();
        let _ = generate_delta(&base, 5, &DeltaClass::ALL);
        assert_eq!(base.atlas_nodes.len(), n_nodes);
        assert_eq!(base.natural_earth.len(), n_metros);
    }

    #[test]
    fn empty_class_changes_nothing() {
        let base = snaps();
        let (d, ledger) = generate_delta(&base, 7, &[DeltaClass::Empty]);
        assert!(ledger.is_empty());
        assert_eq!(d.atlas_nodes.len(), base.atlas_nodes.len());
        assert_eq!(d.roads.len(), base.roads.len());
        assert_eq!(d.natural_earth.len(), base.natural_earth.len());
    }

    #[test]
    fn atlas_churn_keeps_links_consistent() {
        let base = snaps();
        let (d, ledger) = generate_delta(&base, 3, &[DeltaClass::AtlasChurn]);
        let names: std::collections::BTreeSet<&str> =
            d.atlas_nodes.iter().map(|n| n.node_name.as_str()).collect();
        for l in &d.atlas_links {
            assert!(names.contains(l.from_node.as_str()), "dangling from_node {}", l.from_node);
            assert!(names.contains(l.to_node.as_str()), "dangling to_node {}", l.to_node);
        }
        assert!(ledger.iter().any(|o| o.kind == DeltaKind::Removed));
        assert!(ledger.iter().any(|o| o.kind == DeltaKind::Added));
    }

    #[test]
    fn atlas_prune_is_removal_only() {
        let base = snaps();
        let (d, ledger) = generate_delta(&base, 9, &[DeltaClass::AtlasPrune]);
        assert!(ledger.iter().all(|o| o.kind == DeltaKind::Removed));
        assert!(d.atlas_links.len() < base.atlas_links.len());
        assert_eq!(d.atlas_nodes.len(), base.atlas_nodes.len());
    }

    #[test]
    fn facility_removal_cascades_netfac() {
        let base = snaps();
        let (d, _) = generate_delta(&base, 21, &[DeltaClass::FacilityChurn]);
        let ids: std::collections::BTreeSet<u32> =
            d.pdb_facilities.iter().map(|f| f.fac_id).collect();
        for nf in &d.pdb_netfac {
            assert!(ids.contains(&nf.fac_id), "netfac points at missing fac {}", nf.fac_id);
        }
    }

    #[test]
    fn metro_remove_cascades_indexes() {
        let base = snaps();
        let (d, ledger) = generate_delta(&base, 13, &[DeltaClass::MetroRemove]);
        assert_eq!(d.natural_earth.len(), base.natural_earth.len() - 1);
        let n = d.natural_earth.len();
        for r in &d.roads {
            assert!(r.a < n && r.b < n, "road endpoint out of range after cascade");
        }
        for (_, idx) in &d.geo_codes {
            assert!(*idx < n, "geo code out of range after cascade");
        }
        assert!(ledger
            .iter()
            .any(|o| o.source == SourceId::NaturalEarth && o.kind == DeltaKind::Removed));
    }

    #[test]
    fn metro_add_appends_without_shifting() {
        let base = snaps();
        let (d, ledger) = generate_delta(&base, 17, &[DeltaClass::MetroAdd]);
        assert!(d.natural_earth.len() > base.natural_earth.len());
        // Existing slots untouched.
        for (old, new) in base.natural_earth.iter().zip(d.natural_earth.iter()) {
            assert_eq!(old.name, new.name);
        }
        assert!(ledger.iter().all(|o| o.kind == DeltaKind::Added));
    }

    #[test]
    fn every_metro_touches_all() {
        let base = snaps();
        let (d, ledger) = generate_delta(&base, 1, &[DeltaClass::EveryMetro]);
        let touched = ledger
            .iter()
            .filter(|o| o.class == DeltaClass::EveryMetro && o.kind == DeltaKind::Mutated)
            .count();
        assert_eq!(touched, base.natural_earth.len());
        for (old, new) in base.natural_earth.iter().zip(d.natural_earth.iter()) {
            assert_eq!(new.population, old.population + 1);
        }
    }
}
