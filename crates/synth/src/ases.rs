//! The synthetic AS ecosystem: tiers, relationships, footprints, names.
//!
//! Mirrors the structure the paper's data reflects: a small clique of
//! transit-free tier-1 backbones, regional tier-2 transit providers,
//! access/enterprise stubs, and globally-deployed content networks (the
//! Cloudflare/Microsoft/Google class that tops Table 2). Every AS carries
//! *inconsistent names across sources* by construction, reproducing the
//! paper's AS2686 example ("ATGS-MMD-AS" from WHOIS vs "as-ignemea" from
//! PeeringDB vs three different organization spellings, §3.2).

use std::collections::{BTreeMap, HashMap};

use igdb_net::{AsGraph, AsRelationship, Asn, Tier};
use rand::rngs::StdRng;
use rand::Rng;

use crate::cities::{continent_of, City, Continent};

/// Reverse-DNS naming convention an AS applies to its router interfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RdnsStyle {
    /// Hostnames embed a 3-letter geocode (`…rcr21.kcy01.atlas.example.com`)
    /// — the Hoiho-extractable class.
    GeoCode,
    /// Hostnames embed the full city name with dashes
    /// (`xe0.kansas-city.example.net`).
    CityName,
    /// Hostnames carry no location information (`ip-10-1-2-3.example.net`).
    Opaque,
    /// The AS publishes no PTR records at all.
    None,
}

/// Business class of a synthetic AS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsClass {
    Tier1,
    Tier2,
    Stub,
    /// Content/cloud network: stub economics, global footprint.
    Content,
}

impl AsClass {
    pub fn tier(&self) -> Tier {
        match self {
            AsClass::Tier1 => Tier::Tier1,
            AsClass::Tier2 => Tier::Tier2,
            AsClass::Stub | AsClass::Content => Tier::Stub,
        }
    }
}

/// Per-source name variants for one AS.
#[derive(Clone, Debug)]
pub struct AsNames {
    /// Marketing name, e.g. "Veralink".
    pub brand: String,
    /// AS name as WHOIS/ASRank reports it: "VERALINK-174".
    pub asrank_as_name: String,
    /// AS name as PeeringDB (IRR-derived) reports it: "as-veralink".
    pub peeringdb_as_name: String,
    /// Organization per ASRank (WHOIS): "Veralink Communications, LLC".
    pub asrank_org: String,
    /// Organization per PeeringDB: "Veralink - AS174".
    pub peeringdb_org: String,
    /// Organization per PCH: "Veralink Networks B.V.".
    pub pch_org: String,
}

/// An internal physical edge between two footprint cities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternalEdge {
    pub a: usize,
    pub b: usize,
    /// True when the edge crosses an ocean (rides a submarine cable rather
    /// than a terrestrial right-of-way).
    pub submarine: bool,
}

/// One synthetic autonomous system.
#[derive(Clone, Debug)]
pub struct SynthAs {
    pub asn: Asn,
    pub class: AsClass,
    pub names: AsNames,
    /// Home continent; `None` for global networks (tier-1, content).
    pub region: Option<Continent>,
    /// City ids where the AS has PoPs.
    pub footprint: Vec<usize>,
    /// The subset of the footprint the AS *declares* in public sources
    /// (PeeringDB presence, Internet Atlas maps). Undeclared PoPs are what
    /// the paper's rDNS/latency inference recovers ("more than 80% of the
    /// locations identified through reverse DNS do not appear in the
    /// initial version of iGDB", §4.4).
    pub declared_footprint: Vec<usize>,
    /// Internal physical connectivity between footprint cities.
    pub internal_edges: Vec<InternalEdge>,
    pub rdns_style: RdnsStyle,
    /// Whether the AS runs MPLS (interior routers hidden from traceroute).
    pub mpls: bool,
    /// Whether Internet Atlas documents this network (the real Atlas covers
    /// ~1.5K networks — transit and content, rarely stubs).
    pub in_atlas: bool,
}

/// The whole ecosystem.
pub struct AsEcosystem {
    pub ases: Vec<SynthAs>,
    pub graph: AsGraph,
    by_asn: HashMap<Asn, usize>,
}

impl AsEcosystem {
    pub fn get(&self, asn: Asn) -> Option<&SynthAs> {
        self.by_asn.get(&asn).map(|&i| &self.ases[i])
    }

    pub fn len(&self) -> usize {
        self.ases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// Registers a hand-built AS (scenario injection). The caller wires its
    /// relationships through [`AsEcosystem::graph`] afterwards. Panics on a
    /// duplicate ASN — scenario ASNs are reserved ranges.
    pub fn register(&mut self, a: SynthAs) {
        assert!(
            !self.by_asn.contains_key(&a.asn),
            "duplicate scenario ASN {}",
            a.asn
        );
        self.graph.add_as(a.asn, a.class.tier());
        self.by_asn.insert(a.asn, self.ases.len());
        self.ases.push(a);
    }
}

/// Ecosystem size knobs.
#[derive(Clone, Copy, Debug)]
pub struct AsCounts {
    pub tier1: usize,
    pub tier2: usize,
    pub stub: usize,
    pub content: usize,
}

const SYLLABLES: &[&str] = &[
    "ver", "lum", "cog", "atla", "pace", "eura", "zen", "nova", "tele", "net", "glo", "byte",
    "fib", "axi", "ora", "quan", "stra", "heli", "arc", "cirr", "volt", "mira", "sky", "terra",
];
const ORG_SUFFIX_WHOIS: &[&str] = &["Communications, LLC", "Networks, Inc.", "Holdings Ltd", "Group LLC"];
const ORG_SUFFIX_PCH: &[&str] = &["Networks B.V.", "Telecom GmbH", "Services S.A.", "Ltd"];

fn brand_name(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=3);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    let mut chars: Vec<char> = s.chars().collect();
    chars[0] = chars[0].to_ascii_uppercase();
    chars.into_iter().take(12).collect()
}

/// Draws a brand name no other AS uses yet (brand collisions would merge
/// rDNS domains and Atlas network names of unrelated ASes).
fn unique_brand(used: &mut std::collections::HashSet<String>, rng: &mut StdRng) -> String {
    for _ in 0..200 {
        let b = brand_name(rng);
        if used.insert(b.clone()) {
            return b;
        }
    }
    // Syllable space exhausted: suffix a counter.
    let mut k = used.len();
    loop {
        let b = format!("{}{}", brand_name(rng), k);
        if used.insert(b.clone()) {
            return b;
        }
        k += 1;
    }
}

fn make_names(brand: &str, asn: Asn, rng: &mut StdRng) -> AsNames {
    AsNames {
        brand: brand.to_string(),
        asrank_as_name: format!("{}-{}", brand.to_ascii_uppercase(), asn.0),
        peeringdb_as_name: format!("as-{}", brand.to_ascii_lowercase()),
        asrank_org: format!(
            "{brand} {}",
            ORG_SUFFIX_WHOIS[rng.gen_range(0..ORG_SUFFIX_WHOIS.len())]
        ),
        peeringdb_org: format!("{brand} - AS{}", asn.0),
        pch_org: format!(
            "{brand} {}",
            ORG_SUFFIX_PCH[rng.gen_range(0..ORG_SUFFIX_PCH.len())]
        ),
    }
}

/// Population-weighted sample of `k` distinct cities from `pool`.
fn weighted_cities(pool: &[&City], k: usize, rng: &mut StdRng) -> Vec<usize> {
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    let total: u64 = pool.iter().map(|c| c.population as u64 + 1).sum();
    let mut chosen = std::collections::BTreeSet::new();
    let mut guard = 0;
    while chosen.len() < k.min(pool.len()) && guard < k * 40 + 100 {
        guard += 1;
        let mut pick = rng.gen_range(0..total);
        for c in pool {
            let w = c.population as u64 + 1;
            if pick < w {
                chosen.insert(c.id);
                break;
            }
            pick -= w;
        }
    }
    chosen.into_iter().collect()
}

/// Builds internal physical connectivity over a footprint: a Prim-style
/// nearest-neighbour tree plus ~20% extra shortcut edges. Edges between
/// cities on different continents are flagged submarine.
fn internal_edges(cities: &[City], footprint: &[usize], rng: &mut StdRng) -> Vec<InternalEdge> {
    if footprint.len() < 2 {
        return Vec::new();
    }
    let dist = |a: usize, b: usize| igdb_geo::haversine_km(&cities[a].loc, &cities[b].loc);
    let mut edges = Vec::new();
    let mut connected = vec![footprint[0]];
    let mut remaining: Vec<usize> = footprint[1..].to_vec();
    while !remaining.is_empty() {
        // Closest (remaining, connected) pair.
        let mut best = (f64::INFINITY, 0usize, 0usize); // (d, rem_idx, conn_city)
        for (ri, &r) in remaining.iter().enumerate() {
            for &c in &connected {
                let d = dist(r, c);
                if d < best.0 {
                    best = (d, ri, c);
                }
            }
        }
        let r = remaining.swap_remove(best.1);
        edges.push(make_edge(cities, r, best.2));
        connected.push(r);
    }
    // Extra shortcuts for redundancy.
    let extra = footprint.len() / 5;
    let mut guard = 0;
    let mut added = 0;
    while added < extra && guard < extra * 20 + 20 {
        guard += 1;
        let a = footprint[rng.gen_range(0..footprint.len())];
        let b = footprint[rng.gen_range(0..footprint.len())];
        if a == b {
            continue;
        }
        let e = make_edge(cities, a, b);
        if !edges.iter().any(|x| (x.a, x.b) == (e.a, e.b)) {
            edges.push(e);
            added += 1;
        }
    }
    edges
}

fn make_edge(cities: &[City], x: usize, y: usize) -> InternalEdge {
    let (a, b) = if x < y { (x, y) } else { (y, x) };
    let submarine = continent_of(&cities[a].country) != continent_of(&cities[b].country)
        || igdb_geo::haversine_km(&cities[a].loc, &cities[b].loc) > crate::rightofway::MAX_SEGMENT_KM;
    InternalEdge { a, b, submarine }
}


/// Random 60–90% subset of a footprint (what the AS declares publicly).
/// Always keeps at least one city.
fn declared_subset(footprint: &[usize], rng: &mut StdRng) -> Vec<usize> {
    if footprint.len() <= 1 {
        return footprint.to_vec();
    }
    let frac = rng.gen_range(0.6..0.9);
    let keep = ((footprint.len() as f64 * frac).round() as usize).max(1);
    let mut v = footprint.to_vec();
    // Deterministic partial shuffle.
    for i in 0..keep {
        let j = rng.gen_range(i..v.len());
        v.swap(i, j);
    }
    v.truncate(keep);
    v.sort_unstable();
    v
}

/// Generates the ecosystem.
pub fn build_ecosystem(cities: &[City], counts: AsCounts, rng: &mut StdRng) -> AsEcosystem {
    let mut ases: Vec<SynthAs> = Vec::new();
    let mut graph = AsGraph::new();
    let by_continent: BTreeMap<Continent, Vec<&City>> = {
        let mut m: BTreeMap<Continent, Vec<&City>> = BTreeMap::new();
        for c in cities {
            m.entry(continent_of(&c.country)).or_default().push(c);
        }
        m
    };
    let all_refs: Vec<&City> = cities.iter().collect();
    let continents: Vec<Continent> = {
        let mut v: Vec<Continent> = by_continent.keys().copied().collect();
        v.sort();
        v
    };

    let mut used_brands: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut next_asn_t1 = 100u32;
    let mut next_asn_t2 = 1_000u32;
    let mut next_asn_stub = 20_000u32;
    let mut next_asn_content = 13_000u32;

    // --- Tier-1 backbones: global footprints, peer clique. ---
    let mut tier1_asns = Vec::new();
    for _ in 0..counts.tier1 {
        let asn = Asn(next_asn_t1);
        next_asn_t1 += rng.gen_range(7..40);
        let brand = unique_brand(&mut used_brands, rng);
        let size = rng.gen_range(30..55);
        let footprint = weighted_cities(&all_refs, size, rng);
        let internal = internal_edges(cities, &footprint, rng);
        graph.add_as(asn, Tier::Tier1);
        tier1_asns.push(asn);
        let declared_footprint = declared_subset(&footprint, rng);
        ases.push(SynthAs {
            asn,
            class: AsClass::Tier1,
            names: make_names(&brand, asn, rng),
            region: None,
            footprint,
            declared_footprint,
            internal_edges: internal,
            rdns_style: match rng.gen_range(0..20) {
                0..=2 => RdnsStyle::GeoCode,
                3..=4 => RdnsStyle::CityName,
                5..=13 => RdnsStyle::Opaque,
                _ => RdnsStyle::None,
            },
            mpls: rng.gen_bool(0.5),
            in_atlas: true,
        });
    }
    for i in 0..tier1_asns.len() {
        for j in i + 1..tier1_asns.len() {
            graph.add_edge(tier1_asns[i], tier1_asns[j], AsRelationship::Peer);
        }
    }

    // --- Tier-2 regionals. ---
    let mut tier2_by_continent: BTreeMap<Continent, Vec<Asn>> = BTreeMap::new();
    for k in 0..counts.tier2 {
        let region = continents[k % continents.len()];
        let pool = &by_continent[&region];
        let asn = Asn(next_asn_t2);
        next_asn_t2 += rng.gen_range(3..25);
        let brand = unique_brand(&mut used_brands, rng);
        let size = rng.gen_range(6..20).min(pool.len().max(1));
        let mut footprint = weighted_cities(pool, size, rng);
        // Providers: 1–3 tier-1s; ensure a shared interconnection city.
        let n_prov = rng.gen_range(1..=3.min(tier1_asns.len().max(1)));
        let mut providers = Vec::new();
        for _ in 0..n_prov {
            let p = tier1_asns[rng.gen_range(0..tier1_asns.len())];
            if !providers.contains(&p) {
                providers.push(p);
            }
        }
        for &p in &providers {
            let p_as = ases.iter().find(|a| a.asn == p).unwrap();
            if !footprint.iter().any(|c| p_as.footprint.contains(c)) {
                // Adopt the provider's footprint city nearest to our region.
                if let Some(&share) = p_as
                    .footprint
                    .iter()
                    .find(|&&c| continent_of(&cities[c].country) == region)
                    .or_else(|| p_as.footprint.first())
                {
                    footprint.push(share);
                    footprint.sort_unstable();
                    footprint.dedup();
                }
            }
        }
        let internal = internal_edges(cities, &footprint, rng);
        graph.add_as(asn, Tier::Tier2);
        for &p in &providers {
            graph.add_edge(asn, p, AsRelationship::CustomerOf);
        }
        tier2_by_continent.entry(region).or_default().push(asn);
        let declared_footprint = declared_subset(&footprint, rng);
        ases.push(SynthAs {
            asn,
            class: AsClass::Tier2,
            names: make_names(&brand, asn, rng),
            region: Some(region),
            footprint,
            declared_footprint,
            internal_edges: internal,
            rdns_style: match rng.gen_range(0..20) {
                0..=1 => RdnsStyle::GeoCode,
                2 => RdnsStyle::CityName,
                3..=12 => RdnsStyle::Opaque,
                _ => RdnsStyle::None,
            },
            mpls: rng.gen_bool(0.35),
            in_atlas: true,
        });
    }
    // Peer tier-2s within a continent (sparse).
    for asns in tier2_by_continent.values() {
        for i in 0..asns.len() {
            for j in i + 1..asns.len() {
                if rng.gen_bool(0.3) {
                    graph.add_edge(asns[i], asns[j], AsRelationship::Peer);
                }
            }
        }
    }

    // --- Content/cloud networks: global footprint, stub economics. ---
    for _ in 0..counts.content {
        let asn = Asn(next_asn_content);
        next_asn_content += rng.gen_range(11..90);
        let brand = unique_brand(&mut used_brands, rng);
        let size = rng.gen_range(35..70);
        let footprint = weighted_cities(&all_refs, size, rng);
        let internal = internal_edges(cities, &footprint, rng);
        graph.add_as(asn, Tier::Stub);
        // Transit from 2–3 tier-1s; peering with many tier-2s.
        for _ in 0..rng.gen_range(2..=3.min(tier1_asns.len().max(1))) {
            let p = tier1_asns[rng.gen_range(0..tier1_asns.len())];
            graph.add_edge(asn, p, AsRelationship::CustomerOf);
        }
        for asns in tier2_by_continent.values() {
            for &t2 in asns {
                if rng.gen_bool(0.25) {
                    graph.add_edge(asn, t2, AsRelationship::Peer);
                }
            }
        }
        let declared_footprint = declared_subset(&footprint, rng);
        ases.push(SynthAs {
            asn,
            class: AsClass::Content,
            names: make_names(&brand, asn, rng),
            region: None,
            footprint,
            declared_footprint,
            internal_edges: internal,
            rdns_style: if rng.gen_bool(0.5) {
                RdnsStyle::Opaque
            } else {
                RdnsStyle::None
            },
            mpls: false,
            in_atlas: true,
        });
    }

    // --- Stubs: 1–3 cities inside a provider's footprint. ---
    // A quarter of stubs belong to shared holding organizations (sibling
    // ASNs under one WHOIS org — why the paper counts fewer organizations
    // than ASes).
    let mut holding_orgs: Vec<String> = Vec::new();
    for k in 0..counts.stub {
        let region = continents[k % continents.len()];
        let t2s = tier2_by_continent.get(&region);
        // Skip the reserved scenario window (64000–66000).
        if (64_000..66_000).contains(&next_asn_stub) {
            next_asn_stub = 66_000;
        }
        let asn = Asn(next_asn_stub);
        next_asn_stub += rng.gen_range(1..15);
        let brand = unique_brand(&mut used_brands, rng);
        // Pick providers: 1–2 tier-2s in region (fallback: a tier-1).
        let mut providers: Vec<Asn> = Vec::new();
        if let Some(t2s) = t2s {
            if !t2s.is_empty() {
                providers.push(t2s[rng.gen_range(0..t2s.len())]);
                // Multihoming: most stubs buy from more than one upstream
                // (drives the real AS graph's ~4 links per AS).
                for p_extra in [0.55, 0.30] {
                    if t2s.len() > providers.len() && rng.gen_bool(p_extra) {
                        let extra = t2s[rng.gen_range(0..t2s.len())];
                        if !providers.contains(&extra) {
                            providers.push(extra);
                        }
                    }
                }
            }
        }
        if providers.is_empty() {
            providers.push(tier1_asns[rng.gen_range(0..tier1_asns.len())]);
        }
        // Footprint ⊂ first provider's footprint.
        let prov_fp: Vec<usize> = ases
            .iter()
            .find(|a| a.asn == providers[0])
            .map(|a| a.footprint.clone())
            .unwrap_or_default();
        let n_cities = rng.gen_range(1..=3usize).min(prov_fp.len().max(1));
        let mut footprint = Vec::new();
        let mut guard = 0;
        while footprint.len() < n_cities && guard < 50 {
            guard += 1;
            if prov_fp.is_empty() {
                break;
            }
            let c = prov_fp[rng.gen_range(0..prov_fp.len())];
            if !footprint.contains(&c) {
                footprint.push(c);
            }
        }
        if footprint.is_empty() {
            footprint.push(rng.gen_range(0..cities.len()));
        }
        footprint.sort_unstable();
        let internal = internal_edges(cities, &footprint, rng);
        graph.add_as(asn, Tier::Stub);
        for &p in &providers {
            graph.add_edge(asn, p, AsRelationship::CustomerOf);
        }
        let declared_footprint = footprint.clone();
        let mut stub_names = make_names(&brand, asn, rng);
        if rng.gen_bool(0.25) {
            // Join (or found) a holding organization.
            if !holding_orgs.is_empty() && rng.gen_bool(0.8) {
                let org = holding_orgs[rng.gen_range(0..holding_orgs.len())].clone();
                stub_names.asrank_org = org;
            } else {
                holding_orgs.push(stub_names.asrank_org.clone());
            }
        }
        ases.push(SynthAs {
            asn,
            class: AsClass::Stub,
            names: stub_names,
            region: Some(region),
            footprint,
            declared_footprint,
            internal_edges: internal,
            rdns_style: match rng.gen_range(0..20) {
                0 => RdnsStyle::CityName,
                1..=8 => RdnsStyle::Opaque,
                _ => RdnsStyle::None,
            },
            mpls: false,
            in_atlas: rng.gen_bool(0.04),
        });
    }

    let by_asn = ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
    AsEcosystem {
        ases,
        graph,
        by_asn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::build_cities;
    use rand::SeedableRng;

    fn ecosystem() -> (Vec<City>, AsEcosystem) {
        let mut rng = StdRng::seed_from_u64(5);
        let cities = build_cities(400, &mut rng);
        let eco = build_ecosystem(
            &cities,
            AsCounts {
                tier1: 6,
                tier2: 24,
                stub: 80,
                content: 6,
            },
            &mut rng,
        );
        (cities, eco)
    }

    #[test]
    fn counts_match_request() {
        let (_, eco) = ecosystem();
        assert_eq!(eco.len(), 6 + 24 + 80 + 6);
        assert_eq!(eco.ases.iter().filter(|a| a.class == AsClass::Tier1).count(), 6);
        assert_eq!(eco.ases.iter().filter(|a| a.class == AsClass::Content).count(), 6);
        assert_eq!(eco.graph.len(), eco.len());
    }

    #[test]
    fn asns_unique() {
        let (_, eco) = ecosystem();
        let set: std::collections::HashSet<Asn> = eco.ases.iter().map(|a| a.asn).collect();
        assert_eq!(set.len(), eco.len());
    }

    #[test]
    fn tier1_clique_peers() {
        let (_, eco) = ecosystem();
        let t1: Vec<Asn> = eco
            .ases
            .iter()
            .filter(|a| a.class == AsClass::Tier1)
            .map(|a| a.asn)
            .collect();
        for i in 0..t1.len() {
            for j in i + 1..t1.len() {
                assert_eq!(
                    eco.graph.relationship(t1[i], t1[j]),
                    Some(AsRelationship::Peer)
                );
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let (_, eco) = ecosystem();
        for a in &eco.ases {
            if a.class != AsClass::Tier1 {
                assert!(
                    !eco.graph.providers(a.asn).is_empty(),
                    "{} ({:?}) has no provider",
                    a.asn,
                    a.class
                );
            }
        }
    }

    #[test]
    fn stub_shares_a_city_with_its_provider() {
        let (_, eco) = ecosystem();
        for a in eco.ases.iter().filter(|a| a.class == AsClass::Stub) {
            let provs = eco.graph.providers(a.asn);
            let any_shared = provs.iter().any(|p| {
                eco.get(*p)
                    .map(|pa| a.footprint.iter().any(|c| pa.footprint.contains(c)))
                    .unwrap_or(false)
            });
            assert!(any_shared, "{} shares no city with any provider", a.asn);
        }
    }

    #[test]
    fn footprints_nonempty_and_internal_edges_span() {
        let (_, eco) = ecosystem();
        for a in &eco.ases {
            assert!(!a.footprint.is_empty(), "{}", a.asn);
            if a.footprint.len() >= 2 {
                // Internal edges must form a connected graph over footprint.
                let mut reach = std::collections::HashSet::new();
                reach.insert(a.footprint[0]);
                let mut changed = true;
                while changed {
                    changed = false;
                    for e in &a.internal_edges {
                        if reach.contains(&e.a) && reach.insert(e.b) {
                            changed = true;
                        }
                        if reach.contains(&e.b) && reach.insert(e.a) {
                            changed = true;
                        }
                    }
                }
                for c in &a.footprint {
                    assert!(reach.contains(c), "{}: city {c} disconnected", a.asn);
                }
            }
        }
    }

    #[test]
    fn content_networks_span_many_cities() {
        let (_, eco) = ecosystem();
        for a in eco.ases.iter().filter(|a| a.class == AsClass::Content) {
            assert!(a.footprint.len() >= 30, "{}: {}", a.asn, a.footprint.len());
        }
    }

    #[test]
    fn name_variants_differ_across_sources() {
        let (_, eco) = ecosystem();
        for a in &eco.ases {
            assert_ne!(a.names.asrank_as_name, a.names.peeringdb_as_name);
            assert_ne!(a.names.asrank_org, a.names.peeringdb_org);
            assert_ne!(a.names.pch_org, a.names.peeringdb_org);
            // But all share the brand stem (case-insensitively).
            let stem = a.names.brand.to_ascii_lowercase();
            assert!(a.names.peeringdb_as_name.contains(&stem));
        }
    }

    #[test]
    fn submarine_flag_set_for_intercontinental_edges() {
        let (cities, eco) = ecosystem();
        for a in &eco.ases {
            for e in &a.internal_edges {
                let cross = continent_of(&cities[e.a].country) != continent_of(&cities[e.b].country);
                if cross {
                    assert!(e.submarine, "{}: {:?} should be submarine", a.asn, e);
                }
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let cities = build_cities(300, &mut rng);
            let eco = build_ecosystem(
                &cities,
                AsCounts {
                    tier1: 3,
                    tier2: 8,
                    stub: 20,
                    content: 2,
                },
                &mut rng,
            );
            eco.ases
                .iter()
                .map(|a| (a.asn, a.footprint.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(77), gen(77));
    }
}
