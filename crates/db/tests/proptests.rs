//! Property-based tests for the relational engine.

use proptest::prelude::*;

use igdb_db::csv::{table_from_csv, table_to_csv};
use igdb_db::{Aggregate, ColumnDef, ColumnType, Predicate, Query, Schema, Table, Value};

fn arb_value_for(ty: ColumnType, nullable: bool) -> BoxedStrategy<Value> {
    let base: BoxedStrategy<Value> = match ty {
        ColumnType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        ColumnType::Float => (-1e9f64..1e9).prop_map(Value::Float).boxed(),
        ColumnType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        ColumnType::Text | ColumnType::Geometry => r#"[ -~]{0,24}"#
            .prop_map(|s: String| Value::text(s))
            .boxed(),
    };
    if nullable {
        prop_oneof![3 => base, 1 => Just(Value::Null)].boxed()
    } else {
        base
    }
}

fn arb_table() -> impl Strategy<Value = Table> {
    let schema = Schema::new(vec![
        ColumnDef::new("k", ColumnType::Int),
        ColumnDef::nullable("t", ColumnType::Text),
        ColumnDef::nullable("f", ColumnType::Float),
        ColumnDef::new("b", ColumnType::Bool),
        ColumnDef::new("g", ColumnType::Geometry),
    ]);
    let row = (
        any::<i64>().prop_map(Value::Int),
        arb_value_for(ColumnType::Text, true),
        arb_value_for(ColumnType::Float, true),
        any::<bool>().prop_map(Value::Bool),
        arb_value_for(ColumnType::Geometry, false),
    )
        .prop_map(|(a, b, c, d, e)| vec![a, b, c, d, e]);
    proptest::collection::vec(row, 0..40).prop_map(move |rows| {
        let mut t = Table::new(schema.clone());
        for r in rows {
            t.insert(r).unwrap();
        }
        t
    })
}

proptest! {
    #[test]
    fn csv_roundtrip_preserves_rows(t in arb_table()) {
        let text = table_to_csv(&t);
        let back = table_from_csv(&text).unwrap();
        prop_assert_eq!(back.schema(), t.schema());
        prop_assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn indexed_lookup_equals_scan(t in arb_table(), needle in any::<i64>()) {
        // Lookups with and without an index agree; include values known to
        // be present.
        let mut probe_values: Vec<i64> = t.rows().iter().filter_map(|r| r[0].as_int()).collect();
        probe_values.push(needle);
        let mut indexed = {
            let mut t2 = Table::new(t.schema().clone());
            for r in t.rows() {
                t2.insert(r.to_vec()).unwrap();
            }
            t2.create_index("k").unwrap();
            t2
        };
        for v in probe_values {
            let plain = t.lookup("k", &Value::Int(v)).unwrap();
            let fast = indexed.lookup("k", &Value::Int(v)).unwrap();
            prop_assert_eq!(plain, fast);
        }
        // Keep the borrow checker honest about mutability.
        indexed.insert(vec![
            Value::Int(needle),
            Value::Null,
            Value::Null,
            Value::Bool(false),
            Value::text("POINT (0 0)"),
        ]).unwrap();
        prop_assert!(indexed.lookup("k", &Value::Int(needle)).unwrap().len()
            >= t.lookup("k", &Value::Int(needle)).unwrap().len());
    }

    #[test]
    fn filter_partitions_rows(t in arb_table(), pivot in any::<i64>()) {
        let lt = Query::new(&t)
            .filter(Predicate::Lt("k".into(), Value::Int(pivot)))
            .count()
            .unwrap();
        let ge = Query::new(&t)
            .filter(Predicate::Ge("k".into(), Value::Int(pivot)))
            .count()
            .unwrap();
        prop_assert_eq!(lt + ge, t.len());
    }

    #[test]
    fn order_by_sorts_totally(t in arb_table()) {
        let rows = Query::new(&t).order_by("f", true).rows().unwrap();
        for w in rows.windows(2) {
            prop_assert!(w[0][2].total_cmp(&w[1][2]) != std::cmp::Ordering::Greater);
        }
        prop_assert_eq!(rows.len(), t.len());
    }

    #[test]
    fn group_by_counts_sum_to_total(t in arb_table()) {
        let groups = Query::new(&t)
            .group_by(vec!["b"], vec![Aggregate::Count])
            .unwrap();
        let total: i64 = groups.iter().map(|g| g[1].as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, t.len());
        prop_assert!(groups.len() <= 2);
    }

    #[test]
    fn distinct_never_exceeds_total(t in arb_table()) {
        let distinct = Query::new(&t).select(vec!["t"]).distinct().count().unwrap();
        prop_assert!(distinct <= t.len().max(1));
    }

    #[test]
    fn limit_caps_results(t in arb_table(), n in 0usize..50) {
        let rows = Query::new(&t).limit(n).rows().unwrap();
        prop_assert_eq!(rows.len(), n.min(t.len()));
    }

    #[test]
    fn value_total_order_is_transitive(
        a in any::<i64>().prop_map(Value::Int),
        b in (-1e6f64..1e6).prop_map(Value::Float),
        c in r#"[ -~]{0,8}"#.prop_map(|s: String| Value::text(s)),
    ) {
        use std::cmp::Ordering::*;
        let vals = [Value::Null, a, b, c, Value::Bool(true)];
        for x in &vals {
            for y in &vals {
                for z in &vals {
                    if x.total_cmp(y) != Greater && y.total_cmp(z) != Greater {
                        prop_assert!(x.total_cmp(z) != Greater, "{x:?} {y:?} {z:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn interned_text_roundtrips(s in r#"[ -~]{0,80}"#) {
        // Through the interner directly…
        let st = igdb_db::Str::new(&s);
        prop_assert_eq!(st.as_str(), s.as_str());
        prop_assert_eq!(st.to_string(), s.clone());
        prop_assert_eq!(igdb_db::Str::from(s.clone()), st.clone());
        // …and through a Value cell.
        let v = Value::text(s.clone());
        prop_assert_eq!(v.as_text(), Some(s.as_str()));
    }

    #[test]
    fn str_order_matches_str(a in r#"[ -~]{0,80}"#, b in r#"[ -~]{0,80}"#) {
        let (sa, sb) = (igdb_db::Str::new(&a), igdb_db::Str::new(&b));
        prop_assert_eq!(sa.cmp(&sb), a.as_str().cmp(b.as_str()));
        prop_assert_eq!(sa == sb, a == b);
    }
}
