//! Interner behavior under parallel interning, and the fingerprint's
//! independence from intern order — the two properties the planet-scale
//! build leans on when worker threads intern hostnames concurrently.

use igdb_db::{ColumnDef, ColumnType, Database, Schema, Str, Value};

/// Every thread resolving the same string must get the same symbol (the
/// interner is process-global), and symbols must round-trip to the exact
/// original content regardless of which thread interned first.
#[test]
fn symbols_agree_across_worker_threads() {
    let names: Vec<String> = (0..512).map(|i| format!("xthread-metro-{i}")).collect();
    let baseline: Vec<(Option<u32>, String)> = names
        .iter()
        .map(|n| {
            let s = Str::new(n);
            (s.sym(), s.as_str().to_string())
        })
        .collect();
    for workers in [1, 4] {
        let resolved = igdb_par::with_threads(workers, || {
            igdb_par::par_map(&names, |n| {
                let s = Str::new(n);
                (s.sym(), s.as_str().to_string())
            })
        });
        assert_eq!(resolved, baseline, "workers={workers}");
    }
}

/// The database fingerprint renders text by content, never by symbol id,
/// so two databases with identical rows fingerprint identically even when
/// their strings were interned in opposite orders (different symbol ids).
#[test]
fn fingerprint_is_intern_order_independent() {
    let rows: Vec<[String; 2]> = (0..64)
        .map(|i| [format!("fporder-key-{i}"), format!("fporder-val-{}", i * 7)])
        .collect();
    let build = |reverse: bool| {
        // Force a different id assignment by pre-interning in the chosen
        // order before any row is inserted.
        let mut order: Vec<&String> = rows.iter().flatten().collect();
        if reverse {
            order.reverse();
        }
        for s in order {
            let _ = Str::new(s);
        }
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", ColumnType::Text),
                ColumnDef::new("v", ColumnType::Text),
            ]),
        )
        .unwrap();
        for [k, v] in &rows {
            db.insert("t", vec![Value::text(k), Value::text(v)]).unwrap();
        }
        db.with_table_mut("t", |t| t.create_index("k")).unwrap().unwrap();
        db.fingerprint()
    };
    assert_eq!(build(false), build(true));
}
